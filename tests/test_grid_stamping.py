"""Tests for MNA stamping of power-grid netlists."""

import numpy as np
import pytest

from repro.errors import StampingError
from repro.grid.netlist import PowerGridNetlist
from repro.grid.stamping import stamp
from repro.waveforms import PiecewiseLinear


class TestManualLadder:
    """The 3-node ladder from conftest has hand-checkable matrices."""

    def test_conductance_matrix_values(self, manual_netlist):
        stamped = stamp(manual_netlist)
        G = stamped.conductance.toarray()
        i1 = manual_netlist.node_index("n1")
        i2 = manual_netlist.node_index("n2")
        i3 = manual_netlist.node_index("n3")
        # pad 0.1 ohm -> 10 S at n1; R12 = 1 ohm; R23 = 2 ohm
        assert G[i1, i1] == pytest.approx(10.0 + 1.0)
        assert G[i2, i2] == pytest.approx(1.0 + 0.5)
        assert G[i3, i3] == pytest.approx(0.5)
        assert G[i1, i2] == pytest.approx(-1.0)
        assert G[i2, i3] == pytest.approx(-0.5)
        assert G[i1, i3] == pytest.approx(0.0)

    def test_conductance_symmetry(self, manual_netlist):
        G = stamp(manual_netlist).conductance.toarray()
        np.testing.assert_allclose(G, G.T)

    def test_capacitance_split_by_gate_flag(self, manual_netlist):
        stamped = stamp(manual_netlist)
        i2 = manual_netlist.node_index("n2")
        i3 = manual_netlist.node_index("n3")
        assert stamped.c_fixed.toarray()[i2, i2] == pytest.approx(1.0e-12)
        assert stamped.c_gate.toarray()[i3, i3] == pytest.approx(2.0e-12)
        assert stamped.capacitance.toarray()[i3, i3] == pytest.approx(2.0e-12)

    def test_pad_current_vector(self, manual_netlist):
        stamped = stamp(manual_netlist)
        i1 = manual_netlist.node_index("n1")
        expected = 1.2 / 0.1
        assert stamped.pad_current[i1] == pytest.approx(expected)
        assert np.count_nonzero(stamped.pad_current) == 1

    def test_rhs_subtracts_drain_currents(self, manual_netlist):
        stamped = stamp(manual_netlist)
        i3 = manual_netlist.node_index("n3")
        rhs = stamped.rhs(0.0)
        assert rhs[i3] == pytest.approx(-(0.01 + 0.001))

    def test_drain_current_matrix_matches_vector(self, manual_netlist):
        stamped = stamp(manual_netlist)
        times = [0.0, 1e-9, 2e-9]
        matrix = stamped.drain_current_matrix(times)
        for row, t in zip(matrix, times):
            np.testing.assert_allclose(row, stamped.drain_current_vector(t))

    def test_leakage_exclusion(self, manual_netlist):
        stamped = stamp(manual_netlist)
        i3 = manual_netlist.node_index("n3")
        with_leak = stamped.drain_current_vector(0.0, include_leakage=True)
        without = stamped.drain_current_vector(0.0, include_leakage=False)
        assert with_leak[i3] - without[i3] == pytest.approx(0.001)

    def test_drop_helper(self, manual_netlist):
        stamped = stamp(manual_netlist)
        drops = stamped.drop(np.full(stamped.num_nodes, 1.1))
        np.testing.assert_allclose(drops, 0.1)

    def test_node_index_lookup(self, manual_netlist):
        stamped = stamp(manual_netlist)
        assert stamped.node_names[stamped.node_index("n2")] == "n2"
        with pytest.raises(StampingError):
            stamped.node_index("nope")


class TestStampedProperties:
    def test_generated_grid_spd(self, small_stamped):
        """The grid conductance matrix must be symmetric positive definite."""
        G = small_stamped.conductance
        asymmetry = abs(G - G.T).max()
        assert asymmetry < 1e-12
        # positive definiteness via Cholesky-like check on a dense copy
        eigenvalues = np.linalg.eigvalsh(G.toarray())
        assert eigenvalues.min() > 0

    def test_capacitance_positive_semidefinite(self, small_stamped):
        C = small_stamped.capacitance
        eigenvalues = np.linalg.eigvalsh(C.toarray())
        assert eigenvalues.min() > -1e-18

    def test_row_sums_nonnegative(self, small_stamped):
        """Diagonal dominance: row sums equal the conductance to ground/pads."""
        G = small_stamped.conductance
        row_sums = np.asarray(G.sum(axis=1)).ravel()
        assert np.all(row_sums >= -1e-12)

    def test_rhs_matrix_shape(self, small_stamped, fast_transient):
        times = fast_transient.times()
        rhs = small_stamped.rhs_matrix(times)
        assert rhs.shape == (times.size, small_stamped.num_nodes)

    def test_pad_nodes_recorded(self, small_stamped):
        assert small_stamped.pad_nodes.size > 0
        assert np.all(small_stamped.pad_current[small_stamped.pad_nodes] > 0)

    def test_validation_runs_by_default(self):
        netlist = PowerGridNetlist()
        netlist.add_resistor("a", "b", 1.0)  # no pads
        with pytest.raises(Exception):
            stamp(netlist)

    def test_time_varying_source_changes_rhs(self):
        netlist = PowerGridNetlist()
        netlist.add_pad("a", 0.1, 1.0)
        netlist.add_resistor("a", "b", 1.0)
        netlist.add_current_source("b", PiecewiseLinear([0.0, 1.0], [0.0, 1.0]))
        stamped = stamp(netlist)
        idx = 1  # node b
        assert stamped.rhs(0.0)[idx] == pytest.approx(0.0)
        assert stamped.rhs(1.0)[idx] == pytest.approx(-1.0)
