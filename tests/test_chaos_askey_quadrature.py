"""Tests for the non-Gaussian Askey families and the quadrature rules."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.askey import (
    jacobi_norm_squared,
    jacobi_value,
    laguerre_norm_squared,
    laguerre_value,
    legendre_norm_squared,
    legendre_value,
)
from repro.chaos.quadrature import (
    gauss_hermite_rule,
    gauss_jacobi_rule,
    gauss_laguerre_rule,
    gauss_legendre_rule,
    tensor_grid,
)
from repro.errors import BasisError


class TestQuadratureRules:
    @pytest.mark.parametrize(
        "rule",
        [
            lambda n: gauss_hermite_rule(n),
            lambda n: gauss_legendre_rule(n),
            lambda n: gauss_laguerre_rule(n),
            lambda n: gauss_jacobi_rule(n, 1.0, 2.0),
        ],
    )
    def test_weights_sum_to_one(self, rule):
        _, weights = rule(12)
        assert np.sum(weights) == pytest.approx(1.0, rel=1e-10)

    def test_hermite_rule_integrates_moments(self):
        nodes, weights = gauss_hermite_rule(10)
        assert np.sum(weights * nodes) == pytest.approx(0.0, abs=1e-12)
        assert np.sum(weights * nodes**2) == pytest.approx(1.0, rel=1e-10)
        assert np.sum(weights * nodes**4) == pytest.approx(3.0, rel=1e-10)

    def test_legendre_rule_integrates_moments(self):
        nodes, weights = gauss_legendre_rule(8)
        assert np.sum(weights * nodes**2) == pytest.approx(1.0 / 3.0, rel=1e-10)
        assert np.sum(weights * nodes**3) == pytest.approx(0.0, abs=1e-12)

    def test_laguerre_rule_integrates_moments(self):
        nodes, weights = gauss_laguerre_rule(12)
        # E[X^k] = k! for a unit-rate exponential
        assert np.sum(weights * nodes) == pytest.approx(1.0, rel=1e-9)
        assert np.sum(weights * nodes**3) == pytest.approx(6.0, rel=1e-8)

    def test_jacobi_rule_matches_beta_mean(self):
        alpha, beta = 2.0, 1.0
        nodes, weights = gauss_jacobi_rule(10, alpha, beta)
        # germ x = 2B - 1 with B ~ Beta(beta+1, alpha+1)
        mean_b = (beta + 1.0) / (alpha + beta + 2.0)
        assert np.sum(weights * nodes) == pytest.approx(2 * mean_b - 1, rel=1e-9)

    def test_rejects_zero_points(self):
        with pytest.raises(BasisError):
            gauss_hermite_rule(0)

    def test_jacobi_rejects_bad_parameters(self):
        with pytest.raises(BasisError):
            gauss_jacobi_rule(5, -1.5, 0.0)

    def test_tensor_grid_shapes_and_weights(self):
        rule_a = gauss_hermite_rule(3)
        rule_b = gauss_legendre_rule(4)
        points, weights = tensor_grid([rule_a, rule_b])
        assert points.shape == (12, 2)
        assert weights.shape == (12,)
        assert np.sum(weights) == pytest.approx(1.0)

    def test_tensor_grid_integrates_separable_function(self):
        points, weights = tensor_grid([gauss_hermite_rule(6), gauss_hermite_rule(6)])
        # E[x^2 * y^2] = 1 for independent standard normals
        value = np.sum(weights * points[:, 0] ** 2 * points[:, 1] ** 2)
        assert value == pytest.approx(1.0, rel=1e-9)

    def test_tensor_grid_requires_rules(self):
        with pytest.raises(BasisError):
            tensor_grid([])


class TestLegendre:
    def test_first_polynomials(self):
        x = np.linspace(-1, 1, 7)
        np.testing.assert_allclose(legendre_value(0, x), 1.0)
        np.testing.assert_allclose(legendre_value(1, x), x)
        np.testing.assert_allclose(legendre_value(2, x), 0.5 * (3 * x**2 - 1))
        np.testing.assert_allclose(legendre_value(3, x), 0.5 * (5 * x**3 - 3 * x))

    def test_norm_squared(self):
        nodes, weights = gauss_legendre_rule(20)
        for k in range(6):
            numeric = np.sum(weights * legendre_value(k, nodes) ** 2)
            assert numeric == pytest.approx(legendre_norm_squared(k), rel=1e-9)

    def test_orthogonality(self):
        nodes, weights = gauss_legendre_rule(20)
        for a in range(5):
            for b in range(a):
                inner = np.sum(weights * legendre_value(a, nodes) * legendre_value(b, nodes))
                assert inner == pytest.approx(0.0, abs=1e-12)

    def test_endpoint_value(self):
        for k in range(6):
            assert legendre_value(k, 1.0) == pytest.approx(1.0)


class TestLaguerre:
    def test_first_polynomials(self):
        x = np.linspace(0, 5, 6)
        np.testing.assert_allclose(laguerre_value(0, x), 1.0)
        np.testing.assert_allclose(laguerre_value(1, x), 1.0 - x)
        np.testing.assert_allclose(laguerre_value(2, x), 0.5 * (x**2 - 4 * x + 2))

    def test_orthonormality(self):
        nodes, weights = gauss_laguerre_rule(25)
        for a in range(5):
            for b in range(5):
                inner = np.sum(weights * laguerre_value(a, nodes) * laguerre_value(b, nodes))
                expected = 1.0 if a == b else 0.0
                assert inner == pytest.approx(expected, abs=1e-8)

    def test_norm_squared_is_one(self):
        for k in range(5):
            assert laguerre_norm_squared(k) == 1.0


class TestJacobi:
    def test_reduces_to_legendre_when_parameters_zero(self):
        x = np.linspace(-1, 1, 9)
        for k in range(5):
            np.testing.assert_allclose(
                jacobi_value(k, x, 0.0, 0.0), legendre_value(k, x), atol=1e-12
            )

    def test_orthogonality_under_beta_weight(self):
        alpha, beta = 1.5, 0.5
        nodes, weights = gauss_jacobi_rule(25, alpha, beta)
        for a in range(4):
            for b in range(a):
                inner = np.sum(
                    weights
                    * jacobi_value(a, nodes, alpha, beta)
                    * jacobi_value(b, nodes, alpha, beta)
                )
                assert inner == pytest.approx(0.0, abs=1e-10)

    def test_norm_squared_matches_quadrature(self):
        alpha, beta = 2.0, 1.0
        nodes, weights = gauss_jacobi_rule(30, alpha, beta)
        for k in range(5):
            numeric = np.sum(weights * jacobi_value(k, nodes, alpha, beta) ** 2)
            assert numeric == pytest.approx(jacobi_norm_squared(k, alpha, beta), rel=1e-8)

    def test_rejects_bad_parameters(self):
        with pytest.raises(BasisError):
            jacobi_value(2, 0.0, -2.0, 0.0)
        with pytest.raises(BasisError):
            jacobi_norm_squared(2, 0.0, -1.5)


class TestAskeyPropertyBased:
    @given(order=st.integers(min_value=1, max_value=8), x=st.floats(-1, 1))
    @settings(max_examples=50, deadline=None)
    def test_legendre_bounded_on_interval(self, order, x):
        assert abs(legendre_value(order, x)) <= 1.0 + 1e-12

    @given(order=st.integers(min_value=0, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_legendre_norm_positive_and_decreasing(self, order):
        assert legendre_norm_squared(order) > 0
        if order > 0:
            assert legendre_norm_squared(order) < legendre_norm_squared(order - 1)

    @given(
        order=st.integers(min_value=0, max_value=6),
        alpha=st.floats(min_value=-0.5, max_value=3.0),
        beta=st.floats(min_value=-0.5, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_jacobi_norms_positive(self, order, alpha, beta):
        assert jacobi_norm_squared(order, alpha, beta) > 0
