"""Tests of the macromodel-accelerated ``mor`` engine and its plumbing.

Covers: accuracy against the exact ``hierarchical`` engine, the reduced
block-operator algebra and its dense block solver, scheme-registry
compatibility of the adapter, session macromodel caching across runs and
corners (with the ``covers`` reuse guard), the sweep ``mor_order``
append-only identity conventions, the sparsity-pattern cache exposure in
``factorization_counters``, and the no-orphaned-workers guarantee of a
raising partitioned march.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import Analysis
from repro.errors import AnalysisError, SolverError
from repro.mor import MorSystemAdapter, ReducedBlockSolver, mor_atom_count
from repro.sim.transient import TransientConfig
from repro.sweep.plan import SweepCase, SweepPlan, corner_spec

TRANSIENT = TransientConfig(t_stop=1.2e-9, dt=0.2e-9)

#: The issue's accuracy gate: mean/std within 1e-3 relative at default order.
ACCURACY = 1e-3


def _relative_gap(candidate: np.ndarray, reference: np.ndarray) -> float:
    return float(np.max(np.abs(candidate - reference)) / np.max(np.abs(reference)))


@pytest.fixture(scope="module")
def mor_session():
    return Analysis.from_spec(350, transient=TRANSIENT)


@pytest.fixture(scope="module")
def mor_view(mor_session):
    return mor_session.run("mor", order=2)


@pytest.fixture(scope="module")
def hierarchical_view(mor_session):
    return mor_session.run("hierarchical", order=2)


class TestMorEngineAccuracy:
    def test_mean_matches_hierarchical(self, mor_view, hierarchical_view):
        assert _relative_gap(mor_view.mean(), hierarchical_view.mean()) < ACCURACY

    def test_std_matches_hierarchical(self, mor_view, hierarchical_view):
        assert _relative_gap(mor_view.std(), hierarchical_view.std()) < ACCURACY

    def test_reduced_system_is_smaller(self, mor_view):
        stats = mor_view.mor_stats
        assert stats["reduced_size"] < stats["full_size"]
        assert stats["macromodels_built"] >= 2
        assert stats["reduction_order"] == 2
        assert len(stats["block_orders"]) == stats["macromodels_built"]

    def test_store_coefficients_matches_summary_path(self, mor_session, mor_view):
        full = mor_session.run("mor", order=2, store_coefficients=True)
        assert np.allclose(full.mean(), mor_view.mean(), atol=1e-12)
        assert np.allclose(full.std(), mor_view.std(), atol=1e-12)

    def test_higher_reduction_order_stays_within_gate(self, mor_session, hierarchical_view):
        fine = mor_session.run("mor", order=2, mor_order=3)
        assert _relative_gap(fine.std(), hierarchical_view.std()) < ACCURACY
        assert fine.mor_stats["reduction_order"] == 3

    def test_rejects_dc_mode(self, mor_session):
        with pytest.raises(AnalysisError):
            mor_session.run("mor", mode="dc")

    def test_rejects_bad_reduction_order(self, mor_session):
        with pytest.raises(AnalysisError):
            mor_session.run("mor", mor_order=0)

    def test_rejects_unknown_option(self, mor_session):
        with pytest.raises(AnalysisError):
            mor_session.run("mor", not_an_option=1)

    def test_atom_count_heuristic(self):
        assert mor_atom_count(10) == 2
        assert mor_atom_count(2570) == 2
        assert mor_atom_count(25700) == 2
        assert mor_atom_count(90000) == 4
        assert mor_atom_count(10**9) == 8  # capped


class TestMorSchemeCompatibility:
    @pytest.mark.parametrize("scheme", ["backward-euler", "trapezoidal"])
    def test_registered_schemes_march(self, mor_session, scheme):
        mor = mor_session.run("mor", order=2, scheme=scheme)
        reference = mor_session.run("hierarchical", order=2, scheme=scheme)
        assert _relative_gap(mor.mean(), reference.mean()) < ACCURACY


class TestMacromodelCache:
    def test_second_run_reuses_every_macromodel(self):
        session = Analysis.from_spec(350, transient=TRANSIENT)
        first = session.run("mor", order=2)
        second = session.run("mor", order=2)
        assert first.mor_stats["macromodels_reused"] == 0
        assert second.mor_stats["macromodels_built"] == 0
        assert second.mor_stats["macromodels_reused"] == first.mor_stats["macromodels_built"]
        info = session.cache_info()["macromodel"]
        assert info["hits"] == second.mor_stats["macromodels_reused"]
        assert info["misses"] == first.mor_stats["macromodels_built"]

    def test_corner_swap_reuses_macromodels(self):
        session = Analysis.from_spec(
            350, transient=TRANSIENT, variation=corner_spec("paper")
        )
        first = session.run("mor", order=2)
        session.with_variation(corner_spec("wide"))
        second = session.run("mor", order=2)
        assert second.mor_stats["macromodels_built"] == 0
        assert second.mor_stats["macromodels_reused"] == first.mor_stats["macromodels_built"]
        # The reused bases still meet the accuracy gate on the new corner.
        reference = session.run("hierarchical", order=2)
        assert _relative_gap(second.std(), reference.std()) < ACCURACY

    def test_different_reduction_order_is_a_different_model(self):
        session = Analysis.from_spec(350, transient=TRANSIENT)
        session.run("mor", order=2, mor_order=2)
        other = session.run("mor", order=2, mor_order=3)
        assert other.mor_stats["macromodels_built"] > 0
        assert other.mor_stats["macromodels_reused"] == 0

    def test_coverage_guard_rebuilds_on_novel_directions(self):
        session = Analysis.from_spec(350, transient=TRANSIENT)
        session.run("mor", order=2)
        cache = session._caches["macromodel"]
        assert cache
        key, model = next(iter(cache.items()))
        span = model.input_span
        assert span.shape[1] < model.interior.size  # guard is non-trivial
        # A direction orthogonal to the build-time input span is not covered.
        rng = np.random.default_rng(0)
        novel = rng.standard_normal(model.interior.size)
        novel -= span @ (span.T @ novel)
        novel /= np.linalg.norm(novel)
        assert not model.covers([novel])
        # Directions inside the span keep the cache hit ...
        hit, reused = session.macromodel(
            key, lambda: None, lambda cached: cached.covers([span[:, 0]])
        )
        assert reused is True and hit is model
        # ... while a failing guard forces a rebuild that replaces the entry.
        sentinel = object()
        rebuilt, reused = session.macromodel(
            key, lambda: sentinel, lambda cached: cached.covers([novel])
        )
        assert reused is False and rebuilt is sentinel
        assert cache[key] is sentinel


class TestReducedBlockSystem:
    @pytest.fixture(scope="class")
    def reduced_pair(self):
        from repro.chaos.triples import triple_product_tensors
        from repro.mor.macromodel import block_coupling, build_block_macromodel
        from repro.mor.reduced import build_reduced_operators, reduce_rhs_series
        from repro.partition.engine import system_partition

        session = Analysis.from_spec(200, transient=TRANSIENT)
        system = session.system
        galerkin = session.galerkin(2)
        partition = system_partition(system, num_atoms=2)
        boundary = partition.boundary
        series = galerkin.rhs_series(TRANSIENT.times())
        g_nominal = sp.csr_matrix(system.g_nominal)
        c_nominal = sp.csr_matrix(system.c_nominal)
        models, local_columns = [], []
        for atom, interior in enumerate(partition.interiors):
            if not interior.size:
                continue
            adjacency, columns = block_coupling(system, interior, boundary)
            models.append(
                build_block_macromodel(
                    atom,
                    interior,
                    g_nominal[interior][:, interior],
                    c_nominal[interior][:, interior],
                    adjacency,
                    np.empty(0, dtype=int),
                    [],
                    2,
                )
            )
            local_columns.append(columns)
        active = set(galerkin.conductance_coefficients) | set(
            galerkin.capacitance_coefficients
        )
        tensors = triple_product_tensors(galerkin.basis, active)
        conductance, capacitance = build_reduced_operators(
            models,
            local_columns,
            boundary,
            galerkin.basis.size,
            galerkin.conductance_coefficients,
            galerkin.capacitance_coefficients,
            tensors,
        )
        reduced_series = reduce_rhs_series(series, models, boundary, galerkin.basis.size)
        return conductance, capacitance, reduced_series, series, boundary, galerkin

    @staticmethod
    def _densify(operator) -> np.ndarray:
        """Explicit dense matrix of a ReducedBlockOperator from its pieces."""
        dense = np.zeros((operator.size, operator.size))
        tail = operator.boundary_offset
        dense[tail:, tail:] = operator.interface.toarray()
        for diag, forward, reverse, cols, offset in zip(
            operator.diag,
            operator.couple_ib,
            operator.couple_bi,
            operator.col_index,
            operator.offsets,
        ):
            rank = diag.shape[0]
            dense[offset : offset + rank, offset : offset + rank] = diag
            if cols.size:
                dense[offset : offset + rank, tail + cols] = forward
                dense[tail + cols, offset : offset + rank] += reverse
        return dense

    def test_matvec_matches_densified_operator(self, reduced_pair):
        conductance, capacitance, _, _, _, _ = reduced_pair
        rng = np.random.default_rng(5)
        for operator in (conductance, capacitance):
            dense = self._densify(operator)
            x = rng.standard_normal(operator.size)
            assert np.allclose(operator.matvec(x), dense @ x, atol=1e-9)
            assert np.allclose(operator @ x, dense @ x, atol=1e-9)

    def test_scalar_algebra_composes(self, reduced_pair):
        conductance, capacitance, _, _, _, _ = reduced_pair
        h = 2.0e-10
        composed = conductance + capacitance / h
        rng = np.random.default_rng(11)
        x = rng.standard_normal(composed.size)
        direct = conductance.matvec(x) + capacitance.matvec(x) / h
        assert np.allclose(composed.matvec(x), direct, rtol=1e-12, atol=1e-14)
        doubled = 2.0 * conductance
        assert np.allclose(doubled.matvec(x), 2.0 * conductance.matvec(x))
        with pytest.raises(TypeError):
            conductance + 2.0  # operators only compose with operators

    def test_solver_roundtrip(self, reduced_pair):
        conductance, capacitance, _, _, _, _ = reduced_pair
        lhs = conductance + capacitance / 2.0e-10
        rng = np.random.default_rng(13)
        x = rng.standard_normal(lhs.size)
        solver = ReducedBlockSolver(lhs)
        assert solver.shape == lhs.shape
        assert np.allclose(solver.solve(lhs.matvec(x)), x, atol=1e-6)

    def test_reduced_rhs_keeps_boundary_rows_exact(self, reduced_pair):
        _, _, reduced_series, series, boundary, galerkin = reduced_pair
        tail = reduced_series.size - galerkin.basis.size * boundary.size
        out = np.empty(reduced_series.size)
        reduced_series.fill(0, out)
        for index, waveform in series.waveforms:
            segment = out[
                tail + index * boundary.size : tail + (index + 1) * boundary.size
            ]
            assert np.allclose(segment, waveform[0, boundary])

    def test_adapter_prepares_for_registered_scheme(self, reduced_pair):
        from repro.stepping import resolve_scheme

        conductance, capacitance, reduced_series, _, _, _ = reduced_pair
        adapter = MorSystemAdapter(conductance, capacitance, reduced_series)
        prepared = adapter.prepare(
            resolve_scheme("backward-euler"), reduced_series.times, 2.0e-10
        )
        assert prepared.forms.matrix_free is True
        assert prepared.rhs_series is reduced_series
        state = prepared.step_solver.solve(np.ones(adapter.size))
        assert state.shape == (adapter.size,)
        dc = prepared.dc_solver_factory().solve(np.ones(adapter.size))
        assert dc.shape == (adapter.size,)

    def test_adapter_rejects_foreign_time_axis(self, reduced_pair):
        from repro.stepping import resolve_scheme

        conductance, capacitance, reduced_series, _, _, _ = reduced_pair
        adapter = MorSystemAdapter(conductance, capacitance, reduced_series)
        with pytest.raises(SolverError):
            adapter.prepare(
                resolve_scheme("backward-euler"), reduced_series.times + 1e-10, 2.0e-10
            )


class TestSweepMorOrder:
    def test_mor_order_append_only_identity(self):
        plain = SweepCase(engine="mor", nodes=100, order=2)
        tagged = SweepCase(engine="mor", nodes=100, order=2, mor_order=3)
        assert tagged.key() == plain.key() + (3,)
        assert tagged.seed_identity() == plain.seed_identity() + (3,)
        assert "-r3-" in tagged.name
        assert "-r3-" not in plain.name

    def test_preexisting_seed_identities_unchanged(self):
        # The field's introduction must not move seeds of cases without it.
        case = SweepCase(engine="opera", nodes=100, order=2)
        assert case.seed_identity() == ("opera", 100, 2, None, "paper")

    def test_mor_order_rejected_for_other_engines(self):
        with pytest.raises(AnalysisError):
            SweepCase(engine="opera", nodes=100, order=2, mor_order=2)
        with pytest.raises(AnalysisError):
            SweepCase(engine="mor", nodes=100, order=2, mor_order=0)

    def test_run_options_forwarding(self):
        case = SweepCase(engine="mor", nodes=100, order=2, mor_order=3)
        assert case.run_options() == {"order": 2, "mor_order": 3}

    def test_grid_applies_mor_order_to_mor_cases_only(self):
        plan = SweepPlan.grid([100], engines=("opera", "mor"), mor_order=3)
        by_engine = {case.engine: case for case in plan.cases}
        assert by_engine["mor"].mor_order == 3
        assert by_engine["opera"].mor_order is None

    def test_result_record_carries_mor_order(self):
        from repro.sweep.runner import SweepCaseResult

        result = SweepCaseResult(
            engine="mor",
            nodes=100,
            corner="paper",
            order=2,
            samples=None,
            seed=1,
            name="mor-n100-o2-r3-paper",
            num_nodes=100,
            wall_time=0.1,
            worst_drop=0.01,
            max_std=0.001,
            mor_order=3,
        )
        assert result.key()[-1] == 3
        assert result.to_record()["mor_order"] == 3


class TestPatternCacheExposure:
    def test_counters_report_cache_occupancy(self):
        from repro.sim.linear import (
            clear_pattern_cache,
            factorization_counters,
            make_solver,
        )

        clear_pattern_cache()
        before = factorization_counters()
        assert before["pattern_cache_entries"] == 0
        assert before["pattern_cache_limit"] >= 1
        make_solver(sp.identity(8, format="csr") * 2.0)
        assert factorization_counters()["pattern_cache_entries"] == 1

    def test_limit_setter_evicts_and_restores(self):
        from repro.sim.linear import (
            clear_pattern_cache,
            factorization_counters,
            make_solver,
            set_pattern_cache_limit,
        )

        clear_pattern_cache()
        for size in (5, 6, 7):
            make_solver(sp.identity(size, format="csr") * 3.0)
        assert factorization_counters()["pattern_cache_entries"] == 3
        previous = set_pattern_cache_limit(2)
        try:
            counters = factorization_counters()
            assert counters["pattern_cache_entries"] == 2
            assert counters["pattern_cache_limit"] == 2
            with pytest.raises(SolverError):
                set_pattern_cache_limit(0)
        finally:
            set_pattern_cache_limit(previous)
        assert factorization_counters()["pattern_cache_limit"] == previous


def _pooled_schur_adapter(session):
    from repro.partition.engine import system_partition
    from repro.partition.partitioner import augment_partition
    from repro.partition.workers import split_groups
    from repro.stepping import SchurSystemAdapter

    galerkin = session.galerkin(2)
    partition = system_partition(session.system, num_atoms=4)
    augmented = augment_partition(partition, galerkin.basis.size)
    atom_ids = [k for k, interior in enumerate(partition.interiors) if interior.size]
    return SchurSystemAdapter(
        galerkin,
        augmented,
        groups=split_groups(atom_ids, len(atom_ids)),
        workers=2,
    )


def _assert_workers_drained(deadline_s: float = 10.0) -> None:
    deadline = time.monotonic() + deadline_s
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children()


class TestAdapterPoolCleanup:
    def test_raising_march_leaves_no_orphaned_workers(self):
        from repro.stepping import StepLoop

        session = Analysis.from_spec(350, transient=TRANSIENT)
        adapter = _pooled_schur_adapter(session)
        times = TRANSIENT.times()

        class Boom(RuntimeError):
            pass

        def exploding(step, t, state):
            raise Boom("synthetic failure mid-march")

        with pytest.raises(Boom):
            with adapter:
                StepLoop(adapter, TRANSIENT.scheme, times, TRANSIENT.dt).run(
                    callback=exploding, store=False
                )
        assert adapter._pool is None  # the context exit shut the pool down
        _assert_workers_drained()

    def test_failed_prepare_shuts_pool_down(self, monkeypatch):
        from repro.partition import schur as schur_module
        from repro.stepping import resolve_scheme

        session = Analysis.from_spec(350, transient=TRANSIENT)
        adapter = _pooled_schur_adapter(session)

        class Boom(RuntimeError):
            pass

        def exploding_init(self, *args, **kwargs):
            raise Boom("synthetic factorization failure")

        monkeypatch.setattr(schur_module.SchurComplement, "__init__", exploding_init)
        with pytest.raises(Boom):
            adapter.prepare(resolve_scheme(TRANSIENT.method), TRANSIENT.times(), TRANSIENT.dt)
        assert adapter._pool is None
        _assert_workers_drained()
