"""Tests for stochastic response containers and density reconstruction."""

import math

import numpy as np
import pytest

from repro.chaos.basis import PolynomialChaosBasis
from repro.chaos.density import (
    edgeworth_pdf,
    gram_charlier_pdf,
    histogram_percentages,
)
from repro.chaos.response import StochasticField, StochasticTransientResult
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def basis():
    return PolynomialChaosBasis("hermite", order=2, num_vars=2)


class TestStochasticField:
    def test_mean_and_variance_from_coefficients(self, basis):
        coefficients = np.zeros((basis.size, 3))
        coefficients[0] = [1.0, 2.0, 3.0]
        coefficients[1] = [0.1, 0.0, 0.2]
        coefficients[3] = [0.0, 0.3, 0.1]
        field = StochasticField(basis, coefficients)
        np.testing.assert_allclose(field.mean, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(field.variance, [0.01, 0.09, 0.04 + 0.01])
        np.testing.assert_allclose(field.std, np.sqrt(field.variance))

    def test_one_dimensional_coefficients_promoted(self, basis):
        field = StochasticField(basis, np.zeros(basis.size))
        assert field.num_values == 1

    def test_shape_mismatch_rejected(self, basis):
        with pytest.raises(AnalysisError):
            StochasticField(basis, np.zeros((basis.size + 1, 2)))

    def test_evaluate_single_point(self, basis):
        coefficients = np.zeros((basis.size, 1))
        coefficients[0, 0] = 2.0
        coefficients[1, 0] = 0.5  # + 0.5 * xi_0
        field = StochasticField(basis, coefficients)
        assert field.evaluate(np.array([1.0, 0.0]))[0] == pytest.approx(2.5)

    def test_sampled_statistics_match_analytic(self, basis, rng):
        coefficients = np.zeros((basis.size, 1))
        coefficients[0, 0] = 1.0
        coefficients[1, 0] = 0.3
        coefficients[4, 0] = 0.1
        field = StochasticField(basis, coefficients)
        samples = field.sample(num_samples=200000, rng=rng)
        assert np.mean(samples) == pytest.approx(1.0, abs=5e-3)
        assert np.var(samples) == pytest.approx(field.variance[0], rel=0.03)

    def test_gaussian_expansion_has_no_skew_or_excess_kurtosis(self, basis, rng):
        coefficients = np.zeros((basis.size, 1))
        coefficients[0, 0] = 0.0
        coefficients[1, 0] = 1.0  # exactly xi_0: standard normal
        field = StochasticField(basis, coefficients)
        assert field.skewness(num_samples=200000, rng=rng)[0] == pytest.approx(0.0, abs=0.05)
        assert field.kurtosis(num_samples=200000, rng=rng)[0] == pytest.approx(0.0, abs=0.1)

    def test_percentiles_of_gaussian_expansion(self, basis, rng):
        coefficients = np.zeros((basis.size, 1))
        coefficients[1, 0] = 1.0
        field = StochasticField(basis, coefficients)
        p = field.percentiles([2.275, 97.725], num_samples=400000, rng=rng)
        np.testing.assert_allclose(p.ravel(), [-2.0, 2.0], atol=0.06)

    def test_drop_field_conversion(self, basis):
        coefficients = np.zeros((basis.size, 2))
        coefficients[0] = [1.1, 1.0]
        coefficients[1] = [0.05, 0.02]
        field = StochasticField(basis, coefficients, vdd=1.2)
        drops = field.drop_field()
        np.testing.assert_allclose(drops.mean, [0.1, 0.2])
        np.testing.assert_allclose(drops.variance, field.variance)

    def test_drop_field_requires_vdd(self, basis):
        field = StochasticField(basis, np.zeros((basis.size, 1)))
        with pytest.raises(AnalysisError):
            field.drop_field()

    def test_central_moments_order_validation(self, basis):
        field = StochasticField(basis, np.zeros((basis.size, 1)))
        with pytest.raises(AnalysisError):
            field.central_moments(0)


class TestStochasticTransientResult:
    def make(self, basis, num_nodes=4, num_times=5, vdd=1.2):
        rng = np.random.default_rng(3)
        coefficients = 0.01 * rng.normal(size=(num_times, basis.size, num_nodes))
        coefficients[:, 0, :] = 1.1  # mean voltage
        times = np.linspace(0, 1e-9, num_times)
        return StochasticTransientResult(
            times=times,
            basis=basis,
            vdd=vdd,
            coefficients=coefficients,
            node_names=tuple(f"n{k}" for k in range(num_nodes)),
        )

    def test_shapes(self, basis):
        result = self.make(basis)
        assert result.num_times == 5
        assert result.num_nodes == 4
        assert result.has_coefficients

    def test_mean_and_variance_derived_from_coefficients(self, basis):
        result = self.make(basis)
        np.testing.assert_allclose(result.mean_voltage, 1.1)
        np.testing.assert_allclose(
            result.variance, np.sum(result.coefficients[:, 1:, :] ** 2, axis=1)
        )
        np.testing.assert_allclose(result.mean_drop, 1.2 - 1.1)

    def test_field_at_returns_consistent_field(self, basis):
        result = self.make(basis)
        field = result.field_at(2)
        np.testing.assert_allclose(field.mean, result.mean_voltage[2])
        np.testing.assert_allclose(field.variance, result.variance[2])

    def test_node_expansion_and_drop_samples(self, basis, rng):
        result = self.make(basis)
        expansion = result.node_expansion(1, 3)
        assert expansion.shape == (basis.size,)
        drops = result.drop_samples(1, 3, num_samples=20000, rng=rng)
        assert drops.shape == (20000,)
        assert np.mean(drops) == pytest.approx(result.mean_drop[3, 1], abs=5e-3)

    def test_worst_node_and_peak_time(self, basis):
        result = self.make(basis)
        worst = result.worst_node()
        step = result.peak_time_index(worst)
        assert 0 <= worst < result.num_nodes
        assert 0 <= step < result.num_times
        assert result.mean_drop[step, worst] == pytest.approx(
            result.peak_mean_drop_per_node()[worst]
        )

    def test_node_index_lookup(self, basis):
        result = self.make(basis)
        assert result.node_index("n2") == 2
        with pytest.raises(AnalysisError):
            result.node_index("missing")

    def test_statistics_only_mode(self, basis):
        times = np.linspace(0, 1e-9, 3)
        mean = np.full((3, 2), 1.0)
        variance = np.full((3, 2), 0.01)
        result = StochasticTransientResult(
            times=times, basis=basis, vdd=1.2, mean=mean, variance=variance
        )
        assert not result.has_coefficients
        np.testing.assert_allclose(result.std_voltage, 0.1)
        with pytest.raises(AnalysisError):
            result.field_at(0)
        with pytest.raises(AnalysisError):
            result.drop_samples(0, 0)

    def test_construction_validation(self, basis):
        times = np.linspace(0, 1e-9, 3)
        with pytest.raises(AnalysisError):
            StochasticTransientResult(times=times, basis=basis, vdd=1.2)
        with pytest.raises(AnalysisError):
            StochasticTransientResult(
                times=times,
                basis=basis,
                vdd=1.2,
                coefficients=np.zeros((2, basis.size, 4)),
            )
        with pytest.raises(AnalysisError):
            StochasticTransientResult(
                times=times,
                basis=basis,
                vdd=1.2,
                mean=np.zeros((3, 2)),
                variance=np.zeros((2, 2)),
            )


class TestDensities:
    def test_gram_charlier_reduces_to_gaussian(self):
        x = np.linspace(-4, 4, 201)
        density = gram_charlier_pdf(x, mean=0.0, variance=1.0)
        gaussian = np.exp(-0.5 * x**2) / math.sqrt(2 * math.pi)
        np.testing.assert_allclose(density, gaussian, atol=1e-12)

    def test_gram_charlier_integrates_to_one(self):
        x = np.linspace(-8, 8, 4001)
        density = gram_charlier_pdf(x, mean=0.5, variance=2.0, skewness=0.3, excess_kurtosis=0.2)
        assert np.trapezoid(density, x) == pytest.approx(1.0, abs=1e-3)

    def test_edgeworth_reduces_to_gaussian(self):
        x = np.linspace(-4, 4, 101)
        np.testing.assert_allclose(
            edgeworth_pdf(x, 0.0, 1.0), gram_charlier_pdf(x, 0.0, 1.0), atol=1e-12
        )

    def test_positive_skew_shifts_mode_left(self):
        x = np.linspace(-4, 4, 2001)
        skewed = gram_charlier_pdf(x, 0.0, 1.0, skewness=0.5)
        mode = x[np.argmax(skewed)]
        assert mode < 0.0

    def test_densities_clipped_nonnegative(self):
        x = np.linspace(-6, 6, 301)
        density = gram_charlier_pdf(x, 0.0, 1.0, skewness=2.5, excess_kurtosis=-1.0)
        assert np.all(density >= 0.0)

    def test_rejects_non_positive_variance(self):
        with pytest.raises(AnalysisError):
            gram_charlier_pdf(np.zeros(3), 0.0, 0.0)
        with pytest.raises(AnalysisError):
            edgeworth_pdf(np.zeros(3), 0.0, -1.0)

    def test_gram_charlier_matches_sampled_lognormal_density(self, rng):
        """A mildly non-Gaussian target: the series should beat the plain
        Gaussian fit in the body of the distribution."""
        s = 0.25
        samples = np.exp(s * rng.standard_normal(400000))
        mean, variance = samples.mean(), samples.var()
        skewness = np.mean((samples - mean) ** 3) / variance**1.5
        x = np.linspace(mean - 2 * math.sqrt(variance), mean + 2 * math.sqrt(variance), 41)
        series = gram_charlier_pdf(x, mean, variance, skewness)
        gaussian = gram_charlier_pdf(x, mean, variance)
        hist, edges = np.histogram(samples, bins=200, density=True)
        centers = 0.5 * (edges[:-1] + edges[1:])
        empirical = np.interp(x, centers, hist)
        assert np.mean(np.abs(series - empirical)) < np.mean(np.abs(gaussian - empirical))


class TestHistogramPercentages:
    def test_percentages_sum_to_hundred(self, rng):
        samples = rng.normal(size=5000)
        _, percentages = histogram_percentages(samples, bins=20)
        assert np.sum(percentages) == pytest.approx(100.0)

    def test_respects_bin_count_and_range(self, rng):
        samples = rng.normal(size=1000)
        centers, percentages = histogram_percentages(samples, bins=10, value_range=(-1, 1))
        assert centers.shape == (10,)
        assert np.all(centers > -1) and np.all(centers < 1)

    def test_empty_input_rejected(self):
        with pytest.raises(AnalysisError):
            histogram_percentages(np.array([]))
