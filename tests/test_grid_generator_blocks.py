"""Tests for the synthetic grid generator and functional-block models."""

import numpy as np
import pytest

from repro.grid.blocks import (
    BlockCurrentConfig,
    FunctionalBlock,
    block_leakage_waveform,
    block_waveform,
    place_blocks,
)
from repro.grid.generator import (
    PAPER_GRID_NODE_COUNTS,
    GridSpec,
    generate_power_grid,
    node_name,
    spec_for_node_count,
)
from repro.grid.stamping import stamp
from repro.sim import dc_operating_point


class TestFunctionalBlock:
    def test_footprint_counts(self):
        block = FunctionalBlock("b", 0, 2, 0, 3, peak_current=1.0)
        assert block.num_nodes == 6
        assert block.peak_current_per_node == pytest.approx(1.0 / 6.0)

    def test_covers(self):
        block = FunctionalBlock("b", 1, 3, 2, 4, peak_current=1.0)
        assert block.covers(1, 2)
        assert block.covers(2, 3)
        assert not block.covers(3, 3)
        assert not block.covers(1, 4)

    def test_node_coordinates_match_cover(self):
        block = FunctionalBlock("b", 0, 2, 0, 2, peak_current=1.0)
        coords = block.node_coordinates()
        assert len(coords) == block.num_nodes
        assert all(block.covers(r, c) for r, c in coords)

    def test_rejects_empty_footprint(self):
        with pytest.raises(ValueError):
            FunctionalBlock("b", 2, 2, 0, 1, peak_current=1.0)

    def test_rejects_non_positive_current(self):
        with pytest.raises(ValueError):
            FunctionalBlock("b", 0, 1, 0, 1, peak_current=0.0)

    def test_rejects_bad_activity(self):
        with pytest.raises(ValueError):
            FunctionalBlock("b", 0, 1, 0, 1, peak_current=1.0, activity_mean=0.0)


class TestPlaceBlocks:
    def test_total_current_budget_preserved(self, rng):
        blocks = place_blocks(20, 20, 6, rng, total_peak_current=2.5)
        assert sum(b.peak_current for b in blocks) == pytest.approx(2.5)

    def test_block_count(self, rng):
        assert len(place_blocks(20, 20, 5, rng)) == 5

    def test_blocks_stay_inside_grid(self, rng):
        blocks = place_blocks(15, 11, 9, rng)
        for block in blocks:
            assert 0 <= block.row0 < block.row1 <= 15
            assert 0 <= block.col0 < block.col1 <= 11

    def test_reproducible_with_same_seed(self):
        a = place_blocks(16, 16, 4, np.random.default_rng(3))
        b = place_blocks(16, 16, 4, np.random.default_rng(3))
        assert a == b

    def test_rejects_zero_blocks(self, rng):
        with pytest.raises(ValueError):
            place_blocks(10, 10, 0, rng)

    def test_rejects_tiny_grid(self, rng):
        with pytest.raises(ValueError):
            place_blocks(1, 1, 1, rng)


class TestBlockWaveforms:
    def test_waveform_peak_bounded_by_block_peak(self, rng):
        block = FunctionalBlock("b", 0, 2, 0, 2, peak_current=0.4)
        waveform = block_waveform(block, BlockCurrentConfig(num_cycles=16), rng)
        assert waveform.max_abs(t_end=16e-9) <= block.peak_current_per_node + 1e-15

    def test_waveform_nonnegative(self, rng):
        block = FunctionalBlock("b", 0, 2, 0, 2, peak_current=0.4)
        waveform = block_waveform(block, BlockCurrentConfig(), rng)
        t = np.linspace(0, 8e-9, 500)
        assert np.all(waveform(t) >= 0)

    def test_leakage_waveform_constant_and_positive(self):
        block = FunctionalBlock("b", 0, 2, 0, 2, peak_current=0.4)
        leak = block_leakage_waveform(block, leakage_fraction=0.05)
        assert leak(0.0) == pytest.approx(leak(5e-9))
        assert leak(0.0) > 0

    def test_leakage_scales_with_fraction(self):
        block = FunctionalBlock("b", 0, 2, 0, 2, peak_current=0.4)
        small = block_leakage_waveform(block, 0.01)(0.0)
        large = block_leakage_waveform(block, 0.10)(0.0)
        assert large == pytest.approx(10 * small)


class TestGridSpec:
    def test_estimated_node_count_two_layers(self):
        spec = GridSpec(nx=16, ny=16, num_layers=2, coarsening=4)
        assert spec.estimated_node_count() == 16 * 16 + 4 * 4

    def test_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            GridSpec(nx=1, ny=10)

    def test_rejects_bad_coarsening(self):
        with pytest.raises(ValueError):
            GridSpec(coarsening=1)

    def test_rejects_bad_drop_target(self):
        with pytest.raises(ValueError):
            GridSpec(target_peak_drop_fraction=0.9)

    def test_technology_layer_consistency_enforced(self):
        from repro.grid.technology import default_technology

        spec = GridSpec(num_layers=3, technology=default_technology(2))
        with pytest.raises(ValueError):
            spec.resolved_technology()

    def test_spec_for_node_count_close(self):
        for target in (500, 2000, 10000):
            spec = spec_for_node_count(target)
            estimate = spec.estimated_node_count()
            assert abs(estimate - target) / target < 0.25

    def test_paper_node_counts_recorded(self):
        assert len(PAPER_GRID_NODE_COUNTS) == 7
        assert PAPER_GRID_NODE_COUNTS[0] == 19181
        assert PAPER_GRID_NODE_COUNTS[-1] == 351838


class TestGeneratedGrid:
    def test_node_count_matches_estimate(self, small_grid_spec, small_netlist):
        assert small_netlist.num_nodes == small_grid_spec.estimated_node_count()

    def test_generated_grid_validates(self, small_netlist):
        small_netlist.validate()

    def test_has_pads_blocks_and_caps(self, small_netlist):
        stats = small_netlist.stats()
        assert stats.num_pads >= 1
        assert stats.num_current_sources > 0
        assert stats.num_capacitors > 0

    def test_leakage_sources_tagged(self, small_netlist):
        leakage = [s for s in small_netlist.current_sources if s.is_leakage]
        switching = [s for s in small_netlist.current_sources if not s.is_leakage]
        assert leakage and switching
        assert len(leakage) == len(switching)

    def test_gate_and_fixed_caps_both_present(self, small_netlist):
        gate = [c for c in small_netlist.capacitors if c.is_gate_load]
        fixed = [c for c in small_netlist.capacitors if not c.is_gate_load]
        assert gate and fixed

    def test_calibration_hits_target_drop(self, small_grid_spec, small_netlist):
        """Worst-case DC drop (all sources at peak) should equal the target."""
        stamped = stamp(small_netlist)
        horizon = (
            small_grid_spec.block_config.clock_period
            * small_grid_spec.block_config.num_cycles
        )
        peak = np.zeros(stamped.num_nodes)
        for source in small_netlist.current_sources:
            peak[small_netlist.node_index(source.node)] += source.waveform.max_abs(horizon)
        import scipy.sparse.linalg as spla

        voltages = spla.spsolve(stamped.conductance.tocsc(), stamped.pad_current - peak)
        worst = float(np.max(stamped.vdd - voltages))
        target = small_grid_spec.target_peak_drop_fraction * stamped.vdd
        assert worst == pytest.approx(target, rel=1e-6)

    def test_operating_drop_below_ten_percent(self, small_stamped):
        """The paper keeps peak drops below 10% of VDD; check the DC snapshot."""
        result = dc_operating_point(small_stamped, t=0.3e-9)
        assert result.worst_drop < 0.10 * small_stamped.vdd

    def test_uncalibrated_grid_skips_dc_solve(self):
        spec = GridSpec(nx=6, ny=6, num_blocks=2, calibrate=False, seed=1)
        netlist = generate_power_grid(spec)
        assert netlist.num_nodes == spec.estimated_node_count()

    def test_single_layer_grid(self):
        spec = GridSpec(nx=6, ny=6, num_layers=1, num_blocks=2, pad_spacing=3, seed=2)
        netlist = generate_power_grid(spec)
        netlist.validate()
        # single layer: no vias
        from repro.grid.elements import ResistorKind

        assert all(r.kind != ResistorKind.VIA for r in netlist.resistors)

    def test_three_layer_grid_has_vias(self):
        spec = GridSpec(nx=16, ny=16, num_layers=3, coarsening=4, num_blocks=2, seed=2)
        netlist = generate_power_grid(spec)
        from repro.grid.elements import ResistorKind

        vias = [r for r in netlist.resistors if r.kind == ResistorKind.VIA]
        assert len(vias) == 4 * 4 + 1  # 16 level-1 stacks + 1 level-2 stack

    def test_same_seed_reproducible(self, small_grid_spec, small_netlist):
        again = generate_power_grid(small_grid_spec)
        assert again.stats() == small_netlist.stats()
        assert again.node_names == small_netlist.node_names

    def test_different_seed_changes_blocks(self, small_grid_spec, small_netlist):
        other_spec = GridSpec(
            nx=small_grid_spec.nx,
            ny=small_grid_spec.ny,
            num_layers=small_grid_spec.num_layers,
            num_blocks=small_grid_spec.num_blocks,
            pad_spacing=small_grid_spec.pad_spacing,
            seed=small_grid_spec.seed + 1,
        )
        other = generate_power_grid(other_spec)
        same_sources = [
            a.node == b.node
            for a, b in zip(small_netlist.current_sources, other.current_sources)
        ]
        assert not all(same_sources)

    def test_node_name_convention(self):
        assert node_name(0, 3, 5) == "n0_3_5"
