"""Tests for the Galerkin assembly, triple-product tensors and projections."""

import math

import numpy as np
import pytest
import scipy.sparse as sp

from repro.chaos.basis import PolynomialChaosBasis
from repro.chaos.galerkin import (
    GalerkinSystem,
    assemble_augmented_matrix,
    assemble_augmented_rhs,
    split_augmented_vector,
)
from repro.chaos.projection import (
    evaluate_expansion,
    lognormal_hermite_coefficients,
    project_function,
    project_samples,
)
from repro.chaos.triples import triple_product_matrix, triple_product_tensors
from repro.errors import AnalysisError, BasisError


@pytest.fixture(scope="module")
def basis2x2():
    return PolynomialChaosBasis("hermite", order=2, num_vars=2)


class TestTripleProductMatrices:
    def test_constant_index_is_identity(self, basis2x2):
        matrix = triple_product_matrix(basis2x2, 0)
        np.testing.assert_allclose(matrix.toarray(), np.eye(basis2x2.size))

    def test_matches_elementwise_definition(self, basis2x2):
        for m in (1, 2):
            matrix = triple_product_matrix(basis2x2, m).toarray()
            for i in range(basis2x2.size):
                for j in range(basis2x2.size):
                    assert matrix[i, j] == pytest.approx(basis2x2.triple_product(m, i, j))

    def test_symmetry(self, basis2x2):
        for m in range(basis2x2.size):
            matrix = triple_product_matrix(basis2x2, m).toarray()
            np.testing.assert_allclose(matrix, matrix.T)

    def test_first_order_structure_matches_paper(self):
        """For one Gaussian germ, T_1 couples orders differing by one.

        In the unnormalised basis this is the [[0,1,0],[1,0,2],[0,2,0]]
        pattern visible in the G~ matrix of Eq. (20); here it appears in its
        orthonormal scaling.
        """
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=1)
        matrix = triple_product_matrix(basis, 1).toarray()
        expected = np.array(
            [
                [0.0, 1.0, 0.0],
                [1.0, 0.0, math.sqrt(2.0)],
                [0.0, math.sqrt(2.0), 0.0],
            ]
        )
        np.testing.assert_allclose(matrix, expected, atol=1e-12)

    def test_tensors_helper(self, basis2x2):
        tensors = triple_product_tensors(basis2x2, [0, 1, 1, 2])
        assert set(tensors.keys()) == {0, 1, 2}

    def test_out_of_range_rejected(self, basis2x2):
        with pytest.raises(BasisError):
            triple_product_matrix(basis2x2, 99)


class TestAugmentedAssembly:
    def test_block_structure_mean_only(self, basis2x2):
        """With no variation the augmented matrix is block diagonal."""
        A0 = sp.csr_matrix(np.array([[2.0, -1.0], [-1.0, 2.0]]))
        augmented = assemble_augmented_matrix(basis2x2, {0: A0}).toarray()
        n = 2
        for i in range(basis2x2.size):
            for j in range(basis2x2.size):
                block = augmented[i * n : (i + 1) * n, j * n : (j + 1) * n]
                if i == j:
                    np.testing.assert_allclose(block, A0.toarray())
                else:
                    np.testing.assert_allclose(block, 0.0)

    def test_affine_blocks_match_triple_products(self, basis2x2):
        A0 = sp.csr_matrix(np.array([[2.0, -1.0], [-1.0, 2.0]]))
        A1 = sp.csr_matrix(np.array([[0.2, 0.0], [0.0, 0.1]]))
        augmented = assemble_augmented_matrix(basis2x2, {0: A0, 1: A1}).toarray()
        T1 = triple_product_matrix(basis2x2, 1).toarray()
        n = 2
        for i in range(basis2x2.size):
            for j in range(basis2x2.size):
                block = augmented[i * n : (i + 1) * n, j * n : (j + 1) * n]
                expected = (1.0 if i == j else 0.0) * A0.toarray() + T1[i, j] * A1.toarray()
                np.testing.assert_allclose(block, expected, atol=1e-12)

    def test_augmented_matrix_symmetric_for_symmetric_blocks(self, basis2x2):
        A0 = sp.csr_matrix(np.array([[2.0, -1.0], [-1.0, 2.0]]))
        A1 = 0.1 * A0
        augmented = assemble_augmented_matrix(basis2x2, {0: A0, 1: A1})
        asymmetry = abs(augmented - augmented.T).max()
        assert asymmetry < 1e-12

    def test_requires_coefficients(self, basis2x2):
        with pytest.raises(AnalysisError):
            assemble_augmented_matrix(basis2x2, {})

    def test_shape_consistency_enforced(self, basis2x2):
        A0 = sp.identity(2, format="csr")
        A1 = sp.identity(3, format="csr")
        with pytest.raises(AnalysisError):
            assemble_augmented_matrix(basis2x2, {0: A0, 1: A1})

    def test_rhs_stacking(self, basis2x2):
        rhs = assemble_augmented_rhs(
            basis2x2, {0: np.array([1.0, 2.0]), 2: np.array([3.0, 4.0])}, num_nodes=2
        )
        assert rhs.shape == (12,)
        np.testing.assert_allclose(rhs[0:2], [1.0, 2.0])
        np.testing.assert_allclose(rhs[4:6], [3.0, 4.0])
        np.testing.assert_allclose(rhs[2:4], 0.0)

    def test_rhs_rejects_bad_index(self, basis2x2):
        with pytest.raises(BasisError):
            assemble_augmented_rhs(basis2x2, {17: np.zeros(2)}, num_nodes=2)

    def test_rhs_rejects_bad_shape(self, basis2x2):
        with pytest.raises(AnalysisError):
            assemble_augmented_rhs(basis2x2, {0: np.zeros(3)}, num_nodes=2)

    def test_split_roundtrip(self, basis2x2):
        blocks = np.arange(12.0).reshape(basis2x2.size, 2)
        stacked = blocks.reshape(-1)
        np.testing.assert_allclose(split_augmented_vector(stacked, basis2x2.size, 2), blocks)

    def test_split_rejects_bad_length(self, basis2x2):
        with pytest.raises(AnalysisError):
            split_augmented_vector(np.zeros(7), basis2x2.size, 2)


class TestGalerkinSystemSolution:
    def test_scalar_affine_system_matches_analytic_expansion(self):
        """Solve (1 + a*xi) x = 1 by Galerkin and compare with the exact
        chaos coefficients obtained by projecting 1/(1 + a*xi) numerically."""
        basis = PolynomialChaosBasis("hermite", order=6, num_vars=1)
        a = 0.1
        A0 = sp.csr_matrix(np.array([[1.0]]))
        A1 = sp.csr_matrix(np.array([[a]]))
        augmented = assemble_augmented_matrix(basis, {0: A0, 1: A1}).toarray()
        rhs = assemble_augmented_rhs(basis, {0: np.array([1.0])}, num_nodes=1)
        solution = np.linalg.solve(augmented, rhs)

        exact = project_function(
            basis, lambda xi: 1.0 / (1.0 + a * xi[:, 0]), points_per_dim=40
        ).ravel()
        # The highest-order coefficient absorbs the truncation error, so only
        # the lower-order coefficients are compared tightly.
        np.testing.assert_allclose(solution[:5], exact[:5], atol=1e-6)
        # Mean and variance of the Galerkin solution match the exact response.
        assert solution[0] == pytest.approx(exact[0], rel=1e-7)
        assert np.sum(solution[1:] ** 2) == pytest.approx(np.sum(exact[1:] ** 2), rel=1e-5)

    def test_galerkin_system_wrapper(self, basis2x2):
        A0 = sp.csr_matrix(np.array([[2.0, -1.0], [-1.0, 2.0]]))
        C0 = sp.csr_matrix(np.eye(2) * 1e-12)
        system = GalerkinSystem(
            basis=basis2x2,
            conductance_coefficients={0: A0},
            capacitance_coefficients={0: C0},
            excitation_coefficients=lambda t: {0: np.array([t, 0.0])},
            num_nodes=2,
        )
        assert system.size == basis2x2.size * 2
        rhs = system.rhs(2.0)
        assert rhs[0] == pytest.approx(2.0)
        blocks = system.split(rhs)
        assert blocks.shape == (basis2x2.size, 2)


class TestProjection:
    def test_project_polynomial_is_exact(self):
        basis = PolynomialChaosBasis("hermite", order=3, num_vars=1)
        # f(xi) = xi^2 = He_2 + 1  ->  coefficients [1, 0, sqrt(2), 0]
        coefficients = project_function(basis, lambda x: x[:, 0] ** 2, points_per_dim=8)
        np.testing.assert_allclose(
            coefficients.ravel(), [1.0, 0.0, math.sqrt(2.0), 0.0], atol=1e-10
        )

    def test_project_vector_valued_function(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        coefficients = project_function(
            basis,
            lambda x: np.column_stack([x[:, 0], 2.0 * x[:, 1]]),
            points_per_dim=6,
        )
        assert coefficients.shape == (basis.size, 2)
        assert coefficients[basis.first_order_index(0), 0] == pytest.approx(1.0)
        assert coefficients[basis.first_order_index(1), 1] == pytest.approx(2.0)

    def test_regression_projection_recovers_coefficients(self, rng):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        true_coefficients = rng.normal(size=basis.size)
        samples = basis.sample_germ(rng, 4000)
        values = basis.evaluate(samples) @ true_coefficients
        estimated = project_samples(basis, samples, values)
        np.testing.assert_allclose(estimated, true_coefficients, atol=1e-8)

    def test_regression_requires_matching_lengths(self, rng):
        basis = PolynomialChaosBasis("hermite", order=1, num_vars=1)
        with pytest.raises(BasisError):
            project_samples(basis, np.zeros((5, 1)), np.zeros(4))

    def test_lognormal_coefficients_reconstruct_moments(self):
        """The analytic Hermite series of exp(s*xi) must reproduce its mean
        and variance: E = exp(s^2/2), Var = exp(s^2)(exp(s^2)-1)."""
        s = 0.6
        coefficients = lognormal_hermite_coefficients(s, max_degree=14)
        mean = coefficients[0]
        variance = np.sum(coefficients[1:] ** 2)
        assert mean == pytest.approx(math.exp(s * s / 2.0), rel=1e-12)
        assert variance == pytest.approx(math.exp(s * s) * (math.exp(s * s) - 1.0), rel=1e-6)

    def test_lognormal_mean_preserving_variant(self):
        s = 0.4
        coefficients = lognormal_hermite_coefficients(s, max_degree=10, mean_preserving=True)
        assert coefficients[0] == pytest.approx(1.0)

    def test_lognormal_matches_quadrature_projection(self):
        s = 0.5
        basis = PolynomialChaosBasis("hermite", order=5, num_vars=1)
        numeric = project_function(basis, lambda x: np.exp(s * x[:, 0]), points_per_dim=40).ravel()
        analytic = lognormal_hermite_coefficients(s, max_degree=5)
        np.testing.assert_allclose(numeric, analytic, atol=1e-8)

    def test_evaluate_expansion_roundtrip(self, rng):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        coefficients = rng.normal(size=(basis.size, 3))
        xi = rng.normal(size=(10, 2))
        values = evaluate_expansion(basis, coefficients, xi)
        assert values.shape == (10, 3)
        np.testing.assert_allclose(values, basis.evaluate(xi) @ coefficients)

    def test_evaluate_expansion_rejects_bad_shape(self):
        basis = PolynomialChaosBasis("hermite", order=1, num_vars=1)
        with pytest.raises(BasisError):
            evaluate_expansion(basis, np.zeros(5), np.zeros((3, 1)))

    def test_lognormal_rejects_bad_arguments(self):
        with pytest.raises(BasisError):
            lognormal_hermite_coefficients(-0.1, 3)
        with pytest.raises(BasisError):
            lognormal_hermite_coefficients(0.1, -1)
