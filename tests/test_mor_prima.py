"""Direct unit tests of the PRIMA projection's numerical properties.

The CLI smoke path (``tests/test_mor_cli.py``) only checks that reduction
runs end to end; these tests verify the mathematics: orthonormality of the
projection basis, block moment matching of the reduced transfer function,
and passivity preservation (symmetric positive semi-definite reduced
matrices) on RC grids.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mor.prima import prima_reduce


def block_moments(conductance, capacitance, input_matrix, count: int) -> list:
    """Dense block moments ``m_j = B^T (G^{-1} C)^j G^{-1} B`` of an RC system."""
    conductance = np.asarray(
        conductance.toarray() if sp.issparse(conductance) else conductance, dtype=float
    )
    capacitance = np.asarray(
        capacitance.toarray() if sp.issparse(capacitance) else capacitance, dtype=float
    )
    state = np.linalg.solve(conductance, input_matrix)
    moments = []
    for _ in range(count):
        moments.append(input_matrix.T @ state)
        state = np.linalg.solve(conductance, capacitance @ state)
    return moments


@pytest.fixture(scope="module")
def rc_system(small_stamped):
    """The small grid's G and C with three well-separated port nodes."""
    ports = np.array([0, small_stamped.num_nodes // 2, small_stamped.num_nodes - 1])
    return small_stamped.conductance, small_stamped.capacitance, ports


class TestPrimaProjection:
    def test_basis_is_orthonormal(self, rc_system):
        conductance, capacitance, ports = rc_system
        model = prima_reduce(conductance, capacitance, ports, num_moments=3)
        projection = model.projection
        gram = projection.T @ projection
        assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-10)

    @pytest.mark.parametrize("num_moments", [1, 2, 3])
    def test_matches_block_moments(self, rc_system, num_moments):
        conductance, capacitance, ports = rc_system
        n = conductance.shape[0]
        input_matrix = np.zeros((n, ports.size))
        input_matrix[ports, np.arange(ports.size)] = 1.0

        model = prima_reduce(conductance, capacitance, ports, num_moments=num_moments)
        full = block_moments(conductance, capacitance, input_matrix, num_moments)
        reduced = block_moments(model.conductance, model.capacitance, model.input_map, num_moments)
        for full_moment, reduced_moment in zip(full, reduced):
            scale = max(np.max(np.abs(full_moment)), 1e-30)
            assert np.max(np.abs(full_moment - reduced_moment)) / scale < 1e-8

    def test_congruence_preserves_symmetry_and_passivity(self, rc_system):
        conductance, capacitance, ports = rc_system
        model = prima_reduce(conductance, capacitance, ports, num_moments=2)
        for reduced in (model.conductance, model.capacitance):
            assert np.allclose(reduced, reduced.T, atol=1e-12)
            eigenvalues = np.linalg.eigvalsh(reduced)
            assert eigenvalues.min() >= -1e-10

    def test_reduced_order_bounded_by_moments_times_ports(self, rc_system):
        conductance, capacitance, ports = rc_system
        model = prima_reduce(conductance, capacitance, ports, num_moments=2)
        assert 0 < model.order <= 2 * ports.size
        assert model.num_ports == ports.size

    def test_deflation_drops_duplicate_port_columns(self, rc_system):
        conductance, capacitance, ports = rc_system
        n = conductance.shape[0]
        duplicated = np.zeros((n, 2))
        duplicated[ports[0], 0] = 1.0
        duplicated[ports[0], 1] = 1.0  # linearly dependent with column 0
        model = prima_reduce(conductance, capacitance, duplicated, num_moments=1)
        assert model.order == 1

    def test_rank_deficient_block_krylov_deflates(self, rc_system):
        """A rank-deficient input block deflates to fewer basis columns."""
        conductance, capacitance, ports = rc_system
        n = conductance.shape[0]
        block = np.zeros((n, 4))
        block[ports, np.arange(ports.size)] = 1.0
        # Fourth column is a linear combination of the first three: the block
        # Krylov space has at most 3 directions per moment.
        block[:, 3] = block[:, 0] - 2.0 * block[:, 1] + 0.5 * block[:, 2]
        model = prima_reduce(conductance, capacitance, block, num_moments=2)
        full_rank = prima_reduce(conductance, capacitance, ports, num_moments=2)
        assert model.order <= full_rank.order
        assert model.order <= 2 * 3
        gram = model.projection.T @ model.projection
        assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-10)

    def test_single_port_block(self, rc_system):
        """One port gives exactly one basis column per matched moment."""
        conductance, capacitance, _ = rc_system
        model = prima_reduce(conductance, capacitance, np.array([0]), num_moments=3)
        assert model.num_ports == 1
        assert 0 < model.order <= 3
        full = block_moments(conductance, capacitance, model.projection @ model.input_map, 1)
        # DC moment of a single port must match the full model exactly.
        n = conductance.shape[0]
        input_matrix = np.zeros((n, 1))
        input_matrix[0, 0] = 1.0
        reference = block_moments(conductance, capacitance, input_matrix, 1)
        reduced = block_moments(model.conductance, model.capacitance, model.input_map, 1)
        assert np.allclose(reduced[0], reference[0], rtol=1e-8)
        del full

    def test_order_at_least_block_size_falls_back_to_exact(self):
        """``q * m >= n`` returns the exact identity-projection model."""
        rng = np.random.default_rng(7)
        n = 6
        raw = rng.standard_normal((n, n))
        conductance = sp.csr_matrix(raw @ raw.T + n * np.eye(n))
        capacitance = sp.csr_matrix(np.diag(rng.uniform(0.5, 1.5, size=n)))
        ports = np.arange(3)
        model = prima_reduce(conductance, capacitance, ports, num_moments=2)
        assert model.order == n
        assert np.allclose(model.projection, np.eye(n))
        assert np.allclose(model.conductance, conductance.toarray())
        assert np.allclose(model.capacitance, capacitance.toarray())
        # expand() is an exact no-op lift on the identity projection.
        states = rng.standard_normal((4, n))
        assert np.allclose(model.expand(states), states)

    def test_deflation_is_scale_invariant(self):
        """Tiny-magnitude higher Krylov blocks still contribute directions.

        Power grids have ``C``-over-``G`` scales around 1e-13, so the raw
        second Krylov block has column norms near 1e-12; an absolute
        deflation threshold would silently drop every higher moment.
        """
        rng = np.random.default_rng(3)
        n = 40
        laplacian = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n)).tocsr()
        conductance = laplacian * 3.0 + sp.identity(n) * 0.5
        capacitance = sp.diags(rng.uniform(0.5, 1.5, size=n) * 1e-13).tocsr()
        one_moment = prima_reduce(conductance, capacitance, np.array([0, n - 1]), num_moments=1)
        two_moments = prima_reduce(conductance, capacitance, np.array([0, n - 1]), num_moments=2)
        assert two_moments.order > one_moment.order

    def test_dc_port_voltages_match_full_model(self, rc_system):
        """m0 matching implies exact DC port responses of the reduced model."""
        conductance, capacitance, ports = rc_system
        model = prima_reduce(conductance, capacitance, ports, num_moments=2)
        injected = np.array([1.0e-3, -0.5e-3, 2.0e-3])

        n = conductance.shape[0]
        input_matrix = np.zeros((n, ports.size))
        input_matrix[ports, np.arange(ports.size)] = 1.0
        full_voltages = np.zeros(n)
        full_voltages[:] = sp.linalg.spsolve(sp.csc_matrix(conductance), input_matrix @ injected)
        reduced_state = np.linalg.solve(model.conductance, model.input_map @ injected)
        lifted = model.expand(reduced_state)
        assert np.allclose(lifted[ports], full_voltages[ports], rtol=1e-8, atol=1e-12)
