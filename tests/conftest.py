"""Shared fixtures: small grids, stamped systems and stochastic systems.

Heavy objects are session-scoped so the whole suite builds them once; tests
must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import GridSpec, PowerGridNetlist, generate_power_grid, stamp
from repro.opera import OperaConfig
from repro.sim import TransientConfig
from repro.variation import (
    LeakageVariationSpec,
    RegionPartition,
    VariationSpec,
    build_leakage_system,
    build_stochastic_system,
)


@pytest.fixture(scope="session")
def small_grid_spec() -> GridSpec:
    """A tiny but fully featured grid spec (two layers, pads, blocks)."""
    return GridSpec(nx=8, ny=8, num_layers=2, num_blocks=4, pad_spacing=2, seed=7)


@pytest.fixture(scope="session")
def small_netlist(small_grid_spec) -> PowerGridNetlist:
    return generate_power_grid(small_grid_spec)


@pytest.fixture(scope="session")
def small_stamped(small_netlist):
    return stamp(small_netlist)


@pytest.fixture(scope="session")
def small_system(small_stamped):
    """Stochastic system with the paper's W/T/Leff variation on the small grid."""
    return build_stochastic_system(small_stamped, VariationSpec.paper_defaults())


@pytest.fixture(scope="session")
def small_leakage_system(small_stamped, small_grid_spec):
    """Section-5.1 special case: two-region lognormal leakage on the small grid."""
    partition = RegionPartition(
        nx=small_grid_spec.nx, ny=small_grid_spec.ny, region_rows=2, region_cols=1
    )
    return build_leakage_system(small_stamped, partition, LeakageVariationSpec(vth_sigma=0.03))


@pytest.fixture(scope="session")
def fast_transient() -> TransientConfig:
    """A short transient (10 steps) used across integration tests."""
    return TransientConfig(t_stop=2.0e-9, dt=0.2e-9)


@pytest.fixture(scope="session")
def fast_opera_config(fast_transient) -> OperaConfig:
    return OperaConfig(transient=fast_transient, order=2)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def manual_netlist() -> PowerGridNetlist:
    """A hand-built 4-node ladder grid with known topology.

    Layout: pad -- n1 -- n2 -- n3, with a current source and capacitor at n3
    and a capacitor at n2.  Small enough that expected matrices can be
    written down by hand in the tests.
    """
    netlist = PowerGridNetlist(name="manual-ladder")
    netlist.add_pad("n1", resistance=0.1, vdd=1.2)
    netlist.add_resistor("n1", "n2", 1.0)
    netlist.add_resistor("n2", "n3", 2.0)
    netlist.add_capacitor("n2", "0", 1.0e-12)
    netlist.add_capacitor("n3", "0", 2.0e-12, is_gate_load=True)
    netlist.add_current_source("n3", 0.01)
    netlist.add_current_source("n3", 0.001, is_leakage=True)
    return netlist
