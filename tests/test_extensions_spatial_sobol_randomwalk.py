"""Tests for the extension modules: spatial intra-die variation, Sobol'
variance decomposition, and the random-walk DC solver."""

import numpy as np
import pytest

from repro.analysis.sobol import sobol_indices, transient_total_indices
from repro.chaos.basis import PolynomialChaosBasis
from repro.chaos.response import StochasticField
from repro.errors import AnalysisError, SolverError, VariationModelError
from repro.grid import GridSpec, generate_power_grid, stamp
from repro.montecarlo import MonteCarloConfig, run_monte_carlo_transient
from repro.opera import OperaConfig, run_opera_transient
from repro.sim import TransientConfig
from repro.sim.dc import dc_operating_point
from repro.sim.randomwalk import RandomWalkSolver
from repro.variation import (
    RegionPartition,
    SpatialVariationSpec,
    VariationSpec,
    build_spatial_stochastic_system,
    build_stochastic_system,
)


# ---------------------------------------------------------------------------
# Spatial intra-die variation
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def spatial_setup():
    spec = GridSpec(nx=10, ny=10, num_layers=2, num_blocks=4, pad_spacing=2, seed=3)
    netlist = generate_power_grid(spec)
    stamped = stamp(netlist)
    partition = RegionPartition(nx=10, ny=10, region_rows=2, region_cols=2)
    return spec, netlist, stamped, partition


class TestSpatialVariationSpec:
    def test_defaults_valid(self):
        spec = SpatialVariationSpec()
        assert spec.sigma_g > 0
        assert spec.correlation_length > 0

    def test_validation(self):
        with pytest.raises(VariationModelError):
            SpatialVariationSpec(sigma_w=0.5)
        with pytest.raises(VariationModelError):
            SpatialVariationSpec(correlation_length=0.0)
        with pytest.raises(VariationModelError):
            SpatialVariationSpec(energy_fraction=0.0)
        with pytest.raises(VariationModelError):
            SpatialVariationSpec(node_pitch=-1.0)
        with pytest.raises(VariationModelError):
            SpatialVariationSpec(max_components=0)


class TestBuildSpatialSystem:
    def test_germ_count_bounded_by_regions(self, spatial_setup):
        _, netlist, stamped, partition = spatial_setup
        system = build_spatial_stochastic_system(
            netlist, partition, SpatialVariationSpec(), stamped=stamped
        )
        # at most one germ per region per field (two fields: G and L)
        assert 2 <= system.num_variables <= 2 * partition.num_regions
        assert all(name.startswith("xi_") for name in system.variable_names())

    def test_max_components_cap(self, spatial_setup):
        _, netlist, stamped, partition = spatial_setup
        system = build_spatial_stochastic_system(
            netlist, partition, SpatialVariationSpec(max_components=1), stamped=stamped
        )
        assert system.num_variables == 2  # one G germ + one L germ

    def test_single_field_selection(self, spatial_setup):
        _, netlist, stamped, partition = spatial_setup
        system = build_spatial_stochastic_system(
            netlist,
            partition,
            SpatialVariationSpec(vary_channel_length=False, max_components=2),
            stamped=stamped,
        )
        assert all(name.startswith("xi_G") for name in system.variable_names())
        assert system.c_sensitivities == {}

    def test_no_fields_rejected(self, spatial_setup):
        _, netlist, stamped, partition = spatial_setup
        with pytest.raises(VariationModelError):
            build_spatial_stochastic_system(
                netlist,
                partition,
                SpatialVariationSpec(vary_conductance=False, vary_channel_length=False),
                stamped=stamped,
            )

    def test_region_sensitivities_cover_whole_conductance(self, spatial_setup):
        """With full correlation the per-region pieces sum to the inter-die model."""
        _, netlist, stamped, partition = spatial_setup
        spec = SpatialVariationSpec(
            correlation_length=1.0e9,  # effectively fully correlated die
            energy_fraction=1.0 - 1e-15,
            vary_channel_length=False,
        )
        system = build_spatial_stochastic_system(netlist, partition, spec, stamped=stamped)
        # One dominant germ should carry (almost) the entire inter-die sensitivity.
        total = sum(abs(m).sum() for m in system.g_sensitivities.values())
        inter_die = build_stochastic_system(
            stamped, VariationSpec(pads_vary=True, vary_capacitance=False, vary_currents=False)
        )
        expected = abs(list(inter_die.g_sensitivities.values())[0]).sum()
        assert total == pytest.approx(expected, rel=0.02)

    def test_long_correlation_recovers_inter_die_sigma(self, spatial_setup):
        """With an effectively infinite correlation length the spatial model
        must reproduce the inter-die (single-germ) response sigma."""
        _, netlist, stamped, partition = spatial_setup
        transient = TransientConfig(t_stop=1.0e-9, dt=0.2e-9)
        spatial = build_spatial_stochastic_system(
            netlist,
            partition,
            SpatialVariationSpec(correlation_length=1.0e9),
            stamped=stamped,
        )
        inter = build_stochastic_system(stamped, VariationSpec.paper_defaults())
        spatial_result = run_opera_transient(spatial, OperaConfig(transient=transient, order=2))
        inter_result = run_opera_transient(inter, OperaConfig(transient=transient, order=2))
        hot = inter_result.std_drop > 0.25 * inter_result.std_drop.max()
        np.testing.assert_allclose(
            spatial_result.std_drop[hot], inter_result.std_drop[hot], rtol=0.05
        )

    def test_short_correlation_reduces_sigma(self, spatial_setup):
        """Uncorrelated local variation partially averages out, so the response
        sigma must be smaller than in the fully correlated (inter-die) case."""
        _, netlist, stamped, partition = spatial_setup
        transient = TransientConfig(t_stop=1.0e-9, dt=0.2e-9)
        correlated = build_spatial_stochastic_system(
            netlist, partition, SpatialVariationSpec(correlation_length=1.0e9), stamped=stamped
        )
        local = build_spatial_stochastic_system(
            netlist, partition, SpatialVariationSpec(correlation_length=1.0), stamped=stamped
        )
        sigma_correlated = run_opera_transient(
            correlated, OperaConfig(transient=transient, order=2)
        ).std_drop.max()
        sigma_local = run_opera_transient(
            local, OperaConfig(transient=transient, order=2)
        ).std_drop.max()
        assert sigma_local < 0.9 * sigma_correlated

    def test_spatial_opera_matches_monte_carlo(self, spatial_setup):
        _, netlist, stamped, partition = spatial_setup
        transient = TransientConfig(t_stop=1.0e-9, dt=0.2e-9)
        system = build_spatial_stochastic_system(
            netlist,
            partition,
            SpatialVariationSpec(correlation_length=100.0, max_components=2),
            stamped=stamped,
        )
        opera = run_opera_transient(system, OperaConfig(transient=transient, order=2))
        mc = run_monte_carlo_transient(
            system,
            MonteCarloConfig(transient=transient, num_samples=80, seed=3, antithetic=True),
        )
        from repro.analysis import compare_to_monte_carlo

        metrics = compare_to_monte_carlo(opera, mc)
        assert metrics.average_mean_error_percent < 0.5
        assert metrics.average_sigma_error_percent < 25.0

    def test_requires_generator_style_names(self):
        from repro.grid.netlist import PowerGridNetlist

        netlist = PowerGridNetlist()
        netlist.add_pad("top", 0.1, 1.0)
        netlist.add_resistor("top", "other", 1.0)
        netlist.add_current_source("other", 1e-3)
        partition = RegionPartition(nx=2, ny=2)
        with pytest.raises(VariationModelError):
            build_spatial_stochastic_system(netlist, partition)


# ---------------------------------------------------------------------------
# Sobol' indices
# ---------------------------------------------------------------------------
class TestSobolIndices:
    @pytest.fixture(scope="class")
    def basis(self):
        return PolynomialChaosBasis("hermite", order=2, num_vars=2)

    def test_pure_single_variable_field(self, basis):
        """A response depending only on germ 0 has S_0 = 1, S_1 = 0."""
        coefficients = np.zeros((basis.size, 1))
        coefficients[0] = 1.0
        coefficients[basis.first_order_index(0)] = 0.3
        coefficients[basis.index_of((2, 0))] = 0.1
        indices = sobol_indices(StochasticField(basis, coefficients))
        assert indices.first_order[0, 0] == pytest.approx(1.0)
        assert indices.first_order[1, 0] == pytest.approx(0.0)
        assert indices.total_effect[0, 0] == pytest.approx(1.0)
        assert indices.interaction[0] == pytest.approx(0.0)

    def test_interaction_term_counted_in_both_totals(self, basis):
        coefficients = np.zeros((basis.size, 1))
        coefficients[basis.index_of((1, 1))] = 0.2  # pure interaction
        indices = sobol_indices(StochasticField(basis, coefficients))
        assert indices.first_order[0, 0] == pytest.approx(0.0)
        assert indices.total_effect[0, 0] == pytest.approx(1.0)
        assert indices.total_effect[1, 0] == pytest.approx(1.0)
        assert indices.interaction[0] == pytest.approx(1.0)

    def test_partition_of_variance(self, basis, rng):
        """First-order indices plus the interaction fraction must equal one."""
        coefficients = rng.normal(size=(basis.size, 4))
        indices = sobol_indices(StochasticField(basis, coefficients))
        total = indices.first_order.sum(axis=0) + indices.interaction
        np.testing.assert_allclose(total, 1.0, atol=1e-12)

    def test_zero_variance_entries_get_zero_indices(self, basis):
        coefficients = np.zeros((basis.size, 2))
        coefficients[0] = [1.0, 1.0]
        coefficients[1, 1] = 0.5
        indices = sobol_indices(StochasticField(basis, coefficients))
        assert indices.first_order[0, 0] == 0.0
        assert indices.total_effect[1, 0] == 0.0

    def test_variable_names_validated(self, basis):
        field = StochasticField(basis, np.zeros((basis.size, 1)))
        with pytest.raises(AnalysisError):
            sobol_indices(field, variable_names=["only-one"])

    def test_ranked_ordering(self, basis):
        coefficients = np.zeros((basis.size, 1))
        coefficients[basis.first_order_index(0)] = 0.1
        coefficients[basis.first_order_index(1)] = 0.4
        indices = sobol_indices(StochasticField(basis, coefficients), ["a", "b"])
        ranked = indices.ranked(0)
        assert ranked[0][0] == "b"
        assert ranked[0][1] > ranked[1][1]

    def test_transient_wrapper_names_and_sum(self, small_system, fast_opera_config):
        result = run_opera_transient(small_system, fast_opera_config)
        worst = result.worst_node()
        indices = transient_total_indices(
            result, worst, variable_names=small_system.variable_names()
        )
        assert set(indices.keys()) == set(small_system.variable_names())
        # total-effect indices each lie in [0, 1] and jointly cover the variance
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in indices.values())
        assert sum(indices.values()) >= 0.99

    def test_transient_wrapper_requires_coefficients(self, small_system, fast_transient):
        config = OperaConfig(transient=fast_transient, order=2, store_coefficients=False)
        result = run_opera_transient(small_system, config)
        with pytest.raises(AnalysisError):
            transient_total_indices(result, 0)


# ---------------------------------------------------------------------------
# Random-walk DC solver
# ---------------------------------------------------------------------------
class TestRandomWalkSolver:
    @pytest.fixture(scope="class")
    def walk_setup(self):
        spec = GridSpec(nx=8, ny=8, num_layers=2, num_blocks=3, pad_spacing=2, seed=5)
        netlist = generate_power_grid(spec)
        stamped = stamp(netlist)
        reference = dc_operating_point(stamped, t=0.3e-9)
        return stamped, reference

    def test_estimate_matches_direct_solution(self, walk_setup):
        stamped, reference = walk_setup
        solver = RandomWalkSolver(stamped, t=0.3e-9, seed=7)
        node = reference.worst_node()
        estimate = solver.estimate(node, num_walks=2000)
        assert estimate.voltage == pytest.approx(
            reference.voltages[node], abs=4 * estimate.standard_error + 1e-4
        )

    def test_confidence_interval_contains_truth_most_of_the_time(self, walk_setup):
        stamped, reference = walk_setup
        solver = RandomWalkSolver(stamped, t=0.3e-9, seed=11)
        hits = 0
        nodes = np.linspace(0, stamped.num_nodes - 1, 6, dtype=int)
        for node in nodes:
            estimate = solver.estimate(int(node), num_walks=600)
            low, high = estimate.confidence_interval_95
            if low - 1e-4 <= reference.voltages[node] <= high + 1e-4:
                hits += 1
        assert hits >= 4  # 95% CI, 6 trials: at least 4 hits is a safe bound

    def test_standard_error_shrinks_with_walks(self, walk_setup):
        stamped, reference = walk_setup
        node = reference.worst_node()
        few = RandomWalkSolver(stamped, t=0.3e-9, seed=3).estimate(node, num_walks=100)
        many = RandomWalkSolver(stamped, t=0.3e-9, seed=3).estimate(node, num_walks=1600)
        assert many.standard_error < few.standard_error

    def test_node_under_pad_needs_short_walks(self, walk_setup):
        stamped, _ = walk_setup
        solver = RandomWalkSolver(stamped, t=0.3e-9, seed=1)
        pad_node = int(stamped.pad_nodes[0])
        estimate = solver.estimate(pad_node, num_walks=300)
        far_node = int(np.argmax(stamped.drain_current_vector(0.3e-9)))
        far_estimate = solver.estimate(far_node, num_walks=300)
        assert estimate.average_walk_length < far_estimate.average_walk_length

    def test_reproducible_with_seed(self, walk_setup):
        stamped, _ = walk_setup
        a = RandomWalkSolver(stamped, seed=42).estimate(0, num_walks=50)
        b = RandomWalkSolver(stamped, seed=42).estimate(0, num_walks=50)
        assert a.voltage == b.voltage

    def test_validation(self, walk_setup):
        stamped, _ = walk_setup
        solver = RandomWalkSolver(stamped, seed=0)
        with pytest.raises(SolverError):
            solver.estimate(-1)
        with pytest.raises(SolverError):
            solver.estimate(0, num_walks=0)
