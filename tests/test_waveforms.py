"""Tests for the time-domain waveform classes."""

import numpy as np
import pytest

from repro.waveforms import (
    ClockedActivity,
    Constant,
    PeriodicPulse,
    PiecewiseLinear,
    Scaled,
    Summed,
    as_waveform,
)


class TestConstant:
    def test_scalar_evaluation(self):
        assert Constant(3.5)(0.0) == 3.5

    def test_array_evaluation(self):
        values = Constant(2.0)(np.array([0.0, 1.0, 2.0]))
        assert np.allclose(values, 2.0)
        assert values.shape == (3,)

    def test_negative_value_allowed(self):
        assert Constant(-1.0)(5.0) == -1.0


class TestAsWaveform:
    def test_wraps_number(self):
        waveform = as_waveform(0.25)
        assert isinstance(waveform, Constant)
        assert waveform(1.0) == 0.25

    def test_passes_through_waveform(self):
        waveform = Constant(1.0)
        assert as_waveform(waveform) is waveform


class TestPiecewiseLinear:
    def test_interpolates_between_points(self):
        pwl = PiecewiseLinear([0.0, 1.0, 2.0], [0.0, 10.0, 0.0])
        assert pwl(0.5) == pytest.approx(5.0)
        assert pwl(1.5) == pytest.approx(5.0)

    def test_clamps_outside_range(self):
        pwl = PiecewiseLinear([1.0, 2.0], [3.0, 7.0])
        assert pwl(0.0) == pytest.approx(3.0)
        assert pwl(5.0) == pytest.approx(7.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0, 1.0], [1.0])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0, 0.0], [1.0, 2.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0], [1.0])

    def test_vectorized(self):
        pwl = PiecewiseLinear([0.0, 1.0], [0.0, 1.0])
        np.testing.assert_allclose(pwl(np.array([0.0, 0.25, 1.0])), [0.0, 0.25, 1.0])


class TestPeriodicPulse:
    def make(self, **overrides):
        defaults = dict(low=0.0, high=1.0, delay=0.0, rise=0.1, fall=0.1, width=0.3, period=1.0)
        defaults.update(overrides)
        return PeriodicPulse(**defaults)

    def test_levels_within_one_period(self):
        pulse = self.make()
        assert pulse(0.05) == pytest.approx(0.5)
        assert pulse(0.2) == pytest.approx(1.0)
        assert pulse(0.45) == pytest.approx(0.5)
        assert pulse(0.9) == pytest.approx(0.0)

    def test_periodicity(self):
        pulse = self.make()
        t = np.linspace(0, 0.99, 37)
        np.testing.assert_allclose(pulse(t), pulse(t + 3.0), atol=1e-12)

    def test_before_delay_is_low(self):
        pulse = self.make(delay=0.5)
        assert pulse(0.25) == pytest.approx(0.0)

    def test_rejects_overfull_period(self):
        with pytest.raises(ValueError):
            self.make(width=0.9, rise=0.1, fall=0.1)

    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            self.make(period=0.0)

    def test_zero_rise_is_step(self):
        pulse = self.make(rise=0.0)
        assert pulse(0.0) == pytest.approx(1.0)


class TestClockedActivity:
    def test_peak_scaled_by_activity(self):
        waveform = ClockedActivity(
            period=1.0, peak=2.0, activity=(1.0, 0.5), rise_fraction=0.25, duty_fraction=0.5
        )
        assert waveform(0.25) == pytest.approx(2.0)
        assert waveform(1.25) == pytest.approx(1.0)

    def test_zero_before_time_origin(self):
        waveform = ClockedActivity(period=1.0, peak=1.0, activity=(1.0,))
        assert waveform(-0.5) == pytest.approx(0.0)

    def test_zero_after_duty_window(self):
        waveform = ClockedActivity(
            period=1.0, peak=1.0, activity=(1.0,), rise_fraction=0.2, duty_fraction=0.6
        )
        assert waveform(0.8) == pytest.approx(0.0)

    def test_activity_wraps_around(self):
        waveform = ClockedActivity(period=1.0, peak=1.0, activity=(1.0, 0.25))
        assert waveform(2.0 + 0.2) == pytest.approx(waveform(0.2))

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            ClockedActivity(
                period=1.0, peak=1.0, activity=(1.0,), rise_fraction=0.7, duty_fraction=0.5
            )

    def test_rejects_empty_activity(self):
        with pytest.raises(ValueError):
            ClockedActivity(period=1.0, peak=1.0, activity=())

    def test_max_abs_finds_peak(self):
        waveform = ClockedActivity(period=1.0, peak=3.0, activity=(0.5, 1.0, 0.2))
        assert waveform.max_abs(t_end=3.0) == pytest.approx(3.0, rel=1e-2)


class TestComposition:
    def test_scaling_operator(self):
        doubled = 2.0 * Constant(1.5)
        assert isinstance(doubled, Scaled)
        assert doubled(0.0) == pytest.approx(3.0)

    def test_sum_operator(self):
        total = Constant(1.0) + Constant(2.0)
        assert isinstance(total, Summed)
        assert total(0.0) == pytest.approx(3.0)

    def test_sum_vectorized(self):
        total = Constant(1.0) + PiecewiseLinear([0.0, 1.0], [0.0, 1.0])
        np.testing.assert_allclose(total(np.array([0.0, 1.0])), [1.0, 2.0])

    def test_scaled_preserves_shape(self):
        scaled = Constant(1.0).scaled(0.5)
        values = scaled(np.zeros(4))
        assert values.shape == (4,)
