"""Tests for the Monte Carlo baseline: sampler, statistics, engines."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.montecarlo.engine import (
    MonteCarloConfig,
    run_monte_carlo_dc,
    run_monte_carlo_transient,
)
from repro.montecarlo.sampler import GermSampler
from repro.montecarlo.statistics import RunningMoments


class TestRunningMoments:
    def test_matches_numpy_statistics(self, rng):
        samples = rng.normal(size=(40, 5, 3))
        moments = RunningMoments()
        for sample in samples:
            moments.update(sample)
        np.testing.assert_allclose(moments.mean, samples.mean(axis=0), atol=1e-12)
        np.testing.assert_allclose(
            moments.variance(ddof=1), samples.var(axis=0, ddof=1), atol=1e-12
        )
        np.testing.assert_allclose(moments.std(), samples.std(axis=0, ddof=1), atol=1e-12)

    def test_population_variance_option(self, rng):
        samples = rng.normal(size=(25, 4))
        moments = RunningMoments()
        for sample in samples:
            moments.update(sample)
        np.testing.assert_allclose(
            moments.variance(ddof=0), samples.var(axis=0, ddof=0), atol=1e-12
        )

    def test_count_tracked(self):
        moments = RunningMoments()
        for _ in range(7):
            moments.update(np.zeros(2))
        assert moments.count == 7

    def test_preallocated_shape_enforced(self):
        moments = RunningMoments(shape=(3,))
        with pytest.raises(AnalysisError):
            moments.update(np.zeros(4))

    def test_empty_accumulator_raises(self):
        moments = RunningMoments()
        with pytest.raises(AnalysisError):
            _ = moments.mean
        with pytest.raises(AnalysisError):
            moments.variance()

    def test_single_sample_variance_is_zero(self):
        moments = RunningMoments()
        moments.update(np.array([1.0, 2.0]))
        np.testing.assert_allclose(moments.variance(ddof=1), 0.0)

    def test_numerical_stability_large_offset(self):
        """Welford should not lose precision with a large common offset."""
        moments = RunningMoments()
        offset = 1e9
        values = offset + np.array([0.0, 1.0, 2.0, 3.0])
        for value in values:
            moments.update(np.array([value]))
        assert moments.variance(ddof=1)[0] == pytest.approx(np.var(values, ddof=1), rel=1e-9)


class TestGermSampler:
    def test_shape_and_distribution(self, small_system):
        sampler = GermSampler(small_system, seed=1)
        samples = sampler.sample(50000)
        assert samples.shape == (50000, small_system.num_variables)
        assert abs(samples.mean()) < 0.02
        assert abs(samples.std() - 1.0) < 0.02

    def test_reproducible_with_seed(self, small_system):
        a = GermSampler(small_system, seed=42).sample(10)
        b = GermSampler(small_system, seed=42).sample(10)
        np.testing.assert_array_equal(a, b)

    def test_antithetic_pairs_sum_to_zero(self, small_system):
        sampler = GermSampler(small_system, seed=3)
        samples = sampler.sample_antithetic(10)
        np.testing.assert_allclose(samples[:5] + samples[5:], 0.0, atol=1e-15)

    def test_antithetic_odd_count(self, small_system):
        samples = GermSampler(small_system, seed=3).sample_antithetic(7)
        assert samples.shape[0] == 7

    def test_supports_antithetic_for_gaussian_germs(self, small_system):
        assert GermSampler(small_system).supports_antithetic

    def test_rejects_zero_samples(self, small_system):
        with pytest.raises(AnalysisError):
            GermSampler(small_system).sample(0)


class TestMonteCarloDC:
    def test_mean_close_to_nominal(self, small_system, small_stamped):
        result = run_monte_carlo_dc(small_system, num_samples=400, t=0.3e-9, seed=2)
        from repro.sim.dc import dc_operating_point

        nominal = dc_operating_point(small_stamped, t=0.3e-9)
        worst = np.max(nominal.drops)
        assert np.max(np.abs(result.mean_voltage - nominal.voltages)) < 0.05 * worst

    def test_variance_positive_for_loaded_nodes(self, small_system):
        result = run_monte_carlo_dc(small_system, num_samples=200, t=0.3e-9)
        drops = result.mean_drop
        hot = drops > 0.5 * drops.max()
        assert np.all(result.std_drop[hot] > 0)

    def test_requires_two_samples(self, small_system):
        with pytest.raises(AnalysisError):
            run_monte_carlo_dc(small_system, num_samples=1)

    def test_wall_time_recorded(self, small_system):
        result = run_monte_carlo_dc(small_system, num_samples=10)
        assert result.wall_time > 0


class TestMonteCarloTransient:
    @pytest.fixture(scope="class")
    def mc_result(self, small_system, fast_transient):
        config = MonteCarloConfig(
            transient=fast_transient, num_samples=40, seed=5, store_nodes=(0, 5)
        )
        return run_monte_carlo_transient(small_system, config)

    def test_shapes(self, mc_result, small_system, fast_transient):
        assert mc_result.num_times == fast_transient.num_steps + 1
        assert mc_result.num_nodes == small_system.num_nodes
        assert mc_result.num_samples == 40

    def test_std_nonnegative(self, mc_result):
        assert np.all(mc_result.std_drop >= 0)

    def test_stored_node_waveforms(self, mc_result, fast_transient):
        samples = mc_result.drop_samples(5)
        assert samples.shape == (40, fast_transient.num_steps + 1)
        single_time = mc_result.drop_samples(5, time_index=3)
        assert single_time.shape == (40,)

    def test_unstored_node_rejected(self, mc_result):
        with pytest.raises(AnalysisError):
            mc_result.drop_samples(7)

    def test_stored_samples_consistent_with_statistics(self, mc_result):
        """The recorded waveforms of a node must reproduce its running stats."""
        samples = mc_result.drop_samples(5)
        np.testing.assert_allclose(samples.mean(axis=0), mc_result.mean_drop[:, 5], atol=1e-12)
        np.testing.assert_allclose(
            samples.std(axis=0, ddof=1), mc_result.std_drop[:, 5], atol=1e-12
        )

    def test_antithetic_reduces_mean_error(self, small_system, fast_transient):
        """Antithetic pairs cancel the odd (linear) error terms, so the mean
        estimate should be closer to the high-sample reference."""
        reference = run_opera_mean = None
        from repro.opera import OperaConfig, run_opera_transient

        reference = run_opera_transient(
            small_system, OperaConfig(transient=fast_transient, order=2)
        ).mean_voltage
        plain = run_monte_carlo_transient(
            small_system,
            MonteCarloConfig(transient=fast_transient, num_samples=30, seed=9, antithetic=False),
        )
        paired = run_monte_carlo_transient(
            small_system,
            MonteCarloConfig(transient=fast_transient, num_samples=30, seed=9, antithetic=True),
        )
        error_plain = np.max(np.abs(plain.mean_voltage - reference))
        error_paired = np.max(np.abs(paired.mean_voltage - reference))
        assert error_paired < error_plain

    def test_config_validation(self, fast_transient):
        with pytest.raises(AnalysisError):
            MonteCarloConfig(transient=fast_transient, num_samples=1)

    def test_wall_time_recorded(self, mc_result):
        assert mc_result.wall_time > 0
