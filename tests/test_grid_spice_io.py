"""Tests for the SPICE-subset reader and writer."""

import io

import numpy as np
import pytest

from repro.errors import SpiceFormatError
from repro.grid.elements import ResistorKind
from repro.grid.spice_io import (
    format_spice_value,
    parse_spice_value,
    read_spice,
    write_spice,
)
from repro.waveforms import Constant, PeriodicPulse, PiecewiseLinear


class TestValueParsing:
    @pytest.mark.parametrize(
        "token, expected",
        [
            ("1.5", 1.5),
            ("2e-3", 2e-3),
            ("1.5n", 1.5e-9),
            ("3p", 3e-12),
            ("10f", 10e-15),
            ("2u", 2e-6),
            ("4m", 4e-3),
            ("5k", 5e3),
            ("2meg", 2e6),
            ("1g", 1e9),
            ("-0.5", -0.5),
        ],
    )
    def test_suffixes(self, token, expected):
        assert parse_spice_value(token) == pytest.approx(expected)

    def test_case_insensitive_suffix(self):
        assert parse_spice_value("2MEG") == pytest.approx(2e6)
        assert parse_spice_value("3N") == pytest.approx(3e-9)

    def test_rejects_garbage(self):
        with pytest.raises(SpiceFormatError):
            parse_spice_value("abc")
        with pytest.raises(SpiceFormatError):
            parse_spice_value("1.5x")

    def test_format_roundtrip(self):
        for value in (1.5e-9, 0.1, 1234.5):
            assert parse_spice_value(format_spice_value(value)) == pytest.approx(value)


class TestReader:
    def test_reads_basic_deck(self):
        deck = """
        * comment line
        R1 a b 2.0 kind=via
        C1 b 0 1p gate=1
        I1 b 0 DC 0.5m leakage=1
        V1 a 0 DC 1.2 R=0.05
        .end
        """
        netlist = read_spice(deck)
        assert netlist.num_nodes == 2
        assert netlist.resistors[0].kind == ResistorKind.VIA
        assert netlist.capacitors[0].is_gate_load
        assert netlist.current_sources[0].is_leakage
        assert netlist.current_sources[0].waveform(0.0) == pytest.approx(5e-4)
        assert netlist.pads[0].vdd == pytest.approx(1.2)
        assert netlist.pads[0].resistance == pytest.approx(0.05)

    def test_pad_without_resistance_gets_default(self):
        netlist = read_spice("V1 a 0 DC 1.0\nR1 a b 1.0\n")
        assert netlist.pads[0].resistance == pytest.approx(1e-3)

    def test_reads_pwl_source(self):
        netlist = read_spice("V1 a 0 1.0\nR1 a b 1\nI1 b 0 PWL(0 0 1n 1m 2n 0)\n")
        waveform = netlist.current_sources[0].waveform
        assert isinstance(waveform, PiecewiseLinear)
        assert waveform(1e-9) == pytest.approx(1e-3)

    def test_reads_pulse_source(self):
        netlist = read_spice("V1 a 0 1.0\nR1 a b 1\nI1 b 0 PULSE(0 1m 0 0.1n 0.1n 0.2n 1n)\n")
        waveform = netlist.current_sources[0].waveform
        assert isinstance(waveform, PeriodicPulse)
        assert waveform.period == pytest.approx(1e-9)

    def test_reads_bare_number_as_dc(self):
        netlist = read_spice("V1 a 0 1.0\nR1 a b 1\nI1 b 0 2m\n")
        assert isinstance(netlist.current_sources[0].waveform, Constant)

    def test_rejects_unknown_card(self):
        with pytest.raises(SpiceFormatError):
            read_spice("L1 a b 1n\n")

    def test_rejects_malformed_resistor(self):
        with pytest.raises(SpiceFormatError):
            read_spice("R1 a b\n")

    def test_rejects_current_source_not_to_ground(self):
        with pytest.raises(SpiceFormatError):
            read_spice("I1 a b DC 1m\n")

    def test_rejects_pad_not_to_ground(self):
        with pytest.raises(SpiceFormatError):
            read_spice("V1 a b DC 1.0\n")

    def test_rejects_bad_pwl(self):
        with pytest.raises(SpiceFormatError):
            read_spice("I1 a 0 PWL(0 0 1n)\n")

    def test_ignores_dot_cards_and_comments(self):
        netlist = read_spice("* hello\n.option foo\nV1 a 0 1.0\nR1 a b 1\n")
        assert netlist.num_nodes == 2

    def test_reads_from_file(self, tmp_path):
        path = tmp_path / "grid.sp"
        path.write_text("V1 a 0 DC 1.0 R=0.1\nR1 a b 1.0\nI1 b 0 DC 1m\n")
        netlist = read_spice(str(path))
        assert netlist.num_nodes == 2


class TestWriterRoundTrip:
    def test_roundtrip_preserves_structure(self, small_netlist):
        buffer = io.StringIO()
        write_spice(small_netlist, buffer)
        recovered = read_spice(buffer.getvalue())
        assert recovered.stats() == small_netlist.stats()
        assert recovered.node_names == small_netlist.node_names

    def test_roundtrip_preserves_electrical_values(self, manual_netlist):
        buffer = io.StringIO()
        write_spice(manual_netlist, buffer)
        recovered = read_spice(buffer.getvalue())
        assert recovered.resistors[0].resistance == pytest.approx(
            manual_netlist.resistors[0].resistance
        )
        assert recovered.pads[0].resistance == pytest.approx(0.1)
        assert recovered.pads[0].vdd == pytest.approx(1.2)
        assert recovered.capacitors[1].is_gate_load

    def test_roundtrip_preserves_leakage_flag(self, manual_netlist):
        buffer = io.StringIO()
        write_spice(manual_netlist, buffer)
        recovered = read_spice(buffer.getvalue())
        assert any(s.is_leakage for s in recovered.current_sources)

    def test_clocked_waveform_sampled_to_pwl(self, small_netlist):
        buffer = io.StringIO()
        write_spice(small_netlist, buffer, pwl_horizon=4e-9, pwl_points=32)
        recovered = read_spice(buffer.getvalue())
        switching = [s for s in recovered.current_sources if not s.is_leakage]
        assert all(isinstance(s.waveform, PiecewiseLinear) for s in switching)

    def test_pwl_sampling_approximates_original(self, small_netlist):
        buffer = io.StringIO()
        write_spice(small_netlist, buffer, pwl_horizon=4e-9, pwl_points=201)
        recovered = read_spice(buffer.getvalue())
        original = small_netlist.current_sources[0].waveform
        rebuilt = recovered.current_sources[0].waveform
        t = np.linspace(0, 4e-9, 57)
        assert np.max(np.abs(original(t) - rebuilt(t))) < 0.2 * max(original.max_abs(4e-9), 1e-12)

    def test_writes_to_file(self, tmp_path, manual_netlist):
        path = tmp_path / "out.sp"
        write_spice(manual_netlist, str(path))
        assert path.exists()
        recovered = read_spice(str(path))
        assert recovered.stats() == manual_netlist.stats()
