"""Unit tests for the non-intrusive regression PCE building blocks.

Covers the design-matrix builder (evaluation, normalisation, validation),
the pluggable fitters (OLS exact recovery across germ families, ridge/OMP/
Lasso behaviour, deterministic cross-validation) and the coefficient-level
Sobol entry point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sobol_from_coefficients, sobol_indices
from repro.chaos import PolynomialChaosBasis, StochasticField
from repro.errors import RegressionError
from repro.regression import (
    DesignMatrix,
    FitResult,
    build_design_matrix,
    fit_coefficients,
    fitter_names,
    get_fitter,
    kfold_indices,
    register_fitter,
    unregister_fitter,
)


def _hermite_points(num_samples, num_vars, seed=0):
    return np.random.default_rng(seed).standard_normal((num_samples, num_vars))


def _legendre_points(num_samples, num_vars, seed=0):
    return np.random.default_rng(seed).uniform(-1.0, 1.0, (num_samples, num_vars))


# ---------------------------------------------------------------------------
# Design matrices
# ---------------------------------------------------------------------------
class TestDesignMatrix:
    def test_shape_and_first_column_is_constant(self):
        basis = PolynomialChaosBasis("hermite", order=3, num_vars=2)
        points = _hermite_points(40, 2)
        design = build_design_matrix(basis, points, normalize=False)
        assert design.matrix.shape == (40, basis.size)
        assert design.num_samples == 40
        assert design.num_terms == basis.size
        # psi_0 == 1 everywhere for an orthonormal basis.
        np.testing.assert_allclose(design.matrix[:, 0], 1.0)

    def test_gram_approaches_identity_for_orthonormal_basis(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        points = _hermite_points(200_0, 2, seed=3)
        design = build_design_matrix(basis, points, normalize=False)
        gram = design.matrix.T @ design.matrix / design.num_samples
        assert np.max(np.abs(gram - np.eye(basis.size))) < 0.2

    def test_normalization_and_unscale_round_trip(self):
        basis = PolynomialChaosBasis("hermite", order=3, num_vars=2)
        points = _hermite_points(60, 2, seed=1)
        raw = build_design_matrix(basis, points, normalize=False)
        scaled = build_design_matrix(basis, points, normalize=True)
        np.testing.assert_allclose(
            np.sqrt(np.mean(scaled.matrix**2, axis=0)), 1.0, atol=1e-12
        )
        # Scaled columns times the recorded norms reproduce the raw matrix.
        np.testing.assert_allclose(scaled.matrix * scaled.column_norms, raw.matrix)
        # unscale maps fitted coefficients back to the basis scale.
        rng = np.random.default_rng(2)
        coefficients = rng.standard_normal(basis.size)
        np.testing.assert_allclose(
            scaled.matrix @ coefficients,
            raw.matrix @ scaled.unscale(coefficients),
        )

    def test_column_subset_and_expand(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        points = _hermite_points(30, 2, seed=4)
        design = build_design_matrix(basis, points, indices=[0, 3, 5])
        assert design.column_indices == (0, 3, 5)
        assert design.num_terms == 3
        full = design.expand(np.array([1.0, 2.0, 3.0]))
        assert full.shape == (basis.size,)
        np.testing.assert_allclose(full[[0, 3, 5]], [1.0, 2.0, 3.0])
        assert np.all(full[[1, 2, 4]] == 0.0)

    def test_diagnostics_keys_and_condition(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        design = build_design_matrix(basis, _hermite_points(50, 2, seed=5))
        info = design.diagnostics()
        for key in (
            "num_samples",
            "num_terms",
            "oversampling",
            "condition",
            "normalized",
            "min_column_norm",
            "max_column_norm",
        ):
            assert key in info
        assert info["condition"] >= 1.0
        assert info["oversampling"] == pytest.approx(50 / basis.size)

    def test_validation_errors(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        with pytest.raises(RegressionError, match="2-D"):
            build_design_matrix(basis, np.zeros(5))
        with pytest.raises(RegressionError, match="dimensions"):
            build_design_matrix(basis, np.zeros((5, 3)))
        points = _hermite_points(10, 2)
        with pytest.raises(RegressionError, match="out of range"):
            build_design_matrix(basis, points, indices=[0, 99])
        with pytest.raises(RegressionError, match="unique"):
            build_design_matrix(basis, points, indices=[0, 0])
        with pytest.raises(RegressionError, match="at least one column"):
            build_design_matrix(basis, points, indices=[])

    def test_unscale_rejects_wrong_row_count(self):
        basis = PolynomialChaosBasis("hermite", order=1, num_vars=2)
        design = build_design_matrix(basis, _hermite_points(12, 2))
        with pytest.raises(RegressionError, match="rows"):
            design.unscale(np.zeros(basis.size + 1))


# ---------------------------------------------------------------------------
# Exact recovery: the whole point of regression PCE
# ---------------------------------------------------------------------------
class TestExactRecovery:
    """A polynomial response is recovered to round-off by every dense fit."""

    @pytest.mark.parametrize(
        "families, sampler",
        [
            ("hermite", _hermite_points),
            ("legendre", _legendre_points),
            (("hermite", "legendre"), None),
        ],
        ids=["hermite", "legendre-uniform", "mixed-hermite-legendre"],
    )
    def test_ols_recovers_polynomial_exactly(self, families, sampler):
        basis = PolynomialChaosBasis(families, order=3, num_vars=2)
        if sampler is None:  # mixed germ: gaussian x uniform
            rng = np.random.default_rng(11)
            points = np.column_stack(
                [rng.standard_normal(80), rng.uniform(-1.0, 1.0, 80)]
            )
        else:
            points = sampler(80, 2, seed=11)
        truth = np.zeros(basis.size)
        truth[basis.index_of((0, 0))] = 0.7
        truth[basis.index_of((1, 0))] = -0.3
        truth[basis.index_of((0, 2))] = 0.05
        truth[basis.index_of((2, 1))] = 0.01
        raw = build_design_matrix(basis, points, normalize=False)
        targets = raw.matrix @ truth

        design = build_design_matrix(basis, points)
        result = fit_coefficients(design.matrix, targets, method="ols")
        recovered = design.unscale(result.coefficients)
        np.testing.assert_allclose(recovered, truth, atol=1e-10)
        # Per-multi-index check: the mean and first-order terms individually.
        assert recovered[basis.index_of((0, 0))] == pytest.approx(0.7, abs=1e-10)
        assert recovered[basis.index_of((1, 0))] == pytest.approx(-0.3, abs=1e-10)

    def test_multi_rhs_matches_column_by_column(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        points = _hermite_points(40, 2, seed=7)
        design = build_design_matrix(basis, points)
        rng = np.random.default_rng(8)
        targets = rng.standard_normal((40, 3))
        batch = fit_coefficients(design.matrix, targets, method="ols")
        assert batch.coefficients.shape == (basis.size, 3)
        for j in range(3):
            single = fit_coefficients(design.matrix, targets[:, j], method="ols")
            assert single.coefficients.shape == (basis.size,)
            np.testing.assert_allclose(batch.coefficients[:, j], single.coefficients)


# ---------------------------------------------------------------------------
# Fitter registry
# ---------------------------------------------------------------------------
class TestFitterRegistry:
    def test_builtins_are_registered(self):
        names = fitter_names()
        for name in ("ols", "lstsq", "least-squares", "ridge", "omp", "lasso"):
            assert name in names

    def test_unknown_fitter_lists_alternatives(self):
        with pytest.raises(RegressionError, match="ols"):
            get_fitter("nonsense")
        with pytest.raises(RegressionError, match="lasso"):
            fit_coefficients(np.eye(3), np.zeros(3), method="nonsense")

    def test_custom_fitter_registration(self):
        def zeros_fitter(matrix, targets):
            return np.zeros((matrix.shape[1], targets.shape[1])), {"custom": True}

        register_fitter("zeros-test", zeros_fitter)
        try:
            result = fit_coefficients(np.eye(4), np.ones(4), method="zeros-test")
            assert isinstance(result, FitResult)
            assert result.diagnostics["custom"] is True
            np.testing.assert_allclose(result.coefficients, 0.0)
        finally:
            unregister_fitter("zeros-test")
        with pytest.raises(RegressionError):
            get_fitter("zeros-test")

    def test_shape_validation(self):
        with pytest.raises(RegressionError, match="2-D"):
            fit_coefficients(np.zeros(4), np.zeros(4))
        with pytest.raises(RegressionError, match="targets"):
            fit_coefficients(np.zeros((4, 2)), np.zeros(5))


# ---------------------------------------------------------------------------
# Cross-validation folds
# ---------------------------------------------------------------------------
class TestKFold:
    def test_folds_partition_all_samples(self):
        folds = kfold_indices(23, 5, seed=0)
        assert len(folds) == 5
        combined = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(combined, np.arange(23))

    def test_same_seed_same_folds(self):
        first = kfold_indices(40, 4, seed=9)
        second = kfold_indices(40, 4, seed=9)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_different_seed_different_folds(self):
        first = kfold_indices(40, 4, seed=9)
        second = kfold_indices(40, 4, seed=10)
        assert any(
            a.shape != b.shape or not np.array_equal(a, b)
            for a, b in zip(first, second)
        )

    def test_validation_errors(self):
        with pytest.raises(RegressionError, match="at least 2"):
            kfold_indices(10, 1)
        with pytest.raises(RegressionError, match="cannot split"):
            kfold_indices(3, 4)


# ---------------------------------------------------------------------------
# Penalised fitters
# ---------------------------------------------------------------------------
def _sparse_problem(seed=21, num_samples=60):
    """An exactly sparse expansion: mean + one linear + one quadratic term."""
    basis = PolynomialChaosBasis("hermite", order=3, num_vars=2)
    points = _hermite_points(num_samples, 2, seed=seed)
    truth = np.zeros(basis.size)
    support = sorted(
        basis.index_of(mi) for mi in [(0, 0), (1, 0), (0, 2)]
    )
    truth[basis.index_of((0, 0))] = 0.9
    truth[basis.index_of((1, 0))] = -0.2
    truth[basis.index_of((0, 2))] = 0.05
    design = build_design_matrix(basis, points)
    raw = build_design_matrix(basis, points, normalize=False)
    targets = raw.matrix @ truth
    return basis, design, targets, truth, support


class TestRidge:
    def test_tiny_alpha_matches_ols(self):
        _, design, targets, truth, _ = _sparse_problem()
        result = fit_coefficients(design.matrix, targets, method="ridge", alpha=1e-12)
        np.testing.assert_allclose(design.unscale(result.coefficients), truth, atol=1e-8)

    def test_alpha_sequence_triggers_cv(self):
        _, design, targets, _, _ = _sparse_problem()
        result = fit_coefficients(
            design.matrix,
            targets,
            method="ridge",
            alpha=[1e-10, 1e-4, 10.0],
            folds=4,
            cv_seed=3,
        )
        info = result.diagnostics
        assert info["cv_alphas"] == [1e-10, 1e-4, 10.0]
        assert len(info["cv_scores"]) == 3
        # An exactly polynomial target wants the weakest penalty.
        assert info["alpha"] == pytest.approx(1e-10)

    def test_cv_is_seed_deterministic(self):
        _, design, targets, _, _ = _sparse_problem()
        kwargs = dict(method="ridge", alpha=[1e-8, 1e-2], folds=3, cv_seed=7)
        first = fit_coefficients(design.matrix, targets, **kwargs)
        second = fit_coefficients(design.matrix, targets, **kwargs)
        np.testing.assert_array_equal(first.coefficients, second.coefficients)
        assert first.diagnostics["cv_scores"] == second.diagnostics["cv_scores"]

    def test_negative_alpha_rejected(self):
        _, design, targets, _, _ = _sparse_problem()
        with pytest.raises(RegressionError, match="non-negative"):
            fit_coefficients(design.matrix, targets, method="ridge", alpha=-1.0)


class TestOMP:
    def test_recovers_exact_support_and_values(self):
        _, design, targets, truth, support = _sparse_problem()
        result = fit_coefficients(
            design.matrix, targets, method="omp", num_terms=len(support)
        )
        assert result.diagnostics["supports"] == [support]
        np.testing.assert_allclose(design.unscale(result.coefficients), truth, atol=1e-10)

    def test_tolerance_stops_early(self):
        _, design, targets, truth, support = _sparse_problem()
        result = fit_coefficients(design.matrix, targets, method="omp", tol=1e-10)
        # The residual hits the floor once the true support is found.
        assert result.diagnostics["support_sizes"] == [len(support)]

    def test_budget_validation(self):
        _, design, targets, _, _ = _sparse_problem()
        with pytest.raises(RegressionError, match="num_terms"):
            fit_coefficients(design.matrix, targets, method="omp", num_terms=0)


class TestLasso:
    def test_sparsity_pattern_recovery_with_debias(self):
        _, design, targets, truth, support = _sparse_problem()
        result = fit_coefficients(
            design.matrix, targets, method="lasso", debias=True, cv_seed=1
        )
        recovered = design.unscale(result.coefficients)
        nonzero = sorted(np.flatnonzero(np.abs(recovered) > 1e-8).tolist())
        assert nonzero == support
        np.testing.assert_allclose(recovered, truth, atol=1e-8)

    def test_large_alpha_keeps_only_intercept(self):
        _, design, targets, truth, _ = _sparse_problem()
        result = fit_coefficients(design.matrix, targets, method="lasso", alpha=1e6)
        recovered = design.unscale(result.coefficients)
        # Every penalised coefficient collapses; the exempt intercept stays
        # at the sample mean, so mean() would remain unbiased.
        assert np.count_nonzero(recovered[1:]) == 0
        assert recovered[0] == pytest.approx(np.mean(targets))

    def test_cv_grid_is_deterministic(self):
        _, design, targets, _, _ = _sparse_problem()
        kwargs = dict(method="lasso", folds=4, cv_seed=5, num_alphas=6)
        first = fit_coefficients(design.matrix, targets, **kwargs)
        second = fit_coefficients(design.matrix, targets, **kwargs)
        np.testing.assert_array_equal(first.coefficients, second.coefficients)
        assert first.diagnostics["alpha"] == second.diagnostics["alpha"]
        assert first.diagnostics["cv_alphas"] == second.diagnostics["cv_alphas"]

    def test_diagnostics_report_nonzeros(self):
        _, design, targets, _, support = _sparse_problem()
        result = fit_coefficients(design.matrix, targets, method="lasso", cv_seed=2)
        assert result.diagnostics["nonzeros"][0] >= len(support)


# ---------------------------------------------------------------------------
# Sobol indices straight from fitted coefficients
# ---------------------------------------------------------------------------
class TestSobolFromCoefficients:
    def test_matches_field_based_indices(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=3)
        rng = np.random.default_rng(17)
        coefficients = rng.standard_normal((basis.size, 4))
        field = StochasticField(basis, coefficients)
        direct = sobol_indices(field)
        from_coefficients = sobol_from_coefficients(basis, coefficients)
        np.testing.assert_allclose(direct.first_order, from_coefficients.first_order)
        np.testing.assert_allclose(direct.total_effect, from_coefficients.total_effect)
        np.testing.assert_allclose(direct.variance, from_coefficients.variance)

    def test_regression_fit_reproduces_projection_indices(self):
        """Sobol indices of a regression fit match the analytic expansion."""
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        truth = np.zeros((basis.size, 1))
        truth[basis.index_of((0, 0)), 0] = 1.0
        truth[basis.index_of((1, 0)), 0] = 0.4
        truth[basis.index_of((0, 1)), 0] = 0.2
        truth[basis.index_of((1, 1)), 0] = 0.1
        points = _hermite_points(50, 2, seed=23)
        raw = build_design_matrix(basis, points, normalize=False)
        design = build_design_matrix(basis, points)
        fit = fit_coefficients(design.matrix, raw.matrix @ truth, method="ols")
        fitted = design.unscale(fit.coefficients)
        projection = sobol_from_coefficients(basis, truth, variable_names=["a", "b"])
        regression = sobol_from_coefficients(basis, fitted, variable_names=["a", "b"])
        np.testing.assert_allclose(
            regression.first_order, projection.first_order, atol=1e-9
        )
        np.testing.assert_allclose(
            regression.total_effect, projection.total_effect, atol=1e-9
        )
        assert regression.ranked(0)[0][0] == "a"
