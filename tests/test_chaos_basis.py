"""Tests for the multivariate polynomial chaos basis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.basis import (
    HermiteFamily,
    JacobiFamily,
    LaguerreFamily,
    LegendreFamily,
    PolynomialChaosBasis,
    family_for,
)
from repro.errors import BasisError


class TestFamilyRegistry:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("hermite", HermiteFamily),
            ("gaussian", HermiteFamily),
            ("lognormal", HermiteFamily),
            ("legendre", LegendreFamily),
            ("uniform", LegendreFamily),
            ("laguerre", LaguerreFamily),
            ("gamma", LaguerreFamily),
            ("jacobi", JacobiFamily),
            ("beta", JacobiFamily),
        ],
    )
    def test_aliases(self, name, cls):
        assert isinstance(family_for(name), cls)

    def test_instance_passthrough(self):
        family = HermiteFamily()
        assert family_for(family) is family

    def test_unknown_family(self):
        with pytest.raises(BasisError):
            family_for("chebyshev")

    def test_case_insensitive(self):
        assert isinstance(family_for("Hermite"), HermiteFamily)


class TestBasisConstruction:
    def test_paper_case_two_vars_order_two(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        assert basis.size == 6
        assert basis.num_vars == 2
        assert basis.multi_indices[0] == (0, 0)

    def test_size_formula(self):
        import math

        for n in (1, 2, 3, 4):
            for p in (0, 1, 2, 3):
                basis = PolynomialChaosBasis("hermite", order=p, num_vars=n)
                assert basis.size == math.comb(n + p, p)

    def test_mixed_families(self):
        basis = PolynomialChaosBasis(["hermite", "legendre"], order=2)
        assert basis.families[0].name == "hermite"
        assert basis.families[1].name == "legendre"

    def test_single_family_requires_num_vars(self):
        with pytest.raises(BasisError):
            PolynomialChaosBasis("hermite", order=2)

    def test_num_vars_mismatch_rejected(self):
        with pytest.raises(BasisError):
            PolynomialChaosBasis(["hermite", "hermite"], order=2, num_vars=3)

    def test_negative_order_rejected(self):
        with pytest.raises(BasisError):
            PolynomialChaosBasis("hermite", order=-1, num_vars=2)

    def test_degrees(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        np.testing.assert_array_equal(basis.degrees, [0, 1, 1, 2, 2, 2])
        assert basis.degree(3) == 2

    def test_len(self):
        assert len(PolynomialChaosBasis("hermite", order=1, num_vars=3)) == 4


class TestBasisLookups:
    def test_index_of(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        assert basis.index_of((0, 0)) == 0
        assert basis.index_of((1, 1)) == 4
        with pytest.raises(BasisError):
            basis.index_of((3, 0))

    def test_first_order_index(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=3)
        for var in range(3):
            index = basis.first_order_index(var)
            assert basis.multi_indices[index] == tuple(1 if d == var else 0 for d in range(3))
        with pytest.raises(BasisError):
            basis.first_order_index(5)


class TestBasisEvaluation:
    def test_constant_function_is_one(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        values = basis.evaluate(np.array([0.7, -1.2]))
        assert values[0] == pytest.approx(1.0)

    def test_first_order_hermite_is_identity(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        xi = np.array([0.5, -0.3])
        values = basis.evaluate(xi)
        assert values[basis.first_order_index(0)] == pytest.approx(0.5)
        assert values[basis.first_order_index(1)] == pytest.approx(-0.3)

    def test_second_order_hermite_normalisation(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=1)
        xi = np.array([1.5])
        values = basis.evaluate(xi)
        assert values[2] == pytest.approx((1.5**2 - 1) / np.sqrt(2.0))

    def test_batch_evaluation_shape(self):
        basis = PolynomialChaosBasis("hermite", order=3, num_vars=2)
        points = np.random.default_rng(0).normal(size=(17, 2))
        values = basis.evaluate(points)
        assert values.shape == (17, basis.size)

    def test_batch_matches_single(self):
        basis = PolynomialChaosBasis(["hermite", "legendre"], order=2)
        points = np.array([[0.3, 0.4], [-1.0, 0.9]])
        batch = basis.evaluate(points)
        for row, point in zip(batch, points):
            np.testing.assert_allclose(row, basis.evaluate(point))

    def test_dimension_mismatch_rejected(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        with pytest.raises(BasisError):
            basis.evaluate(np.zeros((5, 3)))


class TestBasisOrthonormality:
    @pytest.mark.parametrize(
        "families",
        [
            ["hermite", "hermite"],
            ["legendre", "legendre"],
            ["hermite", "legendre"],
            ["laguerre", "hermite"],
        ],
    )
    def test_gram_matrix_is_identity(self, families):
        """E[psi_i psi_j] = delta_ij, checked with tensor quadrature."""
        basis = PolynomialChaosBasis(families, order=2)
        points, weights = basis.quadrature(8)
        psi = basis.evaluate(points)
        gram = psi.T @ (psi * weights[:, None])
        np.testing.assert_allclose(gram, np.eye(basis.size), atol=1e-8)

    def test_monte_carlo_gram_close_to_identity(self, rng):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        samples = basis.sample_germ(rng, 200000)
        psi = basis.evaluate(samples)
        gram = psi.T @ psi / samples.shape[0]
        np.testing.assert_allclose(gram, np.eye(basis.size), atol=0.05)

    def test_norm_squared_reports_one(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        for i in range(basis.size):
            assert basis.norm_squared(i) == 1.0
        with pytest.raises(BasisError):
            basis.norm_squared(99)


class TestBasisTripleProducts:
    def test_constant_index_gives_identity(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        for i in range(basis.size):
            for j in range(basis.size):
                expected = 1.0 if i == j else 0.0
                assert basis.triple_product(0, i, j) == pytest.approx(expected)

    def test_matches_quadrature_for_mixed_families(self):
        basis = PolynomialChaosBasis(["hermite", "legendre"], order=2)
        points, weights = basis.quadrature(10)
        psi = basis.evaluate(points)
        for m in (1, 2, 4):
            for i in range(basis.size):
                for j in range(basis.size):
                    numeric = np.sum(weights * psi[:, m] * psi[:, i] * psi[:, j])
                    assert basis.triple_product(m, i, j) == pytest.approx(numeric, abs=1e-9)

    def test_symmetry_in_all_arguments(self):
        basis = PolynomialChaosBasis("hermite", order=3, num_vars=2)
        value = basis.triple_product(1, 3, 5)
        assert basis.triple_product(3, 1, 5) == pytest.approx(value)
        assert basis.triple_product(5, 3, 1) == pytest.approx(value)


class TestBasisSampling:
    def test_sample_shapes(self, rng):
        basis = PolynomialChaosBasis(["hermite", "legendre", "laguerre"], order=1)
        samples = basis.sample_germ(rng, 100)
        assert samples.shape == (100, 3)

    def test_samples_follow_germ_densities(self, rng):
        basis = PolynomialChaosBasis(["hermite", "legendre", "laguerre"], order=1)
        samples = basis.sample_germ(rng, 50000)
        assert abs(np.mean(samples[:, 0])) < 0.05
        assert abs(np.std(samples[:, 0]) - 1.0) < 0.05
        assert samples[:, 1].min() >= -1.0 and samples[:, 1].max() <= 1.0
        assert samples[:, 2].min() >= 0.0
        assert abs(np.mean(samples[:, 2]) - 1.0) < 0.05


class TestBasisPropertyBased:
    @given(
        num_vars=st.integers(min_value=1, max_value=4),
        order=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_first_order_indices_follow_constant(self, num_vars, order):
        basis = PolynomialChaosBasis("hermite", order=order, num_vars=num_vars)
        if order >= 1:
            for var in range(num_vars):
                assert basis.first_order_index(var) == 1 + var

    @given(
        order=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_expansion_variance_equals_sum_of_squares(self, order, seed):
        """For any coefficient vector, Var = sum of squared non-constant coeffs."""
        basis = PolynomialChaosBasis("hermite", order=order, num_vars=2)
        rng = np.random.default_rng(seed)
        coefficients = rng.normal(size=basis.size)
        samples = basis.evaluate(basis.sample_germ(rng, 60000)) @ coefficients
        expected_variance = float(np.sum(coefficients[1:] ** 2))
        assert np.var(samples) == pytest.approx(expected_variance, rel=0.12, abs=1e-3)
        assert np.mean(samples) == pytest.approx(coefficients[0], abs=0.05)
