"""Tests of the unified time-integration core (``repro.stepping``).

Covers the scheme registry, the hoisted step forms, the convergence order
of every built-in scheme on an analytic RC reference, the no-behaviour-
change contract of the engine rewiring (frozen pre-refactor waveforms,
``tests/data/stepping_reference.npz``), cross-engine equivalence per
scheme, the ``degree-block-cg`` solver backend, and the ``scheme`` plumbing
through sweeps and the CLI.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import Analysis
from repro.errors import SchemeError, SolverError
from repro.linalg import DegreeBlockCGSolver
from repro.linalg.operator import KronSumOperator
from repro.sim import ConjugateGradientSolver, DirectSolver, TransientConfig, make_solver
from repro.sim.transient import run_transient
from repro.stepping import (
    BackwardEulerScheme,
    MnaSystemAdapter,
    StepLoop,
    ThetaScheme,
    TrapezoidalScheme,
    register_scheme,
    resolve_scheme,
    scheme_names,
    step_forms,
    supports_warm_start,
    unregister_scheme,
)
from repro.sweep.plan import SweepCase, SweepPlan, corner_spec

REFERENCE = Path(__file__).parent / "data" / "stepping_reference.npz"

#: Settings of the frozen reference scenario (tests/data/make_stepping_reference.py).
REF_NODES = 120
REF_GRID_SEED = 3
REF_TRANSIENT = dict(t_stop=8 * 0.2e-9, dt=0.2e-9)
REF_ORDER = 2
REF_MC = dict(samples=16, chunk_size=8)


# ---------------------------------------------------------------------------
# Registry and schemes
# ---------------------------------------------------------------------------
class TestSchemeRegistry:
    def test_builtins_registered(self):
        names = scheme_names()
        for name in ("backward-euler", "trapezoidal", "theta"):
            assert name in names

    def test_resolve_by_name(self):
        assert isinstance(resolve_scheme("trapezoidal"), TrapezoidalScheme)
        assert isinstance(resolve_scheme("backward-euler"), BackwardEulerScheme)
        assert isinstance(resolve_scheme(" Trapezoidal "), TrapezoidalScheme)

    def test_resolve_passes_instances_through(self):
        scheme = ThetaScheme(0.7)
        assert resolve_scheme(scheme) is scheme

    def test_parametrised_spec(self):
        scheme = resolve_scheme("theta:0.75")
        assert isinstance(scheme, ThetaScheme)
        assert scheme.theta == 0.75
        assert scheme.spec == "theta:0.75"
        assert resolve_scheme(scheme.spec) == scheme

    def test_unknown_scheme_raises_listing(self):
        with pytest.raises(SchemeError, match="registered schemes"):
            resolve_scheme("magic")
        # SchemeError doubles as ValueError for configuration callers.
        with pytest.raises(ValueError):
            resolve_scheme("magic")

    def test_theta_needs_parameter(self):
        with pytest.raises(SchemeError, match="parameter"):
            resolve_scheme("theta")
        with pytest.raises(SchemeError):
            resolve_scheme("theta:not-a-number")

    def test_parameterless_schemes_reject_parameters(self):
        with pytest.raises(SchemeError, match="takes no parameter"):
            resolve_scheme("trapezoidal:2")

    def test_theta_stability_range(self):
        with pytest.raises(SchemeError):
            ThetaScheme(0.4)
        with pytest.raises(SchemeError):
            ThetaScheme(1.1)

    def test_theta_limits_reproduce_builtins_exactly(self):
        assert ThetaScheme(1.0).coefficients == BackwardEulerScheme().coefficients
        assert ThetaScheme(0.5).coefficients == TrapezoidalScheme().coefficients

    def test_convergence_orders(self):
        assert TrapezoidalScheme().convergence_order == 2
        assert BackwardEulerScheme().convergence_order == 1
        assert ThetaScheme(0.5).convergence_order == 2
        assert ThetaScheme(0.75).convergence_order == 1

    def test_custom_scheme_registration(self):
        @register_scheme("damped-test")
        def build(parameter=None):
            return ThetaScheme(0.8)

        try:
            scheme = resolve_scheme("damped-test")
            assert isinstance(scheme, ThetaScheme)
            # A registered scheme is a valid TransientConfig method.
            config = TransientConfig(t_stop=1.0, dt=0.1, method="damped-test")
            assert config.scheme == ThetaScheme(0.8)
        finally:
            unregister_scheme("damped-test")
        with pytest.raises(SchemeError):
            resolve_scheme("damped-test")

    def test_transient_config_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            TransientConfig(t_stop=1.0, dt=0.1, method="magic")

    def test_transient_config_accepts_parametrised_scheme(self):
        config = TransientConfig(t_stop=1.0, dt=0.1, method="theta:0.6")
        assert isinstance(config.scheme, ThetaScheme)


class TestStepForms:
    def _matrices(self):
        conductance = sp.csr_matrix(
            np.array([[2.0, -1.0, 0.0], [-1.0, 2.0, -1.0], [0.0, -1.0, 2.0]])
        )
        capacitance = sp.csr_matrix(np.diag([1.0, 2.0, 3.0]))
        return conductance, capacitance

    def test_trapezoidal_explicit_forms(self):
        conductance, capacitance = self._matrices()
        h = 0.25
        forms = step_forms("trapezoidal", conductance, capacitance, h)
        assert not forms.matrix_free
        np.testing.assert_array_equal(
            forms.lhs.toarray(), (conductance + 2.0 * capacitance / h).toarray()
        )
        np.testing.assert_array_equal(
            forms.rhs_capacitance.toarray(), (2.0 * capacitance / h).toarray()
        )
        np.testing.assert_array_equal(forms.rhs_conductance.toarray(), conductance.toarray())
        assert forms.rhs_u_new == 1.0 and forms.rhs_u_old == 1.0

    def test_backward_euler_explicit_forms(self):
        conductance, capacitance = self._matrices()
        h = 0.5
        forms = step_forms("backward-euler", conductance, capacitance, h)
        np.testing.assert_array_equal(
            forms.lhs.toarray(), (conductance + capacitance / h).toarray()
        )
        np.testing.assert_array_equal(
            forms.rhs_capacitance.toarray(), (capacitance / h).toarray()
        )
        assert forms.rhs_conductance is None
        assert forms.rhs_u_old == 0.0

    def test_operator_forms_are_matrix_free(self):
        conductance, capacitance = self._matrices()
        identity = sp.identity(2, format="csr")
        g_op = KronSumOperator([(identity, conductance)])
        c_op = KronSumOperator([(identity, capacitance)])
        forms = step_forms("trapezoidal", g_op, c_op, 0.25)
        assert forms.matrix_free
        x = np.arange(6, dtype=float)
        explicit = step_forms(
            "trapezoidal", sp.kron(identity, conductance), sp.kron(identity, capacitance), 0.25
        )
        np.testing.assert_allclose(forms.lhs.matvec(x), explicit.lhs @ x, atol=1e-13)

    def test_rejects_bad_step(self):
        conductance, capacitance = self._matrices()
        with pytest.raises(SchemeError):
            step_forms("trapezoidal", conductance, capacitance, 0.0)


# ---------------------------------------------------------------------------
# Convergence order on an analytic RC reference
# ---------------------------------------------------------------------------
def _rc_error(scheme_spec: str, dt: float) -> float:
    """Max waveform error of ``c x' + g x = sin(w t)`` vs the analytic solution.

    The initial condition is placed on the particular solution, so the
    exact response stays purely sinusoidal (no decaying homogeneous term)
    and the measured error is the scheme's accumulation error alone.
    """
    g, c, omega, t_stop = 1.0, 1.0, 2.0 * np.pi, 1.0
    denominator = g * g + (c * omega) ** 2
    a = g / denominator
    b = -c * omega / denominator

    def exact(t):
        return a * np.sin(omega * t) + b * np.cos(omega * t)

    conductance = sp.csr_matrix(np.array([[g]]))
    capacitance = sp.csr_matrix(np.array([[c]]))
    config = TransientConfig(t_stop=t_stop, dt=dt, method=scheme_spec)
    result = run_transient(
        conductance,
        capacitance,
        lambda t: np.array([np.sin(omega * t)]),
        config,
        x0=np.array([b]),
    )
    return float(np.max(np.abs(result.voltages[:, 0] - exact(result.times))))


class TestConvergenceOrder:
    @pytest.mark.parametrize(
        "scheme_spec, expected_order",
        [
            ("backward-euler", 1),
            ("trapezoidal", 2),
            ("theta:0.5", 2),
            ("theta:0.75", 1),
        ],
    )
    def test_observed_order(self, scheme_spec, expected_order):
        errors = [_rc_error(scheme_spec, dt) for dt in (4e-3, 2e-3, 1e-3)]
        orders = [np.log2(errors[i] / errors[i + 1]) for i in range(2)]
        observed = float(np.mean(orders))
        assert observed == pytest.approx(expected_order, abs=0.35)

    def test_trapezoidal_beats_backward_euler(self):
        assert _rc_error("trapezoidal", 2e-3) < _rc_error("backward-euler", 2e-3) / 10.0


# ---------------------------------------------------------------------------
# No-behaviour-change contract: frozen pre-refactor waveforms
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def reference_archive():
    return np.load(REFERENCE)


@pytest.fixture(scope="module")
def reference_sessions():
    paper = Analysis.from_spec(
        REF_NODES, seed=REF_GRID_SEED, transient=TransientConfig(**REF_TRANSIENT)
    )
    rhs_only = Analysis.from_spec(
        REF_NODES,
        seed=REF_GRID_SEED,
        variation=corner_spec("rhs-only"),
        transient=TransientConfig(**REF_TRANSIENT),
    )
    return paper, rhs_only


class TestPreRefactorEquivalence:
    """Every rewired engine reproduces its pre-``repro.stepping`` waveforms.

    The archive was generated by the *old* per-engine loops (see
    ``tests/data/make_stepping_reference.py``); <= 1e-12 on mean and std is
    the refactor's acceptance contract for all four engines and both
    historical methods.
    """

    @pytest.mark.parametrize("method", ["trapezoidal", "backward-euler"])
    @pytest.mark.parametrize(
        "engine", ["opera", "hierarchical", "montecarlo", "decoupled"]
    )
    def test_engine_matches_frozen_reference(
        self, reference_archive, reference_sessions, engine, method
    ):
        paper, rhs_only = reference_sessions
        if engine == "decoupled":
            view = rhs_only.run("decoupled", order=REF_ORDER, method=method)
        elif engine == "montecarlo":
            view = paper.run("montecarlo", method=method, **REF_MC)
        else:
            view = paper.run(engine, order=REF_ORDER, method=method)
        np.testing.assert_allclose(
            view.mean(), reference_archive[f"{engine}/{method}/mean"], rtol=0.0, atol=1e-12
        )
        np.testing.assert_allclose(
            view.std(), reference_archive[f"{engine}/{method}/std"], rtol=0.0, atol=1e-12
        )


# ---------------------------------------------------------------------------
# Cross-engine equivalence per scheme
# ---------------------------------------------------------------------------
class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("scheme", ["backward-euler", "trapezoidal", "theta:0.7"])
    def test_opera_vs_hierarchical(self, reference_sessions, scheme):
        paper, _ = reference_sessions
        opera = paper.run("opera", order=REF_ORDER, scheme=scheme)
        hierarchical = paper.run("hierarchical", order=REF_ORDER, scheme=scheme)
        np.testing.assert_allclose(hierarchical.mean(), opera.mean(), rtol=0.0, atol=1e-10)
        np.testing.assert_allclose(hierarchical.std(), opera.std(), rtol=0.0, atol=1e-10)

    @pytest.mark.parametrize("scheme", ["backward-euler", "trapezoidal", "theta:0.7"])
    def test_decoupled_vs_forced_coupled(self, reference_sessions, scheme):
        _, rhs_only = reference_sessions
        decoupled = rhs_only.run("decoupled", order=REF_ORDER, scheme=scheme)
        coupled = rhs_only.run(
            "opera", order=REF_ORDER, scheme=scheme, force_coupled=True
        )
        np.testing.assert_allclose(decoupled.mean(), coupled.mean(), rtol=0.0, atol=1e-10)
        np.testing.assert_allclose(decoupled.std(), coupled.std(), rtol=0.0, atol=1e-10)

    def test_montecarlo_accepts_theta_scheme(self, reference_sessions):
        paper, _ = reference_sessions
        view = paper.run("montecarlo", scheme="theta:0.7", samples=8, chunk_size=8)
        assert view.mean().shape[0] == int(REF_TRANSIENT["t_stop"] / REF_TRANSIENT["dt"]) + 1
        assert np.all(np.isfinite(view.mean()))

    def test_theta_half_is_bitwise_trapezoidal(self, reference_sessions):
        paper, _ = reference_sessions
        trapezoidal = paper.run("opera", order=REF_ORDER, scheme="trapezoidal")
        theta = paper.run("opera", order=REF_ORDER, scheme="theta:0.5")
        np.testing.assert_array_equal(theta.mean(), trapezoidal.mean())
        np.testing.assert_array_equal(theta.std(), trapezoidal.std())


# ---------------------------------------------------------------------------
# Warm starting (moved into the stepping core)
# ---------------------------------------------------------------------------
class TestWarmStart:
    def test_duck_typing(self):
        matrix = sp.csr_matrix(np.diag([2.0, 3.0]))
        assert not supports_warm_start(DirectSolver(matrix))
        assert supports_warm_start(ConjugateGradientSolver(matrix))

    def test_hierarchical_iterative_step_solver(self, reference_sessions):
        """The partitioned engine can step through a warm-started iterative
        backend (schwarz-cg) and still match the exact Schur reduction."""
        paper, _ = reference_sessions
        schur = paper.run("hierarchical", order=REF_ORDER)
        iterative = paper.run("hierarchical", order=REF_ORDER, solver="schwarz-cg")
        np.testing.assert_allclose(iterative.mean(), schur.mean(), rtol=0.0, atol=1e-7)
        np.testing.assert_allclose(iterative.std(), schur.std(), rtol=0.0, atol=1e-7)

    def test_hierarchical_dc_rejects_solver_option(self, reference_sessions):
        paper, _ = reference_sessions
        with pytest.raises(Exception, match="transient mode"):
            paper.run("hierarchical", mode="dc", solver="schwarz-cg")

    def test_hierarchical_accepts_partition_unaware_backends(self, reference_sessions):
        """Backends without ``accepts_partition`` (e.g. ``mean-block-cg``)
        step the matrix-free operator directly instead of crashing on an
        unexpected ``partition`` keyword."""
        paper, _ = reference_sessions
        schur = paper.run("hierarchical", order=REF_ORDER)
        fast = paper.run("hierarchical", order=REF_ORDER, solver="mean-block-cg")
        np.testing.assert_allclose(fast.mean(), schur.mean(), rtol=0.0, atol=1e-8)
        np.testing.assert_allclose(fast.std(), schur.std(), rtol=0.0, atol=1e-8)

    def test_step_loop_rerun_is_stable(self):
        """Re-running a StepLoop rebuilds its prepared state cleanly."""
        conductance = sp.csr_matrix(np.array([[2.0, -1.0], [-1.0, 2.0]]))
        capacitance = sp.csr_matrix(np.diag([1.0, 2.0]))
        adapter = MnaSystemAdapter(
            conductance, capacitance, rhs_function=lambda t: np.array([1.0, 0.5 * t])
        )
        loop = StepLoop(adapter, "trapezoidal", np.linspace(0.0, 1.0, 6), 0.2)
        first = loop.run()
        second = loop.run()
        np.testing.assert_array_equal(second.states, first.states)
        adapter.close()  # idempotent no-op for pool-less adapters


# ---------------------------------------------------------------------------
# degree-block-cg
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def order3_galerkin(reference_sessions):
    paper, _ = reference_sessions
    session = paper
    return session, session.galerkin(3)


class TestDegreeBlockCG:
    def test_matches_direct_on_operator(self, order3_galerkin):
        session, galerkin = order3_galerkin
        operator = galerkin.conductance_operator
        degrees = tuple(int(d) for d in galerkin.basis.degrees)
        rhs = galerkin.rhs(0.0)
        solver = DegreeBlockCGSolver(operator, degrees=degrees)
        expected = DirectSolver(sp.csc_matrix(galerkin.conductance)).solve(rhs)
        np.testing.assert_allclose(solver.solve(rhs), expected, rtol=0.0, atol=1e-9)

    def test_band_layout(self, order3_galerkin):
        session, galerkin = order3_galerkin
        degrees = np.asarray(galerkin.basis.degrees)
        solver = DegreeBlockCGSolver(
            galerkin.conductance_operator, degrees=degrees, band_degrees=2
        )
        sizes = solver.stats["band_sizes"]
        # Bands pair consecutive degrees: {0,1} then {2,3}.
        assert sizes == [int(np.sum(degrees <= 1)), int(np.sum(degrees >= 2))]
        per_degree = DegreeBlockCGSolver(
            galerkin.conductance_operator, degrees=degrees, band_degrees=1
        )
        assert per_degree.stats["band_sizes"] == [
            int(np.sum(degrees == d)) for d in range(int(degrees.max()) + 1)
        ]

    def test_explicit_matrix_input(self, order3_galerkin):
        session, galerkin = order3_galerkin
        degrees = tuple(int(d) for d in galerkin.basis.degrees)
        rhs = galerkin.rhs(0.0)
        solver = make_solver(
            galerkin.conductance,
            method="degree-block-cg",
            degrees=degrees,
            num_nodes=galerkin.num_nodes,
        )
        expected = DirectSolver(sp.csc_matrix(galerkin.conductance)).solve(rhs)
        np.testing.assert_allclose(solver.solve(rhs), expected, rtol=0.0, atol=1e-9)

    def test_warm_start_supported(self, order3_galerkin):
        session, galerkin = order3_galerkin
        degrees = tuple(int(d) for d in galerkin.basis.degrees)
        solver = DegreeBlockCGSolver(galerkin.conductance_operator, degrees=degrees)
        assert supports_warm_start(solver)
        rhs = galerkin.rhs(0.0)
        first = solver.solve(rhs)
        cold_iterations = solver.stats["last_iterations"]
        solver.solve(rhs, x0=first)
        assert solver.stats["last_iterations"] <= cold_iterations

    def test_validation_errors(self, order3_galerkin):
        session, galerkin = order3_galerkin
        operator = galerkin.conductance_operator
        with pytest.raises(SolverError, match="degrees"):
            DegreeBlockCGSolver(operator)
        with pytest.raises(SolverError, match="num_nodes"):
            DegreeBlockCGSolver(galerkin.conductance, degrees=(0, 1))
        with pytest.raises(SolverError, match="non-decreasing"):
            DegreeBlockCGSolver(operator, degrees=[1] + [0] * (operator.basis_size - 1))
        with pytest.raises(SolverError, match="band_degrees"):
            DegreeBlockCGSolver(
                operator,
                degrees=tuple(int(d) for d in galerkin.basis.degrees),
                band_degrees=0,
            )

    def test_engine_level_matches_direct(self, reference_sessions):
        paper, _ = reference_sessions
        direct = paper.run("opera", order=3)
        banded = paper.run("opera", order=3, solver="degree-block-cg")
        np.testing.assert_allclose(banded.mean(), direct.mean(), rtol=0.0, atol=1e-10)
        np.testing.assert_allclose(banded.std(), direct.std(), rtol=0.0, atol=1e-10)


# ---------------------------------------------------------------------------
# Sweep and CLI plumbing
# ---------------------------------------------------------------------------
class TestSweepScheme:
    def test_scheme_in_name_key_and_options(self):
        case = SweepCase(engine="opera", nodes=100, order=2, scheme="backward-euler")
        assert "backward-euler" in case.name
        assert case.key()[-1] == "backward-euler"
        assert case.run_options()["scheme"] == "backward-euler"

    def test_seed_identity_is_append_only(self):
        plain = SweepCase(engine="opera", nodes=100, order=2)
        assert plain.seed_identity() == ("opera", 100, 2, None, "paper")
        scheduled = SweepCase(engine="opera", nodes=100, order=2, scheme="backward-euler")
        assert scheduled.seed_identity() == ("opera", 100, 2, None, "paper", "backward-euler")

    def test_invalid_scheme_fails_at_construction(self):
        with pytest.raises(SchemeError):
            SweepCase(engine="opera", nodes=100, order=2, scheme="magic")

    def test_grid_threads_scheme_to_every_case(self):
        plan = SweepPlan.grid([100], engines=("opera", "montecarlo"), scheme="backward-euler")
        assert all(case.scheme == "backward-euler" for case in plan.cases)

    def test_grid_without_scheme_keeps_legacy_seeds(self):
        with_scheme = SweepPlan.grid([100], engines=("opera",), scheme="backward-euler")
        without = SweepPlan.grid([100], engines=("opera",))
        assert without.cases[0].scheme is None
        assert with_scheme.cases[0].seed != without.cases[0].seed


class TestCliScheme:
    def test_unknown_scheme_fails_fast(self, capsys):
        from repro.cli import main

        code = main(["analyze", "--synthetic-nodes", "60", "--scheme", "magic"])
        assert code == 2
        assert "registered schemes" in capsys.readouterr().err

    def test_sweep_scheme_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--nodes",
                "60",
                "--engines",
                "opera",
                "--steps",
                "3",
                "--scheme",
                "backward-euler",
            ]
        )
        assert code == 0
        assert "backward-euler" in capsys.readouterr().out
