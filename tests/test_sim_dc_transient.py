"""Tests for DC analysis, transient integration and result containers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SolverError
from repro.grid.netlist import PowerGridNetlist
from repro.grid.stamping import stamp
from repro.sim.dc import dc_operating_point, solve_dc
from repro.sim.mna import MNASystem
from repro.sim.results import DCResult, TransientResult
from repro.sim.transient import TransientConfig, run_transient, transient_analysis
from repro.waveforms import PeriodicPulse


@pytest.fixture(scope="module")
def rc_circuit():
    """Single-pole RC circuit with an analytic step response.

    Pad (Rs = 1 ohm, VDD = 1 V) -> node with C = 1 F to ground and a constant
    1 A drain switched on at t = 0: v(t) = v_inf + (v_0 - v_inf) exp(-t/RC).
    """
    netlist = PowerGridNetlist("rc")
    netlist.add_pad("n1", resistance=1.0, vdd=1.0)
    netlist.add_capacitor("n1", "0", 1.0)
    netlist.add_current_source("n1", 0.5)
    return stamp(netlist)


class TestDC:
    def test_manual_ladder_dc_drop(self, manual_netlist):
        """DC voltages of the hand-built ladder match nodal analysis by hand."""
        stamped = stamp(manual_netlist)
        result = dc_operating_point(stamped)
        i1 = manual_netlist.node_index("n1")
        i3 = manual_netlist.node_index("n3")
        total_current = 0.011
        # All the current flows through the pad and both series resistors.
        assert result.drops[i1] == pytest.approx(total_current * 0.1, rel=1e-9)
        assert result.drops[i3] == pytest.approx(total_current * (0.1 + 1.0 + 2.0), rel=1e-9)

    def test_worst_node_is_furthest_from_pad(self, manual_netlist):
        stamped = stamp(manual_netlist)
        result = dc_operating_point(stamped)
        assert result.worst_node() == manual_netlist.node_index("n3")

    def test_no_current_means_no_drop(self):
        netlist = PowerGridNetlist()
        netlist.add_pad("a", 0.1, 1.2)
        netlist.add_resistor("a", "b", 1.0)
        result = dc_operating_point(stamp(netlist))
        np.testing.assert_allclose(result.voltages, 1.2, atol=1e-12)

    def test_solve_dc_with_cg(self, small_stamped):
        direct = solve_dc(small_stamped.conductance, small_stamped.rhs(0.0))
        iterative = solve_dc(small_stamped.conductance, small_stamped.rhs(0.0), solver="cg")
        np.testing.assert_allclose(direct, iterative, rtol=1e-6, atol=1e-9)

    def test_dcresult_drops(self):
        result = DCResult(voltages=np.array([1.0, 0.9]), vdd=1.2)
        np.testing.assert_allclose(result.drops, [0.2, 0.3])
        assert result.worst_drop == pytest.approx(0.3)


class TestTransientConfig:
    def test_num_steps_rounding(self):
        config = TransientConfig(t_stop=1.0e-9, dt=0.3e-9)
        assert config.num_steps == 3

    def test_times_include_endpoints(self):
        config = TransientConfig(t_stop=1.0e-9, dt=0.25e-9)
        times = config.times()
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(1.0e-9)
        assert times.size == config.num_steps + 1

    def test_rejects_bad_settings(self):
        with pytest.raises(ValueError):
            TransientConfig(t_stop=1.0, dt=0.0)
        with pytest.raises(ValueError):
            TransientConfig(t_stop=0.0, dt=0.1, t_start=1.0)
        with pytest.raises(ValueError):
            TransientConfig(t_stop=1.0, dt=0.1, method="magic")


class TestTransientAccuracy:
    def test_rc_step_response_backward_euler(self, rc_circuit):
        """Backward Euler converges to the analytic single-pole response."""
        config = TransientConfig(t_stop=5.0, dt=0.01)
        result = transient_analysis(rc_circuit, config)
        # v(t) = 0.5 + 0.5 exp(-t)  (R = 1, C = 1, v_inf = 0.5, v_0 = 1... )
        # Initial condition is the DC solution with the drain on: v_0 = 0.5,
        # so the waveform should remain at 0.5 for all times.
        np.testing.assert_allclose(result.voltages[:, 0], 0.5, atol=1e-9)

    def test_rc_transient_follows_exponential(self):
        """Start from a DC point, then switch the load: exponential settling."""
        netlist = PowerGridNetlist("rc-switch")
        netlist.add_pad("n1", resistance=1.0, vdd=1.0)
        netlist.add_capacitor("n1", "0", 1.0)
        netlist.add_current_source(
            "n1",
            PeriodicPulse(
                low=0.0, high=0.5, delay=0.002, rise=0.0, fall=0.0, width=50.0, period=100.0
            ),
        )
        stamped = stamp(netlist)
        config = TransientConfig(t_stop=5.0, dt=0.002, method="trapezoidal")
        result = transient_analysis(stamped, config)
        t = result.times
        expected = 0.5 + 0.5 * np.exp(-np.maximum(t - 0.002, 0.0))
        # exclude the first instants where the pulse edge is being resolved
        np.testing.assert_allclose(result.voltages[5:, 0], expected[5:], atol=5e-3)

    def test_trapezoidal_more_accurate_than_backward_euler(self):
        netlist = PowerGridNetlist("rc-accuracy")
        netlist.add_pad("n1", resistance=1.0, vdd=1.0)
        netlist.add_capacitor("n1", "0", 1.0)
        netlist.add_current_source(
            "n1",
            PeriodicPulse(
                low=0.0, high=0.5, delay=0.05, rise=0.0, fall=0.0, width=50.0, period=100.0
            ),
        )
        stamped = stamp(netlist)
        dt = 0.05
        t_stop = 3.0
        exact = lambda t: 0.5 + 0.5 * np.exp(-np.maximum(t - 0.05, 0.0))
        be = transient_analysis(stamped, TransientConfig(t_stop=t_stop, dt=dt))
        trap = transient_analysis(
            stamped, TransientConfig(t_stop=t_stop, dt=dt, method="trapezoidal")
        )
        be_error = np.max(np.abs(be.voltages[5:, 0] - exact(be.times[5:])))
        trap_error = np.max(np.abs(trap.voltages[5:, 0] - exact(trap.times[5:])))
        assert trap_error < be_error

    def test_steady_state_reached_with_constant_load(self, manual_netlist):
        stamped = stamp(manual_netlist)
        config = TransientConfig(t_stop=100e-12, dt=1e-12)
        result = transient_analysis(stamped, config)
        dc = dc_operating_point(stamped)
        np.testing.assert_allclose(result.voltages[-1], dc.voltages, rtol=1e-6)

    def test_grid_transient_drops_bounded(self, small_stamped, fast_transient):
        result = transient_analysis(small_stamped, fast_transient)
        assert result.worst_drop() < 0.10 * small_stamped.vdd
        assert np.all(result.drops >= -1e-9)


class TestTransientMechanics:
    def test_callback_called_per_step(self, small_stamped, fast_transient):
        seen = []
        transient_analysis(small_stamped, fast_transient, callback=lambda k, t, x: seen.append(k))
        assert seen == list(range(fast_transient.num_steps + 1))

    def test_streaming_mode_stores_nothing(self, small_stamped, fast_transient):
        result = transient_analysis(small_stamped, fast_transient, store=False)
        assert result.voltages is None
        with pytest.raises(ValueError):
            _ = result.drops

    def test_explicit_initial_condition(self, rc_circuit):
        config = TransientConfig(t_stop=1.0, dt=0.5)
        x0 = np.array([0.9])
        result = run_transient(
            rc_circuit.conductance,
            rc_circuit.capacitance,
            rc_circuit.rhs,
            config,
            x0=x0,
            vdd=1.0,
        )
        assert result.voltages[0, 0] == pytest.approx(0.9)

    def test_wrong_initial_condition_shape_rejected(self, rc_circuit):
        config = TransientConfig(t_stop=1.0, dt=0.5)
        with pytest.raises(SolverError):
            run_transient(
                rc_circuit.conductance,
                rc_circuit.capacitance,
                rc_circuit.rhs,
                config,
                x0=np.zeros(3),
            )

    def test_mismatched_matrix_shapes_rejected(self):
        G = sp.identity(3, format="csr")
        C = sp.identity(4, format="csr")
        with pytest.raises(SolverError):
            run_transient(G, C, lambda t: np.zeros(3), TransientConfig(t_stop=1.0, dt=0.5))


class TestTransientResult:
    def make(self):
        times = np.linspace(0, 1e-9, 6)
        voltages = np.linspace(1.2, 1.0, 6)[:, None] * np.ones((1, 3))
        voltages[:, 2] -= 0.05
        return TransientResult(times, voltages, vdd=1.2)

    def test_shapes(self):
        result = self.make()
        assert result.num_steps == 5
        assert result.num_nodes == 3

    def test_peak_drop_per_node(self):
        result = self.make()
        peaks = result.peak_drop_per_node()
        assert peaks.shape == (3,)
        assert peaks[2] == pytest.approx(0.25)

    def test_worst_node_and_time(self):
        result = self.make()
        assert result.worst_node() == 2
        assert result.time_of_peak_drop(2) == pytest.approx(1e-9)

    def test_at_time_interpolates(self):
        result = self.make()
        mid = result.at_time(0.5e-9)
        assert mid.shape == (3,)
        assert mid[0] == pytest.approx(1.1)

    def test_node_series(self):
        result = self.make()
        assert result.node_series(1).shape == (6,)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TransientResult(np.linspace(0, 1, 3), np.zeros((4, 2)), vdd=1.0)


class TestMNASystem:
    def test_from_netlist_matches_stamped(self, manual_netlist):
        system = MNASystem.from_netlist(manual_netlist)
        stamped = stamp(manual_netlist)
        np.testing.assert_allclose(system.conductance.toarray(), stamped.conductance.toarray())
        assert system.vdd == stamped.vdd

    def test_dc_and_transient_consistent(self, manual_netlist):
        system = MNASystem.from_netlist(manual_netlist)
        dc = system.dc()
        tr = system.transient(TransientConfig(t_stop=50e-12, dt=1e-12))
        np.testing.assert_allclose(tr.voltages[-1], dc.voltages, rtol=1e-6)

    def test_node_index_lookup(self, manual_netlist):
        system = MNASystem.from_netlist(manual_netlist)
        assert system.node_names[system.node_index("n2")] == "n2"
        with pytest.raises(SolverError):
            system.node_index("zzz")

    def test_node_names_length_checked(self):
        G = sp.identity(2, format="csr")
        with pytest.raises(SolverError):
            MNASystem(G, G, lambda t: np.zeros(2), node_names=("a",))
