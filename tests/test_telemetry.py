"""Tests for :mod:`repro.telemetry`: contexts, traces, reports, sweep wiring.

Covers the acceptance criteria of the observability PR:

* the disabled default is a shared no-op (no per-call allocation, no state);
* spans nest, time monotonically and group into phases;
* per-step solver stats merge associatively and round-trip through dicts;
* the JSON-lines trace exporter writes schema-versioned events that the
  validator accepts and the reader rejects when foreign;
* the trace report's per-phase totals are consistent with the run wall time;
* sweep campaigns ship per-case summaries through every results backend and
  merge them deterministically into the benchmark artifact.
"""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    NULL,
    REQUIRED_FIELDS,
    TRACE_SCHEMA,
    NullTelemetry,
    StepStats,
    Telemetry,
    current_telemetry,
    disable_telemetry,
    enable_telemetry,
    merge_summaries,
    phase_summary,
    profile,
    read_trace,
    render_report,
    trace_events,
    validate_trace,
    write_trace,
)
from repro.telemetry.validate import main as validate_main


# ---------------------------------------------------------------------------
# Core context
# ---------------------------------------------------------------------------
class TestNullTelemetry:
    def test_disabled_is_the_default(self):
        assert current_telemetry() is NULL
        assert not NULL.enabled

    def test_null_span_is_shared_and_reentrant(self):
        first = NULL.span("a", phase="step")
        second = NULL.span("b")
        assert first is second  # one stateless instance, no allocation
        with first:
            with second:
                pass

    def test_null_methods_are_noops(self):
        NULL.count("x", 3)
        NULL.gauge("y", 1.0)
        NULL.record_step_stats(StepStats(steps=1))
        assert NULL.pop_step_stats() is None

    def test_null_has_no_instance_dict(self):
        assert not hasattr(NullTelemetry(), "__dict__")


class TestTelemetryContext:
    def test_spans_nest_and_record_depth(self):
        tele = Telemetry()
        with tele.span("outer", phase="run"):
            with tele.span("inner", phase="factor"):
                pass
        by_name = {event["name"]: event for event in tele.events}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        # Inner closes first, so sequence numbers order by completion.
        assert by_name["inner"]["seq"] < by_name["outer"]["seq"]
        assert by_name["outer"]["duration_s"] >= by_name["inner"]["duration_s"] >= 0.0

    def test_phase_totals_group_and_sort(self):
        tele = Telemetry()
        with tele.span("a", phase="factor"):
            pass
        with tele.span("b", phase="factor"):
            pass
        with tele.span("c"):
            pass
        totals = tele.phase_totals()
        assert list(totals) == sorted(totals)
        assert totals["factor"]["count"] == 2
        assert totals["other"]["count"] == 1

    def test_counters_and_gauges(self):
        tele = Telemetry()
        tele.count("solves")
        tele.count("solves", 2)
        tele.gauge("residual", 1e-9)
        assert tele.counters["solves"].value == 3
        assert tele.gauges["residual"].value == 1e-9

    def test_step_stats_pending_drain(self):
        tele = Telemetry()
        assert tele.pop_step_stats() is None
        tele.record_step_stats(StepStats(steps=2, solves=2))
        tele.record_step_stats(StepStats(steps=3, solves=3))
        pending = tele.pop_step_stats()
        assert pending.steps == 5 and pending.solves == 5
        assert tele.pop_step_stats() is None  # drained
        assert tele.step_stats.steps == 5  # the cumulative aggregate remains

    def test_summary_is_json_safe_and_sorted(self):
        tele = Telemetry()
        with tele.span("a", phase="step"):
            pass
        tele.count("solves", 4)
        tele.record_step_stats(StepStats(steps=4, solves=4))
        summary = tele.summary()
        assert list(summary) == sorted(summary)
        json.dumps(summary)  # must not raise
        assert summary["spans"] == 1
        assert summary["step_stats"]["steps"] == 4

    def test_profile_restores_previous_context(self):
        outer = enable_telemetry()
        try:
            with profile() as inner:
                assert current_telemetry() is inner
                assert inner is not outer
            assert current_telemetry() is outer
        finally:
            disable_telemetry()
        assert current_telemetry() is NULL

    def test_enable_disable_round_trip(self):
        tele = enable_telemetry()
        assert current_telemetry() is tele
        assert disable_telemetry() is tele
        assert current_telemetry() is NULL


class TestStepStats:
    def test_record_solve_tracks_warm_cold_and_residuals(self):
        stats = StepStats()
        stats.record_solve(True, iterations=5, residual=1e-8)
        stats.record_solve(False, iterations=3, residual=1e-6)
        assert stats.solves == 2
        assert stats.warm_starts == 1 and stats.cold_starts == 1
        assert stats.total_iterations == 8
        assert stats.last_relative_residual == 1e-6
        assert stats.max_relative_residual == 1e-6
        assert stats.warm_start_hit_rate == 0.5

    def test_merge_is_additive_and_keeps_extrema(self):
        first = StepStats(steps=2, solves=2, total_iterations=10)
        first.record_solve(True, residual=1e-7)
        second = StepStats(steps=3, solves=3, total_iterations=5)
        second.record_solve(False, residual=1e-5)
        first.merge(second)
        assert first.steps == 5
        assert first.solves == 7  # (2 + 1 recorded) + (3 + 1 recorded)
        assert first.max_relative_residual == 1e-5
        assert first.last_relative_residual == 1e-5  # the later run's last

    def test_dict_round_trip_ignores_derived_keys(self):
        stats = StepStats(steps=4, solves=4, warm_starts=3, cold_starts=1)
        payload = stats.to_dict()
        assert list(payload) == sorted(payload)
        assert payload["warm_start_hit_rate"] == 0.75
        restored = StepStats.from_dict(payload)
        assert restored == stats

    def test_empty_rates_are_none(self):
        stats = StepStats()
        assert stats.warm_start_hit_rate is None
        assert stats.mean_iterations is None


class TestMergeSummaries:
    def _summary(self, phase_s: float, solves: int) -> dict:
        tele = Telemetry()
        with tele.span("work", phase="step"):
            pass
        tele.events[-1]["duration_s"] = phase_s  # pin for exact arithmetic
        tele.count("solves", solves)
        tele.record_step_stats(StepStats(steps=solves, solves=solves))
        return tele.summary()

    def test_merge_sums_deterministically(self):
        merged = merge_summaries([self._summary(0.25, 2), self._summary(0.5, 3)])
        assert merged["cases"] == 2
        assert merged["phases"]["step"] == {"count": 2, "total_s": 0.75}
        assert merged["counters"]["solves"] == 5
        assert merged["step_stats"]["steps"] == 5
        assert list(merged) == sorted(merged)

    def test_merge_of_nothing_is_none(self):
        assert merge_summaries([]) is None
        assert merge_summaries([None, {}]) is None


# ---------------------------------------------------------------------------
# Trace export / validation / report
# ---------------------------------------------------------------------------
@pytest.fixture()
def traced(tmp_path):
    """A small context with spans, metrics and step stats, written to disk."""
    tele = Telemetry()
    with tele.span("engine.opera", phase="run", engine="opera"):
        with tele.span("solver.factor", phase="factor", solver="direct"):
            pass
        with tele.span("stepping.march", phase="step"):
            pass
    tele.count("solves", 4)
    tele.gauge("residual", 2e-9)
    tele.record_step_stats(StepStats(steps=4, solves=4, cold_starts=4))
    path = write_trace(tele, tmp_path / "trace.jsonl")
    return tele, path


class TestTrace:
    def test_every_event_carries_the_required_fields(self, traced):
        tele, path = traced
        events = read_trace(path)
        for event in events:
            for field in REQUIRED_FIELDS:
                assert field in event, (event, field)
            assert event["schema"] == TRACE_SCHEMA
        assert events[0]["type"] == "meta"
        types = {event["type"] for event in events}
        assert {"meta", "span", "counter", "gauge", "step_stats"} <= types

    def test_trace_events_match_written_lines(self, traced):
        tele, path = traced
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        regenerated = trace_events(tele)
        # elapsed_s moves between export calls; identity is (seq, type, name).
        assert [(e["seq"], e["type"], e["name"]) for e in lines] == [
            (e["seq"], e["type"], e["name"]) for e in regenerated
        ]

    def test_reader_rejects_foreign_schema(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"schema": "other/v9", "seq": 0}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            read_trace(bad)

    def test_reader_rejects_malformed_json(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_trace(bad)


class TestValidate:
    def test_valid_trace_has_no_problems(self, traced):
        _, path = traced
        assert validate_trace(path) == []
        assert validate_main([str(path)]) == 0

    def test_missing_fields_and_bad_schema_are_reported(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        foreign = {"schema": "other/v9", "seq": 0, "type": "meta", "name": "x", "t_s": 0.0}
        bare_span = {"schema": TRACE_SCHEMA, "seq": 1, "type": "span", "name": "y", "t_s": 0.0}
        bad.write_text(json.dumps(foreign) + "\n" + json.dumps(bare_span) + "\n")
        problems = validate_trace(bad)
        assert any("schema" in problem for problem in problems)
        assert any("duration_s" in problem for problem in problems)
        assert validate_main([str(bad)]) == 1

    def test_empty_and_missing_files_fail(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert validate_trace(empty)
        assert validate_trace(tmp_path / "nope.jsonl")


class TestReport:
    def test_phase_summary_top_level_spans(self, traced):
        tele, path = traced
        summary = phase_summary(read_trace(path))
        assert summary["run"]["count"] == 1
        assert summary["factor"]["count"] == 1
        # Only the depth-0 run span contributes to top-level coverage.
        assert summary["run"]["top_s"] == pytest.approx(summary["run"]["total_s"])
        assert summary["factor"]["top_s"] == 0.0

    def test_report_totals_consistent_with_wall_time(self, traced):
        tele, path = traced
        events = read_trace(path)
        meta = events[0]
        top_total = sum(
            event["duration_s"]
            for event in events
            if event["type"] == "span" and event.get("depth", 0) == 0
        )
        # Top-level spans cannot exceed the recorded wall time.
        assert top_total <= meta["attrs"]["elapsed_s"]
        text = render_report(events)
        assert "per-phase totals" in text
        assert "step stats" in text
        assert "solver" in text

    def test_report_of_empty_trace(self):
        assert render_report([]) == "trace: no events"


# ---------------------------------------------------------------------------
# Sweep integration
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_plan():
    from repro.sim.transient import TransientConfig
    from repro.sweep import SweepPlan

    return SweepPlan.grid(
        [16],
        engines=["opera", "montecarlo"],
        orders=[1],
        samples=6,
        transient=TransientConfig(t_stop=1.0e-9, dt=0.25e-9),
    )


class TestSweepTelemetry:
    def test_cases_ship_summaries_and_merge_in_plan_order(self, tiny_plan):
        from repro.sweep import SweepRunner

        outcome = SweepRunner(workers=1, telemetry=True).run(tiny_plan)
        for result in outcome:
            assert result.telemetry is not None
            assert result.telemetry["phases"]["run"]["count"] >= 1
            assert "step_stats" in result.telemetry
        merged = outcome.telemetry_summary()
        assert merged["cases"] == len(tiny_plan.cases)
        json.dumps(merged)

    def test_disabled_runner_ships_nothing(self, tiny_plan):
        from repro.sweep import SweepRunner

        outcome = SweepRunner(workers=1).run(tiny_plan)
        assert all(result.telemetry is None for result in outcome)
        assert outcome.telemetry_summary() is None

    def test_summaries_survive_the_sharded_store(self, tiny_plan, tmp_path):
        from repro.sweep import ShardedNpzBackend, SweepRunner

        store = ShardedNpzBackend(tmp_path / "store")
        SweepRunner(workers=1, telemetry=True).run(tiny_plan, store=store)
        # A fresh runner (telemetry off) resumes entirely from disk.
        reopened = ShardedNpzBackend(tmp_path / "store")
        outcome = SweepRunner(workers=1).resume(tiny_plan, reopened)
        assert outcome.reused == len(tiny_plan.cases)
        for result in outcome:
            assert result.telemetry is not None
            assert result.telemetry["phases"]["run"]["count"] >= 1
        assert outcome.telemetry_summary()["cases"] == len(tiny_plan.cases)

    def test_bench_record_carries_merged_telemetry(self, tiny_plan):
        from repro.sweep import BenchRecord, SweepRunner, record_from_outcome

        outcome = SweepRunner(workers=1, telemetry=True).run(tiny_plan)
        record = record_from_outcome(outcome)
        restored = BenchRecord.from_json(record.to_json())
        assert restored.telemetry["cases"] == len(tiny_plan.cases)
        assert all("telemetry" in case for case in restored.cases)

    def test_record_without_telemetry_omits_the_field(self, tiny_plan):
        from repro.sweep import BenchRecord, SweepRunner, record_from_outcome

        outcome = SweepRunner(workers=1).run(tiny_plan)
        record = record_from_outcome(outcome)
        payload = json.loads(record.to_json())
        assert "telemetry" not in payload
        assert BenchRecord.from_dict(payload).telemetry is None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestTraceCli:
    COMMON = ["analyze", "--synthetic-nodes", "40", "--t-stop", "1e-9", "--dt", "2.5e-10"]

    def test_analyze_profile_writes_a_valid_trace(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        trace = tmp_path / "run.jsonl"
        code = cli_main([*self.COMMON, "--order", "1", "--profile", str(trace)])
        assert code == 0
        assert "wrote telemetry trace" in capsys.readouterr().out
        assert validate_trace(trace) == []
        # Profiling is scoped: the process-wide default is restored.
        assert current_telemetry() is NULL

    def test_trace_report_command(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        trace = tmp_path / "run.jsonl"
        assert cli_main([*self.COMMON, "--order", "1", "--profile", str(trace)]) == 0
        capsys.readouterr()
        assert cli_main(["trace-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-phase totals" in out
        assert "run" in out

    def test_trace_report_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert cli_main(["trace-report", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_report_missing_file(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["trace-report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
