"""Tests for batched sweep scheduling: topology groups, stacked marches,
the symbolic/numeric factorisation split, and shared-memory result transfer."""

from __future__ import annotations

import dataclasses
import glob

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SolverError
from repro.sim import TransientConfig
from repro.sim.linear import (
    DirectSolver,
    canonical_csc,
    clear_pattern_cache,
    factorization_counters,
    reset_factorization_counters,
    sparsity_fingerprint,
)
from repro.stepping.adapters import BlockDiagonalSolver
from repro.sweep import (
    ShardedNpzBackend,
    SweepPlan,
    SweepRunner,
    check_throughput,
    group_cases,
    record_from_outcome,
    topology_key,
)
from repro.sweep.runner import _SessionCache
from repro.sweep.shm import ShmCaseResult, discard_result, pack_result, unpack_result

FAST_TRANSIENT = TransientConfig(t_stop=1.2e-9, dt=0.2e-9)

#: A multi-engine corner plan on one topology: six stackable cases (three
#: scenarios x two engines that share the decoupled march), three
#: deterministic replicas.
CORNER_PLAN = SweepPlan.grid(
    [90],
    engines=("opera", "decoupled", "deterministic"),
    orders=(2,),
    corners=("rhs-only", "rhs-wide", "rhs-tight"),
    transient=FAST_TRANSIENT,
    base_seed=11,
)


def _shm_segments() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


def _assert_bit_identical(expected, actual):
    for ref, cand in zip(expected, actual):
        assert ref.name == cand.name
        assert ref.times.tobytes() == cand.times.tobytes(), ref.name
        assert ref.mean.tobytes() == cand.mean.tobytes(), ref.name
        assert ref.std.tobytes() == cand.std.tobytes(), ref.name
        assert ref.worst_drop == cand.worst_drop, ref.name
        assert ref.max_std == cand.max_std, ref.name


class TestGrouping:
    def test_topology_key_ignores_engine_corner_and_order(self):
        cases = CORNER_PLAN.cases
        assert len({topology_key(case) for case in cases}) == 1

    def test_groups_split_by_grid_identity(self):
        plan = SweepPlan.grid(
            [60, 90],
            engines=("opera",),
            orders=(2,),
            corners=("rhs-only", "rhs-wide"),
            transient=FAST_TRANSIENT,
        )
        groups = group_cases(plan.cases)
        assert len(groups) == 2
        # plan order is preserved within each group
        for group in groups:
            indices = [plan.cases.index(case) for case in group]
            assert indices == sorted(indices)


class TestBatchedBitIdentity:
    @pytest.fixture(scope="class")
    def reference(self):
        return SweepRunner(workers=1, keep_statistics=True).run(CORNER_PLAN)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_batched_matches_unbatched(self, reference, workers):
        batched = SweepRunner(workers=workers, keep_statistics=True, batch=True).run(CORNER_PLAN)
        _assert_bit_identical(reference, batched)
        assert batched.batched

    def test_multi_grid_batched_matches(self):
        plan = SweepPlan.grid(
            [60, 90],
            engines=("opera", "decoupled"),
            orders=(2,),
            corners=("rhs-only", "rhs-tight"),
            transient=FAST_TRANSIENT,
            base_seed=3,
        )
        reference = SweepRunner(workers=1, keep_statistics=True).run(plan)
        batched = SweepRunner(workers=2, keep_statistics=True, batch=True).run(plan)
        _assert_bit_identical(reference, batched)

    def test_sampled_engines_ride_along_unchanged(self):
        plan = SweepPlan.grid(
            [60],
            engines=("opera", "montecarlo"),
            orders=(2,),
            samples=8,
            corners=("rhs-only",),
            transient=FAST_TRANSIENT,
            base_seed=5,
        )
        reference = SweepRunner(workers=1, keep_statistics=True).run(plan)
        batched = SweepRunner(workers=1, keep_statistics=True, batch=True).run(plan)
        _assert_bit_identical(reference, batched)

    def test_interrupted_store_resumes_batched(self, reference, tmp_path):
        # Half the plan lands in the store unbatched (the "killed" run);
        # the batched resume executes only the remainder, and the merged
        # campaign is bit-identical to the uninterrupted reference.
        half = dataclasses.replace(
            CORNER_PLAN, cases=CORNER_PLAN.cases[: len(CORNER_PLAN.cases) // 2]
        )
        runner = SweepRunner(workers=1, keep_statistics=True)
        runner.run(half, store=ShardedNpzBackend(tmp_path, shard_size=1))

        resumed = SweepRunner(workers=1, keep_statistics=True, batch=True).resume(
            CORNER_PLAN, ShardedNpzBackend(tmp_path, shard_size=1)
        )
        assert resumed.reused == len(half.cases)
        _assert_bit_identical(reference, resumed)


class TestScenarioDedup:
    @pytest.fixture(scope="class")
    def batched(self):
        return SweepRunner(workers=1, keep_statistics=True, batch=True).run(CORNER_PLAN)

    def test_replicas_flag_reused_factorization(self, batched):
        flags = {result.name: result.reused_factorization for result in batched}
        # exactly two scheduler leaders: the first stacked case and the
        # first deterministic case
        fresh = [name for name, reused in flags.items() if not reused]
        assert len(fresh) == 2
        assert any(name.startswith("opera") for name in fresh)
        assert any(name.startswith("deterministic") for name in fresh)

    def test_record_round_trips_the_flag(self, batched):
        record = record_from_outcome(batched)
        by_name = {case["name"]: case for case in record.cases}
        for result in batched:
            assert by_name[result.name].get("reused_factorization") == bool(
                result.reused_factorization
            )

    def test_aggregates_surface_reuse_and_throughput(self, batched):
        aggregates = batched.aggregates()
        # 7 of 9 cases reuse: 2 stacked replicas per chaos engine + the
        # 2 replicated deterministic corners + the decoupled leader twin.
        assert aggregates["overall"]["cases_reusing_factorization"] == 7
        assert aggregates["deterministic"]["cases_reusing_factorization"] == 2
        for summary in aggregates.values():
            assert summary["cases_per_second"] > 0

    def test_unbatched_aggregates_omit_reuse_count(self):
        outcome = SweepRunner(workers=1, keep_statistics=True).run(CORNER_PLAN)
        for summary in outcome.aggregates().values():
            assert "cases_reusing_factorization" not in summary

    def test_record_reports_throughput(self, batched):
        record = record_from_outcome(batched)
        assert record.config["batched"] is True
        assert record.config["cases_per_second"] == pytest.approx(
            len(CORNER_PLAN.cases) / batched.wall_time
        )

    def test_throughput_gate_clamps_fast_runs(self, batched):
        record = record_from_outcome(batched)
        fast = check_throughput(record, min_cases_per_second=1e12, min_seconds=3600.0)
        assert fast.ok  # wall under the clamp passes any floor
        slow = check_throughput(record, min_cases_per_second=1e12, min_seconds=0.0)
        assert not slow.ok
        assert "cases/s" in slow.format()

    def test_stacked_telemetry_counter(self):
        profiled = SweepRunner(
            workers=1, keep_statistics=True, batch=True, telemetry=True
        ).run(CORNER_PLAN)
        counters = (profiled.telemetry_summary() or {}).get("counters", {})
        # three scenarios share one march; engine twins dedup away
        assert counters.get("batched_cases") == 3


class TestSessionCacheLru:
    def _case(self, nodes: int):
        return dataclasses.replace(CORNER_PLAN.cases[0], nodes=nodes)

    def test_evicts_least_recent_grid(self):
        cache = _SessionCache(max_grids=2)
        for nodes in (30, 40):
            cache.session_for(self._case(nodes), FAST_TRANSIENT)
        assert len(cache) == 2
        cache.session_for(self._case(30), FAST_TRANSIENT)  # refresh 30
        cache.session_for(self._case(50), FAST_TRANSIENT)  # evicts 40
        keys = {key[0] for key in cache._grids}
        assert keys == {30, 50}

    def test_sibling_sessions_share_grid_resources(self):
        cache = _SessionCache(max_grids=2)
        first = cache.session_for(CORNER_PLAN.cases[0], FAST_TRANSIENT)
        other = dataclasses.replace(CORNER_PLAN.cases[0], corner="rhs-tight")
        second = cache.session_for(other, FAST_TRANSIENT)
        assert second is not first
        assert second.netlist is first.netlist
        assert second.stamped is first.stamped


class TestSymbolicNumericSplit:
    def _matrix(self, seed: int) -> sp.csr_matrix:
        rng = np.random.default_rng(7)
        base = sp.random(40, 40, density=0.12, random_state=rng, format="csr")
        matrix = (base + base.T + 80.0 * sp.eye(40)).tocsr()
        matrix.data = matrix.data * np.random.default_rng(seed).uniform(0.5, 1.5, matrix.nnz)
        return matrix

    def test_fingerprint_is_values_free(self):
        a, b = self._matrix(1), self._matrix(2)
        assert sparsity_fingerprint(a) == sparsity_fingerprint(b)
        assert a.data.tobytes() != b.data.tobytes()

    def test_canonical_csc_bitwise_matches_plain_conversion(self):
        clear_pattern_cache()
        for seed in (1, 2, 3):
            matrix = self._matrix(seed)
            cached = canonical_csc(matrix)
            plain = sp.csc_matrix(matrix)
            assert cached.data.tobytes() == plain.data.tobytes()
            assert np.array_equal(cached.indices, plain.indices)
            assert np.array_equal(cached.indptr, plain.indptr)

    def test_refactor_counts_and_matches_fresh_solver(self):
        clear_pattern_cache()
        reset_factorization_counters()
        first = DirectSolver(self._matrix(1))
        second_matrix = self._matrix(2)
        refactored = first.refactor(second_matrix)
        counters = factorization_counters()
        assert counters["symbolic_analysis"] == 1
        assert counters["symbolic_reuse"] == 1
        assert counters["numeric_refactor"] == 1
        rhs = np.random.default_rng(0).normal(size=40)
        clear_pattern_cache()
        fresh = DirectSolver(second_matrix)
        assert refactored.solve(rhs).tobytes() == fresh.solve(rhs).tobytes()

    def test_refactor_rejects_shape_mismatch(self):
        solver = DirectSolver(self._matrix(1))
        with pytest.raises(SolverError, match="shape"):
            solver.refactor(sp.eye(10, format="csr"))


class TestSpanSolver:
    def test_spans_match_per_case_solves_bitwise(self):
        rng = np.random.default_rng(3)
        base = sp.random(25, 25, density=0.2, random_state=rng, format="csr")
        inner = DirectSolver((base + base.T + 50.0 * sp.eye(25)).tocsr())
        spans = (2, 6, 1, 4)
        tracks = sum(spans)
        rhs = rng.normal(size=tracks * 25)

        split = BlockDiagonalSolver(inner, tracks=tracks, num_nodes=25, spans=spans).solve(rhs)

        blocks = rhs.reshape(tracks, 25)
        offset = 0
        expected = np.empty_like(blocks)
        for count in spans:
            # exactly the unbatched call: one solve_many per case's tracks
            expected[offset : offset + count] = inner.solve_many(
                blocks[offset : offset + count].T
            ).T
            offset += count
        assert split.tobytes() == expected.reshape(-1).tobytes()

    def test_spans_must_cover_tracks(self):
        inner = DirectSolver(sp.eye(5, format="csr"))
        with pytest.raises(SolverError, match="spans"):
            BlockDiagonalSolver(inner, tracks=4, num_nodes=5, spans=(2, 3))


class TestSharedMemoryTransfer:
    def _result(self):
        outcome = SweepRunner(workers=1, keep_statistics=True).run(
            dataclasses.replace(CORNER_PLAN, cases=CORNER_PLAN.cases[:1])
        )
        return next(iter(outcome))

    def test_pack_unpack_round_trip_leaves_no_segment(self):
        result = self._result()
        before = _shm_segments()
        packed = pack_result(result)
        assert isinstance(packed, ShmCaseResult)
        assert packed.result.mean is None  # arrays travel out-of-band
        restored = unpack_result(packed)
        assert restored.mean.tobytes() == result.mean.tobytes()
        assert restored.std.tobytes() == result.std.tobytes()
        assert _shm_segments() == before

    def test_discard_unlinks_unconsumed_segment(self):
        before = _shm_segments()
        packed = pack_result(self._result())
        assert isinstance(packed, ShmCaseResult)
        discard_result(packed)
        assert _shm_segments() == before
        # double discard / unpack after teardown degrade gracefully
        discard_result(packed)
        assert unpack_result(packed).mean is None

    def test_statistics_free_results_skip_shm(self):
        outcome = SweepRunner(workers=1).run(
            dataclasses.replace(CORNER_PLAN, cases=CORNER_PLAN.cases[:1])
        )
        result = next(iter(outcome))
        assert pack_result(result) is result

    def test_pooled_sweep_leaves_no_segments(self):
        before = _shm_segments()
        outcome = SweepRunner(workers=2, keep_statistics=True).run(CORNER_PLAN)
        assert outcome.executed == len(CORNER_PLAN.cases)
        assert _shm_segments() == before
