"""Tests for the partition subsystem: partitioner, Schur reduction,
Schwarz preconditioning, the hierarchical engine and its wiring."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import Analysis, engine_names, solver_names
from repro.cli import main as cli_main
from repro.errors import AnalysisError, SolverError
from repro.grid import GridSpec, generate_power_grid, stamp
from repro.grid.generator import spec_for_node_count
from repro.partition import (
    AdditiveSchwarzPreconditioner,
    GridPartition,
    SchurComplement,
    SchurSolver,
    augment_partition,
    coordinate_bisection,
    default_atom_count,
    graph_bisection,
    node_coordinates,
    partition_matrix,
    partition_system,
    split_groups,
    system_partition,
    union_structure,
)
from repro.sim.linear import DirectSolver, make_solver
from repro.sweep import SweepPlan, SweepRunner


@pytest.fixture(scope="module")
def medium_stamped():
    """A 20x20 two-layer grid: big enough for meaningful 8-way partitions."""
    return stamp(generate_power_grid(GridSpec(nx=20, ny=20, seed=3, calibrate=False)))


@pytest.fixture(scope="module")
def partition_session():
    """A small shared analysis session for engine-level comparisons."""
    return Analysis.from_spec(500, seed=5).with_transient(t_stop=1.6e-9, dt=0.2e-9)


# ---------------------------------------------------------------------------
# Partitioner
# ---------------------------------------------------------------------------
class TestPartitioner:
    def test_coordinate_bisection_balances_and_is_deterministic(self):
        coords = np.array([(i, j) for i in range(10) for j in range(10)], dtype=float)
        first = coordinate_bisection(coords, 4)
        second = coordinate_bisection(coords, 4)
        assert np.array_equal(first, second)
        counts = np.bincount(first, minlength=4)
        assert counts.sum() == 100
        assert counts.min() >= 20

    def test_graph_bisection_covers_all_nodes(self, medium_stamped):
        structure = union_structure(medium_stamped.conductance, medium_stamped.capacitance)
        assignments = graph_bisection(structure, 3)
        assert assignments.shape == (medium_stamped.num_nodes,)
        assert set(np.unique(assignments)) == {0, 1, 2}

    @pytest.mark.parametrize("num_parts", [1, 2, 3, 4, 8])
    def test_partition_system_is_a_separator(self, medium_stamped, num_parts):
        partition = partition_system(medium_stamped, num_parts)
        assert partition.num_parts == num_parts
        structure = union_structure(medium_stamped.conductance, medium_stamped.capacitance)
        partition.validate_against(structure)  # raises on a bad separator
        covered = np.sort(np.concatenate([partition.boundary, *partition.interiors]))
        assert np.array_equal(covered, np.arange(medium_stamped.num_nodes))

    def test_single_part_has_empty_interface(self, medium_stamped):
        partition = partition_system(medium_stamped, 1)
        assert partition.boundary.size == 0
        assert partition.interior_sizes == (medium_stamped.num_nodes,)

    def test_node_coordinates_parses_generator_names(self):
        coords = node_coordinates(("n0_1_2", "n1_0_5"))
        assert np.array_equal(coords, np.array([[1.0, 2.0], [0.0, 5.0]]))
        assert node_coordinates(("n0_1_2", "other")) is None

    def test_graph_fallback_for_unparseable_names(self):
        # A ring graph with opaque node names exercises the BFS path.
        n = 24
        rows = np.arange(n)
        cols = (rows + 1) % n
        matrix = sp.coo_matrix((np.ones(n), (rows, cols)), shape=(n, n)) + sp.eye(n)
        matrix = matrix + matrix.T
        partition = partition_matrix(matrix.tocsr(), 2)
        assert partition.num_parts == 2
        partition.validate_against(matrix.tocsr())

    def test_partition_rejects_bad_part_counts(self, medium_stamped):
        with pytest.raises(AnalysisError):
            partition_system(medium_stamped, 0)

    def test_augment_partition_lifts_every_chaos_block(self, medium_stamped):
        partition = partition_system(medium_stamped, 2)
        lifted = augment_partition(partition, 3)
        n = medium_stamped.num_nodes
        assert lifted.num_nodes == 3 * n
        assert lifted.boundary.size == 3 * partition.boundary.size
        expected = np.sort(np.concatenate([partition.boundary + j * n for j in range(3)]))
        assert np.array_equal(lifted.boundary, expected)

    def test_partition_stats_are_json_friendly(self, medium_stamped):
        import json

        stats = partition_system(medium_stamped, 4).stats()
        assert json.loads(json.dumps(stats)) == stats

    def test_default_atom_count_scales_with_size(self):
        assert default_atom_count(50) == 1
        assert default_atom_count(500) == 2
        assert default_atom_count(2000) == 4
        assert default_atom_count(50_000) == 8

    def test_grid_partition_rejects_partial_cover(self):
        with pytest.raises(AnalysisError):
            GridPartition(
                num_nodes=4,
                interiors=(np.array([0, 1]),),
                boundary=np.array([2]),
                assignments=np.zeros(4, dtype=int),
            )

    def test_split_groups_is_contiguous_and_even(self):
        assert split_groups([0, 1, 2, 3, 4], 2) == [[0, 1, 2], [3, 4]]
        assert split_groups([0, 1], 8) == [[0], [1]]
        assert split_groups([0, 1, 2], 1) == [[0, 1, 2]]


# ---------------------------------------------------------------------------
# Schur complement reduction
# ---------------------------------------------------------------------------
class TestSchur:
    @pytest.mark.parametrize("num_parts", [1, 2, 3, 4, 8])
    def test_matches_direct_solver(self, medium_stamped, num_parts):
        conductance = medium_stamped.conductance
        rhs = medium_stamped.rhs(1.0e-9)
        reference = DirectSolver(conductance).solve(rhs)
        partition = partition_system(medium_stamped, num_parts)
        solution = SchurComplement(conductance.tocsr(), partition).solve(rhs)
        assert np.max(np.abs(solution - reference)) <= 1e-12 * np.max(np.abs(reference))

    def test_solve_many_matches_column_solves(self, medium_stamped):
        conductance = medium_stamped.conductance
        rhs = medium_stamped.rhs(0.0)
        columns = np.column_stack([rhs, 0.5 * rhs, rhs**2])
        solver = SchurSolver(conductance, num_parts=4)
        expected = DirectSolver(conductance).solve_many(columns)
        assert np.allclose(solver.solve_many(columns), expected, rtol=0, atol=1e-12)

    def test_registered_backend_and_stats(self, medium_stamped):
        assert "schur" in solver_names()
        solver = make_solver(medium_stamped.conductance, method="schur", num_parts=2)
        assert solver.stats["num_parts"] == 2
        assert solver.stats["interface_nodes"] > 0
        assert solver.stats["factor_time_s"] >= 0

    def test_rejects_non_square_and_mismatched_partition(self, medium_stamped):
        with pytest.raises(SolverError):
            SchurSolver(sp.csr_matrix(np.ones((3, 4))))
        partition = partition_system(medium_stamped, 2)
        with pytest.raises(SolverError):
            SchurComplement(sp.eye(3, format="csr"), partition)

    def test_validates_supplied_partition(self):
        # A dense 4x4 matrix couples everything; two fake interiors violate
        # the separator property and must be rejected.
        matrix = sp.csr_matrix(np.eye(4) * 4 + np.ones((4, 4)))
        bad = GridPartition(
            num_nodes=4,
            interiors=(np.array([0, 1]), np.array([2, 3])),
            boundary=np.empty(0, dtype=int),
            assignments=np.array([0, 0, 1, 1]),
        )
        with pytest.raises(AnalysisError):
            SchurSolver(matrix, partition=bad)

    def test_ten_thousand_node_grid_matches_direct_to_1e9(self):
        """Acceptance: nominal Schur solve on a >=10k-node grid, <=1e-9 rel."""
        spec = spec_for_node_count(10_000, seed=1, calibrate=False)
        stamped = stamp(generate_power_grid(spec))
        assert stamped.num_nodes >= 10_000
        conductance = stamped.conductance
        rhs = stamped.rhs(0.0)
        reference = DirectSolver(conductance).solve(rhs)
        for num_parts in (4, 8):
            partition = partition_system(stamped, num_parts)
            solution = SchurSolver(conductance, partition=partition).solve(rhs)
            relative = np.max(np.abs(solution - reference)) / np.max(np.abs(reference))
            assert relative <= 1e-9


# ---------------------------------------------------------------------------
# Additive Schwarz / block-Jacobi preconditioning
# ---------------------------------------------------------------------------
class TestSchwarz:
    def test_preconditioned_cg_matches_direct(self, medium_stamped):
        conductance = medium_stamped.conductance
        rhs = medium_stamped.rhs(0.5e-9)
        reference = DirectSolver(conductance).solve(rhs)
        solver = make_solver(conductance, method="schwarz-cg", num_parts=4, overlap=1, rtol=1e-12)
        assert np.allclose(solver.solve(rhs), reference, rtol=0, atol=1e-8)
        assert solver.stats["solves"] == 1
        assert solver.stats["last_relative_residual"] < 1e-10

    def test_overlap_reduces_iterations(self, medium_stamped):
        conductance = medium_stamped.conductance
        rhs = medium_stamped.rhs(0.5e-9)
        jacobi = make_solver(conductance, method="cg", rtol=1e-10)
        schwarz = make_solver(conductance, method="schwarz-cg", num_parts=4, overlap=1, rtol=1e-10)
        jacobi.solve(rhs)
        schwarz.solve(rhs)
        assert schwarz.stats["last_iterations"] < jacobi.stats["last_iterations"]

    def test_block_jacobi_operator_shape(self, medium_stamped):
        preconditioner = AdditiveSchwarzPreconditioner(
            medium_stamped.conductance, num_parts=3, overlap=0
        )
        operator = preconditioner.as_linear_operator()
        n = medium_stamped.num_nodes
        assert operator.shape == (n, n)
        out = operator.matvec(np.ones(n))
        assert out.shape == (n,)
        assert np.all(np.isfinite(out))

    def test_rejects_negative_overlap(self, medium_stamped):
        with pytest.raises(SolverError):
            AdditiveSchwarzPreconditioner(medium_stamped.conductance, overlap=-1)


# ---------------------------------------------------------------------------
# The hierarchical engine
# ---------------------------------------------------------------------------
class TestHierarchicalEngine:
    def test_registered(self):
        assert "hierarchical" in engine_names()

    def test_matches_opera_with_matrix_variation(self, partition_session):
        opera = partition_session.run("opera", order=2)
        hier = partition_session.run("hierarchical", order=2)
        assert np.allclose(hier.mean(), opera.mean(), rtol=1e-6, atol=0)
        assert np.allclose(hier.std(), opera.std(), rtol=1e-6, atol=1e-12)
        assert hier.engine == "hierarchical"
        assert hier.partition_stats["num_parts"] >= 1

    def test_matches_opera_rhs_only_corner(self):
        from repro.sweep.plan import corner_spec

        session = Analysis.from_spec(
            400, seed=9, variation=corner_spec("rhs-only")
        ).with_transient(t_stop=1.2e-9, dt=0.2e-9)
        opera = session.run("opera", order=2)
        hier = session.run("hierarchical", order=2)
        assert np.allclose(hier.mean(), opera.mean(), rtol=1e-6, atol=0)
        assert np.allclose(hier.std(), opera.std(), rtol=1e-6, atol=1e-12)

    def test_bit_identical_across_partition_counts(self, partition_session):
        reference = None
        for partitions in (1, 2, 4, 8):
            result = partition_session.run("hierarchical", order=2, partitions=partitions)
            stats = (result.mean(), result.std())
            if reference is None:
                reference = stats
            else:
                assert np.array_equal(reference[0], stats[0])
                assert np.array_equal(reference[1], stats[1])

    def test_bit_identical_with_worker_pool(self, partition_session):
        serial = partition_session.run("hierarchical", order=1, partitions=2)
        pooled = partition_session.run("hierarchical", order=1, partitions=2, workers=2)
        assert np.array_equal(serial.mean(), pooled.mean())
        assert np.array_equal(serial.std(), pooled.std())

    def test_dc_mode_matches_opera_dc(self, partition_session):
        opera = partition_session.run("opera", mode="dc", order=2)
        hier = partition_session.run("hierarchical", mode="dc", order=2)
        assert np.allclose(hier.mean(), opera.mean(), rtol=1e-9, atol=0)
        assert np.allclose(hier.std(), opera.std(), rtol=1e-6, atol=1e-14)

    def test_store_coefficients_round_trip(self, partition_session):
        full = partition_session.run("hierarchical", order=1, store_coefficients=True)
        lean = partition_session.run("hierarchical", order=1)
        assert np.allclose(full.mean(), lean.mean(), rtol=0, atol=1e-14)
        assert np.allclose(full.std(), lean.std(), rtol=0, atol=1e-14)
        assert full.raw.coefficients is not None

    def test_to_dict_reports_partition(self, partition_session):
        summary = partition_session.run("hierarchical", order=1).to_dict()
        assert summary["engine"] == "hierarchical"
        assert summary["partition"]["interface_nodes"] > 0
        assert summary["partition"]["groups"] >= 1

    def test_atoms_override_changes_tiling(self, partition_session):
        result = partition_session.run("hierarchical", order=1, atoms=3)
        assert result.partition_stats["num_parts"] == 3

    def test_dc_mode_rejects_schedule_options(self, partition_session):
        with pytest.raises(AnalysisError):
            partition_session.run("hierarchical", mode="dc", partitions=2)
        with pytest.raises(AnalysisError):
            partition_session.run("hierarchical", mode="dc", workers=2)

    def test_rejects_unknown_options_and_bad_values(self, partition_session):
        with pytest.raises(AnalysisError):
            partition_session.run("hierarchical", bogus=1)
        with pytest.raises(AnalysisError):
            partition_session.run("hierarchical", partitions=0)
        with pytest.raises(AnalysisError):
            partition_session.run("hierarchical", workers=0)
        with pytest.raises(AnalysisError):
            partition_session.run("hierarchical", mode="nonsense")

    def test_system_partition_respects_sensitivity_structure(self, partition_session):
        partition = system_partition(partition_session.system, 2)
        structure = union_structure(
            partition_session.system.g_nominal, partition_session.system.c_nominal
        )
        partition.validate_against(structure)


# ---------------------------------------------------------------------------
# Sweep and CLI wiring
# ---------------------------------------------------------------------------
class TestWiring:
    def test_sweep_plan_builds_hierarchical_cases(self):
        plan = SweepPlan.grid([200], engines=("opera", "hierarchical"), orders=(2,), partitions=2)
        names = [case.name for case in plan]
        assert "hierarchical-n200-o2-p2-paper" in names
        hier = next(c for c in plan if c.engine == "hierarchical")
        assert hier.run_options()["partitions"] == 2
        assert hier.key()[-1] == 2

    def test_sweep_runs_hierarchical_case(self):
        plan = SweepPlan.grid([200], engines=("opera", "hierarchical"), orders=(1,), partitions=2)
        outcome = SweepRunner(keep_statistics=True).run(plan)
        opera = outcome.case(engine="opera")
        hier = outcome.case(engine="hierarchical")
        assert hier.partitions == 2
        assert np.allclose(hier.mean, opera.mean, rtol=1e-6, atol=0)
        record = hier.to_record()
        assert record["partitions"] == 2

    def test_partitions_rejected_for_other_engines(self):
        from repro.sweep import SweepCase

        with pytest.raises(AnalysisError):
            SweepCase(engine="opera", nodes=100, partitions=2)

    def test_record_round_trip_keeps_partitions(self, tmp_path):
        from repro.sweep import BenchRecord, record_from_outcome

        plan = SweepPlan.grid([200], engines=("hierarchical",), orders=(1,), partitions=2)
        outcome = SweepRunner().run(plan)
        record = record_from_outcome(outcome)
        path = record.write(tmp_path / "record.json")
        loaded = BenchRecord.load(path)
        (key,) = loaded.case_map().keys()
        assert key[-1] == 2

    def test_old_records_without_partitions_still_match(self):
        from repro.sweep import BenchRecord

        legacy_case = {
            "name": "opera-n100-o2-paper",
            "engine": "opera",
            "nodes": 100,
            "num_nodes": 104,
            "corner": "paper",
            "order": 2,
            "samples": None,
            "seed": 1,
            "wall_time_s": 0.1,
            "worst_drop_v": 0.05,
            "max_std_v": 0.01,
            "speedup_vs_mc": None,
        }
        record = BenchRecord(cases=(legacy_case,))
        (key,) = record.case_map().keys()
        assert key == ("opera", 100, 2, None, "paper", None)

    def test_cli_analyze_hierarchical(self, capsys):
        exit_code = cli_main(
            [
                "analyze",
                "--synthetic-nodes",
                "200",
                "--engine",
                "hierarchical",
                "--partitions",
                "2",
                "--t-stop",
                "1.2e-9",
            ]
        )
        assert exit_code == 0
        assert "worst node" in capsys.readouterr().out

    def test_cli_sweep_with_partitions(self, tmp_path, capsys):
        output = tmp_path / "record.json"
        exit_code = cli_main(
            [
                "sweep",
                "--nodes",
                "200",
                "--engines",
                "hierarchical",
                "--steps",
                "4",
                "--partitions",
                "2",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        assert "hierarchical-n200-o2-p2-paper" in capsys.readouterr().out
        assert output.exists()
