"""Tests for circuit elements and the netlist container."""

import pytest

from repro.errors import NetlistError
from repro.grid.elements import Capacitor, CurrentSource, Resistor, ResistorKind, VddPad
from repro.grid.netlist import GROUND_NAMES, PowerGridNetlist
from repro.waveforms import Constant


class TestElements:
    def test_resistor_conductance(self):
        assert Resistor("a", "b", 4.0).conductance == pytest.approx(0.25)

    def test_resistor_rejects_non_positive(self):
        with pytest.raises(NetlistError):
            Resistor("a", "b", 0.0)
        with pytest.raises(NetlistError):
            Resistor("a", "b", -1.0)

    def test_resistor_rejects_self_loop(self):
        with pytest.raises(NetlistError):
            Resistor("a", "a", 1.0)

    def test_resistor_rejects_unknown_kind(self):
        with pytest.raises(NetlistError):
            Resistor("a", "b", 1.0, kind="weird")

    def test_resistor_kinds_enumerated(self):
        assert set(ResistorKind.ALL) == {"wire", "via", "package"}

    def test_capacitor_rejects_non_positive(self):
        with pytest.raises(NetlistError):
            Capacitor("a", "0", 0.0)

    def test_capacitor_gate_flag_defaults_false(self):
        assert Capacitor("a", "0", 1e-15).is_gate_load is False

    def test_current_source_coerces_number_to_waveform(self):
        source = CurrentSource("a", 0.5)
        assert source.waveform(0.0) == pytest.approx(0.5)

    def test_pad_rejects_zero_resistance(self):
        with pytest.raises(NetlistError):
            VddPad("a", resistance=0.0, vdd=1.2)

    def test_pad_rejects_non_positive_vdd(self):
        with pytest.raises(NetlistError):
            VddPad("a", resistance=0.1, vdd=0.0)

    def test_pad_conductance(self):
        assert VddPad("a", resistance=0.5, vdd=1.0).conductance == pytest.approx(2.0)


class TestNetlistNodes:
    def test_ground_aliases(self):
        for name in ("0", "gnd", "GND", "vss", "VSS"):
            assert name in GROUND_NAMES
            assert PowerGridNetlist.is_ground(name)

    def test_ground_gets_no_index(self):
        netlist = PowerGridNetlist()
        assert netlist.add_node("0") is None
        assert netlist.num_nodes == 0

    def test_nodes_indexed_in_order_of_appearance(self):
        netlist = PowerGridNetlist()
        netlist.add_resistor("a", "b", 1.0)
        netlist.add_resistor("b", "c", 1.0)
        assert netlist.node_names == ("a", "b", "c")
        assert netlist.node_index("c") == 2

    def test_unknown_node_raises(self):
        netlist = PowerGridNetlist()
        with pytest.raises(NetlistError):
            netlist.node_index("missing")

    def test_ground_index_raises(self):
        netlist = PowerGridNetlist()
        with pytest.raises(NetlistError):
            netlist.node_index("0")

    def test_has_node(self):
        netlist = PowerGridNetlist()
        netlist.add_node("x")
        assert netlist.has_node("x")
        assert netlist.has_node("gnd")
        assert not netlist.has_node("y")


class TestNetlistElements:
    def test_stats_counts(self, manual_netlist):
        stats = manual_netlist.stats()
        assert stats.num_nodes == 3
        assert stats.num_resistors == 2
        assert stats.num_capacitors == 2
        assert stats.num_current_sources == 2
        assert stats.num_pads == 1

    def test_stats_string(self, manual_netlist):
        text = str(manual_netlist.stats())
        assert "3 nodes" in text
        assert "1 pads" in text

    def test_vdd_from_pads(self, manual_netlist):
        assert manual_netlist.vdd == pytest.approx(1.2)

    def test_vdd_requires_pads(self):
        netlist = PowerGridNetlist()
        netlist.add_resistor("a", "b", 1.0)
        with pytest.raises(NetlistError):
            _ = netlist.vdd

    def test_vdd_requires_agreement(self):
        netlist = PowerGridNetlist()
        netlist.add_pad("a", 0.1, 1.2)
        netlist.add_pad("b", 0.1, 1.0)
        with pytest.raises(NetlistError):
            _ = netlist.vdd

    def test_current_source_to_ground_only_rejected(self):
        netlist = PowerGridNetlist()
        with pytest.raises(NetlistError):
            netlist.add_current_source("0", Constant(1.0))

    def test_pad_on_ground_rejected(self):
        netlist = PowerGridNetlist()
        with pytest.raises(NetlistError):
            netlist.add_pad("gnd", 0.1, 1.2)

    def test_nodes_with_current_sources_unique(self, manual_netlist):
        nodes = manual_netlist.nodes_with_current_sources()
        assert nodes == [manual_netlist.node_index("n3")]

    def test_pad_node_indices(self, manual_netlist):
        assert manual_netlist.pad_node_indices() == [manual_netlist.node_index("n1")]


class TestNetlistValidation:
    def test_valid_grid_passes(self, manual_netlist):
        manual_netlist.validate()

    def test_empty_netlist_rejected(self):
        with pytest.raises(NetlistError):
            PowerGridNetlist().validate()

    def test_missing_pads_rejected(self):
        netlist = PowerGridNetlist()
        netlist.add_resistor("a", "b", 1.0)
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_disconnected_node_rejected(self):
        netlist = PowerGridNetlist()
        netlist.add_pad("a", 0.1, 1.2)
        netlist.add_resistor("a", "b", 1.0)
        netlist.add_capacitor("c", "0", 1e-15)  # floating node c
        with pytest.raises(NetlistError) as excinfo:
            netlist.validate()
        assert "not resistively connected" in str(excinfo.value)

    def test_resistor_to_ground_does_not_count_as_supply_path(self):
        netlist = PowerGridNetlist()
        netlist.add_pad("a", 0.1, 1.2)
        netlist.add_resistor("b", "0", 1.0)  # only a path to ground, not to the pad
        with pytest.raises(NetlistError):
            netlist.validate()


class TestNetlistMerge:
    def test_merge_with_prefix(self, manual_netlist):
        target = PowerGridNetlist("combined")
        target.merge_from(manual_netlist, prefix="left_")
        target.merge_from(manual_netlist, prefix="right_")
        assert target.num_nodes == 2 * manual_netlist.num_nodes
        assert len(target.pads) == 2
        assert target.has_node("left_n1")
        assert target.has_node("right_n3")

    def test_merge_keeps_ground_shared(self, manual_netlist):
        target = PowerGridNetlist("combined")
        target.merge_from(manual_netlist, prefix="x_")
        # ground-connected capacitors still reference the shared ground node
        grounds = [c for c in target.capacitors if c.b == "0"]
        assert len(grounds) == len([c for c in manual_netlist.capacitors if c.b == "0"])
