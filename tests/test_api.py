"""Tests for the ``repro.api`` facade: sessions, registries, caching, results.

Covers the acceptance criteria of the API redesign:

* the ``Analysis`` facade runs all five built-in engines on one session;
* repeated runs reuse the cached chaos basis and LU factorisation (asserted
  by object identity);
* registry registration/lookup errors for engines and solvers;
* result-protocol conformance for every engine;
* the legacy free functions still produce the same numbers as the facade.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    Analysis,
    AnalysisResult,
    ComparisonResult,
    engine_names,
    register_engine,
    register_solver,
    solver_names,
    unregister_engine,
    unregister_solver,
)
from repro.api.result import EngineResult
from repro.cli import main as cli_main
from repro.errors import AnalysisError, SolverError
from repro.opera import OperaConfig, run_opera_transient
from repro.sim import TransientConfig, make_solver, transient_analysis
from repro.sim.linear import DirectSolver, matrix_fingerprint
from repro.variation import VariationSpec, build_stochastic_system


@pytest.fixture(scope="module")
def session(small_netlist):
    """A session over the shared small grid with a short time axis."""
    s = Analysis.from_netlist(small_netlist)
    s.with_transient(t_stop=1.0e-9, dt=0.25e-9)
    return s


@pytest.fixture(scope="module")
def rhs_only_session(small_netlist):
    """A session whose variation touches only the excitation (current germs),
    so the ``decoupled`` engine applies."""
    s = Analysis.from_netlist(
        small_netlist,
        variation=VariationSpec(vary_conductance=False, vary_capacitance=False),
    )
    s.with_transient(t_stop=1.0e-9, dt=0.25e-9)
    return s


# ---------------------------------------------------------------------------
# Session construction
# ---------------------------------------------------------------------------
class TestConstruction:
    def test_from_netlist(self, small_netlist):
        s = Analysis.from_netlist(small_netlist)
        assert s.num_nodes == s.stamped.num_nodes > 0

    def test_from_spec_gridspec(self, small_grid_spec):
        s = Analysis.from_spec(small_grid_spec)
        assert s.netlist.num_nodes > 0

    def test_from_spec_node_count(self):
        s = Analysis.from_spec(80, seed=3)
        assert s.num_nodes > 0

    def test_from_spice(self, small_netlist, tmp_path):
        from repro.grid import write_spice

        deck = tmp_path / "grid.sp"
        write_spice(small_netlist, deck)
        s = Analysis.from_spice(str(deck))
        assert s.num_nodes == small_netlist.num_nodes

    def test_from_system(self, small_system):
        s = Analysis.from_system(small_system)
        assert s.num_nodes == small_system.num_nodes
        with pytest.raises(AnalysisError):
            _ = s.netlist

    def test_empty_constructor_rejected(self):
        with pytest.raises(AnalysisError):
            Analysis()

    def test_with_transient_overrides(self, small_netlist):
        s = Analysis.from_netlist(small_netlist)
        s.with_transient(t_stop=2.0e-9, dt=0.5e-9)
        assert s.transient.t_stop == pytest.approx(2.0e-9)
        assert s.transient.dt == pytest.approx(0.5e-9)

    def test_with_variation_invalidates_system(self, small_netlist):
        s = Analysis.from_netlist(small_netlist)
        first = s.system
        s.with_variation(VariationSpec(combine_wt=False))
        assert s.system is not first
        assert s.system.num_variables == 3  # xi_W, xi_T, xi_L


# ---------------------------------------------------------------------------
# Engines through the facade
# ---------------------------------------------------------------------------
class TestEngines:
    def test_builtin_engine_names(self):
        names = engine_names()
        for expected in ("opera", "decoupled", "montecarlo", "deterministic", "randomwalk"):
            assert expected in names

    def test_all_five_engines_on_one_session(self, rhs_only_session):
        """Acceptance: the facade runs all five registered engines on the
        same session object, each returning a protocol-conformant result."""
        results = {
            "opera": rhs_only_session.run("opera", order=2),
            "decoupled": rhs_only_session.run("decoupled", order=2),
            "montecarlo": rhs_only_session.run("montecarlo", samples=8, seed=1),
            "deterministic": rhs_only_session.run("deterministic"),
            "randomwalk": rhs_only_session.run("randomwalk", num_walks=50),
        }
        for name, result in results.items():
            assert isinstance(result, AnalysisResult), name
            assert result.engine == name
            mean = result.mean()
            std = result.std()
            assert mean.shape == std.shape
            assert np.all(np.isfinite(mean))
            assert result.worst_drop() >= 0.0
            summary = result.to_dict()
            assert summary["engine"] == name
            assert "worst_drop" in summary

    def test_opera_matches_decoupled_on_rhs_only_system(self, rhs_only_session):
        opera = rhs_only_session.run("opera", order=2)
        decoupled = rhs_only_session.run("decoupled", order=2)
        np.testing.assert_allclose(opera.mean(), decoupled.mean(), atol=1e-12)
        np.testing.assert_allclose(opera.std(), decoupled.std(), atol=1e-12)

    def test_decoupled_rejects_matrix_variation(self, session):
        with pytest.raises(AnalysisError):
            session.run("decoupled", order=2)

    def test_opera_dc_mode(self, session):
        result = session.run("opera", mode="dc", order=2)
        assert result.mode == "dc"
        assert result.mean().shape == (session.num_nodes,)
        assert result.to_dict()["order"] == 2

    def test_deterministic_dc_mode(self, session):
        result = session.run("deterministic", mode="dc")
        assert np.all(result.std() == 0.0)

    def test_montecarlo_dc_mode(self, session):
        result = session.run("montecarlo", mode="dc", samples=6, seed=2)
        assert result.to_dict()["num_samples"] == 6

    def test_randomwalk_default_mode_is_dc(self, session):
        result = session.run("randomwalk", num_walks=40)
        assert result.mode == "dc"
        assert result.mean().shape == (1,)

    def test_randomwalk_rejects_transient(self, session):
        with pytest.raises(AnalysisError):
            session.run("randomwalk", mode="transient")

    def test_randomwalk_matches_dc_solution(self, session):
        node = int(np.argmax(session.stamped.drain_current_vector(0.0)))
        estimate = session.run("randomwalk", nodes=node, num_walks=800, seed=5)
        exact = session.run("deterministic", mode="dc")
        assert estimate.mean()[0] == pytest.approx(
            exact.mean()[node], abs=6 * max(estimate.std()[0], 1e-6)
        )

    def test_unknown_engine_lists_choices(self, session):
        with pytest.raises(AnalysisError, match="registered engines"):
            session.run("bogus")

    def test_unknown_option_rejected(self, session):
        with pytest.raises(AnalysisError, match="unknown option"):
            session.run("opera", order=2, frobnicate=True)

    def test_time_axis_override_per_run(self, session):
        result = session.run("opera", order=1, t_stop=0.5e-9, dt=0.25e-9)
        assert result.raw.times.size == 3  # t=0, 0.25ns, 0.5ns


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------
class TestCaching:
    def test_basis_identity_across_runs(self, small_netlist):
        s = Analysis.from_netlist(small_netlist)
        s.with_transient(t_stop=1.0e-9, dt=0.25e-9)
        first = s.run("opera", order=2)
        second = s.run("opera", order=2)
        assert first.raw.basis is second.raw.basis

    def test_lu_identity_across_runs(self, small_netlist):
        """Acceptance: a repeated run(order=2) reuses the LU factorisation."""
        s = Analysis.from_netlist(small_netlist)
        s.with_transient(t_stop=1.0e-9, dt=0.25e-9)
        s.run("opera", order=2)
        solvers_after_first = dict(s._caches["solver"])
        assert solvers_after_first  # the run factorised something
        s.run("opera", order=2)
        assert dict(s._caches["solver"]) == solvers_after_first  # no new entries
        for key, solver in s._caches["solver"].items():
            assert solvers_after_first[key] is solver  # same objects reused
        info = s.cache_info()
        assert info["solver"]["hits"] >= len(solvers_after_first)
        assert info["basis"]["hits"] >= 1
        assert info["galerkin"]["hits"] >= 1

    def test_galerkin_cache_identity(self, session):
        assert session.galerkin(2) is session.galerkin(2)

    def test_solver_cache_keyed_by_content(self, session):
        matrix = session.stamped.conductance
        a = session.solver(matrix, method="direct")
        b = session.solver(matrix.copy(), method="direct")  # equal content
        assert a is b
        c = session.solver(2.0 * matrix, method="direct")
        assert c is not a

    def test_nominal_transient_cached_per_config(self, session):
        config = TransientConfig(t_stop=1.0e-9, dt=0.5e-9)
        assert session.nominal_transient(config) is session.nominal_transient(config)

    def test_order_change_builds_new_basis(self, session):
        assert session.basis(1) is not session.basis(2)
        assert session.basis(1) is session.basis(1)

    def test_clear_caches(self, small_netlist):
        s = Analysis.from_netlist(small_netlist)
        s.with_transient(t_stop=1.0e-9, dt=0.5e-9)
        s.run("opera", order=1)
        assert any(s._caches.values())
        s.clear_caches()
        assert not any(s._caches.values())

    def test_matrix_fingerprint_stability(self, small_stamped):
        g = small_stamped.conductance
        assert matrix_fingerprint(g) == matrix_fingerprint(g.copy().tocsc())
        assert matrix_fingerprint(g) != matrix_fingerprint(2.0 * g)


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------
class TestEngineRegistry:
    def test_register_and_run_custom_engine(self, session):
        @register_engine("api-test-null")
        def _null_engine(sess, mode=None, **options):
            result = sess.run("deterministic", mode=mode)
            view = EngineResult("api-test-null", result.mode, result.raw, sess.vdd)
            view.mean = result.mean
            view.std = result.std
            return view

        try:
            assert "api-test-null" in engine_names()
            result = session.run("api-test-null")
            assert result.engine == "api-test-null"
        finally:
            unregister_engine("api-test-null")
        assert "api-test-null" not in engine_names()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError, match="already registered"):
            register_engine("opera", lambda session, mode=None, **kw: None)

    def test_overwrite_allowed_explicitly(self, session):
        @register_engine("api-test-overwrite")
        def _v1(sess, mode=None, **options):
            return sess.run("deterministic")

        try:
            register_engine(
                "api-test-overwrite",
                lambda sess, mode=None, **kw: sess.run("deterministic", mode="dc"),
                overwrite=True,
            )
            assert session.run("api-test-overwrite").mode == "dc"
        finally:
            unregister_engine("api-test-overwrite")
        assert "api-test-overwrite" not in engine_names()

    def test_unregister_unknown_raises(self):
        with pytest.raises(AnalysisError):
            unregister_engine("never-registered")


class TestSolverRegistry:
    def test_builtin_solver_names(self):
        names = solver_names()
        for expected in ("direct", "cg", "ilu-cg"):
            assert expected in names

    def test_unknown_solver_lists_choices(self, small_stamped):
        with pytest.raises(SolverError, match="registered solvers"):
            make_solver(small_stamped.conductance, method="bogus")

    def test_register_custom_solver_reaches_engines(self, small_netlist):
        calls = []

        @register_solver("api-test-direct")
        def _tracked_direct(matrix, **options):
            calls.append(matrix.shape)
            return DirectSolver(matrix)

        try:
            s = Analysis.from_netlist(small_netlist)
            s.with_transient(t_stop=1.0e-9, dt=0.5e-9)
            result = s.run("opera", order=1, solver="api-test-direct")
            assert calls, "the registered solver factory was never used"
            assert np.all(np.isfinite(result.mean()))
        finally:
            unregister_solver("api-test-direct")
        with pytest.raises(SolverError):
            make_solver(s.stamped.conductance, method="api-test-direct")

    def test_duplicate_solver_registration_rejected(self):
        with pytest.raises(SolverError, match="already registered"):
            register_solver("direct", lambda matrix, **kw: None)


# ---------------------------------------------------------------------------
# solve_many vectorisation
# ---------------------------------------------------------------------------
class TestSolveMany:
    def test_direct_solve_many_matches_column_loop(self, small_stamped, rng):
        solver = make_solver(small_stamped.conductance, method="direct")
        rhs = rng.standard_normal((small_stamped.num_nodes, 7))
        batched = solver.solve_many(rhs)
        looped = np.column_stack([solver.solve(rhs[:, j]) for j in range(7)])
        np.testing.assert_allclose(batched, looped, rtol=1e-12, atol=1e-14)

    def test_direct_solve_many_shape_check(self, small_stamped):
        solver = make_solver(small_stamped.conductance, method="direct")
        with pytest.raises(SolverError):
            solver.solve_many(np.ones((small_stamped.num_nodes + 1, 3)))


# ---------------------------------------------------------------------------
# compare() and summarize()
# ---------------------------------------------------------------------------
class TestCompare:
    def test_compare_assembles_table_row(self, small_netlist):
        s = Analysis.from_netlist(small_netlist)
        s.with_transient(t_stop=1.0e-9, dt=0.25e-9)
        comparison = s.compare(order=2, samples=12, seed=4)
        assert isinstance(comparison, ComparisonResult)
        assert comparison.row.num_nodes == s.num_nodes
        assert comparison.speedup > 0
        rendered = str(comparison)
        assert "Speedup" in rendered
        summary = comparison.to_dict()
        assert summary["num_nodes"] == s.num_nodes

    def test_compare_stores_worst_node_samples(self, small_netlist):
        s = Analysis.from_netlist(small_netlist)
        s.with_transient(t_stop=1.0e-9, dt=0.25e-9)
        comparison = s.compare(order=2, samples=8, seed=4)
        worst = int(comparison.reference.raw.worst_node())
        samples = comparison.baseline.raw.drop_samples(worst, time_index=None)
        assert samples.shape[0] == 8

    def test_summarize_default_run(self, small_netlist):
        s = Analysis.from_netlist(small_netlist)
        s.with_transient(t_stop=1.0e-9, dt=0.25e-9)
        report = s.summarize()
        assert report.vdd == pytest.approx(s.vdd)
        assert "worst node" in str(report)

    def test_summarize_rejects_dc_results(self, session):
        result = session.run("opera", mode="dc")
        with pytest.raises(AnalysisError, match="time axis"):
            session.summarize(result)

    def test_compare_with_non_chaos_reference_engine(self, small_netlist):
        """compare() must not force chaos-only options onto other engines."""
        s = Analysis.from_netlist(small_netlist)
        s.with_transient(t_stop=1.0e-9, dt=0.25e-9)
        comparison = s.compare(
            reference_engine="opera",
            baseline_engine="montecarlo",
            samples=8,
            reference_options={"store_coefficients": False},
        )
        assert comparison.row.num_nodes == s.num_nodes


# ---------------------------------------------------------------------------
# Legacy free functions keep working and agree with the facade
# ---------------------------------------------------------------------------
class TestLegacyCompatibility:
    def test_run_opera_transient_matches_facade(self, small_netlist, small_stamped):
        transient = TransientConfig(t_stop=1.0e-9, dt=0.25e-9)
        system = build_stochastic_system(small_stamped, VariationSpec.paper_defaults())
        legacy = run_opera_transient(system, OperaConfig(transient=transient, order=2))

        s = Analysis.from_netlist(small_netlist, stamped=small_stamped)
        s.with_transient(transient)
        facade = s.run("opera", order=2)

        np.testing.assert_allclose(legacy.mean_voltage, facade.mean(), atol=1e-12)
        np.testing.assert_allclose(legacy.std_voltage, facade.std(), atol=1e-12)

    def test_transient_analysis_matches_deterministic_engine(self, small_netlist, small_stamped):
        transient = TransientConfig(t_stop=1.0e-9, dt=0.25e-9)
        legacy = transient_analysis(small_stamped, transient)
        s = Analysis.from_netlist(small_netlist, stamped=small_stamped)
        facade = s.run("deterministic", transient=transient)
        np.testing.assert_allclose(legacy.voltages, facade.mean(), atol=1e-14)

    def test_top_level_exports(self):
        import repro

        for name in (
            "Analysis",
            "AnalysisResult",
            "compare",
            "register_engine",
            "register_solver",
            "engine_names",
            "solver_names",
        ):
            assert hasattr(repro, name), name


# ---------------------------------------------------------------------------
# CLI integration with the registries
# ---------------------------------------------------------------------------
class TestCLIEngineFlags:
    COMMON = ["--synthetic-nodes", "60", "--seed", "4", "--t-stop", "1e-9", "--dt", "0.5e-9"]

    def test_analyze_with_montecarlo_engine(self, capsys):
        code = cli_main(["analyze", *self.COMMON, "--engine", "montecarlo", "--samples", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "montecarlo" in out
        assert "worst_drop" in out

    def test_analyze_unknown_engine_fails_with_listing(self, capsys):
        code = cli_main(["analyze", *self.COMMON, "--engine", "bogus"])
        assert code == 2
        err = capsys.readouterr().err
        assert "registered engines" in err

    def test_analyze_unknown_solver_fails_with_listing(self, capsys):
        code = cli_main(["analyze", *self.COMMON, "--solver", "bogus"])
        assert code == 2
        err = capsys.readouterr().err
        assert "registered solvers" in err

    def test_analyze_with_cg_solver(self, capsys):
        code = cli_main(["analyze", *self.COMMON, "--solver", "cg"])
        assert code == 0
        assert "worst node" in capsys.readouterr().out

class TestSolverStats:
    def test_session_aggregates_cg_stats(self, small_netlist):
        from repro.api import Analysis

        session = Analysis.from_netlist(small_netlist).with_transient(t_stop=1.0e-9, dt=0.2e-9)
        assert session.solver_stats() == {}
        result = session.run("opera", order=1, solver="cg")
        stats = session.solver_stats()
        assert "cg" in stats
        assert stats["cg"]["solves"] > 0
        assert stats["cg"]["total_iterations"] > 0
        assert stats["cg"]["last_relative_residual"] < 1e-6
        # The run's result view carries the same diagnostics in to_dict().
        summary = result.to_dict()
        assert summary["solver_stats"]["cg"]["solves"] == stats["cg"]["solves"]

    def test_direct_backend_contributes_no_stats(self, small_netlist):
        from repro.api import Analysis

        session = Analysis.from_netlist(small_netlist).with_transient(t_stop=1.0e-9, dt=0.2e-9)
        result = session.run("deterministic")
        assert session.solver_stats() == {}
        assert "solver_stats" not in result.to_dict()
    def test_view_stats_are_per_run_not_cumulative(self, small_netlist):
        from repro.api import Analysis

        session = Analysis.from_netlist(small_netlist).with_transient(
            t_stop=1.0e-9, dt=0.2e-9
        )
        first = session.run("opera", order=1, solver="cg")
        second = session.run("opera", order=1, solver="cg")
        first_solves = first.to_dict()["solver_stats"]["cg"]["solves"]
        second_solves = second.to_dict()["solver_stats"]["cg"]["solves"]
        # The session cache is cumulative, but each view reports only the
        # work of its own run (the second reuses cached factorisations and
        # performs the same number of solves, not first + second).
        assert second_solves <= first_solves
        total = session.solver_stats()["cg"]["solves"]
        assert total == first_solves + second_solves


class TestTelemetryStepStats:
    """Per-step solver metrics attached under ``solver_stats["steps"]``.

    While :func:`repro.telemetry.profile` is active, :meth:`Analysis.run`
    claims the step-loop aggregate of its own run for every registered
    transient engine; without telemetry nothing is attached and the
    waveforms are bit-identical either way.
    """

    ENGINE_OPTIONS = {
        "opera": {"order": 1},
        "decoupled": {"order": 1},
        "montecarlo": {"samples": 4, "seed": 1, "workers": 1},
        "deterministic": {},
        "hierarchical": {"partitions": 2},
        "pce-regression": {"order": 1, "samples": 12, "seed": 1},
    }

    @pytest.fixture()
    def fresh_rhs_session(self, small_netlist):
        """A fresh rhs-only session per test: cached results never ran a
        step loop, so they (correctly) carry no per-step stats."""
        s = Analysis.from_netlist(
            small_netlist,
            variation=VariationSpec(vary_conductance=False, vary_capacitance=False),
        )
        return s.with_transient(t_stop=1.0e-9, dt=0.25e-9)

    @pytest.mark.parametrize("engine", sorted(ENGINE_OPTIONS))
    def test_steps_block_for_every_transient_engine(self, fresh_rhs_session, engine):
        import math

        from repro import telemetry

        with telemetry.profile():
            view = fresh_rhs_session.run(
                engine, mode="transient", **self.ENGINE_OPTIONS[engine]
            )
        steps = view.solver_stats["steps"]
        assert steps["steps"] > 0
        assert steps["solves"] >= steps["steps"]
        assert steps["warm_starts"] + steps["cold_starts"] == steps["solves"]
        assert steps["lhs_hoists"] >= 1
        assert steps["lhs_reused_solves"] == steps["solves"] - steps["lhs_hoists"]
        assert steps["total_iterations"] >= 0
        for key in ("last_relative_residual", "max_relative_residual"):
            assert steps[key] is None or math.isfinite(steps[key])
        # The block survives (sorted) in the JSON summary.
        summary = view.to_dict()["solver_stats"]["steps"]
        assert list(summary) == sorted(summary)

    def test_cg_iteration_counts_and_warm_starts(self, small_netlist):
        import math

        from repro import telemetry

        session = Analysis.from_netlist(small_netlist).with_transient(
            t_stop=1.0e-9, dt=0.25e-9
        )
        with telemetry.profile():
            view = session.run("opera", order=1, solver="cg")
        steps = view.solver_stats["steps"]
        # Every CG solve iterates at least once and reports its residual.
        assert steps["total_iterations"] >= steps["solves"] > 0
        assert math.isfinite(steps["last_relative_residual"])
        assert steps["max_relative_residual"] >= steps["last_relative_residual"] >= 0.0
        # The step loop feeds the previous state to warm-start-capable solvers.
        assert steps["warm_starts"] == steps["solves"]
        assert steps["warm_start_hit_rate"] == 1.0

    def test_no_steps_block_without_telemetry(self, rhs_only_session):
        view = rhs_only_session.run("deterministic", mode="transient")
        assert "steps" not in (view.solver_stats or {})

    def test_waveforms_bit_identical_with_telemetry(self, small_netlist):
        from repro import telemetry

        session = Analysis.from_netlist(small_netlist).with_transient(
            t_stop=1.0e-9, dt=0.25e-9
        )
        for engine, options in (
            ("opera", {"order": 1}),
            ("montecarlo", {"samples": 6, "seed": 3}),
        ):
            baseline = session.run(engine, **options)
            with telemetry.profile():
                profiled = session.run(engine, **options)
            assert np.array_equal(baseline.mean(), profiled.mean())
            assert np.array_equal(baseline.std(), profiled.std())

