"""Tests for the sparse linear solver wrappers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConvergenceError, SolverError
from repro.sim.linear import ConjugateGradientSolver, DirectSolver, make_solver


def laplacian_spd(n: int) -> sp.csr_matrix:
    """A small SPD matrix (1-D Laplacian plus identity)."""
    main = 2.0 * np.ones(n) + 0.5
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1]).tocsr()


class TestDirectSolver:
    def test_solves_exactly(self):
        A = laplacian_spd(50)
        x_true = np.linspace(-1, 1, 50)
        solver = DirectSolver(A)
        x = solver.solve(A @ x_true)
        np.testing.assert_allclose(x, x_true, atol=1e-12)

    def test_solve_many(self):
        A = laplacian_spd(20)
        solver = DirectSolver(A)
        B = np.random.default_rng(0).normal(size=(20, 3))
        X = solver.solve_many(B)
        np.testing.assert_allclose(A @ X, B, atol=1e-10)

    def test_rejects_non_square(self):
        with pytest.raises(SolverError):
            DirectSolver(sp.csr_matrix(np.ones((3, 4))))

    def test_rejects_singular(self):
        singular = sp.csr_matrix(np.zeros((4, 4)))
        with pytest.raises(SolverError):
            DirectSolver(singular)

    def test_rejects_wrong_rhs_length(self):
        solver = DirectSolver(laplacian_spd(10))
        with pytest.raises(SolverError):
            solver.solve(np.ones(5))

    def test_factors_reused(self):
        A = laplacian_spd(30)
        solver = DirectSolver(A)
        for _ in range(3):
            b = np.random.default_rng(1).normal(size=30)
            np.testing.assert_allclose(A @ solver.solve(b), b, atol=1e-10)


class TestConjugateGradientSolver:
    def test_matches_direct(self):
        A = laplacian_spd(80)
        b = np.sin(np.arange(80))
        reference = DirectSolver(A).solve(b)
        for preconditioner in (None, "jacobi", "ilu"):
            solver = ConjugateGradientSolver(A, preconditioner=preconditioner, rtol=1e-12)
            np.testing.assert_allclose(solver.solve(b), reference, atol=1e-8)

    def test_raises_on_non_convergence(self):
        A = laplacian_spd(100)
        solver = ConjugateGradientSolver(A, preconditioner=None, rtol=1e-14, maxiter=1)
        with pytest.raises(ConvergenceError):
            solver.solve(np.ones(100))

    def test_rejects_unknown_preconditioner(self):
        with pytest.raises(SolverError):
            ConjugateGradientSolver(laplacian_spd(5), preconditioner="magic")

    def test_rejects_non_square(self):
        with pytest.raises(SolverError):
            ConjugateGradientSolver(sp.csr_matrix(np.ones((3, 4))))

    def test_jacobi_requires_positive_diagonal(self):
        bad = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(SolverError):
            ConjugateGradientSolver(bad, preconditioner="jacobi")


class TestMakeSolver:
    def test_direct_default(self):
        solver = make_solver(laplacian_spd(5))
        assert isinstance(solver, DirectSolver)

    def test_cg_variants(self):
        assert isinstance(make_solver(laplacian_spd(5), "cg"), ConjugateGradientSolver)
        assert isinstance(make_solver(laplacian_spd(5), "ilu-cg"), ConjugateGradientSolver)

    def test_unknown_method(self):
        with pytest.raises(SolverError):
            make_solver(laplacian_spd(5), "quantum")

    def test_grid_conductance_solvable_by_all_methods(self, small_stamped):
        rhs = small_stamped.rhs(0.0)
        reference = make_solver(small_stamped.conductance).solve(rhs)
        for method in ("cg", "ilu-cg"):
            solution = make_solver(small_stamped.conductance, method).solve(rhs)
            np.testing.assert_allclose(solution, reference, rtol=1e-6, atol=1e-9)

class TestConjugateGradientStats:
    def test_stats_track_iterations_and_residual(self):
        matrix = laplacian_spd(60)
        solver = ConjugateGradientSolver(matrix, rtol=1e-12)
        assert solver.stats["solves"] == 0
        rhs = np.arange(60, dtype=float)
        solver.solve(rhs)
        assert solver.stats["solves"] == 1
        assert solver.stats["last_iterations"] > 0
        assert solver.stats["total_iterations"] == solver.stats["last_iterations"]
        assert solver.stats["last_relative_residual"] < 1e-10
        solver.solve(2.0 * rhs)
        assert solver.stats["solves"] == 2
        assert solver.stats["total_iterations"] >= solver.stats["last_iterations"]

    def test_solve_many_matches_direct_and_warm_starts(self):
        matrix = laplacian_spd(80)
        rhs = np.linspace(0.0, 1.0, 80)
        # Correlated columns, as produced by consecutive transient steps.
        columns = np.column_stack([rhs * (1.0 + 0.01 * j) for j in range(5)])
        solver = ConjugateGradientSolver(matrix, rtol=1e-12)
        expected = DirectSolver(matrix).solve_many(columns)
        assert np.allclose(solver.solve_many(columns), expected, rtol=0, atol=1e-8)
        assert solver.stats["solves"] == 5
        # The warm-started later columns converge faster than the cold first.
        total = solver.stats["total_iterations"]
        first_share = total / 5.0
        assert solver.stats["last_iterations"] < first_share

    def test_solve_many_rejects_wrong_length(self):
        solver = ConjugateGradientSolver(laplacian_spd(10))
        with pytest.raises(SolverError):
            solver.solve_many(np.ones((4, 3)))

    def test_operator_preconditioner_accepted(self):
        import scipy.sparse.linalg as spla

        matrix = laplacian_spd(40)
        inverse_diagonal = 1.0 / matrix.diagonal()
        operator = spla.LinearOperator(matrix.shape, matvec=lambda x: inverse_diagonal * x)
        solver = ConjugateGradientSolver(matrix, preconditioner=operator, rtol=1e-12)
        rhs = np.ones(40)
        assert np.allclose(solver.solve(rhs), DirectSolver(matrix).solve(rhs), rtol=0, atol=1e-9)

    def test_callable_preconditioner_accepted(self):
        matrix = laplacian_spd(40)
        inverse_diagonal = 1.0 / matrix.diagonal()
        solver = ConjugateGradientSolver(
            matrix, preconditioner=lambda x: inverse_diagonal * x, rtol=1e-12
        )
        rhs = np.ones(40)
        assert np.allclose(solver.solve(rhs), DirectSolver(matrix).solve(rhs), rtol=0, atol=1e-9)

    def test_rejects_non_operator_preconditioner(self):
        with pytest.raises(SolverError):
            ConjugateGradientSolver(laplacian_spd(10), preconditioner=3.14)

