"""Property-based tests of physical and numerical invariants.

These tests use hypothesis to check relations that must hold for *any*
parameter value in a realistic range: linearity of the resistive network,
first-order scaling of the response sigma with the variation magnitude,
positive-definiteness of realised matrices within the 3-sigma box, and
stability of the fixed-step integrators.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.projection import lognormal_hermite_coefficients
from repro.opera import OperaConfig, run_opera_dc, run_opera_transient
from repro.sim.dc import solve_dc
from repro.sim.transient import TransientConfig, transient_analysis
from repro.variation import VariationSpec, build_stochastic_system

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestResistiveNetworkLinearity:
    @given(scale=st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=10, **COMMON_SETTINGS)
    def test_dc_drops_scale_linearly_with_current(self, small_stamped, scale):
        """V = G^-1 U is linear: scaling all drain currents scales all drops."""
        base_currents = small_stamped.drain_current_vector(0.3e-9)
        base = solve_dc(small_stamped.conductance, small_stamped.pad_current - base_currents)
        scaled = solve_dc(
            small_stamped.conductance, small_stamped.pad_current - scale * base_currents
        )
        base_drop = small_stamped.vdd - base
        scaled_drop = small_stamped.vdd - scaled
        np.testing.assert_allclose(scaled_drop, scale * base_drop, rtol=1e-9, atol=1e-12)

    @given(scale=st.floats(min_value=0.2, max_value=4.0))
    @settings(max_examples=8, **COMMON_SETTINGS)
    def test_scaling_conductance_inversely_scales_drops(self, small_stamped, scale):
        """Scaling every conductance (wires and pads) by k divides drops by k."""
        currents = small_stamped.drain_current_vector(0.3e-9)
        base = small_stamped.vdd - solve_dc(
            small_stamped.conductance, small_stamped.pad_current - currents
        )
        scaled = small_stamped.vdd - solve_dc(
            scale * small_stamped.conductance,
            scale * small_stamped.pad_current - currents,
        )
        np.testing.assert_allclose(scaled, base / scale, rtol=1e-9, atol=1e-12)


class TestVariationScaling:
    @given(factor=st.floats(min_value=0.25, max_value=1.0))
    @settings(max_examples=6, **COMMON_SETTINGS)
    def test_sigma_scales_linearly_with_variation_magnitude(self, small_stamped, factor):
        """To first order, halving all process sigmas halves the response sigma."""
        base_spec = VariationSpec.paper_defaults()
        scaled_spec = VariationSpec(
            sigma_w=factor * base_spec.sigma_w,
            sigma_t=factor * base_spec.sigma_t,
            sigma_l=factor * base_spec.sigma_l,
            current_leff_sensitivity=base_spec.current_leff_sensitivity,
        )
        base = run_opera_dc(build_stochastic_system(small_stamped, base_spec), order=2, t=0.3e-9)
        scaled = run_opera_dc(
            build_stochastic_system(small_stamped, scaled_spec), order=2, t=0.3e-9
        )
        hot = (base.vdd - base.mean) > 0.25 * np.max(base.vdd - base.mean)
        ratio = scaled.std[hot] / base.std[hot]
        np.testing.assert_allclose(ratio, factor, rtol=0.05)

    @given(
        xi_g=st.floats(min_value=-3.0, max_value=3.0),
        xi_l=st.floats(min_value=-3.0, max_value=3.0),
    )
    @settings(max_examples=20, **COMMON_SETTINGS)
    def test_realized_matrices_stay_positive_definite(self, small_system, xi_g, xi_l):
        """Within the 3-sigma box every realised grid is a valid RC network."""
        G, C = small_system.realize_matrices(np.array([xi_g, xi_l]))
        g_eigenvalues = np.linalg.eigvalsh(G.toarray())
        c_eigenvalues = np.linalg.eigvalsh(C.toarray())
        assert g_eigenvalues.min() > 0
        assert c_eigenvalues.min() > -1e-20

    @given(xi_g=st.floats(min_value=-3.0, max_value=3.0))
    @settings(max_examples=10, **COMMON_SETTINGS)
    def test_higher_conductance_means_lower_dc_drop(self, small_system, xi_g):
        """Monotonicity: a die with faster (more conductive) metal sees
        smaller IR drops, all else equal."""
        xi = np.array([xi_g, 0.0])
        G, _ = small_system.realize_matrices(xi)
        rhs = small_system.excitation.sample(0.3e-9, xi)
        drop = small_system.vdd - solve_dc(G, rhs)

        G_nom, _ = small_system.realize_matrices(np.zeros(2))
        rhs_nom = small_system.excitation.sample(0.3e-9, np.zeros(2))
        drop_nom = small_system.vdd - solve_dc(G_nom, rhs_nom)

        worst = np.argmax(drop_nom)
        if xi_g > 0.05:
            assert drop[worst] < drop_nom[worst]
        elif xi_g < -0.05:
            assert drop[worst] > drop_nom[worst]


class TestExpansionInvariants:
    @given(
        sigma=st.floats(min_value=0.05, max_value=1.0),
        degree=st.integers(min_value=4, max_value=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_lognormal_truncated_variance_below_exact(self, sigma, degree):
        """Truncation can only lose variance, never add it."""
        coefficients = lognormal_hermite_coefficients(sigma, degree)
        truncated_variance = float(np.sum(coefficients[1:] ** 2))
        exact_variance = np.exp(sigma**2) * (np.exp(sigma**2) - 1.0)
        assert truncated_variance <= exact_variance * (1 + 1e-12)
        # and with degree >= 4 the truncation captures most of it
        assert truncated_variance > 0.9 * exact_variance

    @given(order=st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, **COMMON_SETTINGS)
    def test_variance_never_negative_for_any_order(self, small_system, order):
        field = run_opera_dc(small_system, order=order, t=0.3e-9)
        assert np.all(field.variance >= 0)

    @given(order=st.integers(min_value=2, max_value=4))
    @settings(max_examples=6, **COMMON_SETTINGS)
    def test_dc_variance_non_decreasing_with_order(self, small_system, order):
        """Adding basis functions can only add (orthogonal) variance terms for
        the same Galerkin solution structure; totals stay within a whisker."""
        low = run_opera_dc(small_system, order=order - 1, t=0.3e-9)
        high = run_opera_dc(small_system, order=order, t=0.3e-9)
        hot = (high.vdd - high.mean) > 0.25 * np.max(high.vdd - high.mean)
        # allow a tiny relative slack: Galerkin coefficients shift slightly
        assert np.all(high.variance[hot] >= low.variance[hot] * 0.98)


class TestIntegratorStability:
    @given(steps=st.integers(min_value=3, max_value=25))
    @settings(max_examples=8, **COMMON_SETTINGS)
    def test_backward_euler_bounded_for_any_step_count(self, small_stamped, steps):
        """A-stability: voltages never leave the physical [0, VDD] band by
        more than a numerical whisker, whatever the step size."""
        config = TransientConfig(t_stop=2.0e-9, dt=2.0e-9 / steps)
        result = transient_analysis(small_stamped, config)
        assert np.all(result.voltages <= small_stamped.vdd + 1e-9)
        assert np.all(result.voltages >= 0.0)

    @given(steps=st.integers(min_value=4, max_value=16))
    @settings(max_examples=5, **COMMON_SETTINGS)
    def test_opera_transient_stable_for_any_step_count(self, small_system, steps):
        config = OperaConfig(transient=TransientConfig(t_stop=2.0e-9, dt=2.0e-9 / steps), order=2)
        result = run_opera_transient(small_system, config)
        assert np.all(np.isfinite(result.mean_voltage))
        assert np.all(result.variance >= 0)
        assert result.std_drop.max() < 0.2 * small_system.vdd
