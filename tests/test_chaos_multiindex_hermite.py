"""Tests for multi-index enumeration and Hermite polynomial algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.hermite import (
    hermite_norm_squared,
    hermite_triple_product,
    hermite_value,
    normalized_hermite_triple,
    normalized_hermite_value,
)
from repro.chaos.multiindex import (
    compositions,
    multi_index_count,
    multi_index_degree,
    total_degree_multi_indices,
)
from repro.chaos.quadrature import gauss_hermite_rule
from repro.errors import BasisError


class TestCompositions:
    def test_degree_one_is_unit_vectors_in_order(self):
        assert list(compositions(1, 3)) == [(1, 0, 0), (0, 1, 0), (0, 0, 1)]

    def test_degree_two_two_vars(self):
        assert list(compositions(2, 2)) == [(2, 0), (1, 1), (0, 2)]

    def test_all_sum_to_total(self):
        for combo in compositions(4, 3):
            assert sum(combo) == 4

    def test_count_matches_stars_and_bars(self):
        count = len(list(compositions(5, 4)))
        assert count == math.comb(5 + 4 - 1, 4 - 1)

    def test_rejects_zero_parts(self):
        with pytest.raises(BasisError):
            list(compositions(2, 0))


class TestTotalDegreeIndices:
    def test_paper_example_two_vars_order_two(self):
        """n=2, p=2 gives the six terms of Eq. (15)."""
        indices = total_degree_multi_indices(2, 2)
        assert indices == [(0, 0), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2)]

    def test_first_entries_are_constant_and_linear(self):
        indices = total_degree_multi_indices(4, 3)
        assert indices[0] == (0, 0, 0, 0)
        for var in range(4):
            expected = tuple(1 if d == var else 0 for d in range(4))
            assert indices[1 + var] == expected

    def test_count_formula(self):
        for n in (1, 2, 3, 5):
            for p in (0, 1, 2, 3, 4):
                assert len(total_degree_multi_indices(n, p)) == multi_index_count(n, p)

    def test_count_matches_paper_formula(self):
        """N+1 = sum_k C(n-1+k, k) as printed under Eq. (8)."""
        for n in (2, 3, 4):
            for p in (1, 2, 3):
                expected = sum(math.comb(n - 1 + k, k) for k in range(p + 1))
                assert multi_index_count(n, p) == expected

    def test_degrees_are_sorted(self):
        degrees = [multi_index_degree(i) for i in total_degree_multi_indices(3, 4)]
        assert degrees == sorted(degrees)

    def test_rejects_bad_arguments(self):
        with pytest.raises(BasisError):
            total_degree_multi_indices(0, 2)
        with pytest.raises(BasisError):
            total_degree_multi_indices(2, -1)
        with pytest.raises(BasisError):
            multi_index_count(0, 1)


class TestHermiteValues:
    def test_first_polynomials_match_closed_form(self):
        x = np.linspace(-3, 3, 11)
        np.testing.assert_allclose(hermite_value(0, x), np.ones_like(x))
        np.testing.assert_allclose(hermite_value(1, x), x)
        np.testing.assert_allclose(hermite_value(2, x), x**2 - 1)
        np.testing.assert_allclose(hermite_value(3, x), x**3 - 3 * x)
        np.testing.assert_allclose(hermite_value(4, x), x**4 - 6 * x**2 + 3)

    def test_scalar_input_returns_scalar(self):
        assert isinstance(hermite_value(2, 1.0), float)
        assert hermite_value(2, 1.0) == pytest.approx(0.0)

    def test_rejects_negative_order(self):
        with pytest.raises(BasisError):
            hermite_value(-1, 0.0)

    def test_norm_squared_is_factorial(self):
        for k in range(8):
            assert hermite_norm_squared(k) == pytest.approx(math.factorial(k))

    def test_orthogonality_by_quadrature(self):
        nodes, weights = gauss_hermite_rule(20)
        for a in range(5):
            for b in range(5):
                inner = np.sum(weights * hermite_value(a, nodes) * hermite_value(b, nodes))
                expected = math.factorial(a) if a == b else 0.0
                assert inner == pytest.approx(expected, abs=1e-9)

    def test_normalized_values_have_unit_norm(self):
        nodes, weights = gauss_hermite_rule(30)
        for k in range(6):
            norm = np.sum(weights * normalized_hermite_value(k, nodes) ** 2)
            assert norm == pytest.approx(1.0, abs=1e-9)


class TestHermiteTripleProducts:
    def test_known_values(self):
        # E[He1 He1 He2] = E[x * x * (x^2-1)] = E[x^4 - x^2] = 3 - 1 = 2
        assert hermite_triple_product(1, 1, 2) == pytest.approx(2.0)
        # E[He1 He1 He0] = E[x^2] = 1
        assert hermite_triple_product(1, 1, 0) == pytest.approx(1.0)
        # E[He2 He2 He2] = 8
        assert hermite_triple_product(2, 2, 2) == pytest.approx(8.0)

    def test_odd_total_degree_vanishes(self):
        assert hermite_triple_product(1, 1, 1) == 0.0
        assert hermite_triple_product(2, 1, 0) == 0.0

    def test_triangle_condition(self):
        assert hermite_triple_product(4, 1, 1) == 0.0

    def test_symmetry(self):
        for triple in [(1, 2, 3), (2, 2, 4), (0, 3, 3)]:
            reference = hermite_triple_product(*triple)
            for perm in [(0, 2, 1), (1, 0, 2), (2, 1, 0)]:
                permuted = tuple(triple[i] for i in perm)
                assert hermite_triple_product(*permuted) == pytest.approx(reference)

    def test_matches_quadrature(self):
        nodes, weights = gauss_hermite_rule(25)
        for a in range(4):
            for b in range(4):
                for c in range(4):
                    quad = np.sum(
                        weights
                        * hermite_value(a, nodes)
                        * hermite_value(b, nodes)
                        * hermite_value(c, nodes)
                    )
                    assert hermite_triple_product(a, b, c) == pytest.approx(quad, abs=1e-8)

    def test_reduces_to_norm_when_one_index_zero(self):
        for k in range(6):
            assert hermite_triple_product(k, k, 0) == pytest.approx(hermite_norm_squared(k))

    def test_normalized_triple(self):
        value = normalized_hermite_triple(1, 1, 2)
        assert value == pytest.approx(2.0 / math.sqrt(1 * 1 * 2))

    def test_rejects_negative_order(self):
        with pytest.raises(BasisError):
            hermite_triple_product(-1, 0, 0)


class TestHermitePropertyBased:
    @given(order=st.integers(min_value=0, max_value=10), x=st.floats(-4, 4))
    @settings(max_examples=60, deadline=None)
    def test_recurrence_holds(self, order, x):
        """He_{k+1}(x) = x He_k(x) - k He_{k-1}(x)."""
        if order < 1:
            return
        left = hermite_value(order + 1, x)
        right = x * hermite_value(order, x) - order * hermite_value(order - 1, x)
        assert left == pytest.approx(right, rel=1e-9, abs=1e-9)

    @given(
        a=st.integers(min_value=0, max_value=6),
        b=st.integers(min_value=0, max_value=6),
        c=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_triple_products_nonnegative_and_symmetric(self, a, b, c):
        value = hermite_triple_product(a, b, c)
        assert value >= 0.0
        assert value == pytest.approx(hermite_triple_product(c, a, b))

    @given(order=st.integers(min_value=0, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_parity(self, order):
        """He_k is even/odd according to k."""
        x = 1.37
        sign = (-1.0) ** order
        assert hermite_value(order, -x) == pytest.approx(sign * hermite_value(order, x), rel=1e-9)
