"""Integration tests for the ``pce-regression`` engine.

Checks the sampled/fitted expansion against the intrusive ``opera``
projection (moments agree to ~1e-2 at matching orders), worker-count
bit-identity of the fitted coefficients, the engine registration (modes,
option validation, result views), the CLI plumbing (``--fit``/``--degree``)
and the sweep-plan integration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Analysis
from repro.cli import main as cli_main
from repro.errors import RegressionError
from repro.opera import OperaConfig, run_opera_dc, run_opera_transient
from repro.regression import (
    RegressionConfig,
    run_regression_dc,
    run_regression_transient,
)
from repro.sim import TransientConfig
from repro.sweep import SweepCase, SweepPlan


def _relative(fitted, reference, scale):
    return float(np.max(np.abs(fitted - reference)) / scale)


# ---------------------------------------------------------------------------
# Moments vs the intrusive Galerkin projection
# ---------------------------------------------------------------------------
class TestTransientVsOpera:
    @pytest.mark.parametrize("order", [2, 3])
    def test_mean_and_std_match_projection(self, small_system, fast_transient, order):
        reference = run_opera_transient(
            small_system, OperaConfig(transient=fast_transient, order=order)
        )
        config = RegressionConfig(
            transient=fast_transient,
            order=order,
            samples=None,  # 2x-oversampling default
            seed=5,
        )
        result = run_regression_transient(small_system, config)
        assert result.coefficients.shape == reference.coefficients.shape
        mean_scale = float(np.max(np.abs(reference.mean_voltage)))
        std_scale = max(float(np.max(reference.std_voltage)), 1e-300)
        assert _relative(result.mean_voltage, reference.mean_voltage, mean_scale) < 1e-2
        assert _relative(result.std_voltage, reference.std_voltage, std_scale) < 1e-2

    def test_diagnostics_are_attached(self, small_system, fast_transient):
        config = RegressionConfig(transient=fast_transient, order=2, seed=1)
        result = run_regression_transient(small_system, config)
        info = result.regression_info
        assert info["fitter"] == "ols"
        assert info["num_samples"] == config.resolved_samples(result.basis)
        assert info["design"]["oversampling"] >= 2.0
        assert np.isfinite(info["design"]["condition"])


class TestDCVsOpera:
    def test_mean_and_std_match_projection(self, small_system):
        reference = run_opera_dc(small_system, order=2)
        field = run_regression_dc(small_system, order=2, samples=60, seed=3)
        mean_scale = float(np.max(np.abs(reference.mean)))
        std_scale = max(float(np.max(reference.std)), 1e-300)
        assert _relative(field.mean, reference.mean, mean_scale) < 1e-2
        assert _relative(field.std, reference.std, std_scale) < 1e-2
        assert field.regression_info["num_samples"] == 60

    def test_sparse_fitters_run_end_to_end(self, small_system):
        field = run_regression_dc(
            small_system, order=2, samples=40, seed=3, fit="omp"
        )
        reference = run_opera_dc(small_system, order=2)
        mean_scale = float(np.max(np.abs(reference.mean)))
        assert _relative(field.mean, reference.mean, mean_scale) < 1e-2
        assert field.regression_info["fitter"] == "omp"


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_coefficients_bit_identical_across_worker_counts(
        self, small_system, fast_transient
    ):
        def run(workers):
            config = RegressionConfig(
                transient=fast_transient,
                order=2,
                samples=12,
                seed=9,
                chunk_size=4,
                workers=workers,
            )
            return run_regression_transient(small_system, config).coefficients

        serial = run(1)
        parallel = run(2)
        assert np.array_equal(serial, parallel)

    def test_same_seed_same_result_different_seed_differs(self, small_system):
        first = run_regression_dc(small_system, order=2, samples=20, seed=4)
        second = run_regression_dc(small_system, order=2, samples=20, seed=4)
        other = run_regression_dc(small_system, order=2, samples=20, seed=5)
        assert np.array_equal(first.coefficients, second.coefficients)
        assert not np.array_equal(first.coefficients, other.coefficients)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
class TestValidation:
    def test_underdetermined_dense_fit_is_rejected(self, small_system):
        with pytest.raises(RegressionError, match="sparse fitter"):
            run_regression_dc(small_system, order=2, samples=3, seed=0)

    def test_sparse_fitter_accepts_underdetermined_setup(self, small_system):
        field = run_regression_dc(
            small_system,
            order=2,
            samples=4,
            seed=0,
            fit="omp",
            fit_options={"num_terms": 2},
        )
        assert field.coefficients.shape[0] == field.basis.size

    def test_config_validation(self, fast_transient):
        with pytest.raises(RegressionError, match="order"):
            RegressionConfig(transient=fast_transient, order=-1)
        with pytest.raises(RegressionError, match="at least 2 samples"):
            RegressionConfig(transient=fast_transient, samples=1)
        with pytest.raises(RegressionError, match="workers"):
            RegressionConfig(transient=fast_transient, workers=0)
        # Unknown fitters fail at construction with the registry's listing.
        with pytest.raises(RegressionError, match="ols"):
            RegressionConfig(transient=fast_transient, fit="nonsense")


# ---------------------------------------------------------------------------
# Engine registration through the Analysis facade
# ---------------------------------------------------------------------------
class TestEngineRegistration:
    @pytest.fixture(scope="class")
    def session(self):
        return Analysis.from_spec(
            80, seed=2, transient=TransientConfig(t_stop=1.0e-9, dt=0.25e-9)
        )

    def test_transient_view(self, session):
        view = session.run("pce-regression", samples=16, seed=1)
        assert view.engine == "pce-regression"
        assert view.mode == "transient"
        assert view.worst_drop() > 0
        summary = view.to_dict()
        assert summary["num_samples"] == 16
        assert summary["fitter"] == "ols"
        assert summary["design_condition"] >= 1.0
        assert summary["oversampling"] == pytest.approx(16 / view.raw.basis.size)

    def test_degree_is_an_order_alias(self, session):
        by_degree = session.run("pce-regression", degree=1, samples=12, seed=1)
        by_order = session.run("pce-regression", order=1, samples=12, seed=1)
        assert by_degree.raw.basis.order == 1
        assert np.array_equal(by_degree.raw.coefficients, by_order.raw.coefficients)

    def test_dc_mode(self, session):
        view = session.run("pce-regression", mode="dc", samples=16, seed=1)
        assert view.mode == "dc"
        assert view.mean().shape == (session.num_nodes,)

    def test_matches_opera_engine_through_facade(self, session):
        reference = session.run("opera", order=2)
        view = session.run("pce-regression", order=2, samples=40, seed=7)
        mean_scale = float(np.max(np.abs(reference.mean())))
        assert _relative(view.mean(), reference.mean(), mean_scale) < 1e-2

    def test_unknown_option_rejected(self, session):
        with pytest.raises(Exception, match="bogus"):
            session.run("pce-regression", samples=16, bogus=1)

    def test_unknown_fitter_fails_fast_with_listing(self, session):
        with pytest.raises(RegressionError, match="lasso"):
            session.run("pce-regression", samples=16, fit="nonsense")


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------
class TestCLI:
    ARGS = [
        "analyze",
        "--synthetic-nodes",
        "80",
        "--seed",
        "2",
        "--engine",
        "pce-regression",
        "--t-stop",
        "1e-9",
        "--dt",
        "0.25e-9",
    ]

    def test_analyze_with_fit_and_degree(self, capsys):
        code = cli_main(
            self.ARGS + ["--samples", "16", "--fit", "ols", "--degree", "2"]
        )
        assert code == 0
        assert "worst node" in capsys.readouterr().out

    def test_bad_fit_fails_fast_with_listing(self, capsys):
        code = cli_main(self.ARGS + ["--samples", "16", "--fit", "nonsense"])
        assert code == 2
        err = capsys.readouterr().err
        # Fail-fast happens before any sampling; the listing names fitters.
        for name in ("ols", "ridge", "omp", "lasso"):
            assert name in err


# ---------------------------------------------------------------------------
# Sweep-plan integration
# ---------------------------------------------------------------------------
class TestSweepIntegration:
    TRANSIENT = TransientConfig(t_stop=1.0e-9, dt=0.5e-9)

    def test_grid_builds_sampled_regression_cases(self):
        plan = SweepPlan.grid(
            [60],
            engines=("opera", "pce-regression"),
            orders=(2,),
            samples=12,
            mc_workers=2,
            transient=self.TRANSIENT,
        )
        case = next(c for c in plan.cases if c.engine == "pce-regression")
        assert case.samples == 12
        assert case.order == 2
        assert case.workers == 2
        options = case.run_options()
        assert options["samples"] == 12
        assert options["seed"] == case.seed
        assert options["workers"] == 2
        assert "chunk_size" in options

    def test_appending_regression_engine_keeps_existing_seeds(self):
        base = SweepPlan.grid(
            [60], engines=("opera", "montecarlo"), samples=8, transient=self.TRANSIENT
        )
        extended = SweepPlan.grid(
            [60],
            engines=("opera", "montecarlo", "pce-regression"),
            samples=8,
            transient=self.TRANSIENT,
        )
        seeds = {case.key(): case.seed for case in base.cases}
        for case in extended.cases:
            if case.key() in seeds:
                assert case.seed == seeds[case.key()]

    def test_derived_seed_depends_only_on_identity(self):
        case = SweepCase(
            engine="pce-regression", nodes=60, order=2, samples=8
        ).with_derived_seed(11)
        again = SweepCase(
            engine="pce-regression", nodes=60, order=2, samples=8, workers=4
        ).with_derived_seed(11)
        # workers are not part of the identity: same derived seed.
        assert case.seed == again.seed
