"""The matrix-free linalg subsystem: KronSumOperator + mean-block-cg.

Property-style equivalence suite: every lazy operation (matvec, matmat,
diagonal, mean block, composition, explicit fallback) must match the
explicitly assembled ``sum_m kron(T_m, A_m)`` CSR to near machine precision
across chaos orders 1-3, several germ counts and non-symmetric coefficient
patterns -- plus engine-level checks that the matrix-free ``mean-block-cg``
transient and DC paths reproduce the explicit direct solve.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import Analysis
from repro.chaos import PolynomialChaosBasis
from repro.chaos.galerkin import (
    assemble_augmented_matrix,
    assemble_augmented_operator,
)
from repro.chaos.triples import triple_product_tensors
from repro.errors import AnalysisError, SolverError
from repro.linalg import KronSumOperator, MeanBlockCGSolver, is_operator, kron_sum_csr
from repro.opera.engine import build_galerkin_system
from repro.sim.linear import (
    ConjugateGradientSolver,
    make_solver,
    matrix_fingerprint,
    solver_accepts_operator,
    solver_names,
)


def random_sparse(rng: np.random.Generator, n: int, density: float = 0.2) -> sp.csr_matrix:
    """A random (generally non-symmetric) sparse matrix with a full diagonal."""
    mask = rng.random((n, n)) < density
    values = rng.standard_normal((n, n)) * mask
    values[np.arange(n), np.arange(n)] = 1.0 + rng.random(n)
    return sp.csr_matrix(values)


def explicit_sum(terms) -> sp.csr_matrix:
    total = None
    for left, right in terms:
        term = sp.kron(left, right, format="csr")
        total = term if total is None else total + term
    return total.tocsr()


def make_terms(rng, basis_size: int, n: int, num_terms: int):
    """Random kron terms whose first left factor is the identity (the m=0 term)."""
    terms = [(sp.identity(basis_size, format="csr"), random_sparse(rng, n))]
    for _ in range(num_terms - 1):
        left = random_sparse(rng, basis_size, density=0.4)
        terms.append((left, random_sparse(rng, n)))
    return terms


class TestKronSumOperator:
    @pytest.mark.parametrize("basis_size,n,num_terms", [(3, 7, 2), (6, 11, 3), (10, 5, 4)])
    def test_matvec_matches_explicit(self, basis_size, n, num_terms):
        rng = np.random.default_rng(basis_size * 100 + n)
        terms = make_terms(rng, basis_size, n, num_terms)
        operator = KronSumOperator(terms)
        explicit = explicit_sum(terms)
        for trial in range(3):
            x = rng.standard_normal(basis_size * n)
            assert np.allclose(operator.matvec(x), explicit @ x, rtol=0, atol=1e-12)

    def test_matvec_out_buffer(self):
        rng = np.random.default_rng(5)
        terms = make_terms(rng, 4, 6, 2)
        operator = KronSumOperator(terms)
        x = rng.standard_normal(24)
        out = np.full(24, 123.0)  # stale contents must be overwritten
        result = operator.matvec(x, out=out)
        assert result is out
        assert np.allclose(out, explicit_sum(terms) @ x, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matmat_matches_explicit(self, k):
        rng = np.random.default_rng(17)
        terms = make_terms(rng, 6, 9, 3)
        operator = KronSumOperator(terms)
        explicit = explicit_sum(terms)
        block = rng.standard_normal((54, k))
        assert np.allclose(operator.matmat(block), explicit @ block, rtol=0, atol=1e-12)
        # The @ operator dispatches on dimensionality.
        assert np.allclose(operator @ block, explicit @ block, rtol=0, atol=1e-12)

    def test_diagonal_matches_explicit(self):
        rng = np.random.default_rng(23)
        terms = make_terms(rng, 5, 8, 3)
        operator = KronSumOperator(terms)
        assert np.allclose(
            operator.diagonal(), explicit_sum(terms).diagonal(), rtol=0, atol=1e-13
        )

    def test_to_csr_matches_explicit(self):
        rng = np.random.default_rng(29)
        terms = make_terms(rng, 4, 10, 3)
        operator = KronSumOperator(terms)
        delta = (operator.to_csr() - explicit_sum(terms)).tocoo()
        assert np.max(np.abs(delta.data)) < 1e-13 if delta.nnz else True
        # Cached: second call returns the same object.
        assert operator.to_csr() is operator.to_csr()

    def test_scalar_and_additive_composition(self):
        rng = np.random.default_rng(31)
        terms_a = make_terms(rng, 4, 7, 2)
        terms_b = make_terms(rng, 4, 7, 3)
        op_a, op_b = KronSumOperator(terms_a), KronSumOperator(terms_b)
        explicit = 2.5 * explicit_sum(terms_a) - 0.5 * explicit_sum(terms_b)
        combined = 2.5 * op_a - 0.5 * op_b
        x = rng.standard_normal(28)
        assert np.allclose(combined @ x, explicit @ x, rtol=0, atol=1e-12)
        assert np.allclose((op_a / 4.0) @ x, (explicit_sum(terms_a) / 4.0) @ x, atol=1e-12)

    def test_identity_terms_merge(self):
        rng = np.random.default_rng(37)
        op_a = KronSumOperator(make_terms(rng, 3, 5, 1))
        op_b = KronSumOperator(make_terms(rng, 3, 5, 1))
        combined = op_a + 2.0 * op_b
        # Both inputs are single identity-left terms: the sum folds to one.
        assert combined.num_terms == 1

    def test_mean_block(self):
        rng = np.random.default_rng(41)
        terms = make_terms(rng, 5, 6, 3)
        operator = KronSumOperator(terms)
        explicit = explicit_sum(terms)[:6, :6].toarray()
        assert np.allclose(operator.mean_block().toarray(), explicit, rtol=0, atol=1e-13)

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(43)
        op_a = KronSumOperator(make_terms(rng, 3, 5, 1))
        op_b = KronSumOperator(make_terms(rng, 5, 3, 1))
        # Same total dimension (15) but incompatible block structure.
        with pytest.raises(SolverError):
            op_a + op_b

    def test_fingerprint_distinguishes_content(self):
        rng = np.random.default_rng(47)
        terms = make_terms(rng, 3, 6, 2)
        op_a = KronSumOperator(terms)
        op_b = KronSumOperator(terms)
        assert op_a.fingerprint() == op_b.fingerprint()
        assert (2.0 * op_a).fingerprint() != op_a.fingerprint()
        assert matrix_fingerprint(op_a) == op_a.fingerprint()

    def test_is_operator(self):
        rng = np.random.default_rng(53)
        operator = KronSumOperator(make_terms(rng, 3, 4, 1))
        assert is_operator(operator)
        assert not is_operator(sp.identity(5, format="csr"))

    def test_kron_sum_csr_weights(self):
        rng = np.random.default_rng(59)
        terms = make_terms(rng, 3, 5, 2)
        weighted = kron_sum_csr(terms, weights=[2.0, -1.0])
        explicit = 2.0 * sp.kron(*terms[0]) - sp.kron(*terms[1])
        delta = (weighted - explicit.tocsr()).tocoo()
        assert np.max(np.abs(delta.data)) < 1e-13 if delta.nnz else True


@pytest.mark.parametrize("order", [1, 2, 3])
@pytest.mark.parametrize("num_vars", [2, 3])
class TestGalerkinOperatorEquivalence:
    """Lazy Galerkin assembly vs the explicit kron across orders and germs."""

    def _coefficients(self, basis, rng, n):
        coefficients = {0: random_sparse(rng, n)}
        for var in range(basis.num_vars):
            coefficients[basis.first_order_index(var)] = random_sparse(rng, n)
        return coefficients

    def test_operator_matches_matrix(self, order, num_vars):
        basis = PolynomialChaosBasis("hermite", order=order, num_vars=num_vars)
        rng = np.random.default_rng(1000 * order + num_vars)
        n = 9
        coefficients = self._coefficients(basis, rng, n)
        explicit = assemble_augmented_matrix(basis, coefficients)
        operator = assemble_augmented_operator(basis, coefficients)
        assert operator.shape == explicit.shape
        for trial in range(3):
            x = rng.standard_normal(basis.size * n)
            assert np.allclose(operator @ x, explicit @ x, rtol=0, atol=1e-12)
        block = rng.standard_normal((basis.size * n, 4))
        assert np.allclose(operator.matmat(block), explicit @ block, rtol=0, atol=1e-12)
        assert np.allclose(operator.diagonal(), explicit.diagonal(), rtol=0, atol=1e-12)
        delta = (operator.to_csr() - explicit).tocoo()
        assert np.max(np.abs(delta.data)) < 1e-12 if delta.nnz else True


class TestTripleProductCache:
    def test_tensors_cached_per_basis(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        first = triple_product_tensors(basis, [0, 1, 2])
        second = triple_product_tensors(basis, [1, 2])
        for m in (1, 2):
            assert first[m] is second[m]

    def test_shared_tensors_enable_merging(self, small_system):
        """G and C operators assembled on one basis share left factors."""
        session_basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        galerkin = build_galerkin_system(small_system, session_basis, assemble="lazy")
        h = 2.0e-10
        stepping = galerkin.conductance_operator + galerkin.capacitance_operator * (1.0 / h)
        separate = (
            galerkin.conductance_operator.num_terms
            + galerkin.capacitance_operator.num_terms
        )
        assert stepping.num_terms < separate  # identity terms folded


class TestGalerkinSystemModes:
    def test_lazy_mode_materialises_on_demand(self, small_system):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        lazy = build_galerkin_system(small_system, basis, assemble="lazy")
        explicit = build_galerkin_system(small_system, basis, assemble="explicit")
        delta = (lazy.conductance - explicit.conductance).tocoo()
        assert (np.max(np.abs(delta.data)) < 1e-12) if delta.nnz else True
        delta = (lazy.capacitance - explicit.capacitance).tocoo()
        assert (np.max(np.abs(delta.data)) < 1e-12) if delta.nnz else True
        # Explicit systems expose operators on demand too.
        x = np.random.default_rng(3).standard_normal(explicit.size)
        assert np.allclose(
            explicit.conductance_operator @ x, explicit.conductance @ x, atol=1e-12
        )

    def test_invalid_mode_rejected(self, small_system):
        basis = PolynomialChaosBasis("hermite", order=1, num_vars=2)
        with pytest.raises(AnalysisError):
            build_galerkin_system(small_system, basis, assemble="eager")

    def test_rhs_out_buffer(self, small_system):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        galerkin = build_galerkin_system(small_system, basis, assemble="lazy")
        reference = galerkin.rhs(1.0e-9)
        buffer = np.full(galerkin.size, 7.0)
        result = galerkin.rhs(1.0e-9, out=buffer)
        assert result is buffer
        assert np.array_equal(result, reference)
        with pytest.raises(AnalysisError):
            galerkin.rhs(0.0, out=np.zeros(galerkin.size + 1))

    def test_rhs_series_matches_pointwise_rhs(self, small_system, fast_transient):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        galerkin = build_galerkin_system(small_system, basis, assemble="lazy")
        times = fast_transient.times()
        series = galerkin.rhs_series(times)
        buffer = np.empty(galerkin.size)
        for step, t in enumerate(times):
            assert np.array_equal(series.fill(step, buffer), galerkin.rhs(float(t)))
        assert series.active_indices  # the excitation drives at least one block
        assert np.array_equal(series.dense()[3], galerkin.rhs(float(times[3])))


class TestMeanBlockCGSolver:
    def _stepping_operator(self, system, order=2):
        basis = PolynomialChaosBasis("hermite", order=order, num_vars=system.num_variables)
        galerkin = build_galerkin_system(system, basis, assemble="lazy")
        h = 2.0e-10
        operator = galerkin.conductance_operator + galerkin.capacitance_operator * (1.0 / h)
        return galerkin, operator

    def test_registered_and_operator_aware(self):
        assert "mean-block-cg" in solver_names()
        assert solver_accepts_operator("mean-block-cg")
        assert not solver_accepts_operator("direct")

    def test_matches_direct_solve(self, small_system):
        galerkin, operator = self._stepping_operator(small_system)
        rhs = galerkin.rhs(0.0)
        reference = make_solver(operator.to_csr(), method="direct").solve(rhs)
        solver = make_solver(operator, method="mean-block-cg")
        solution = solver.solve(rhs)
        assert np.max(np.abs(solution - reference)) <= 1e-10 * np.max(np.abs(reference))
        assert solver.stats["solves"] == 1
        assert solver.stats["last_relative_residual"] < 1e-12

    def test_solve_many_warm_start(self, small_system):
        galerkin, operator = self._stepping_operator(small_system)
        rhs = galerkin.rhs(0.0)
        columns = np.column_stack([rhs, 1.01 * rhs, 0.99 * rhs])
        solver = make_solver(operator, method="mean-block-cg")
        expected = make_solver(operator.to_csr(), method="direct").solve_many(columns)
        assert np.allclose(solver.solve_many(columns), expected, rtol=0, atol=1e-9)

    def test_explicit_matrix_needs_num_nodes(self, small_system):
        galerkin, operator = self._stepping_operator(small_system)
        explicit = operator.to_csr()
        with pytest.raises(SolverError):
            MeanBlockCGSolver(explicit)
        solver = MeanBlockCGSolver(explicit, num_nodes=galerkin.num_nodes)
        rhs = galerkin.rhs(0.0)
        reference = make_solver(explicit, method="direct").solve(rhs)
        assert np.allclose(solver.solve(rhs), reference, rtol=0, atol=1e-9)

    def test_direct_backend_materialises_operator(self, small_system):
        galerkin, operator = self._stepping_operator(small_system, order=1)
        rhs = galerkin.rhs(0.0)
        direct = make_solver(operator, method="direct")  # auto to_csr()
        reference = make_solver(operator.to_csr(), method="direct").solve(rhs)
        assert np.allclose(direct.solve(rhs), reference, rtol=0, atol=1e-13)

    def test_cg_backend_accepts_operator(self, small_system):
        galerkin, operator = self._stepping_operator(small_system, order=1)
        rhs = galerkin.rhs(0.0)
        solver = make_solver(operator, method="cg", rtol=1e-12)
        assert isinstance(solver, ConjugateGradientSolver)
        reference = make_solver(operator.to_csr(), method="direct").solve(rhs)
        assert np.allclose(solver.solve(rhs), reference, rtol=0, atol=1e-8)

    def test_schwarz_cg_backend_accepts_operator(self, small_system):
        galerkin, operator = self._stepping_operator(small_system, order=1)
        rhs = galerkin.rhs(0.0)
        solver = make_solver(operator, method="schwarz-cg", num_parts=2, rtol=1e-12)
        reference = make_solver(operator.to_csr(), method="direct").solve(rhs)
        assert np.allclose(solver.solve(rhs), reference, rtol=0, atol=1e-8)


class TestMatrixFreeEngine:
    """Engine-level accuracy contract: matrix-free vs explicit direct."""

    @pytest.fixture(scope="class")
    def session(self):
        return Analysis.from_spec(300, seed=11).with_transient(t_stop=2.0e-9, dt=0.2e-9)

    def test_transient_mean_std_match_direct(self, session):
        direct = session.run("opera", order=2)
        matrix_free = session.run("opera", order=2, solver="mean-block-cg")
        mean_scale = np.max(np.abs(direct.mean()))
        std_scale = np.max(np.abs(direct.std()))
        assert np.max(np.abs(matrix_free.mean() - direct.mean())) <= 1e-10 * mean_scale
        assert np.max(np.abs(matrix_free.std() - direct.std())) <= 1e-10 * std_scale

    def test_transient_order3(self, session):
        direct = session.run("opera", order=3)
        matrix_free = session.run("opera", order=3, solver="mean-block-cg")
        assert np.max(np.abs(matrix_free.mean() - direct.mean())) <= 1e-10 * np.max(
            np.abs(direct.mean())
        )
        assert np.max(np.abs(matrix_free.std() - direct.std())) <= 1e-10 * np.max(
            np.abs(direct.std())
        )

    def test_dc_matches_direct(self, session):
        direct = session.run("opera", mode="dc", order=2)
        matrix_free = session.run("opera", mode="dc", order=2, solver="mean-block-cg")
        assert np.max(np.abs(matrix_free.mean() - direct.mean())) <= 1e-10 * np.max(
            np.abs(direct.mean())
        )
        assert np.max(np.abs(matrix_free.std() - direct.std())) <= 1e-10 * np.max(
            np.abs(direct.std())
        )

    def test_explicit_assemble_override(self, session):
        forced = session.run(
            "opera", order=2, solver="mean-block-cg", assemble="explicit"
        )
        direct = session.run("opera", order=2)
        assert np.max(np.abs(forced.mean() - direct.mean())) <= 1e-10 * np.max(
            np.abs(direct.mean())
        )

    def test_mixed_representations_rejected(self, session):
        from repro.sim.transient import TransientConfig, run_transient

        galerkin = session.galerkin(2)
        config = TransientConfig(t_stop=1e-9, dt=0.5e-9)
        with pytest.raises(SolverError, match="both"):
            run_transient(
                galerkin.conductance_operator,
                galerkin.capacitance,  # explicit CSR: incompatible mix
                galerkin.rhs,
                config,
            )

    def test_dc_rejects_bad_assemble(self, session):
        with pytest.raises(AnalysisError):
            session.run("opera", mode="dc", order=2, assemble="lazzy")
        with pytest.raises(AnalysisError):
            session.run("opera", order=2, assemble="lazzy")

    def test_solver_stats_report_mean_block_cg(self, session):
        result = session.run("opera", order=2, solver="mean-block-cg")
        assert result.solver_stats is not None
        assert "mean-block-cg" in result.solver_stats
        assert result.solver_stats["mean-block-cg"]["solves"] > 0

    def test_session_caches_operator_solvers(self, session):
        before = session.cache_info()["solver"]["size"]
        session.run("opera", order=2, solver="mean-block-cg")
        session.run("opera", order=2, solver="mean-block-cg")
        after = session.cache_info()["solver"]["size"]
        # Second run reuses the cached operator-backed factorisations.
        assert after == before


class TestSweepSolverField:
    def test_case_name_and_key(self):
        from repro.sweep import SweepCase

        case = SweepCase(engine="opera", nodes=100, order=2, solver="mean-block-cg")
        assert case.name == "opera-n100-o2-mean-block-cg-paper"
        assert case.key() == ("opera", 100, 2, None, "paper", None, "mean-block-cg")
        assert case.run_options()["solver"] == "mean-block-cg"
        plain = SweepCase(engine="opera", nodes=100, order=2)
        assert plain.key() == ("opera", 100, 2, None, "paper", None)

    def test_seed_identity_matches_grid_convention(self):
        from repro.sweep import SweepCase, SweepPlan, case_seed_for

        plan = SweepPlan.grid([120], engines=("opera",), orders=(2,), base_seed=9)
        (case,) = plan.cases
        # The grid builder derives seeds exactly from seed_identity().
        assert case.seed == case_seed_for(9, case.seed_identity())
        # Optional fields join the identity only when set.
        assert case.seed_identity() == ("opera", 120, 2, None, "paper")
        solver_case = SweepCase(engine="opera", nodes=120, order=2, solver="mean-block-cg")
        assert solver_case.seed_identity() == (
            "opera",
            120,
            2,
            None,
            "paper",
            "mean-block-cg",
        )

    def test_sweep_runs_matrix_free_case(self):
        import dataclasses

        from repro.sweep import SweepCase, SweepPlan, SweepRunner, case_seed_for

        base_seed = 5
        matrix_free = SweepCase(
            engine="opera", nodes=120, order=2, grid_seed=1, solver="mean-block-cg"
        )
        cases = (
            SweepCase(engine="opera", nodes=120, order=2, grid_seed=1, seed=17),
            dataclasses.replace(
                matrix_free,
                seed=case_seed_for(base_seed, matrix_free.seed_identity()),
            ),
        )
        plan = SweepPlan.grid([120], engines=("opera",), orders=(2,), base_seed=base_seed)
        plan = type(plan)(cases=cases, transient=plan.transient, base_seed=base_seed)
        outcome = SweepRunner(keep_statistics=True).run(plan)
        direct, matrix_free = outcome.results
        assert matrix_free.solver == "mean-block-cg"
        assert matrix_free.to_record()["solver"] == "mean-block-cg"
        assert np.allclose(matrix_free.mean, direct.mean, rtol=0, atol=1e-10)
        assert np.allclose(matrix_free.std, direct.std, rtol=0, atol=1e-10)
