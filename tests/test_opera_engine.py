"""Tests for the OPERA engine: DC, transient, special case, config, report."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.opera.config import OperaConfig
from repro.opera.engine import (
    build_basis,
    build_galerkin_system,
    run_opera_dc,
    run_opera_transient,
)
from repro.opera.report import summarize
from repro.opera.special_case import run_decoupled_transient
from repro.sim.dc import dc_operating_point
from repro.sim.transient import TransientConfig, transient_analysis


class TestOperaConfig:
    def test_defaults(self, fast_transient):
        config = OperaConfig(transient=fast_transient)
        assert config.order == 2
        assert config.store_coefficients
        assert config.effective_solver == "direct"

    def test_solver_override(self, fast_transient):
        config = OperaConfig(transient=fast_transient, solver="cg")
        assert config.effective_solver == "cg"

    def test_rejects_negative_order(self, fast_transient):
        with pytest.raises(AnalysisError):
            OperaConfig(transient=fast_transient, order=-1)


class TestBasisAndGalerkinConstruction:
    def test_basis_matches_variables(self, small_system):
        basis = build_basis(small_system, order=2)
        assert basis.num_vars == small_system.num_variables
        assert basis.size == 6  # 2 vars, order 2 -> the paper's six terms

    def test_galerkin_dimensions(self, small_system):
        basis = build_basis(small_system, order=2)
        galerkin = build_galerkin_system(small_system, basis)
        n = small_system.num_nodes
        assert galerkin.conductance.shape == (6 * n, 6 * n)
        assert galerkin.capacitance.shape == (6 * n, 6 * n)
        assert galerkin.rhs(0.0).shape == (6 * n,)

    def test_augmented_matrix_symmetric(self, small_system):
        basis = build_basis(small_system, order=2)
        galerkin = build_galerkin_system(small_system, basis)
        assert abs(galerkin.conductance - galerkin.conductance.T).max() < 1e-12

    def test_order_one_and_three_sizes(self, small_system):
        assert build_basis(small_system, order=1).size == 3
        assert build_basis(small_system, order=3).size == 10


class TestOperaDC:
    def test_mean_matches_nominal_dc(self, small_system, small_stamped):
        """With symmetric germs and a first-order model the mean response is
        very close to the nominal DC solution (difference is second order)."""
        field = run_opera_dc(small_system, order=2, t=0.3e-9)
        nominal = dc_operating_point(small_stamped, t=0.3e-9)
        worst = np.max(nominal.drops)
        assert np.max(np.abs(field.mean - nominal.voltages)) < 0.02 * worst

    def test_variance_positive_where_drop_exists(self, small_system):
        field = run_opera_dc(small_system, order=2, t=0.3e-9)
        drops = field.vdd - field.mean
        significant = drops > 0.25 * drops.max()
        assert np.all(field.variance[significant] > 0)

    def test_order_zero_has_no_variance(self, small_system):
        field = run_opera_dc(small_system, order=0, t=0.3e-9)
        np.testing.assert_allclose(field.variance, 0.0)

    def test_node_names_carried(self, small_system):
        field = run_opera_dc(small_system, order=1)
        assert field.node_names == small_system.node_names


class TestOperaTransient:
    def test_result_shapes(self, small_system, fast_opera_config):
        result = run_opera_transient(small_system, fast_opera_config)
        assert result.num_times == fast_opera_config.transient.num_steps + 1
        assert result.num_nodes == small_system.num_nodes
        assert result.coefficients.shape == (result.num_times, 6, result.num_nodes)
        assert result.wall_time is not None and result.wall_time > 0

    def test_initial_condition_is_stochastic_dc(self, small_system, fast_opera_config):
        result = run_opera_transient(small_system, fast_opera_config)
        dc_field = run_opera_dc(small_system, order=2, t=0.0)
        np.testing.assert_allclose(result.coefficients[0], dc_field.coefficients, atol=1e-9)

    def test_mean_close_to_nominal_transient(self, small_system, small_stamped, fast_opera_config):
        """The paper observes mu with variations ~= nominal mu0; check it."""
        result = run_opera_transient(small_system, fast_opera_config)
        nominal = transient_analysis(small_stamped, fast_opera_config.transient)
        worst = nominal.worst_drop()
        assert np.max(np.abs(result.mean_voltage - nominal.voltages)) < 0.03 * worst

    def test_variance_nonnegative_everywhere(self, small_system, fast_opera_config):
        result = run_opera_transient(small_system, fast_opera_config)
        assert np.all(result.variance >= 0)

    def test_statistics_only_mode_matches_full(self, small_system, fast_transient):
        full = run_opera_transient(small_system, OperaConfig(transient=fast_transient, order=2))
        stats = run_opera_transient(
            small_system,
            OperaConfig(transient=fast_transient, order=2, store_coefficients=False),
        )
        assert not stats.has_coefficients
        np.testing.assert_allclose(stats.mean_voltage, full.mean_voltage, atol=1e-12)
        np.testing.assert_allclose(stats.variance, full.variance, atol=1e-15)

    def test_cg_solver_matches_direct(self, small_system, fast_transient):
        direct = run_opera_transient(small_system, OperaConfig(transient=fast_transient, order=2))
        iterative = run_opera_transient(
            small_system, OperaConfig(transient=fast_transient, order=2, solver="cg")
        )
        np.testing.assert_allclose(
            iterative.mean_voltage, direct.mean_voltage, rtol=1e-6, atol=1e-8
        )

    def test_trapezoidal_method_supported(self, small_system):
        transient = TransientConfig(t_stop=1.0e-9, dt=0.2e-9, method="trapezoidal")
        result = run_opera_transient(small_system, OperaConfig(transient=transient, order=2))
        assert np.all(np.isfinite(result.mean_voltage))

    def test_order_one_less_accurate_than_order_two_variance(self, small_system, fast_transient):
        """Order-1 and order-2 variances agree to leading order but are not
        identical; order-2 adds the quadratic correction terms."""
        order1 = run_opera_transient(small_system, OperaConfig(transient=fast_transient, order=1))
        order2 = run_opera_transient(small_system, OperaConfig(transient=fast_transient, order=2))
        sigma1 = order1.std_drop.max()
        sigma2 = order2.std_drop.max()
        assert sigma1 == pytest.approx(sigma2, rel=0.15)
        assert sigma1 != pytest.approx(sigma2, rel=1e-9)


class TestSpecialCase:
    def test_decoupled_rejects_matrix_variation(self, small_system, fast_opera_config):
        with pytest.raises(AnalysisError):
            run_decoupled_transient(small_system, fast_opera_config)

    def test_decoupled_matches_forced_coupled_solution(self, small_leakage_system, fast_transient):
        """Eq. (27): the decoupled path equals the full Galerkin solve."""
        decoupled = run_opera_transient(
            small_leakage_system, OperaConfig(transient=fast_transient, order=2)
        )
        coupled = run_opera_transient(
            small_leakage_system,
            OperaConfig(transient=fast_transient, order=2, force_coupled=True),
        )
        np.testing.assert_allclose(decoupled.coefficients, coupled.coefficients, atol=1e-10)

    def test_engine_dispatches_to_decoupled_path(self, small_leakage_system, fast_opera_config):
        result = run_opera_transient(small_leakage_system, fast_opera_config)
        assert result.has_coefficients
        assert np.all(result.variance >= 0)

    def test_decoupled_statistics_only_mode(self, small_leakage_system, fast_transient):
        config = OperaConfig(transient=fast_transient, order=2, store_coefficients=False)
        result = run_opera_transient(small_leakage_system, config)
        assert not result.has_coefficients
        assert np.all(result.variance >= 0)

    def test_leakage_variance_grows_with_vth_sigma(
        self, small_stamped, small_grid_spec, fast_transient
    ):
        from repro.variation import LeakageVariationSpec, RegionPartition, build_leakage_system

        partition = RegionPartition(
            nx=small_grid_spec.nx, ny=small_grid_spec.ny, region_rows=2, region_cols=1
        )
        small = build_leakage_system(small_stamped, partition, LeakageVariationSpec(vth_sigma=0.01))
        large = build_leakage_system(small_stamped, partition, LeakageVariationSpec(vth_sigma=0.05))
        config = OperaConfig(transient=fast_transient, order=2)
        sigma_small = run_opera_transient(small, config).std_drop.max()
        sigma_large = run_opera_transient(large, config).std_drop.max()
        assert sigma_large > 3.0 * sigma_small

    def test_trapezoidal_decoupled(self, small_leakage_system):
        transient = TransientConfig(t_stop=1.0e-9, dt=0.2e-9, method="trapezoidal")
        result = run_opera_transient(
            small_leakage_system, OperaConfig(transient=transient, order=2)
        )
        assert np.all(np.isfinite(result.mean_voltage))


class TestReport:
    def test_summary_fields(self, small_system, small_stamped, fast_opera_config):
        result = run_opera_transient(small_system, fast_opera_config)
        nominal = transient_analysis(small_stamped, fast_opera_config.transient)
        report = summarize(result, nominal)
        assert report.vdd == pytest.approx(small_stamped.vdd)
        assert 0 < report.peak_mean_drop_percent_vdd < 10.0
        assert 10.0 < report.average_three_sigma_percent < 60.0
        assert len(report.node_summaries) == 10
        assert report.worst_node.peak_mean_drop >= max(
            s.peak_mean_drop for s in report.node_summaries[1:]
        )

    def test_summary_without_nominal(self, small_system, fast_opera_config):
        result = run_opera_transient(small_system, fast_opera_config)
        report = summarize(result)
        assert report.average_three_sigma_percent > 0

    def test_summary_string_rendering(self, small_system, fast_opera_config):
        result = run_opera_transient(small_system, fast_opera_config)
        text = str(summarize(result))
        assert "worst node" in text
        assert "% of the nominal drop" in text

    def test_summary_rejects_streaming_nominal(
        self, small_system, small_stamped, fast_opera_config
    ):
        result = run_opera_transient(small_system, fast_opera_config)
        nominal = transient_analysis(small_stamped, fast_opera_config.transient, store=False)
        with pytest.raises(AnalysisError):
            summarize(result, nominal)
