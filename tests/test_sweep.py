"""Tests for the repro.sweep subsystem: plans, runner, artifacts, regress gate."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.errors import AnalysisError
from repro.sim import TransientConfig
from repro.sweep import (
    SCHEMA,
    BenchRecord,
    SweepCase,
    SweepPlan,
    SweepRunner,
    compare_records,
    corner_names,
    corner_spec,
    grid_seed_for,
    record_from_outcome,
)

FAST_TRANSIENT = TransientConfig(t_stop=1.2e-9, dt=0.2e-9)


@pytest.fixture(scope="module")
def small_outcome():
    """A tiny executed sweep shared by the runner/record/regress tests."""
    plan = SweepPlan.grid(
        [60, 90],
        engines=("opera", "montecarlo"),
        orders=(1,),
        samples=8,
        transient=FAST_TRANSIENT,
        base_seed=5,
    )
    return SweepRunner(workers=1, keep_statistics=True).run(plan)


class TestCorners:
    def test_known_corners(self):
        assert "paper" in corner_names()
        assert "rhs-only" in corner_names()

    def test_paper_corner_is_paper_defaults(self):
        from repro.variation import VariationSpec

        assert corner_spec("paper") == VariationSpec.paper_defaults()

    def test_rhs_only_corner_disables_matrix_variation(self):
        spec = corner_spec("rhs-only")
        assert not spec.vary_conductance
        assert not spec.vary_capacitance

    def test_unknown_corner_lists_names(self):
        with pytest.raises(AnalysisError, match="paper"):
            corner_spec("nope")


class TestSweepPlan:
    def test_grid_product(self):
        plan = SweepPlan.grid(
            [60, 90],
            engines=("opera", "montecarlo", "deterministic"),
            orders=(1, 2),
            samples=8,
            transient=FAST_TRANSIENT,
        )
        # chaos engine: one case per order; others: one case per grid
        assert len(plan) == 2 * (2 + 1 + 1)
        names = [case.name for case in plan]
        assert len(set(names)) == len(names)

    def test_case_seeds_are_deterministic_and_distinct(self):
        plan_a = SweepPlan.grid([60, 90], samples=8, transient=FAST_TRANSIENT)
        plan_b = SweepPlan.grid([60, 90], samples=8, transient=FAST_TRANSIENT)
        assert [c.seed for c in plan_a] == [c.seed for c in plan_b]
        assert len({c.seed for c in plan_a}) == len(plan_a.cases)

    def test_base_seed_changes_case_seeds(self):
        plan_a = SweepPlan.grid([60], samples=8, base_seed=0, transient=FAST_TRANSIENT)
        plan_b = SweepPlan.grid([60], samples=8, base_seed=1, transient=FAST_TRANSIENT)
        assert [c.seed for c in plan_a] != [c.seed for c in plan_b]

    def test_grid_seed_matches_helper(self):
        plan = SweepPlan.grid([60], samples=8, transient=FAST_TRANSIENT)
        assert all(case.grid_seed == grid_seed_for(60) for case in plan)

    def test_empty_plan_rejected(self):
        with pytest.raises(AnalysisError):
            SweepPlan(cases=())
        with pytest.raises(AnalysisError):
            SweepPlan.grid([], transient=FAST_TRANSIENT)

    def test_duplicate_cases_rejected(self):
        case = SweepCase(engine="opera", nodes=60, order=2)
        with pytest.raises(AnalysisError, match="duplicate"):
            SweepPlan(cases=(case, case))

    def test_case_validates_corner_eagerly(self):
        with pytest.raises(AnalysisError):
            SweepCase(engine="opera", nodes=60, corner="bogus")

    def test_mc_run_options(self):
        case = SweepCase(
            engine="montecarlo",
            nodes=60,
            samples=16,
            antithetic=True,
            store_nodes=(1, 2),
            workers=3,
            chunk_size=8,
            seed=99,
        )
        options = case.run_options()
        assert options == {
            "samples": 16,
            "seed": 99,
            "antithetic": True,
            "workers": 3,
            "chunk_size": 8,
            "store_nodes": (1, 2),
        }

    def test_mc_workers_excluded_from_identity(self):
        serial = SweepCase(engine="montecarlo", nodes=60, samples=16, workers=1)
        chunked = SweepCase(engine="montecarlo", nodes=60, samples=16, workers=4)
        assert serial.key() == chunked.key()
        assert serial.name == chunked.name

    def test_grid_mc_workers_applies_to_mc_cases_only(self):
        plan = SweepPlan.grid(
            [60], engines=("opera", "montecarlo"), samples=8,
            mc_workers=4, transient=FAST_TRANSIENT,
        )
        by_engine = {case.engine: case for case in plan}
        assert by_engine["montecarlo"].workers == 4
        assert by_engine["opera"].workers == 1

    def test_grid_mc_chunk_size_applies(self):
        plan = SweepPlan.grid(
            [60], engines=("montecarlo",), samples=16, mc_chunk_size=4,
            transient=FAST_TRANSIENT,
        )
        assert plan.cases[0].chunk_size == 4

    def test_antithetic_parity_validated_at_construction(self):
        with pytest.raises(AnalysisError, match="even sample count"):
            SweepCase(engine="montecarlo", nodes=60, samples=15, antithetic=True)
        with pytest.raises(AnalysisError, match="even chunk_size"):
            SweepCase(
                engine="montecarlo", nodes=60, samples=16, antithetic=True,
                chunk_size=7,
            )

    def test_grid_rounds_odd_antithetic_samples_up(self):
        plan = SweepPlan.grid(
            [60], engines=("montecarlo",), samples=7, antithetic=True,
            transient=FAST_TRANSIENT,
        )
        assert plan.cases[0].samples == 8

    def test_chaos_run_options(self):
        assert SweepCase(engine="opera", nodes=60, order=3).run_options() == {"order": 3}


class TestSweepRunner:
    def test_results_in_plan_order(self, small_outcome):
        assert [r.name for r in small_outcome.results] == [c.name for c in small_outcome.plan.cases]

    def test_statistics_kept(self, small_outcome):
        opera = small_outcome.case(engine="opera", nodes=60)
        assert opera.has_statistics
        assert opera.mean.shape == (FAST_TRANSIENT.num_steps + 1, opera.num_nodes)
        assert np.all(opera.std_drop >= 0)

    def test_parallel_matches_serial(self, small_outcome):
        parallel = SweepRunner(workers=2, keep_statistics=True).run(small_outcome.plan)
        for a, b in zip(small_outcome, parallel):
            assert a.name == b.name
            assert a.num_nodes == b.num_nodes
            np.testing.assert_array_equal(a.mean, b.mean)
            np.testing.assert_array_equal(a.std, b.std)

    def test_speedups_vs_mc(self, small_outcome):
        speedups = small_outcome.speedups()
        assert set(speedups) == {"opera-n60-o1-paper", "opera-n90-o1-paper"}
        assert all(value > 0 for value in speedups.values())

    def test_case_lookup_errors(self, small_outcome):
        with pytest.raises(AnalysisError, match="no sweep case"):
            small_outcome.case(engine="opera", nodes=999)
        with pytest.raises(AnalysisError, match="ambiguous"):
            small_outcome.case(engine="opera")

    def test_keep_raw_ships_native_result(self):
        plan = SweepPlan(
            cases=(SweepCase(engine="opera", nodes=60, order=1),),
            transient=FAST_TRANSIENT,
        )
        outcome = SweepRunner(workers=1, keep_raw=True).run(plan)
        assert hasattr(outcome.results[0].raw, "worst_node")

    def test_statistics_absent_without_flag(self):
        plan = SweepPlan(
            cases=(SweepCase(engine="opera", nodes=60, order=1),),
            transient=FAST_TRANSIENT,
        )
        result = SweepRunner(workers=1).run(plan).results[0]
        assert not result.has_statistics
        with pytest.raises(AnalysisError, match="keep_statistics"):
            _ = result.mean_drop

    def test_workers_validation(self):
        with pytest.raises(AnalysisError):
            SweepRunner(workers=0)


class TestBenchRecord:
    def test_round_trip(self, small_outcome):
        record = record_from_outcome(small_outcome, config={"suite": "test"})
        rebuilt = BenchRecord.from_json(record.to_json())
        assert rebuilt.to_dict() == record.to_dict()
        assert rebuilt.schema == SCHEMA
        assert rebuilt.config["suite"] == "test"
        assert rebuilt.config["workers"] == 1

    def test_schema_fields_present(self, small_outcome):
        record = record_from_outcome(small_outcome)
        payload = json.loads(record.to_json())
        assert payload["schema"] == SCHEMA
        for case in payload["cases"]:
            for key in (
                "name",
                "engine",
                "nodes",
                "num_nodes",
                "corner",
                "order",
                "samples",
                "seed",
                "wall_time_s",
                "worst_drop_v",
                "max_std_v",
                "speedup_vs_mc",
            ):
                assert key in case, key

    def test_speedup_recorded_for_non_mc_cases(self, small_outcome):
        record = record_from_outcome(small_outcome)
        by_engine = {}
        for case in record.cases:
            by_engine.setdefault(case["engine"], []).append(case)
        assert all(c["speedup_vs_mc"] is None for c in by_engine["montecarlo"])
        assert all(c["speedup_vs_mc"] > 0 for c in by_engine["opera"])

    def test_unknown_schema_rejected(self, small_outcome):
        record = record_from_outcome(small_outcome)
        payload = record.to_dict()
        payload["schema"] = "repro.sweep/bench-record/v999"
        with pytest.raises(AnalysisError, match="schema"):
            BenchRecord.from_dict(payload)

    def test_missing_case_field_rejected(self, small_outcome):
        payload = record_from_outcome(small_outcome).to_dict()
        del payload["cases"][0]["wall_time_s"]
        with pytest.raises(AnalysisError, match="wall_time_s"):
            BenchRecord.from_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(AnalysisError, match="JSON"):
            BenchRecord.from_json("{not json")

    def test_write_and_load(self, small_outcome, tmp_path):
        record = record_from_outcome(small_outcome)
        path = record.write(tmp_path / "nested" / "sweep.json")
        assert BenchRecord.load(path).to_dict() == record.to_dict()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(AnalysisError, match="does not exist"):
            BenchRecord.load(tmp_path / "absent.json")


def _record_with_wall_times(small_outcome, scale: float) -> BenchRecord:
    payload = record_from_outcome(small_outcome).to_dict()
    for case in payload["cases"]:
        case["wall_time_s"] = max(case["wall_time_s"], 0.2) * scale
    return BenchRecord.from_dict(payload)


class TestRegress:
    def test_identical_records_pass(self, small_outcome):
        record = record_from_outcome(small_outcome)
        report = compare_records(record, record)
        assert report.ok
        assert not report.regressions
        assert "OK" in report.format()

    def test_large_regression_fails(self, small_outcome):
        baseline = _record_with_wall_times(small_outcome, 1.0)
        slower = _record_with_wall_times(small_outcome, 3.0)
        report = compare_records(baseline, slower, max_regression_percent=75.0)
        assert not report.ok
        assert len(report.regressions) == len(baseline.cases)
        assert "FAIL" in report.format()

    def test_speedup_within_threshold_passes(self, small_outcome):
        baseline = _record_with_wall_times(small_outcome, 1.0)
        faster = _record_with_wall_times(small_outcome, 0.5)
        assert compare_records(baseline, faster).ok

    def test_min_seconds_clamps_noise(self, small_outcome):
        baseline = _record_with_wall_times(small_outcome, 1.0)
        # 3x regression, but in absolute terms everything stays under the floor
        slower = _record_with_wall_times(small_outcome, 3.0)
        report = compare_records(baseline, slower, min_seconds=10.0)
        assert report.ok

    def test_mismatched_transients_rejected(self, small_outcome):
        baseline = record_from_outcome(small_outcome)
        payload = record_from_outcome(small_outcome).to_dict()
        payload["config"]["transient"] = {"t_stop": 9e-9, "dt": 1e-10, "steps": 90}
        current = BenchRecord.from_dict(payload)
        with pytest.raises(AnalysisError, match="not .?comparable|transient"):
            compare_records(baseline, current)

    def test_missing_case_fails(self, small_outcome):
        baseline = record_from_outcome(small_outcome)
        payload = baseline.to_dict()
        payload["cases"] = payload["cases"][1:]
        current = BenchRecord.from_dict(payload)
        report = compare_records(baseline, current)
        assert not report.ok
        assert len(report.missing) == 1

    def test_added_case_does_not_gate(self, small_outcome):
        current = record_from_outcome(small_outcome)
        payload = current.to_dict()
        payload["cases"] = payload["cases"][1:]
        baseline = BenchRecord.from_dict(payload)
        report = compare_records(baseline, current)
        assert report.ok
        assert len(report.added) == 1

    def test_regress_cli(self, small_outcome, tmp_path, capsys):
        from repro.sweep.regress import main as regress_main

        base_path = tmp_path / "base.json"
        _record_with_wall_times(small_outcome, 1.0).write(base_path)
        slow_path = tmp_path / "slow.json"
        _record_with_wall_times(small_outcome, 4.0).write(slow_path)

        assert regress_main([str(base_path), str(base_path)]) == 0
        assert regress_main([str(base_path), str(slow_path)]) == 1
        assert (regress_main([str(base_path), str(slow_path), "--max-regression", "1000"]) == 0)
        capsys.readouterr()  # silence report output


class TestSweepCli:
    def test_sweep_writes_artifact_and_gates(self, tmp_path, capsys):
        output = tmp_path / "sweep.json"
        args = [
            "sweep",
            "--nodes",
            "60",
            "--engines",
            "opera,montecarlo",
            "--samples",
            "8",
            "--steps",
            "5",
            "--output",
            str(output),
        ]
        assert cli_main(args) == 0
        record = BenchRecord.load(output)
        assert len(record.cases) == 2
        out = capsys.readouterr().out
        assert "speedup vs MC" in out

        # gate against itself: passes
        assert cli_main(args + ["--baseline", str(output)]) == 0
        capsys.readouterr()

    def test_sweep_rejects_unknown_engine(self, capsys):
        assert cli_main(["sweep", "--nodes", "60", "--engines", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_sweep_rejects_unknown_corner(self, capsys):
        assert (cli_main(["sweep", "--nodes", "60", "--samples", "8", "--corners", "bogus"]) == 2)
        assert "corner" in capsys.readouterr().err
