"""Tests for the repro.sweep subsystem: plans, runner, store, artifacts, regress gate."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.errors import AnalysisError, StoreError
from repro.sim import TransientConfig
from repro.sweep import (
    SCHEMA,
    BenchRecord,
    MemoryBackend,
    ShardedNpzBackend,
    SweepCase,
    SweepPlan,
    SweepRunner,
    compare_records,
    corner_names,
    corner_spec,
    grid_seed_for,
    plan_fingerprint,
    record_from_outcome,
    record_from_store,
)

FAST_TRANSIENT = TransientConfig(t_stop=1.2e-9, dt=0.2e-9)


@pytest.fixture(scope="module")
def small_outcome():
    """A tiny executed sweep shared by the runner/record/regress tests."""
    plan = SweepPlan.grid(
        [60, 90],
        engines=("opera", "montecarlo"),
        orders=(1,),
        samples=8,
        transient=FAST_TRANSIENT,
        base_seed=5,
    )
    return SweepRunner(workers=1, keep_statistics=True).run(plan)


class TestCorners:
    def test_known_corners(self):
        assert "paper" in corner_names()
        assert "rhs-only" in corner_names()

    def test_paper_corner_is_paper_defaults(self):
        from repro.variation import VariationSpec

        assert corner_spec("paper") == VariationSpec.paper_defaults()

    def test_rhs_only_corner_disables_matrix_variation(self):
        spec = corner_spec("rhs-only")
        assert not spec.vary_conductance
        assert not spec.vary_capacitance

    def test_unknown_corner_lists_names(self):
        with pytest.raises(AnalysisError, match="paper"):
            corner_spec("nope")


class TestSweepPlan:
    def test_grid_product(self):
        plan = SweepPlan.grid(
            [60, 90],
            engines=("opera", "montecarlo", "deterministic"),
            orders=(1, 2),
            samples=8,
            transient=FAST_TRANSIENT,
        )
        # chaos engine: one case per order; others: one case per grid
        assert len(plan) == 2 * (2 + 1 + 1)
        names = [case.name for case in plan]
        assert len(set(names)) == len(names)

    def test_case_seeds_are_deterministic_and_distinct(self):
        plan_a = SweepPlan.grid([60, 90], samples=8, transient=FAST_TRANSIENT)
        plan_b = SweepPlan.grid([60, 90], samples=8, transient=FAST_TRANSIENT)
        assert [c.seed for c in plan_a] == [c.seed for c in plan_b]
        assert len({c.seed for c in plan_a}) == len(plan_a.cases)

    def test_base_seed_changes_case_seeds(self):
        plan_a = SweepPlan.grid([60], samples=8, base_seed=0, transient=FAST_TRANSIENT)
        plan_b = SweepPlan.grid([60], samples=8, base_seed=1, transient=FAST_TRANSIENT)
        assert [c.seed for c in plan_a] != [c.seed for c in plan_b]

    def test_grid_seed_matches_helper(self):
        plan = SweepPlan.grid([60], samples=8, transient=FAST_TRANSIENT)
        assert all(case.grid_seed == grid_seed_for(60) for case in plan)

    def test_empty_plan_rejected(self):
        with pytest.raises(AnalysisError):
            SweepPlan(cases=())
        with pytest.raises(AnalysisError):
            SweepPlan.grid([], transient=FAST_TRANSIENT)

    def test_duplicate_cases_rejected(self):
        case = SweepCase(engine="opera", nodes=60, order=2)
        with pytest.raises(AnalysisError, match="duplicate"):
            SweepPlan(cases=(case, case))

    def test_case_validates_corner_eagerly(self):
        with pytest.raises(AnalysisError):
            SweepCase(engine="opera", nodes=60, corner="bogus")

    def test_mc_run_options(self):
        case = SweepCase(
            engine="montecarlo",
            nodes=60,
            samples=16,
            antithetic=True,
            store_nodes=(1, 2),
            workers=3,
            chunk_size=8,
            seed=99,
        )
        options = case.run_options()
        assert options == {
            "samples": 16,
            "seed": 99,
            "antithetic": True,
            "workers": 3,
            "chunk_size": 8,
            "store_nodes": (1, 2),
        }

    def test_mc_workers_excluded_from_identity(self):
        serial = SweepCase(engine="montecarlo", nodes=60, samples=16, workers=1)
        chunked = SweepCase(engine="montecarlo", nodes=60, samples=16, workers=4)
        assert serial.key() == chunked.key()
        assert serial.name == chunked.name

    def test_grid_mc_workers_applies_to_mc_cases_only(self):
        plan = SweepPlan.grid(
            [60], engines=("opera", "montecarlo"), samples=8,
            mc_workers=4, transient=FAST_TRANSIENT,
        )
        by_engine = {case.engine: case for case in plan}
        assert by_engine["montecarlo"].workers == 4
        assert by_engine["opera"].workers == 1

    def test_grid_mc_chunk_size_applies(self):
        plan = SweepPlan.grid(
            [60], engines=("montecarlo",), samples=16, mc_chunk_size=4,
            transient=FAST_TRANSIENT,
        )
        assert plan.cases[0].chunk_size == 4

    def test_antithetic_parity_validated_at_construction(self):
        with pytest.raises(AnalysisError, match="even sample count"):
            SweepCase(engine="montecarlo", nodes=60, samples=15, antithetic=True)
        with pytest.raises(AnalysisError, match="even chunk_size"):
            SweepCase(
                engine="montecarlo", nodes=60, samples=16, antithetic=True,
                chunk_size=7,
            )

    def test_grid_rounds_odd_antithetic_samples_up(self):
        plan = SweepPlan.grid(
            [60], engines=("montecarlo",), samples=7, antithetic=True,
            transient=FAST_TRANSIENT,
        )
        assert plan.cases[0].samples == 8

    def test_chaos_run_options(self):
        assert SweepCase(engine="opera", nodes=60, order=3).run_options() == {"order": 3}


class TestSweepRunner:
    def test_results_in_plan_order(self, small_outcome):
        assert [r.name for r in small_outcome.results] == [c.name for c in small_outcome.plan.cases]

    def test_statistics_kept(self, small_outcome):
        opera = small_outcome.case(engine="opera", nodes=60)
        assert opera.has_statistics
        assert opera.mean.shape == (FAST_TRANSIENT.num_steps + 1, opera.num_nodes)
        assert np.all(opera.std_drop >= 0)

    def test_parallel_matches_serial(self, small_outcome):
        parallel = SweepRunner(workers=2, keep_statistics=True).run(small_outcome.plan)
        for a, b in zip(small_outcome, parallel):
            assert a.name == b.name
            assert a.num_nodes == b.num_nodes
            np.testing.assert_array_equal(a.mean, b.mean)
            np.testing.assert_array_equal(a.std, b.std)

    def test_speedups_vs_mc(self, small_outcome):
        speedups = small_outcome.speedups()
        assert set(speedups) == {"opera-n60-o1-paper", "opera-n90-o1-paper"}
        assert all(value > 0 for value in speedups.values())

    def test_case_lookup_errors(self, small_outcome):
        with pytest.raises(AnalysisError, match="no sweep case"):
            small_outcome.case(engine="opera", nodes=999)
        with pytest.raises(AnalysisError, match="ambiguous"):
            small_outcome.case(engine="opera")

    def test_case_rejects_unknown_criteria_with_field_listing(self, small_outcome):
        with pytest.raises(AnalysisError, match="valid fields.*engine"):
            small_outcome.case(engin="opera")
        with pytest.raises(AnalysisError, match="engin, nodez"):
            small_outcome.case(engin="opera", nodez=60)

    def test_case_no_match_lists_nearest_cases(self, small_outcome):
        # engine matches two cases, nodes matches none: the near-misses
        # (the opera cases) must lead the listing.
        with pytest.raises(AnalysisError, match="nearest.*opera-n60-o1-paper"):
            small_outcome.case(engine="opera", nodes=999)

    def test_case_requires_criteria(self, small_outcome):
        with pytest.raises(AnalysisError, match="at least one criterion"):
            small_outcome.case()

    def test_aggregates(self, small_outcome):
        aggregates = small_outcome.aggregates()
        assert set(aggregates) == {"opera", "montecarlo", "overall"}
        assert aggregates["opera"]["cases"] == 2
        assert aggregates["overall"]["cases"] == 4
        assert aggregates["overall"]["wall_time_total_s"] > 0
        # The overall entry is the RunningMoments.merge of the engines.
        merged_mean = (
            aggregates["opera"]["worst_drop_mean_v"] * 2
            + aggregates["montecarlo"]["worst_drop_mean_v"] * 2
        ) / 4
        assert aggregates["overall"]["worst_drop_mean_v"] == pytest.approx(merged_mean)

    def test_keep_raw_ships_native_result(self):
        plan = SweepPlan(
            cases=(SweepCase(engine="opera", nodes=60, order=1),),
            transient=FAST_TRANSIENT,
        )
        outcome = SweepRunner(workers=1, keep_raw=True).run(plan)
        assert hasattr(outcome.results[0].raw, "worst_node")

    def test_statistics_absent_without_flag(self):
        plan = SweepPlan(
            cases=(SweepCase(engine="opera", nodes=60, order=1),),
            transient=FAST_TRANSIENT,
        )
        result = SweepRunner(workers=1).run(plan).results[0]
        assert not result.has_statistics
        with pytest.raises(AnalysisError, match="keep_statistics"):
            _ = result.mean_drop

    def test_workers_validation(self):
        with pytest.raises(AnalysisError):
            SweepRunner(workers=0)


class TestBenchRecord:
    def test_round_trip(self, small_outcome):
        record = record_from_outcome(small_outcome, config={"suite": "test"})
        rebuilt = BenchRecord.from_json(record.to_json())
        assert rebuilt.to_dict() == record.to_dict()
        assert rebuilt.schema == SCHEMA
        assert rebuilt.config["suite"] == "test"
        assert rebuilt.config["workers"] == 1

    def test_schema_fields_present(self, small_outcome):
        record = record_from_outcome(small_outcome)
        payload = json.loads(record.to_json())
        assert payload["schema"] == SCHEMA
        for case in payload["cases"]:
            for key in (
                "name",
                "engine",
                "nodes",
                "num_nodes",
                "corner",
                "order",
                "samples",
                "seed",
                "wall_time_s",
                "worst_drop_v",
                "max_std_v",
                "speedup_vs_mc",
            ):
                assert key in case, key

    def test_speedup_recorded_for_non_mc_cases(self, small_outcome):
        record = record_from_outcome(small_outcome)
        by_engine = {}
        for case in record.cases:
            by_engine.setdefault(case["engine"], []).append(case)
        assert all(c["speedup_vs_mc"] is None for c in by_engine["montecarlo"])
        assert all(c["speedup_vs_mc"] > 0 for c in by_engine["opera"])

    def test_unknown_schema_rejected(self, small_outcome):
        record = record_from_outcome(small_outcome)
        payload = record.to_dict()
        payload["schema"] = "repro.sweep/bench-record/v999"
        with pytest.raises(AnalysisError, match="schema"):
            BenchRecord.from_dict(payload)

    def test_missing_case_field_rejected(self, small_outcome):
        payload = record_from_outcome(small_outcome).to_dict()
        del payload["cases"][0]["wall_time_s"]
        with pytest.raises(AnalysisError, match="wall_time_s"):
            BenchRecord.from_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(AnalysisError, match="JSON"):
            BenchRecord.from_json("{not json")

    def test_write_and_load(self, small_outcome, tmp_path):
        record = record_from_outcome(small_outcome)
        path = record.write(tmp_path / "nested" / "sweep.json")
        assert BenchRecord.load(path).to_dict() == record.to_dict()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(AnalysisError, match="does not exist"):
            BenchRecord.load(tmp_path / "absent.json")


def _stable_cases(record: BenchRecord) -> list:
    """Record case entries with the timing-dependent fields stripped.

    Wall times (and the speedups derived from them) are the only fields a
    resume legitimately changes; everything else must be bit-identical.
    """
    cases = []
    for case in record.cases:
        entry = dict(case)
        entry.pop("wall_time_s")
        entry.pop("speedup_vs_mc")
        cases.append(entry)
    return cases


def _assert_same_results(expected_outcome, actual_outcome):
    """Every case of both outcomes agrees bit-for-bit (timing excluded)."""
    for expected, actual in zip(expected_outcome, actual_outcome):
        assert actual.name == expected.name
        assert actual.seed == expected.seed
        assert actual.worst_drop == expected.worst_drop
        assert actual.max_std == expected.max_std
        np.testing.assert_array_equal(actual.times, expected.times)
        np.testing.assert_array_equal(actual.mean, expected.mean)
        np.testing.assert_array_equal(actual.std, expected.std)


class TestStoreBackends:
    def test_memory_backend_roundtrip(self, small_outcome):
        store = small_outcome.store
        assert isinstance(store, MemoryBackend)
        assert len(store) == len(small_outcome.plan.cases)
        for case in small_outcome.plan.cases:
            assert store.contains(case)
            assert store.get(case).name == case.name
        assert [r.name for r in store.iter_results()] != []
        assert store.keys() == frozenset(c.store_key() for c in small_outcome.plan.cases)

    def test_store_key_excludes_workers(self):
        serial = SweepCase(engine="montecarlo", nodes=60, samples=16, workers=1)
        chunked = dataclasses.replace(serial, workers=4)
        assert serial.store_key() == chunked.store_key()

    def test_store_key_includes_sampling_knobs(self):
        base = SweepCase(engine="montecarlo", nodes=60, samples=16)
        assert base.store_key() != dataclasses.replace(base, chunk_size=8).store_key()
        assert base.store_key() != dataclasses.replace(base, antithetic=True).store_key()
        assert base.store_key() != dataclasses.replace(base, grid_seed=123).store_key()

    def test_plan_fingerprint_pins_transient_and_base_seed(self, small_outcome):
        fingerprint = plan_fingerprint(small_outcome.plan)
        assert fingerprint["base_seed"] == 5
        assert fingerprint["transient"]["steps"] == FAST_TRANSIENT.num_steps
        assert small_outcome.store.fingerprint == fingerprint

    def test_duplicate_append_rejected(self, small_outcome):
        store = small_outcome.store
        case = small_outcome.plan.cases[0]
        with pytest.raises(StoreError, match="append-only"):
            store.append(case, store.get(case))

    def test_missing_case_error_names_case(self):
        store = MemoryBackend()
        case = SweepCase(engine="opera", nodes=60, order=1)
        with pytest.raises(StoreError, match="not in this results store"):
            store.get(case)

    def test_npz_store_persists_across_reopen(self, small_outcome, tmp_path):
        plan = small_outcome.plan
        store = ShardedNpzBackend(tmp_path / "store", shard_size=2)
        SweepRunner(workers=1, keep_statistics=True).run(plan, store=store)
        shards = sorted((tmp_path / "store").glob("shard-*.npz"))
        assert len(shards) == 2  # 4 cases, 2 per shard
        assert (tmp_path / "store" / "manifest.json").exists()

        reopened = ShardedNpzBackend(tmp_path / "store")
        reopened.open(plan)
        assert len(reopened) == len(plan.cases)
        for case in plan.cases:
            stored = reopened.get(case)
            expected = small_outcome.store.get(case)
            np.testing.assert_array_equal(stored.mean, expected.mean)
            np.testing.assert_array_equal(stored.std, expected.std)
            assert stored.worst_drop == expected.worst_drop

    def test_npz_store_rejects_mismatched_fingerprint(self, small_outcome, tmp_path):
        plan = small_outcome.plan
        ShardedNpzBackend(tmp_path / "store").open(plan)
        other = dataclasses.replace(plan, transient=TransientConfig(t_stop=2.4e-9, dt=0.2e-9))
        with pytest.raises(StoreError, match="different plan"):
            ShardedNpzBackend(tmp_path / "store").open(other)

    def test_npz_store_refuses_raw_payloads(self, small_outcome, tmp_path):
        plan = small_outcome.plan
        runner = SweepRunner(workers=1, keep_raw=True)
        with pytest.raises(StoreError, match="raw engine payloads"):
            runner.run(plan, store=ShardedNpzBackend(tmp_path / "store"))

    def test_shard_size_validated(self, tmp_path):
        with pytest.raises(StoreError, match="shard_size"):
            ShardedNpzBackend(tmp_path / "store", shard_size=0)

    def test_record_from_empty_store_rejected(self):
        with pytest.raises(StoreError, match="empty results store"):
            record_from_store(MemoryBackend())


class TestResume:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_interrupted_resume_is_bit_identical(self, small_outcome, tmp_path, workers):
        """Kill a campaign half-way, resume it, and get the uninterrupted numbers."""
        plan = small_outcome.plan
        store_dir = tmp_path / "store"
        truncated = dataclasses.replace(plan, cases=plan.cases[: len(plan.cases) // 2])
        SweepRunner(workers=1, keep_statistics=True).run(
            truncated, store=ShardedNpzBackend(store_dir, shard_size=1)
        )

        store = ShardedNpzBackend(store_dir, shard_size=1)
        outcome = SweepRunner(workers=workers, keep_statistics=True).resume(plan, store)
        assert outcome.executed == len(plan.cases) - len(truncated.cases)
        assert outcome.reused == len(truncated.cases)
        _assert_same_results(small_outcome, outcome)

        exported = record_from_store(store, plan=plan)
        baseline = record_from_outcome(small_outcome)
        assert _stable_cases(exported) == _stable_cases(baseline)
        assert exported.config["base_seed"] == baseline.config["base_seed"]
        assert exported.config["transient"] == baseline.config["transient"]

    def test_resume_after_dropping_shards(self, small_outcome, tmp_path):
        """Losing shards (a harsher kill) only re-runs the lost cases."""
        plan = small_outcome.plan
        store_dir = tmp_path / "store"
        SweepRunner(workers=1, keep_statistics=True).run(
            plan, store=ShardedNpzBackend(store_dir, shard_size=1)
        )
        shards = sorted(store_dir.glob("shard-*.npz"))
        assert len(shards) == len(plan.cases)
        for shard in shards[1::2]:
            shard.unlink()

        store = ShardedNpzBackend(store_dir, shard_size=1)
        outcome = SweepRunner(workers=2, keep_statistics=True).resume(plan, store)
        assert outcome.executed == len(shards[1::2])
        assert outcome.reused == len(plan.cases) - len(shards[1::2])
        _assert_same_results(small_outcome, outcome)
        assert _stable_cases(record_from_store(store, plan=plan)) == _stable_cases(
            record_from_outcome(small_outcome)
        )

    def test_fully_cached_resume_makes_zero_solver_calls(
        self, small_outcome, tmp_path, monkeypatch
    ):
        plan = small_outcome.plan
        store_dir = tmp_path / "store"
        SweepRunner(workers=1, keep_statistics=True).run(plan, store=ShardedNpzBackend(store_dir))

        import repro.sweep.runner as runner_module

        def boom(args):
            raise AssertionError("a fully-cached resume must not execute cases")

        monkeypatch.setattr(runner_module, "_execute_case", boom)
        store = ShardedNpzBackend(store_dir)
        outcome = SweepRunner(workers=1, keep_statistics=True).resume(plan, store)
        assert outcome.executed == 0
        assert outcome.reused == len(plan.cases)
        _assert_same_results(small_outcome, outcome)

    def test_memory_store_acts_as_cache_within_process(self, small_outcome, monkeypatch):
        """Re-running a plan against a populated in-memory store re-solves nothing."""
        import repro.sweep.runner as runner_module

        monkeypatch.setattr(
            runner_module,
            "_execute_case",
            lambda args: (_ for _ in ()).throw(AssertionError("cache miss")),
        )
        outcome = SweepRunner(workers=1, keep_statistics=True).resume(
            small_outcome.plan, small_outcome.store
        )
        assert outcome.executed == 0
        assert outcome.reused == len(small_outcome.plan.cases)

    def test_resume_requires_store(self, small_outcome):
        with pytest.raises(StoreError, match="results store"):
            SweepRunner(workers=1).resume(small_outcome.plan, None)

    def test_record_from_store_insertion_order_without_plan(self, small_outcome):
        record = record_from_store(small_outcome.store)
        assert len(record.cases) == len(small_outcome.plan.cases)
        assert {c["name"] for c in record.cases} == {c.name for c in small_outcome.plan.cases}


def _record_with_wall_times(small_outcome, scale: float) -> BenchRecord:
    payload = record_from_outcome(small_outcome).to_dict()
    for case in payload["cases"]:
        case["wall_time_s"] = max(case["wall_time_s"], 0.2) * scale
    return BenchRecord.from_dict(payload)


class TestRegress:
    def test_identical_records_pass(self, small_outcome):
        record = record_from_outcome(small_outcome)
        report = compare_records(record, record)
        assert report.ok
        assert not report.regressions
        assert "OK" in report.format()

    def test_large_regression_fails(self, small_outcome):
        baseline = _record_with_wall_times(small_outcome, 1.0)
        slower = _record_with_wall_times(small_outcome, 3.0)
        report = compare_records(baseline, slower, max_regression_percent=75.0)
        assert not report.ok
        assert len(report.regressions) == len(baseline.cases)
        assert "FAIL" in report.format()

    def test_speedup_within_threshold_passes(self, small_outcome):
        baseline = _record_with_wall_times(small_outcome, 1.0)
        faster = _record_with_wall_times(small_outcome, 0.5)
        assert compare_records(baseline, faster).ok

    def test_min_seconds_clamps_noise(self, small_outcome):
        baseline = _record_with_wall_times(small_outcome, 1.0)
        # 3x regression, but in absolute terms everything stays under the floor
        slower = _record_with_wall_times(small_outcome, 3.0)
        report = compare_records(baseline, slower, min_seconds=10.0)
        assert report.ok

    def test_mismatched_transients_rejected(self, small_outcome):
        baseline = record_from_outcome(small_outcome)
        payload = record_from_outcome(small_outcome).to_dict()
        payload["config"]["transient"] = {"t_stop": 9e-9, "dt": 1e-10, "steps": 90}
        current = BenchRecord.from_dict(payload)
        with pytest.raises(AnalysisError, match="not .?comparable|transient"):
            compare_records(baseline, current)

    def test_missing_case_fails(self, small_outcome):
        baseline = record_from_outcome(small_outcome)
        payload = baseline.to_dict()
        payload["cases"] = payload["cases"][1:]
        current = BenchRecord.from_dict(payload)
        report = compare_records(baseline, current)
        assert not report.ok
        assert len(report.missing) == 1

    def test_added_case_does_not_gate(self, small_outcome):
        current = record_from_outcome(small_outcome)
        payload = current.to_dict()
        payload["cases"] = payload["cases"][1:]
        baseline = BenchRecord.from_dict(payload)
        report = compare_records(baseline, current)
        assert report.ok
        assert len(report.added) == 1

    def test_regress_cli(self, small_outcome, tmp_path, capsys):
        from repro.sweep.regress import main as regress_main

        base_path = tmp_path / "base.json"
        _record_with_wall_times(small_outcome, 1.0).write(base_path)
        slow_path = tmp_path / "slow.json"
        _record_with_wall_times(small_outcome, 4.0).write(slow_path)

        assert regress_main([str(base_path), str(base_path)]) == 0
        assert regress_main([str(base_path), str(slow_path)]) == 1
        assert (regress_main([str(base_path), str(slow_path), "--max-regression", "1000"]) == 0)
        capsys.readouterr()  # silence report output


class TestSweepCli:
    def test_sweep_writes_artifact_and_gates(self, tmp_path, capsys):
        output = tmp_path / "sweep.json"
        args = [
            "sweep",
            "--nodes",
            "60",
            "--engines",
            "opera,montecarlo",
            "--samples",
            "8",
            "--steps",
            "5",
            "--output",
            str(output),
        ]
        assert cli_main(args) == 0
        record = BenchRecord.load(output)
        assert len(record.cases) == 2
        out = capsys.readouterr().out
        assert "speedup vs MC" in out

        # gate against itself: passes
        assert cli_main(args + ["--baseline", str(output)]) == 0
        capsys.readouterr()

    def test_sweep_store_mode_persists_and_reuses(self, tmp_path, capsys):
        store_dir = tmp_path / "campaign"
        args = [
            "sweep",
            "--nodes",
            "60",
            "--engines",
            "opera",
            "--samples",
            "8",
            "--steps",
            "5",
            "--output",
            str(tmp_path / "sweep.json"),
            "--store",
            str(store_dir),
            "--shard-size",
            "1",
        ]
        assert cli_main(args) == 0
        assert (store_dir / "manifest.json").exists()
        assert list(store_dir.glob("shard-*.npz"))
        capsys.readouterr()

        # Same campaign again: everything is served from the store.
        assert cli_main(args + ["--resume"]) == 0
        assert "from store" in capsys.readouterr().out

    def test_sweep_resume_requires_store(self, capsys):
        assert cli_main(["sweep", "--nodes", "60", "--samples", "8", "--resume"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_sweep_resume_rejects_missing_store_dir(self, tmp_path, capsys):
        args = [
            "sweep",
            "--nodes",
            "60",
            "--samples",
            "8",
            "--store",
            str(tmp_path / "absent"),
            "--resume",
        ]
        assert cli_main(args) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_sweep_rejects_unknown_engine(self, capsys):
        assert cli_main(["sweep", "--nodes", "60", "--engines", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_sweep_rejects_unknown_corner(self, capsys):
        assert (cli_main(["sweep", "--nodes", "60", "--samples", "8", "--corners", "bogus"]) == 2)
        assert "corner" in capsys.readouterr().err
