"""Tests for the stochastic-system builders (Eq. (13)-(14)) and the leakage model."""

import math

import numpy as np
import pytest

from repro.chaos.basis import PolynomialChaosBasis
from repro.errors import VariationModelError
from repro.grid.netlist import PowerGridNetlist
from repro.grid.stamping import stamp
from repro.variation.leakage import LeakageVariationSpec, RegionLeakageExcitation
from repro.variation.model import (
    AffineExcitation,
    GermVariable,
    StochasticSystem,
    SummedExcitation,
    VariationSpec,
    build_stochastic_system,
)
from repro.variation.regions import RegionPartition


class TestVariationSpec:
    def test_paper_defaults_match_section6(self):
        spec = VariationSpec.paper_defaults()
        assert spec.sigma_w == pytest.approx(0.20 / 3.0)
        assert spec.sigma_t == pytest.approx(0.15 / 3.0)
        assert spec.sigma_l == pytest.approx(0.20 / 3.0)
        assert spec.gate_cap_fraction == pytest.approx(0.40)

    def test_combined_conductance_sigma_is_25_percent_at_3sigma(self):
        """20% W and 15% T at 3-sigma combine to 25% in xi_G (Eq. (14))."""
        spec = VariationSpec.paper_defaults()
        assert 3.0 * spec.sigma_g * 100.0 == pytest.approx(25.0)

    def test_from_three_sigma_percent(self):
        spec = VariationSpec.from_three_sigma_percent(w=30.0, t=0.0, l=12.0)
        assert spec.sigma_w == pytest.approx(0.10)
        assert spec.sigma_t == 0.0
        assert spec.sigma_l == pytest.approx(0.04)

    def test_rejects_unphysical_sigmas(self):
        with pytest.raises(VariationModelError):
            VariationSpec(sigma_w=0.5)
        with pytest.raises(VariationModelError):
            VariationSpec(sigma_l=-0.1)

    def test_rejects_bad_gate_fraction(self):
        with pytest.raises(VariationModelError):
            VariationSpec(gate_cap_fraction=1.2)


class TestAffineExcitation:
    def test_sample_is_affine_in_germs(self):
        nominal = lambda t: np.array([1.0, 2.0])
        sensitivity = lambda t: np.array([0.1, -0.2])
        excitation = AffineExcitation(nominal, {1: sensitivity}, num_variables=2)
        np.testing.assert_allclose(excitation.sample(0.0, np.array([5.0, 0.0])), [1.0, 2.0])
        np.testing.assert_allclose(
            excitation.sample(0.0, np.array([0.0, 2.0])), [1.2, 1.6]
        )

    def test_pc_coefficients_use_first_order_indices(self):
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        excitation = AffineExcitation(
            lambda t: np.array([1.0]), {0: lambda t: np.array([0.5])}, num_variables=2
        )
        coefficients = excitation.pc_coefficients(basis, 0.0)
        assert set(coefficients.keys()) == {0, basis.first_order_index(0)}
        np.testing.assert_allclose(coefficients[basis.first_order_index(0)], [0.5])

    def test_nominal_equals_zero_germ_sample(self):
        excitation = AffineExcitation(
            lambda t: np.array([3.0]), {0: lambda t: np.array([1.0])}, num_variables=1
        )
        np.testing.assert_allclose(excitation.nominal(0.0), [3.0])

    def test_rejects_out_of_range_variable(self):
        with pytest.raises(VariationModelError):
            AffineExcitation(lambda t: np.zeros(1), {3: lambda t: np.zeros(1)}, num_variables=2)

    def test_summed_excitation(self):
        a = AffineExcitation(lambda t: np.array([1.0]), {}, num_variables=1)
        b = AffineExcitation(
            lambda t: np.array([2.0]), {0: lambda t: np.array([1.0])}, num_variables=1
        )
        total = SummedExcitation([a, b])
        np.testing.assert_allclose(total.sample(0.0, np.array([1.0])), [4.0])
        basis = PolynomialChaosBasis("hermite", order=1, num_vars=1)
        coefficients = total.pc_coefficients(basis, 0.0)
        np.testing.assert_allclose(coefficients[0], [3.0])

    def test_summed_requires_consistent_germs(self):
        a = AffineExcitation(lambda t: np.zeros(1), {}, num_variables=1)
        b = AffineExcitation(lambda t: np.zeros(1), {}, num_variables=2)
        with pytest.raises(VariationModelError):
            SummedExcitation([a, b])
        with pytest.raises(VariationModelError):
            SummedExcitation([])


class TestBuildStochasticSystem:
    def test_paper_model_has_two_germs(self, small_stamped):
        system = build_stochastic_system(small_stamped, VariationSpec.paper_defaults())
        assert system.variable_names() == ("xi_G", "xi_L")
        assert all(family == "hermite" for family in system.variable_families())

    def test_separate_wtl_has_three_germs(self, small_stamped):
        system = build_stochastic_system(small_stamped, VariationSpec(combine_wt=False))
        assert system.variable_names() == ("xi_W", "xi_T", "xi_L")

    def test_conductance_sensitivity_is_scaled_nominal(self, small_stamped):
        """Gg = sigma_G * Ga when pads vary (the Gb = d*Ga structure of Sec. 5)."""
        spec = VariationSpec.paper_defaults()
        system = build_stochastic_system(small_stamped, spec)
        g_index = system.variable_names().index("xi_G")
        expected = (spec.sigma_g * small_stamped.conductance).toarray()
        np.testing.assert_allclose(system.g_sensitivities[g_index].toarray(), expected, atol=1e-15)

    def test_pads_not_varying_excludes_package(self, small_stamped):
        spec = VariationSpec(pads_vary=False)
        system = build_stochastic_system(small_stamped, spec)
        g_index = system.variable_names().index("xi_G")
        expected = (spec.sigma_g * small_stamped.g_wire).toarray()
        np.testing.assert_allclose(system.g_sensitivities[g_index].toarray(), expected, atol=1e-15)

    def test_capacitance_sensitivity_uses_gate_caps(self, small_stamped):
        spec = VariationSpec.paper_defaults()
        system = build_stochastic_system(small_stamped, spec)
        l_index = system.variable_names().index("xi_L")
        expected = (spec.sigma_l * small_stamped.c_gate).toarray()
        np.testing.assert_allclose(system.c_sensitivities[l_index].toarray(), expected, atol=1e-25)

    def test_untagged_caps_fall_back_to_fraction(self):
        netlist = PowerGridNetlist()
        netlist.add_pad("a", 0.1, 1.0)
        netlist.add_resistor("a", "b", 1.0)
        netlist.add_capacitor("b", "0", 1e-12)  # not tagged as gate load
        netlist.add_current_source("b", 1e-3)
        stamped = stamp(netlist)
        spec = VariationSpec.paper_defaults()
        system = build_stochastic_system(stamped, spec)
        l_index = system.variable_names().index("xi_L")
        expected = spec.sigma_l * spec.gate_cap_fraction * 1e-12
        assert system.c_sensitivities[l_index].toarray()[1, 1] == pytest.approx(expected)

    def test_excitation_sensitivities(self, small_stamped):
        """dU/dxi_G = sigma_G * pad current; dU/dxi_L = -k * sigma_l * i(t)."""
        spec = VariationSpec.paper_defaults()
        system = build_stochastic_system(small_stamped, spec)
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        t = 0.3e-9
        coefficients = system.excitation.pc_coefficients(basis, t)
        g_term = coefficients[basis.first_order_index(0)]
        l_term = coefficients[basis.first_order_index(1)]
        np.testing.assert_allclose(g_term, spec.sigma_g * small_stamped.pad_current)
        np.testing.assert_allclose(
            l_term,
            -spec.current_leff_sensitivity * spec.sigma_l * small_stamped.drain_current_vector(t),
        )

    def test_realize_matrices_at_zero_is_nominal(self, small_system, small_stamped):
        G, C = small_system.realize_matrices(np.zeros(small_system.num_variables))
        np.testing.assert_allclose(G.toarray(), small_stamped.conductance.toarray())
        np.testing.assert_allclose(C.toarray(), small_stamped.capacitance.toarray())

    def test_realize_matrices_affine_in_germ(self, small_system):
        xi = np.array([1.5, -0.5])
        G, _ = small_system.realize_matrices(xi)
        g_index = small_system.variable_names().index("xi_G")
        expected = (small_system.g_nominal + 1.5 * small_system.g_sensitivities[g_index]).toarray()
        np.testing.assert_allclose(G.toarray(), expected)

    def test_realize_rejects_wrong_shape(self, small_system):
        with pytest.raises(VariationModelError):
            small_system.realize_matrices(np.zeros(5))

    def test_disabling_everything_raises(self, small_stamped):
        spec = VariationSpec(vary_conductance=False, vary_capacitance=False, vary_currents=False)
        with pytest.raises(VariationModelError):
            build_stochastic_system(small_stamped, spec)

    def test_has_matrix_variation_flag(self, small_system, small_leakage_system):
        assert small_system.has_matrix_variation
        assert not small_leakage_system.has_matrix_variation

    def test_system_validation(self, small_stamped):
        with pytest.raises(VariationModelError):
            StochasticSystem(
                variables=(GermVariable("xi"),),
                g_nominal=small_stamped.conductance,
                c_nominal=small_stamped.capacitance,
                g_sensitivities={5: small_stamped.conductance},
                c_sensitivities={},
                excitation=AffineExcitation(small_stamped.rhs, {}, num_variables=1),
                vdd=small_stamped.vdd,
            )


class TestLeakageSpec:
    def test_lognormal_sigma(self):
        spec = LeakageVariationSpec(vth_sigma=0.03, subthreshold_factor=1.5, thermal_voltage=0.0259)
        assert spec.lognormal_sigma == pytest.approx(0.03 / (1.5 * 0.0259))

    def test_hermite_coefficients_mean_preserving(self):
        spec = LeakageVariationSpec(vth_sigma=0.02)
        coefficients = spec.hermite_coefficients(4)
        assert coefficients[0] == pytest.approx(1.0)
        s = spec.lognormal_sigma
        assert coefficients[2] == pytest.approx(s**2 / math.sqrt(2.0))

    def test_factor_statistics(self, rng):
        spec = LeakageVariationSpec(vth_sigma=0.03)
        factors = spec.factor(rng.standard_normal(200000))
        assert np.mean(factors) == pytest.approx(1.0, rel=0.01)
        assert np.all(factors > 0)

    def test_non_mean_preserving_inflates_mean(self, rng):
        spec = LeakageVariationSpec(vth_sigma=0.03, mean_preserving=False)
        s = spec.lognormal_sigma
        factors = spec.factor(rng.standard_normal(200000))
        assert np.mean(factors) == pytest.approx(math.exp(0.5 * s * s), rel=0.01)

    def test_validation(self):
        with pytest.raises(VariationModelError):
            LeakageVariationSpec(vth_sigma=-0.01)
        with pytest.raises(VariationModelError):
            LeakageVariationSpec(subthreshold_factor=0.0)


class TestRegionLeakageExcitation:
    def test_number_of_variables_matches_regions(self, small_leakage_system):
        assert small_leakage_system.num_variables == 2
        assert small_leakage_system.variable_names() == ("xi_vth_r0", "xi_vth_r1")

    def test_mean_excitation_matches_nominal_rhs(self, small_stamped, small_leakage_system):
        """With the mean-preserving lognormal, E[U] equals the nominal RHS."""
        basis = PolynomialChaosBasis("hermite", order=2, num_vars=2)
        coefficients = small_leakage_system.excitation.pc_coefficients(basis, 0.0)
        np.testing.assert_allclose(coefficients[0], small_stamped.rhs(0.0), atol=1e-15)

    def test_zero_germ_sample_below_mean_for_lognormal(self, small_stamped, small_leakage_system):
        """The lognormal is right-skewed: the xi=0 sample draws less leakage
        than the mean-preserving average, so the RHS at xi=0 is larger (less
        negative) than the nominal RHS wherever leakage is attached."""
        at_zero = small_leakage_system.excitation.sample(0.0, np.zeros(2))
        nominal = small_stamped.rhs(0.0)
        assert np.all(at_zero - nominal >= -1e-18)
        assert np.any(at_zero - nominal > 0)

    def test_positive_germ_increases_leakage_draw(self, small_leakage_system):
        zero = small_leakage_system.excitation.sample(0.0, np.zeros(2))
        plus = small_leakage_system.excitation.sample(0.0, np.array([3.0, 3.0]))
        # more leakage -> more current drawn -> smaller (more negative) RHS entries
        assert np.sum(plus) < np.sum(zero)

    def test_region_germs_act_only_on_their_region(self, small_stamped, small_grid_spec):
        partition = RegionPartition(
            nx=small_grid_spec.nx, ny=small_grid_spec.ny, region_rows=2, region_cols=1
        )
        excitation = RegionLeakageExcitation(small_stamped, partition)
        base = excitation.sample(0.0, np.zeros(2))
        bumped = excitation.sample(0.0, np.array([2.0, 0.0]))
        changed = np.nonzero(np.abs(bumped - base) > 1e-18)[0]
        region_map = partition.region_map(small_stamped.node_names)
        assert len(changed) > 0
        assert np.all(region_map[changed] == 0)

    def test_pc_coefficients_reconstruct_samples(self, small_stamped, small_grid_spec, rng):
        """The chaos expansion of the excitation converges to exact samples."""
        partition = RegionPartition(
            nx=small_grid_spec.nx, ny=small_grid_spec.ny, region_rows=2, region_cols=1
        )
        spec = LeakageVariationSpec(vth_sigma=0.02)
        excitation = RegionLeakageExcitation(small_stamped, partition, spec)
        basis = PolynomialChaosBasis("hermite", order=4, num_vars=2)
        coefficients = excitation.pc_coefficients(basis, 0.0)
        xi = rng.standard_normal((50, 2))
        psi = basis.evaluate(xi)
        stacked = np.zeros((basis.size, small_stamped.num_nodes))
        for index, vector in coefficients.items():
            stacked[index] = vector
        reconstructed = psi @ stacked
        exact = np.vstack([excitation.sample(0.0, point) for point in xi])
        scale = np.max(np.abs(exact))
        assert np.max(np.abs(reconstructed - exact)) / scale < 1e-4

    def test_requires_tagged_leakage_sources(self):
        netlist = PowerGridNetlist()
        netlist.add_pad("n0_0_0", 0.1, 1.0)
        netlist.add_resistor("n0_0_0", "n0_1_0", 1.0)
        netlist.add_current_source("n0_1_0", 1e-3)  # not tagged as leakage
        stamped = stamp(netlist)
        partition = RegionPartition(nx=2, ny=2, region_rows=2, region_cols=1)
        with pytest.raises(VariationModelError):
            RegionLeakageExcitation(stamped, partition)

    def test_sample_rejects_wrong_shape(self, small_leakage_system):
        with pytest.raises(VariationModelError):
            small_leakage_system.excitation.sample(0.0, np.zeros(5))

    def test_build_leakage_system_is_rhs_only(self, small_leakage_system):
        assert small_leakage_system.g_sensitivities == {}
        assert small_leakage_system.c_sensitivities == {}
        assert not small_leakage_system.has_matrix_variation

    def test_region_leakage_vectors_cover_all_leakage(self, small_stamped, small_grid_spec):
        partition = RegionPartition(
            nx=small_grid_spec.nx, ny=small_grid_spec.ny, region_rows=2, region_cols=2
        )
        excitation = RegionLeakageExcitation(small_stamped, partition)
        total = sum(v.sum() for v in excitation.region_leakage_vectors)
        leak = small_stamped.drain_current_vector(0.0) - small_stamped.drain_current_vector(
            0.0, include_leakage=False
        )
        assert total == pytest.approx(leak.sum(), rel=1e-12)
