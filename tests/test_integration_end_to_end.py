"""End-to-end integration tests: the paper's claims on a scaled-down grid.

These are the most important tests of the repository: they check that the
OPERA engine reproduces the Monte Carlo statistics (Table 1's error columns),
that the special case of Section 5.1 is exact, and that the qualitative
findings of Section 6 (mu ~= mu0, +/-3sigma ~= 30-45 % of the nominal drop,
large speed-ups) hold on the synthetic substrate.
"""

import numpy as np
import pytest

from repro.analysis import (
    compare_to_monte_carlo,
    drop_distribution_comparison,
    three_sigma_spread_percent,
)
from repro.grid import GridSpec, generate_power_grid, stamp
from repro.montecarlo import MonteCarloConfig, run_monte_carlo_dc, run_monte_carlo_transient
from repro.opera import OperaConfig, run_opera_dc, run_opera_transient
from repro.sim import TransientConfig, transient_analysis
from repro.variation import VariationSpec, build_stochastic_system


@pytest.fixture(scope="module")
def grid():
    spec = GridSpec(nx=10, ny=10, num_layers=2, num_blocks=4, pad_spacing=2, seed=11)
    netlist = generate_power_grid(spec)
    return stamp(netlist)


@pytest.fixture(scope="module")
def system(grid):
    return build_stochastic_system(grid, VariationSpec.paper_defaults())


@pytest.fixture(scope="module")
def transient():
    return TransientConfig(t_stop=2.0e-9, dt=0.2e-9)


@pytest.fixture(scope="module")
def opera_result(system, transient):
    return run_opera_transient(system, OperaConfig(transient=transient, order=2))


@pytest.fixture(scope="module")
def monte_carlo_result(system, transient, opera_result):
    return run_monte_carlo_transient(
        system,
        MonteCarloConfig(
            transient=transient,
            num_samples=120,
            seed=23,
            antithetic=True,
            store_nodes=(int(opera_result.worst_node()),),
        ),
    )


class TestStochasticDCAgainstMonteCarlo:
    """DC comparison isolates the chaos machinery from integration error."""

    def test_mean_and_sigma_converge_to_monte_carlo(self, system):
        field = run_opera_dc(system, order=2, t=0.35e-9)
        reference = run_monte_carlo_dc(system, num_samples=4000, t=0.35e-9, seed=29)
        drops_opera = field.vdd - field.mean
        drops_mc = reference.mean_drop
        hot = drops_mc > 0.2 * drops_mc.max()

        mean_error = np.abs(drops_opera - drops_mc)[hot] / drops_mc[hot]
        sigma_error = np.abs(field.std - reference.std_drop)[hot] / reference.std_drop[hot]
        # Paper Table 1: average mu error well below 1 %, sigma error a few %.
        assert np.mean(mean_error) * 100 < 0.5
        assert np.mean(sigma_error) * 100 < 5.0


class TestOperaVsMonteCarloTransient:
    def test_mean_error_far_below_one_percent(self, opera_result, monte_carlo_result):
        metrics = compare_to_monte_carlo(opera_result, monte_carlo_result)
        assert metrics.average_mean_error_percent < 0.5
        assert metrics.maximum_mean_error_percent < 2.0

    def test_sigma_error_within_sampling_noise(self, opera_result, monte_carlo_result):
        metrics = compare_to_monte_carlo(opera_result, monte_carlo_result)
        # 120 antithetic samples -> sampling noise of sigma is ~6-10 %
        assert metrics.average_sigma_error_percent < 20.0

    def test_mean_drop_tracks_nominal(self, opera_result, grid, transient):
        """Section 6: mu with variations ~= mu0 without variations."""
        nominal = transient_analysis(grid, transient)
        difference = np.abs(opera_result.mean_drop - nominal.drops)
        assert np.max(difference) / grid.vdd < 0.005  # negligible as % of VDD

    def test_three_sigma_spread_matches_paper_band(self, opera_result, grid, transient):
        nominal = transient_analysis(grid, transient)
        spread = three_sigma_spread_percent(opera_result, nominal)
        assert 25.0 < spread < 55.0

    def test_peak_drop_stays_below_ten_percent_vdd(self, opera_result, grid):
        assert opera_result.mean_drop.max() < 0.10 * grid.vdd

    def test_opera_faster_than_monte_carlo(self, opera_result, monte_carlo_result):
        """With 120 samples the speed-up must already be an order of magnitude."""
        assert monte_carlo_result.wall_time > 10.0 * opera_result.wall_time

    def test_drop_distribution_agrees_at_worst_node(self, opera_result, monte_carlo_result):
        node = int(opera_result.worst_node())
        comparison = drop_distribution_comparison(opera_result, monte_carlo_result, node=node)
        assert comparison.opera_mean_percent_vdd == pytest.approx(
            comparison.monte_carlo_mean_percent_vdd, rel=0.03
        )
        assert comparison.opera_sigma_percent_vdd == pytest.approx(
            comparison.monte_carlo_sigma_percent_vdd, rel=0.35
        )
        # the two histograms overlap substantially (total variation < 35 %)
        assert comparison.histogram_distance() < 35.0


class TestOrderConvergence:
    def test_order_three_changes_little_over_order_two(self, system, transient):
        """The paper finds order 2/3 sufficient; going to order 3 must not
        change the statistics materially (the expansion has converged)."""
        order2 = run_opera_transient(system, OperaConfig(transient=transient, order=2))
        order3 = run_opera_transient(system, OperaConfig(transient=transient, order=3))
        sigma2 = order2.std_drop
        sigma3 = order3.std_drop
        hot = sigma3 > 0.25 * sigma3.max()
        relative_change = np.abs(sigma2 - sigma3)[hot] / sigma3[hot]
        assert np.max(relative_change) < 0.02
        mean_change = np.max(np.abs(order2.mean_voltage - order3.mean_voltage))
        assert mean_change / system.vdd < 1e-4

    def test_order_one_captures_most_variance(self, system, transient):
        order1 = run_opera_transient(system, OperaConfig(transient=transient, order=1))
        order2 = run_opera_transient(system, OperaConfig(transient=transient, order=2))
        peak1 = order1.std_drop.max()
        peak2 = order2.std_drop.max()
        assert peak1 == pytest.approx(peak2, rel=0.1)


class TestSeparateVsCombinedGerms:
    def test_combined_wt_matches_three_germ_model(self, grid, transient):
        """Eq. (14): folding xi_W and xi_T into xi_G must not change the
        response statistics (the two parametrisations are equivalent)."""
        combined = build_stochastic_system(grid, VariationSpec(combine_wt=True))
        separate = build_stochastic_system(grid, VariationSpec(combine_wt=False))
        result_combined = run_opera_transient(combined, OperaConfig(transient=transient, order=2))
        result_separate = run_opera_transient(separate, OperaConfig(transient=transient, order=2))
        np.testing.assert_allclose(
            result_combined.mean_voltage, result_separate.mean_voltage, atol=5e-6
        )
        hot = result_separate.std_drop > 0.25 * result_separate.std_drop.max()
        np.testing.assert_allclose(
            result_combined.std_drop[hot], result_separate.std_drop[hot], rtol=0.02
        )


class TestLeakageSpecialCaseEndToEnd:
    def test_special_case_matches_monte_carlo(self, small_leakage_system, fast_transient):
        opera = run_opera_transient(
            small_leakage_system, OperaConfig(transient=fast_transient, order=3)
        )
        mc = run_monte_carlo_transient(
            small_leakage_system,
            MonteCarloConfig(transient=fast_transient, num_samples=150, seed=31, antithetic=True),
        )
        metrics = compare_to_monte_carlo(opera, mc)
        # The lognormal leakage factor (s ~ 0.77) is heavy-tailed, so the
        # 150-sample Monte Carlo reference itself carries several percent of
        # noise in mu and ~20-25 % in sigma; the thresholds account for that.
        assert metrics.average_mean_error_percent < 1.5
        assert metrics.average_sigma_error_percent < 35.0

    def test_leakage_only_variation_is_small_but_nonzero(
        self, small_leakage_system, fast_transient
    ):
        result = run_opera_transient(
            small_leakage_system, OperaConfig(transient=fast_transient, order=2)
        )
        assert result.std_drop.max() > 0
        # leakage is ~5 % of the current, so its sigma is a small fraction of the drop
        assert result.std_drop.max() < 0.2 * result.mean_drop.max()
