"""Tests for accuracy metrics, Table-1 assembly and distribution comparisons."""

import pytest

from repro.analysis.histogram import ascii_histogram, drop_distribution_comparison
from repro.analysis.metrics import (
    AccuracyMetrics,
    compare_to_monte_carlo,
    three_sigma_spread_percent,
)
from repro.analysis.tables import PAPER_TABLE1, Table1Row, format_table1
from repro.errors import AnalysisError
from repro.montecarlo.engine import (
    MonteCarloConfig,
    MonteCarloTransientResult,
    run_monte_carlo_transient,
)
from repro.opera import OperaConfig, run_opera_transient
from repro.sim.transient import transient_analysis


@pytest.fixture(scope="module")
def opera_and_mc(small_system, fast_transient):
    opera = run_opera_transient(small_system, OperaConfig(transient=fast_transient, order=2))
    mc = run_monte_carlo_transient(
        small_system,
        MonteCarloConfig(
            transient=fast_transient,
            num_samples=60,
            seed=17,
            antithetic=True,
            store_nodes=(int(opera.worst_node()),),
        ),
    )
    return opera, mc


class TestCompareToMonteCarlo:
    def test_small_grid_errors_within_monte_carlo_noise(self, opera_and_mc):
        opera, mc = opera_and_mc
        metrics = compare_to_monte_carlo(opera, mc)
        # 60 antithetic samples: the mean is tight, sigma noisier.
        assert metrics.average_mean_error_percent < 1.0
        assert metrics.average_sigma_error_percent < 30.0
        assert metrics.maximum_mean_error_percent >= metrics.average_mean_error_percent
        assert metrics.maximum_sigma_error_percent >= metrics.average_sigma_error_percent
        assert metrics.num_points_compared > 0

    def test_perfect_agreement_gives_zero_error(self, opera_and_mc):
        opera, _ = opera_and_mc
        fake_mc = MonteCarloTransientResult(
            times=opera.times,
            mean_voltage=opera.mean_voltage.copy(),
            variance=opera.variance.copy(),
            num_samples=123,
            vdd=opera.vdd,
        )
        metrics = compare_to_monte_carlo(opera, fake_mc)
        assert metrics.average_mean_error_percent == pytest.approx(0.0, abs=1e-12)
        assert metrics.maximum_sigma_error_percent == pytest.approx(0.0, abs=1e-12)

    def test_known_bias_reflected_in_metrics(self, opera_and_mc):
        opera, _ = opera_and_mc
        biased = MonteCarloTransientResult(
            times=opera.times,
            mean_voltage=opera.vdd - 1.02 * opera.mean_drop,  # 2% larger drops
            variance=opera.variance.copy(),
            num_samples=10,
            vdd=opera.vdd,
        )
        metrics = compare_to_monte_carlo(opera, biased)
        assert metrics.average_mean_error_percent == pytest.approx(100 * (0.02 / 1.02), rel=1e-6)

    def test_time_axis_mismatch_rejected(self, opera_and_mc):
        opera, mc = opera_and_mc
        shifted = MonteCarloTransientResult(
            times=mc.times + 0.1e-9,
            mean_voltage=mc.mean_voltage,
            variance=mc.variance,
            num_samples=mc.num_samples,
            vdd=mc.vdd,
        )
        with pytest.raises(AnalysisError):
            compare_to_monte_carlo(opera, shifted)

    def test_string_rendering(self, opera_and_mc):
        metrics = compare_to_monte_carlo(*opera_and_mc)
        text = str(metrics)
        assert "sigma error" in text


class TestThreeSigmaSpread:
    def test_spread_in_paper_band(self, opera_and_mc, small_stamped, fast_transient):
        opera, _ = opera_and_mc
        nominal = transient_analysis(small_stamped, fast_transient)
        spread = three_sigma_spread_percent(opera, nominal)
        # the paper reports +/-30..46 % across its grids
        assert 20.0 < spread < 60.0

    def test_spread_without_nominal_close_to_with(
        self, opera_and_mc, small_stamped, fast_transient
    ):
        opera, _ = opera_and_mc
        nominal = transient_analysis(small_stamped, fast_transient)
        with_nominal = three_sigma_spread_percent(opera, nominal)
        without = three_sigma_spread_percent(opera)
        assert without == pytest.approx(with_nominal, rel=0.1)

    def test_scaling_with_sigma(self, opera_and_mc):
        opera, _ = opera_and_mc
        doubled = type(opera)(
            times=opera.times,
            basis=opera.basis,
            vdd=opera.vdd,
            coefficients=None,
            mean=opera.mean_voltage,
            variance=4.0 * opera.variance,
            node_names=opera.node_names,
        )
        assert three_sigma_spread_percent(doubled) == pytest.approx(
            2.0 * three_sigma_spread_percent(opera), rel=1e-9
        )


class TestTable1:
    def test_row_from_metrics_and_speedup(self):
        metrics = AccuracyMetrics(0.01, 0.05, 2.0, 4.0, 1000)
        row = Table1Row.from_metrics(
            "g", 1234, metrics, 33.0, monte_carlo_seconds=100.0, opera_seconds=4.0
        )
        assert row.speedup == pytest.approx(25.0)
        assert row.average_sigma_error_percent == 2.0

    def test_zero_opera_time_gives_infinite_speedup(self):
        row = Table1Row("g", 10, 0, 0, 0, 0, 30.0, 1.0, 0.0)
        assert row.speedup == float("inf")

    def test_format_contains_all_rows_and_headers(self):
        text = format_table1(PAPER_TABLE1, title="Paper Table 1")
        assert "Paper Table 1" in text
        assert "Speedup" in text
        for row in PAPER_TABLE1:
            assert str(row.num_nodes) in text

    def test_paper_reference_values(self):
        """Sanity-check the transcribed Table 1 reference data."""
        assert len(PAPER_TABLE1) == 7
        first = PAPER_TABLE1[0]
        assert first.num_nodes == 19181
        assert first.speedup == pytest.approx(1444.00 / 14.32, rel=1e-3)
        speedups = [row.speedup for row in PAPER_TABLE1]
        assert min(speedups) > 15 and max(speedups) < 130


class TestDropDistribution:
    def test_comparison_matches_figures_format(self, opera_and_mc):
        opera, mc = opera_and_mc
        node = int(opera.worst_node())
        comparison = drop_distribution_comparison(opera, mc, node=node, bins=20)
        assert comparison.bin_centers_percent_vdd.shape == (20,)
        assert comparison.opera_percent_occurrence.sum() == pytest.approx(100.0, abs=1e-6)
        assert comparison.monte_carlo_percent_occurrence.sum() == pytest.approx(100.0, abs=1e-6)

    def test_opera_and_mc_statistics_agree(self, opera_and_mc):
        opera, mc = opera_and_mc
        node = int(opera.worst_node())
        comparison = drop_distribution_comparison(opera, mc, node=node)
        assert comparison.opera_mean_percent_vdd == pytest.approx(
            comparison.monte_carlo_mean_percent_vdd, rel=0.05
        )
        assert comparison.opera_sigma_percent_vdd == pytest.approx(
            comparison.monte_carlo_sigma_percent_vdd, rel=0.5
        )

    def test_histogram_distance_bounded(self, opera_and_mc):
        opera, mc = opera_and_mc
        node = int(opera.worst_node())
        comparison = drop_distribution_comparison(opera, mc, node=node)
        assert 0.0 <= comparison.histogram_distance() <= 100.0

    def test_unstored_node_rejected(self, opera_and_mc):
        opera, mc = opera_and_mc
        missing = (int(opera.worst_node()) + 1) % opera.num_nodes
        with pytest.raises(AnalysisError):
            drop_distribution_comparison(opera, mc, node=missing)

    def test_ascii_rendering(self, opera_and_mc):
        opera, mc = opera_and_mc
        node = int(opera.worst_node())
        comparison = drop_distribution_comparison(opera, mc, node=node, bins=10)
        art = ascii_histogram(comparison)
        assert "voltage drop distribution" in art
        assert "#" in art and "*" in art
