"""Tests for parameter distributions, PCA decorrelation and chip regions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VariationModelError
from repro.variation.correlation import (
    correlation_from_distance,
    decorrelate_gaussian,
)
from repro.variation.distributions import (
    BetaParameter,
    GammaParameter,
    GaussianParameter,
    LognormalParameter,
    UniformParameter,
)
from repro.variation.regions import RegionPartition


class TestGaussianParameter:
    def test_three_sigma_convention(self):
        """20% 3-sigma variation of the paper -> sigma = mu * 0.2 / 3."""
        parameter = GaussianParameter.from_three_sigma_percent(mu=0.1, three_sigma_percent=20.0)
        assert parameter.sigma == pytest.approx(0.1 * 0.2 / 3.0)
        assert parameter.relative_sigma() == pytest.approx(0.2 / 3.0)

    def test_from_germ_affine(self):
        parameter = GaussianParameter(mu=2.0, sigma=0.5)
        np.testing.assert_allclose(parameter.from_germ(np.array([-1.0, 0.0, 2.0])), [1.5, 2.0, 3.0])

    def test_sampling_statistics(self, rng):
        parameter = GaussianParameter(mu=1.0, sigma=0.1)
        samples = parameter.sample(rng, 100000)
        assert np.mean(samples) == pytest.approx(1.0, abs=2e-3)
        assert np.std(samples) == pytest.approx(0.1, rel=0.03)

    def test_rejects_negative_sigma(self):
        with pytest.raises(VariationModelError):
            GaussianParameter(mu=1.0, sigma=-0.1)

    def test_family_is_hermite(self):
        assert GaussianParameter(1.0, 0.1).germ_family == "hermite"


class TestLognormalParameter:
    def test_mean_and_std_formulas(self):
        parameter = LognormalParameter(log_mu=0.0, log_sigma=0.5)
        assert parameter.mean() == pytest.approx(math.exp(0.125))
        expected_std = parameter.mean() * math.sqrt(math.exp(0.25) - 1.0)
        assert parameter.std() == pytest.approx(expected_std)

    def test_sampling_matches_moments(self, rng):
        parameter = LognormalParameter(log_mu=-1.0, log_sigma=0.3)
        samples = parameter.sample(rng, 200000)
        assert np.mean(samples) == pytest.approx(parameter.mean(), rel=0.01)
        assert np.std(samples) == pytest.approx(parameter.std(), rel=0.03)

    def test_samples_positive(self, rng):
        samples = LognormalParameter(0.0, 1.0).sample(rng, 1000)
        assert np.all(samples > 0)

    def test_from_median(self):
        parameter = LognormalParameter.from_median_and_sigma(2.0, 0.4)
        assert parameter.log_mu == pytest.approx(math.log(2.0))
        with pytest.raises(VariationModelError):
            LognormalParameter.from_median_and_sigma(-1.0, 0.4)


class TestUniformParameter:
    def test_moments(self):
        parameter = UniformParameter(low=1.0, high=3.0)
        assert parameter.mean() == pytest.approx(2.0)
        assert parameter.std() == pytest.approx(2.0 / math.sqrt(12.0))

    def test_germ_maps_endpoints(self):
        parameter = UniformParameter(low=1.0, high=3.0)
        assert parameter.from_germ(-1.0) == pytest.approx(1.0)
        assert parameter.from_germ(1.0) == pytest.approx(3.0)

    def test_family_is_legendre(self):
        assert UniformParameter(0.0, 1.0).germ_family == "legendre"

    def test_rejects_inverted_range(self):
        with pytest.raises(VariationModelError):
            UniformParameter(low=1.0, high=0.5)


class TestGammaAndBeta:
    def test_gamma_moments(self, rng):
        parameter = GammaParameter(scale=0.2, shift=1.0)
        samples = parameter.sample(rng, 200000)
        assert np.mean(samples) == pytest.approx(parameter.mean(), rel=0.01)
        assert np.std(samples) == pytest.approx(parameter.std(), rel=0.03)

    def test_gamma_family_is_laguerre(self):
        assert GammaParameter(scale=1.0).germ_family == "laguerre"

    def test_beta_moments(self, rng):
        parameter = BetaParameter(low=0.0, high=1.0, alpha=2.0, beta=3.0)
        samples = parameter.sample(rng, 200000)
        assert np.mean(samples) == pytest.approx(parameter.mean(), abs=0.005)
        assert np.std(samples) == pytest.approx(parameter.std(), rel=0.05)

    def test_beta_samples_in_range(self, rng):
        parameter = BetaParameter(low=-2.0, high=2.0)
        samples = parameter.sample(rng, 5000)
        assert samples.min() >= -2.0 and samples.max() <= 2.0

    def test_validation(self):
        with pytest.raises(VariationModelError):
            GammaParameter(scale=0.0)
        with pytest.raises(VariationModelError):
            BetaParameter(low=0.0, high=1.0, alpha=-2.0)


class TestDecorrelation:
    def test_diagonal_covariance_keeps_sigmas(self):
        pca = decorrelate_gaussian(np.diag([4.0, 1.0]))
        reconstructed = pca.transform @ pca.transform.T
        np.testing.assert_allclose(reconstructed, np.diag([4.0, 1.0]), atol=1e-12)

    def test_reconstructs_full_covariance(self, rng):
        A = rng.normal(size=(4, 4))
        covariance = A @ A.T + 0.5 * np.eye(4)
        pca = decorrelate_gaussian(covariance)
        np.testing.assert_allclose(pca.transform @ pca.transform.T, covariance, atol=1e-10)

    def test_transformed_samples_have_target_covariance(self, rng):
        covariance = np.array([[1.0, 0.8], [0.8, 1.0]])
        pca = decorrelate_gaussian(covariance)
        xi = rng.standard_normal((200000, pca.num_components))
        samples = pca.to_parameters(xi)
        empirical = np.cov(samples.T)
        np.testing.assert_allclose(empirical, covariance, atol=0.02)

    def test_truncation_keeps_dominant_energy(self):
        covariance = np.diag([10.0, 1.0, 0.01])
        pca = decorrelate_gaussian(covariance, num_components=2)
        assert pca.num_components == 2
        assert pca.explained_fraction.sum() == pytest.approx(11.0 / 11.01, rel=1e-6)

    def test_eigenvalues_sorted_descending(self, rng):
        A = rng.normal(size=(5, 5))
        pca = decorrelate_gaussian(A @ A.T)
        assert np.all(np.diff(pca.eigenvalues) <= 1e-12)

    def test_rejects_asymmetric(self):
        with pytest.raises(VariationModelError):
            decorrelate_gaussian(np.array([[1.0, 0.5], [0.0, 1.0]]))

    def test_rejects_indefinite(self):
        with pytest.raises(VariationModelError):
            decorrelate_gaussian(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(VariationModelError):
            decorrelate_gaussian(np.ones((2, 3)))

    def test_sensitivity_row(self):
        pca = decorrelate_gaussian(np.diag([4.0, 1.0]))
        row = pca.sensitivity_row(0)
        assert row.shape == (2,)

    @given(
        sigma=st.floats(min_value=0.05, max_value=2.0),
        length=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_distance_correlation_is_valid_covariance(self, sigma, length):
        positions = [(0.0, 0.0), (1.0, 0.0), (0.0, 2.0), (3.0, 3.0)]
        covariance = correlation_from_distance(positions, length, sigma)
        assert covariance.shape == (4, 4)
        np.testing.assert_allclose(np.diag(covariance), sigma**2)
        eigenvalues = np.linalg.eigvalsh(covariance)
        assert eigenvalues.min() > -1e-10

    def test_distance_correlation_decays(self):
        covariance = correlation_from_distance([(0, 0), (0, 1), (0, 10)], correlation_length=2.0)
        assert covariance[0, 1] > covariance[0, 2]

    def test_distance_correlation_validation(self):
        with pytest.raises(VariationModelError):
            correlation_from_distance([(0, 0)], correlation_length=0.0)
        with pytest.raises(VariationModelError):
            correlation_from_distance([0.0, 1.0], correlation_length=1.0)


class TestRegionPartition:
    def test_region_count(self):
        assert RegionPartition(nx=10, ny=10, region_rows=2, region_cols=3).num_regions == 6

    def test_two_region_split_matches_paper_example(self):
        """The paper's special-case example divides the chip into 2 regions."""
        partition = RegionPartition(nx=8, ny=8, region_rows=2, region_cols=1)
        assert partition.region_of(0, 0) == 0
        assert partition.region_of(3, 7) == 0
        assert partition.region_of(4, 0) == 1
        assert partition.region_of(7, 7) == 1

    def test_every_node_gets_a_region(self):
        partition = RegionPartition(nx=7, ny=5, region_rows=3, region_cols=2)
        for row in range(7):
            for col in range(5):
                assert 0 <= partition.region_of(row, col) < partition.num_regions

    def test_out_of_range_rejected(self):
        partition = RegionPartition(nx=4, ny=4)
        with pytest.raises(VariationModelError):
            partition.region_of(4, 0)

    def test_node_name_mapping(self):
        partition = RegionPartition(nx=8, ny=8, region_rows=2, region_cols=2)
        assert partition.region_of_node_name("n0_0_0") == 0
        assert partition.region_of_node_name("n0_7_7") == 3
        assert partition.region_of_node_name("n1_0_0") is None  # upper layer

    def test_bad_node_name_rejected(self):
        partition = RegionPartition(nx=4, ny=4)
        with pytest.raises(VariationModelError):
            partition.region_of_node_name("weird-name")

    def test_region_map_over_generated_grid(self, small_netlist, small_grid_spec):
        partition = RegionPartition(
            nx=small_grid_spec.nx, ny=small_grid_spec.ny, region_rows=2, region_cols=2
        )
        mapping = partition.region_map(small_netlist.node_names)
        assert mapping.shape == (small_netlist.num_nodes,)
        bottom = [name.startswith("n0_") for name in small_netlist.node_names]
        assert np.all(mapping[np.array(bottom)] >= 0)
        assert np.all(mapping[~np.array(bottom)] == -1)

    def test_region_centers(self):
        centers = RegionPartition(nx=10, ny=10, region_rows=2, region_cols=2).region_centers()
        assert centers.shape == (4, 2)
        np.testing.assert_allclose(centers[0], [2.5, 2.5])

    def test_validation(self):
        with pytest.raises(VariationModelError):
            RegionPartition(nx=2, ny=2, region_rows=3, region_cols=1)
        with pytest.raises(VariationModelError):
            RegionPartition(nx=0, ny=2)
