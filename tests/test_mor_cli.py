"""Tests for the PRIMA model-order-reduction extension and the CLI."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.cli import build_parser, main
from repro.mor.prima import prima_reduce
from repro.sim.dc import solve_dc
from repro.sim.transient import TransientConfig


class TestPrimaReduction:
    @pytest.fixture(scope="class")
    def reduced(self, small_stamped):
        ports = np.array(
            sorted(
                set(small_stamped.source_nodes[:4].tolist())
                | set(small_stamped.pad_nodes[:2].tolist())
            )
        )
        model = prima_reduce(
            small_stamped.conductance, small_stamped.capacitance, ports, num_moments=3
        )
        return model, ports

    def test_reduced_dimensions(self, reduced, small_stamped):
        model, ports = reduced
        assert model.order <= 3 * ports.size
        assert model.order < small_stamped.num_nodes
        assert model.projection.shape == (small_stamped.num_nodes, model.order)
        assert model.num_ports == ports.size

    def test_projection_is_orthonormal(self, reduced):
        model, _ = reduced
        gram = model.projection.T @ model.projection
        np.testing.assert_allclose(gram, np.eye(model.order), atol=1e-10)

    def test_reduced_matrices_symmetric_positive(self, reduced):
        model, _ = reduced
        np.testing.assert_allclose(model.conductance, model.conductance.T, atol=1e-10)
        eigenvalues = np.linalg.eigvalsh(model.conductance)
        assert eigenvalues.min() > 0

    def test_dc_port_response_preserved(self, reduced, small_stamped):
        """PRIMA matches the zeroth moment: DC response to port injections."""
        model, ports = reduced
        injection = np.zeros(ports.size)
        injection[0] = 1e-3
        full_rhs = np.zeros(small_stamped.num_nodes)
        full_rhs[ports[0]] = 1e-3
        full = solve_dc(small_stamped.conductance, full_rhs)
        reduced_states = np.linalg.solve(model.conductance, model.input_map @ injection)
        approx = model.expand(reduced_states)
        np.testing.assert_allclose(approx[ports], full[ports], rtol=1e-6, atol=1e-12)

    def test_transient_runs_on_reduced_model(self, reduced):
        model, ports = reduced
        config = TransientConfig(t_stop=1e-9, dt=0.2e-9)
        result = model.transient(lambda t: 1e-3 * np.ones(ports.size), config)
        assert result.voltages.shape[1] == model.order

    def test_input_matrix_form(self, small_stamped):
        n = small_stamped.num_nodes
        B = np.zeros((n, 2))
        B[0, 0] = 1.0
        B[1, 1] = 1.0
        model = prima_reduce(small_stamped.conductance, small_stamped.capacitance, B, num_moments=2)
        assert model.num_ports == 2

    def test_validation(self, small_stamped):
        with pytest.raises(SolverError):
            prima_reduce(
                small_stamped.conductance,
                small_stamped.capacitance,
                np.array([0]),
                num_moments=0,
            )
        with pytest.raises(SolverError):
            prima_reduce(
                small_stamped.conductance,
                small_stamped.capacitance,
                np.array([small_stamped.num_nodes + 5]),
            )


class TestCLI:
    def test_parser_has_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "out.sp", "--nodes", "100"])
        assert args.command == "generate"
        args = parser.parse_args(["analyze", "--synthetic-nodes", "100"])
        assert args.command == "analyze"
        args = parser.parse_args(["compare", "--synthetic-nodes", "100", "--samples", "10"])
        assert args.samples == 10

    def test_generate_writes_deck(self, tmp_path, capsys):
        output = tmp_path / "grid.sp"
        code = main(["generate", str(output), "--nodes", "80", "--seed", "3"])
        assert code == 0
        assert output.exists()
        assert "wrote" in capsys.readouterr().out

    def test_analyze_synthetic_grid(self, capsys):
        code = main(
            [
                "analyze",
                "--synthetic-nodes",
                "80",
                "--seed",
                "2",
                "--t-stop",
                "1e-9",
                "--dt",
                "0.25e-9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst node" in out
        assert "3sigma" in out

    def test_analyze_spice_deck(self, tmp_path, capsys):
        output = tmp_path / "grid.sp"
        main(["generate", str(output), "--nodes", "80", "--seed", "3"])
        code = main(["analyze", "--spice", str(output), "--t-stop", "1e-9", "--dt", "0.25e-9"])
        assert code == 0
        assert "VDD" in capsys.readouterr().out

    def test_compare_prints_table_row(self, capsys):
        code = main(
            [
                "compare",
                "--synthetic-nodes",
                "60",
                "--seed",
                "4",
                "--samples",
                "8",
                "--t-stop",
                "1e-9",
                "--dt",
                "0.25e-9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Speedup" in out
        assert "OPERA vs Monte Carlo" in out

    def test_custom_three_sigma_option(self, capsys):
        code = main(
            [
                "analyze",
                "--synthetic-nodes",
                "60",
                "--three-sigma",
                "10",
                "5",
                "10",
                "--t-stop",
                "1e-9",
                "--dt",
                "0.5e-9",
            ]
        )
        assert code == 0
