"""Tests for the technology description."""

import pytest

from repro.grid.technology import MetalLayer, Technology, default_technology


class TestMetalLayer:
    def test_sheet_resistance(self):
        layer = MetalLayer(name="M1", resistivity=0.02, width=1.0, thickness=0.5)
        assert layer.sheet_resistance == pytest.approx(0.04)

    def test_wire_resistance_scales_with_length(self):
        layer = MetalLayer(name="M1", resistivity=0.02, width=1.0, thickness=0.5)
        assert layer.wire_resistance(10.0) == pytest.approx(2.0 * layer.wire_resistance(5.0))

    def test_wire_resistance_formula(self):
        layer = MetalLayer(name="M1", resistivity=0.022, width=2.0, thickness=0.5)
        assert layer.wire_resistance(100.0) == pytest.approx(0.022 * 100.0 / (2.0 * 0.5))

    def test_rejects_non_positive_geometry(self):
        with pytest.raises(ValueError):
            MetalLayer(name="M1", width=0.0)
        with pytest.raises(ValueError):
            MetalLayer(name="M1", thickness=-1.0)
        with pytest.raises(ValueError):
            MetalLayer(name="M1", pitch=0.0)

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            MetalLayer(name="M1", direction="diagonal")

    def test_rejects_zero_length_wire(self):
        layer = MetalLayer(name="M1")
        with pytest.raises(ValueError):
            layer.wire_resistance(0.0)


class TestTechnology:
    def test_default_has_requested_layers(self):
        for layers in (1, 2, 3, 4):
            tech = default_technology(num_layers=layers)
            assert tech.num_layers == layers

    def test_default_layers_alternate_direction(self):
        tech = default_technology(num_layers=4)
        directions = [layer.direction for layer in tech.metal_layers]
        assert directions == ["horizontal", "vertical", "horizontal", "vertical"]

    def test_default_layers_widen_up_the_stack(self):
        tech = default_technology(num_layers=4)
        widths = [layer.width for layer in tech.metal_layers]
        assert widths == sorted(widths)

    def test_rejects_out_of_range_layer_count(self):
        with pytest.raises(ValueError):
            default_technology(num_layers=0)
        with pytest.raises(ValueError):
            default_technology(num_layers=5)

    def test_via_stack_resistance(self):
        tech = default_technology()
        assert tech.via_stack_resistance == pytest.approx(tech.via_resistance / tech.vias_per_stack)

    def test_with_vdd_returns_copy(self):
        tech = default_technology()
        other = tech.with_vdd(1.0)
        assert other.vdd == 1.0
        assert tech.vdd == 1.2

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            Technology(gate_cap_fraction=1.5)
        with pytest.raises(ValueError):
            Technology(leakage_fraction=-0.1)

    def test_rejects_non_positive_vdd(self):
        with pytest.raises(ValueError):
            Technology(vdd=0.0)

    def test_rejects_bad_vias_per_stack(self):
        with pytest.raises(ValueError):
            Technology(vias_per_stack=0)

    def test_layer_accessor(self):
        tech = default_technology(num_layers=3)
        assert tech.layer(0) is tech.metal_layers[0]
        assert tech.layer(2) is tech.metal_layers[2]
