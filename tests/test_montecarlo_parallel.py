"""Tests for chunked / parallel Monte Carlo: moment merging and seeding.

Covers the three guarantees the chunked engine makes:

* :meth:`RunningMoments.merge` combines independently accumulated chunks
  into exactly the statistics of the concatenated stream;
* the chunk layout (and hence every statistic) depends only on the seed,
  the sample count and the chunk size -- never on the worker count;
* configuration errors (``workers < 1``, antithetic with odd chunks) are
  rejected eagerly, before any work is done.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Analysis
from repro.errors import AnalysisError
from repro.montecarlo.engine import (
    DEFAULT_CHUNK_SIZE,
    MonteCarloConfig,
    run_monte_carlo_dc,
    run_monte_carlo_transient,
)
from repro.montecarlo.statistics import RunningMoments
from repro.variation.model import AffineExcitation, StochasticSystem


class TestRunningMomentsMerge:
    def test_merged_chunks_match_single_stream(self, rng):
        """Chunked accumulation + merge == one accumulator over all samples."""
        samples = rng.normal(size=(60, 4, 3))
        single = RunningMoments()
        for sample in samples:
            single.update(sample)

        merged = RunningMoments()
        for chunk in np.array_split(samples, 7):
            part = RunningMoments()
            for sample in chunk:
                part.update(sample)
            merged.merge(part)

        assert merged.count == single.count == 60
        np.testing.assert_allclose(merged.mean, single.mean, rtol=1e-13, atol=1e-15)
        np.testing.assert_allclose(
            merged.variance(ddof=1), single.variance(ddof=1), rtol=1e-12, atol=1e-18
        )

    def test_merge_matches_numpy(self, rng):
        samples = rng.normal(loc=3.0, size=(50, 5))
        merged = RunningMoments()
        for chunk in np.array_split(samples, 4):
            part = RunningMoments()
            for sample in chunk:
                part.update(sample)
            merged.merge(part)
        np.testing.assert_allclose(merged.mean, samples.mean(axis=0), atol=1e-12)
        np.testing.assert_allclose(merged.variance(ddof=1), samples.var(axis=0, ddof=1), atol=1e-12)

    def test_merge_into_empty_copies(self, rng):
        part = RunningMoments()
        for sample in rng.normal(size=(5, 3)):
            part.update(sample)
        merged = RunningMoments().merge(part)
        assert merged.count == 5
        np.testing.assert_array_equal(merged.mean, part.mean)
        # the merge must copy, not alias
        part.update(np.zeros(3))
        assert merged.count == 5

    def test_merge_empty_other_is_noop(self, rng):
        moments = RunningMoments()
        moments.update(np.ones(3))
        before = moments.mean
        moments.merge(RunningMoments())
        assert moments.count == 1
        np.testing.assert_array_equal(moments.mean, before)

    def test_merge_returns_self_for_chaining(self):
        a, b = RunningMoments(), RunningMoments()
        b.update(np.ones(2))
        assert a.merge(b) is a

    def test_merge_shape_mismatch_rejected(self):
        a, b = RunningMoments(), RunningMoments()
        a.update(np.zeros(3))
        b.update(np.zeros(4))
        with pytest.raises(AnalysisError):
            a.merge(b)

    def test_merge_shape_mismatch_against_preallocated(self):
        a = RunningMoments(shape=(3,))
        b = RunningMoments()
        b.update(np.zeros(4))
        with pytest.raises(AnalysisError):
            a.merge(b)

    def test_merge_wrong_type_rejected(self):
        with pytest.raises(AnalysisError):
            RunningMoments().merge(np.zeros(3))

    def test_state_round_trip(self, rng):
        moments = RunningMoments()
        for sample in rng.normal(size=(9, 2, 2)):
            moments.update(sample)
        rebuilt = RunningMoments.from_state(*moments.state())
        assert rebuilt.count == moments.count
        np.testing.assert_array_equal(rebuilt.mean, moments.mean)
        np.testing.assert_array_equal(rebuilt.variance(), moments.variance())

    def test_empty_state_round_trip(self):
        rebuilt = RunningMoments.from_state(*RunningMoments().state())
        assert rebuilt.count == 0

    def test_from_state_validation(self):
        with pytest.raises(AnalysisError):
            RunningMoments.from_state(3, None, None)
        with pytest.raises(AnalysisError):
            RunningMoments.from_state(3, np.zeros(2), np.zeros(3))


class TestMonteCarloConfigValidation:
    def test_workers_floor(self, fast_transient):
        with pytest.raises(AnalysisError):
            MonteCarloConfig(transient=fast_transient, num_samples=8, workers=0)

    def test_chunk_size_floor(self, fast_transient):
        with pytest.raises(AnalysisError):
            MonteCarloConfig(transient=fast_transient, num_samples=8, chunk_size=1)

    def test_antithetic_odd_chunk_size_rejected(self, fast_transient):
        with pytest.raises(AnalysisError, match="even chunk_size"):
            MonteCarloConfig(
                transient=fast_transient,
                num_samples=12,
                antithetic=True,
                workers=2,
                chunk_size=3,
            )

    def test_antithetic_odd_num_samples_rejected_when_chunked(self, fast_transient):
        with pytest.raises(AnalysisError, match="even num_samples"):
            MonteCarloConfig(
                transient=fast_transient,
                num_samples=11,
                antithetic=True,
                workers=2,
            )

    def test_antithetic_odd_num_samples_allowed_unchunked(self, fast_transient):
        config = MonteCarloConfig(transient=fast_transient, num_samples=11, antithetic=True)
        assert not config.chunked

    def test_chunk_layout_ignores_workers(self, fast_transient):
        sizes = [
            MonteCarloConfig(
                transient=fast_transient, num_samples=50, workers=w, chunk_size=16
            ).chunk_sizes()
            for w in (1, 2, 5)
        ]
        assert sizes[0] == sizes[1] == sizes[2] == (16, 16, 16, 2)

    def test_unchunked_layout_is_one_chunk(self, fast_transient):
        config = MonteCarloConfig(transient=fast_transient, num_samples=50)
        assert not config.chunked
        assert config.chunk_sizes() == (50,)

    def test_default_chunk_size_is_even(self):
        assert DEFAULT_CHUNK_SIZE % 2 == 0


class TestChunkSeeding:
    """Same seed + any worker count -> identical statistics."""

    def _run(self, system, transient, **kwargs):
        config = MonteCarloConfig(
            transient=transient, num_samples=24, seed=42, chunk_size=8, **kwargs
        )
        return run_monte_carlo_transient(system, config)

    def test_transient_workers_invariant(self, small_system, fast_transient):
        serial = self._run(small_system, fast_transient, workers=1)
        parallel = self._run(small_system, fast_transient, workers=3)
        assert serial.num_samples == parallel.num_samples == 24
        np.testing.assert_array_equal(serial.mean_voltage, parallel.mean_voltage)
        np.testing.assert_array_equal(serial.variance, parallel.variance)

    def test_transient_stored_nodes_workers_invariant(self, small_system, fast_transient):
        serial = self._run(small_system, fast_transient, workers=1, store_nodes=(0, 3))
        parallel = self._run(small_system, fast_transient, workers=2, store_nodes=(0, 3))
        np.testing.assert_array_equal(serial.drop_samples(3), parallel.drop_samples(3))

    def test_transient_antithetic_workers_invariant(self, small_system, fast_transient):
        serial = self._run(small_system, fast_transient, workers=1, antithetic=True)
        parallel = self._run(small_system, fast_transient, workers=2, antithetic=True)
        np.testing.assert_array_equal(serial.mean_voltage, parallel.mean_voltage)
        np.testing.assert_array_equal(serial.variance, parallel.variance)

    def test_chunked_stats_close_to_single_stream(self, small_system, fast_transient):
        """Chunked streams differ from the legacy stream but estimate the
        same distribution: means agree to Monte-Carlo accuracy."""
        legacy = run_monte_carlo_transient(
            small_system,
            MonteCarloConfig(transient=fast_transient, num_samples=64, seed=3),
        )
        chunked = run_monte_carlo_transient(
            small_system,
            MonteCarloConfig(transient=fast_transient, num_samples=64, seed=3, chunk_size=16),
        )
        scale = np.max(np.abs(legacy.mean_drop))
        assert np.max(np.abs(legacy.mean_voltage - chunked.mean_voltage)) < 0.5 * scale

    def test_dc_workers_invariant(self, small_system):
        serial = run_monte_carlo_dc(small_system, num_samples=30, seed=4, chunk_size=8, workers=1)
        parallel = run_monte_carlo_dc(small_system, num_samples=30, seed=4, chunk_size=8, workers=3)
        np.testing.assert_array_equal(serial.mean_voltage, parallel.mean_voltage)
        np.testing.assert_array_equal(serial.variance, parallel.variance)

    def test_dc_validation(self, small_system):
        with pytest.raises(AnalysisError):
            run_monte_carlo_dc(small_system, num_samples=10, workers=0)
        with pytest.raises(AnalysisError):
            run_monte_carlo_dc(small_system, num_samples=10, chunk_size=1)


class TestEngineOptionRouting:
    def test_session_run_accepts_workers(self, small_netlist, fast_transient):
        session = Analysis.from_netlist(small_netlist).with_transient(fast_transient)
        serial = session.run("montecarlo", samples=16, seed=2, chunk_size=8, workers=1)
        parallel = session.run("montecarlo", samples=16, seed=2, chunk_size=8, workers=2)
        np.testing.assert_array_equal(serial.mean(), parallel.mean())
        np.testing.assert_array_equal(serial.std(), parallel.std())

    def test_session_run_dc_accepts_workers(self, small_netlist):
        session = Analysis.from_netlist(small_netlist)
        result = session.run("montecarlo", mode="dc", samples=12, workers=2, chunk_size=6)
        assert result.raw.num_samples == 12

    def test_invalid_workers_propagates(self, small_netlist, fast_transient):
        session = Analysis.from_netlist(small_netlist).with_transient(fast_transient)
        with pytest.raises(AnalysisError):
            session.run("montecarlo", samples=16, workers=0)


class TestUnpicklableFallback:
    def test_falls_back_to_serial_with_warning(self, small_system, fast_transient):
        """Systems that cannot cross process boundaries still run chunked."""
        hostile = StochasticSystem(
            variables=small_system.variables,
            g_nominal=small_system.g_nominal,
            c_nominal=small_system.c_nominal,
            g_sensitivities=small_system.g_sensitivities,
            c_sensitivities=small_system.c_sensitivities,
            excitation=AffineExcitation(
                nominal=lambda t: small_system.excitation.nominal(t),
                sensitivities={},
                num_variables=small_system.num_variables,
            ),
            vdd=small_system.vdd,
            node_names=small_system.node_names,
        )
        config = MonteCarloConfig(
            transient=fast_transient, num_samples=12, seed=1, workers=2, chunk_size=4
        )
        with pytest.warns(RuntimeWarning, match="cannot be pickled"):
            result = run_monte_carlo_transient(hostile, config)
        assert result.num_samples == 12
        assert np.all(np.isfinite(result.mean_voltage))
