"""Regenerate ``stepping_reference.npz`` -- frozen pre-refactor waveforms.

The archive pins the mean/std waveforms the four stochastic engines
produced *before* the shared ``repro.stepping`` core existed (PR 5), for
both one-step methods.  ``tests/test_stepping.py`` asserts that the
rewired engines still reproduce these numbers to <= 1e-12, which is the
refactor's no-behaviour-change contract.

Regenerate (only after an *intentional* numerical change) with::

    PYTHONPATH=src python tests/data/make_stepping_reference.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.api import Analysis
from repro.sim import TransientConfig
from repro.sweep.plan import corner_spec

#: Grid + axis settings of the frozen scenario (small: the archive is
#: committed, and the contract is about arithmetic, not scale).
NODES = 120
GRID_SEED = 3
TRANSIENT = dict(t_stop=8 * 0.2e-9, dt=0.2e-9)
ORDER = 2
MC_SAMPLES = 16
MC_CHUNK = 8
METHODS = ("trapezoidal", "backward-euler")

OUTPUT = Path(__file__).parent / "stepping_reference.npz"


def build_sessions():
    paper = Analysis.from_spec(
        NODES, seed=GRID_SEED, transient=TransientConfig(**TRANSIENT)
    )
    rhs_only = Analysis.from_spec(
        NODES,
        seed=GRID_SEED,
        variation=corner_spec("rhs-only"),
        transient=TransientConfig(**TRANSIENT),
    )
    return paper, rhs_only


def main() -> None:
    paper, rhs_only = build_sessions()
    arrays = {}
    for method in METHODS:
        runs = {
            "opera": paper.run("opera", order=ORDER, method=method),
            "hierarchical": paper.run("hierarchical", order=ORDER, method=method),
            "montecarlo": paper.run(
                "montecarlo",
                samples=MC_SAMPLES,
                chunk_size=MC_CHUNK,
                method=method,
            ),
            "decoupled": rhs_only.run("decoupled", order=ORDER, method=method),
        }
        for engine, view in runs.items():
            arrays[f"{engine}/{method}/mean"] = np.asarray(view.mean(), dtype=float)
            arrays[f"{engine}/{method}/std"] = np.asarray(view.std(), dtype=float)
    np.savez_compressed(OUTPUT, **arrays)
    print(f"wrote {OUTPUT} ({len(arrays)} arrays)")


if __name__ == "__main__":
    main()
