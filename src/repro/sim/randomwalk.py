"""Random-walk DC solver for localised power-grid queries.

The paper's related-work section cites the random-walk approach of Qian,
Nassif and Sapatnekar ("Random walks in a supply network", DAC 2003) as an
efficient method for *incremental, localised* analysis: instead of solving
the whole grid, the DC voltage of a single node is estimated as the expected
reward of a random walk on the resistive network.  This module implements
that baseline so single-node queries and spot checks do not require a full
factorisation.

Theory: for a node ``i`` with neighbouring conductances ``g_ij``, pad
conductance ``g_pad,i`` (to the ideal supply ``VDD``) and drain current
``I_i``, nodal analysis gives

``v_i = sum_j p_ij v_j + p_pad,i VDD - I_i / G_i``

with ``G_i`` the total conductance at the node, ``p_ij = g_ij / G_i`` and
``p_pad,i = g_pad,i / G_i``.  A walker at node ``i`` therefore collects the
"toll" ``-I_i / G_i``, then moves to neighbour ``j`` with probability
``p_ij`` or terminates at the supply (reward ``VDD``) with probability
``p_pad,i``; the node voltage is the expected total reward.  Averaging many
independent walks gives an unbiased estimate whose error shrinks as
``1/sqrt(num_walks)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import SolverError
from ..grid.stamping import StampedSystem

__all__ = ["RandomWalkEstimate", "RandomWalkSolver"]


@dataclass(frozen=True)
class RandomWalkEstimate:
    """Monte Carlo estimate of one node's DC voltage."""

    node: int
    voltage: float
    standard_error: float
    num_walks: int
    average_walk_length: float

    @property
    def confidence_interval_95(self) -> tuple:
        """Approximate 95 % confidence interval of the voltage estimate."""
        half = 1.96 * self.standard_error
        return (self.voltage - half, self.voltage + half)


class RandomWalkSolver:
    """Single-node DC solver based on random walks on the resistive grid."""

    def __init__(
        self,
        system: StampedSystem,
        t: float = 0.0,
        max_walk_length: int = 100000,
        seed: Optional[int] = 0,
    ):
        conductance = sp.csr_matrix(system.conductance)
        n = conductance.shape[0]

        diagonal = conductance.diagonal()
        if np.any(diagonal <= 0):
            raise SolverError("every node needs positive total conductance")

        off_diagonal = conductance - sp.diags(diagonal)
        # Off-diagonal entries are -g_ij; build the transition structure row by row.
        neighbours = []
        probabilities = []
        for i in range(n):
            row = off_diagonal.getrow(i)
            cols = row.indices
            conductances = -row.data
            if np.any(conductances < -1e-15):
                raise SolverError("the conductance matrix must be an M-matrix (RC grid)")
            neighbours.append(cols)
            probabilities.append(conductances / diagonal[i])
        self._neighbours = neighbours
        self._neighbour_probabilities = probabilities

        # Termination probability at the supply and the per-visit toll.
        pad_conductance = np.zeros(n)
        pad_voltage_reward = np.zeros(n)
        for node in system.pad_nodes:
            pad_conductance[node] = system.pad_current[node] / system.vdd
            pad_voltage_reward[node] = system.vdd
        self._termination_probability = pad_conductance / diagonal
        self._supply_reward = pad_voltage_reward

        drain = system.drain_current_vector(t)
        self._toll = -drain / diagonal
        self._max_walk_length = int(max_walk_length)
        self._rng = np.random.default_rng(seed)
        self._num_nodes = n

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def _single_walk(self, start: int) -> tuple:
        """Run one walk; returns (accumulated reward, walk length)."""
        reward = 0.0
        node = start
        for step in range(self._max_walk_length):
            reward += self._toll[node]
            if self._rng.random() < self._termination_probability[node]:
                return reward + self._supply_reward[node], step + 1
            candidates = self._neighbours[node]
            if candidates.size == 0:
                raise SolverError(f"node {node} has no neighbours and no pad")
            weights = self._neighbour_probabilities[node]
            node = int(self._rng.choice(candidates, p=weights / weights.sum()))
        raise SolverError(
            "random walk exceeded max_walk_length; the grid may be poorly "
            "connected to its pads"
        )

    def estimate(self, node: int, num_walks: int = 1000) -> RandomWalkEstimate:
        """Estimate the DC voltage of ``node`` from ``num_walks`` random walks."""
        if not (0 <= node < self._num_nodes):
            raise SolverError(f"node index {node} out of range")
        if num_walks < 1:
            raise SolverError("num_walks must be at least 1")
        rewards = np.empty(num_walks)
        lengths = np.empty(num_walks)
        for walk in range(num_walks):
            rewards[walk], lengths[walk] = self._single_walk(node)
        voltage = float(np.mean(rewards))
        standard_error = (
            float(np.std(rewards, ddof=1) / np.sqrt(num_walks))
            if num_walks > 1
            else float("inf")
        )
        return RandomWalkEstimate(
            node=node,
            voltage=voltage,
            standard_error=standard_error,
            num_walks=num_walks,
            average_walk_length=float(np.mean(lengths)),
        )
