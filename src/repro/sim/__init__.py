"""Deterministic circuit simulation substrate: DC, transient, linear solvers."""

from .dc import dc_operating_point, solve_dc
from .linear import (
    ConjugateGradientSolver,
    DirectSolver,
    LinearSolver,
    make_solver,
    matrix_fingerprint,
    register_solver,
    solver_names,
    unregister_solver,
)
from .mna import MNASystem
from .randomwalk import RandomWalkEstimate, RandomWalkSolver
from .results import DCResult, TransientResult
from .transient import TransientConfig, run_transient, transient_analysis

__all__ = [
    "RandomWalkEstimate",
    "RandomWalkSolver",
    "dc_operating_point",
    "solve_dc",
    "ConjugateGradientSolver",
    "DirectSolver",
    "LinearSolver",
    "make_solver",
    "matrix_fingerprint",
    "register_solver",
    "solver_names",
    "unregister_solver",
    "MNASystem",
    "DCResult",
    "TransientResult",
    "TransientConfig",
    "run_transient",
    "transient_analysis",
]
