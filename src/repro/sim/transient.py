"""Fixed-step transient integration of the power grid MNA equations.

The grid satisfies ``C dx/dt + G x = u(t)``.  The paper carries out its
transient analysis with a fixed time step, which lets both the deterministic
and the stochastic (augmented) systems reuse a single matrix factorisation
for all steps.  Two A-stable one-step methods are provided:

* backward Euler  : ``(G + C/h) x_{k+1} = u_{k+1} + (C/h) x_k``
* trapezoidal     : ``(G + 2C/h) x_{k+1} = u_{k+1} + u_k + (2C/h - G) x_k``

The initial condition defaults to the DC solution at the start time, which is
the standard choice for IR-drop analysis (the grid starts in steady state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from ..errors import SolverError
from ..grid.stamping import StampedSystem
from .linear import make_solver
from .results import TransientResult

__all__ = ["TransientConfig", "run_transient", "transient_analysis"]

#: Signature of a streaming observer: ``callback(step_index, time, voltages)``.
StepCallback = Callable[[int, float, np.ndarray], None]


@dataclass(frozen=True)
class TransientConfig:
    """Settings of a fixed-step transient run.

    Attributes
    ----------
    t_stop:
        End time of the simulation (seconds).
    dt:
        Fixed step size (seconds).
    t_start:
        Start time; the initial condition is the DC solution at this time
        unless an explicit ``x0`` is supplied to the integrator.
    method:
        ``"backward-euler"`` (default) or ``"trapezoidal"``.
    solver:
        Linear solver used for the (constant) integration matrix:
        ``"direct"``, ``"cg"`` or ``"ilu-cg"``.
    """

    t_stop: float
    dt: float
    t_start: float = 0.0
    method: str = "backward-euler"
    solver: str = "direct"

    def __post_init__(self):
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.t_stop <= self.t_start:
            raise ValueError("t_stop must be greater than t_start")
        if self.method not in ("backward-euler", "trapezoidal"):
            raise ValueError("method must be 'backward-euler' or 'trapezoidal'")

    @property
    def num_steps(self) -> int:
        """Number of integration steps (at least 1)."""
        return max(int(round((self.t_stop - self.t_start) / self.dt)), 1)

    def times(self) -> np.ndarray:
        """All time points including the initial one."""
        return self.t_start + self.dt * np.arange(self.num_steps + 1)


#: Signature of a solver provider: ``solver_factory(matrix, method=..., **options)``.
#: Defaults to :func:`~repro.sim.linear.make_solver`; the :class:`repro.api.Analysis`
#: facade injects a caching provider so repeated runs reuse factorisations.
SolverFactory = Callable[..., "object"]


def run_transient(
    conductance: sp.spmatrix,
    capacitance: sp.spmatrix,
    rhs_function: Callable[[float], np.ndarray],
    config: TransientConfig,
    x0: Optional[np.ndarray] = None,
    vdd: float = 1.0,
    callback: Optional[StepCallback] = None,
    store: bool = True,
    solver_factory: Optional[SolverFactory] = None,
) -> TransientResult:
    """Integrate ``C dx/dt + G x = rhs(t)`` with a fixed step.

    Parameters
    ----------
    conductance, capacitance:
        Sparse ``G`` and ``C`` matrices (same shape).
    rhs_function:
        Callable returning the excitation vector at a given time.
    config:
        Step size, horizon, method and solver selection.
    x0:
        Initial node voltages; defaults to the DC solution at ``t_start``.
    vdd:
        Supply voltage recorded in the result (used for drop conversions).
    callback:
        Optional observer invoked after every accepted step (including the
        initial condition as step 0).
    store:
        When false, voltage waveforms are not retained (streaming mode);
        the result then only carries the time axis.
    solver_factory:
        Optional provider of linear solvers with the signature of
        :func:`~repro.sim.linear.make_solver`; a caching provider lets
        repeated runs share factorisations.
    """
    conductance = sp.csr_matrix(conductance)
    capacitance = sp.csr_matrix(capacitance)
    if conductance.shape != capacitance.shape:
        raise SolverError("G and C must have identical shapes")
    n = conductance.shape[0]
    factory = solver_factory if solver_factory is not None else make_solver

    times = config.times()
    h = config.dt

    if x0 is None:
        dc_solver = factory(conductance, method=config.solver)
        x = dc_solver.solve(np.asarray(rhs_function(times[0]), dtype=float))
    else:
        x = np.asarray(x0, dtype=float).copy()
        if x.shape != (n,):
            raise SolverError(f"x0 must have shape ({n},)")

    if config.method == "backward-euler":
        lhs = conductance + capacitance / h
    else:  # trapezoidal
        lhs = conductance + 2.0 * capacitance / h
    step_solver = factory(lhs, method=config.solver)

    history = np.empty((times.size, n)) if store else None
    if store:
        history[0] = x
    if callback is not None:
        callback(0, float(times[0]), x)

    rhs_previous = np.asarray(rhs_function(times[0]), dtype=float)
    scaled_capacitance = capacitance / h

    for k in range(1, times.size):
        t = float(times[k])
        rhs_now = np.asarray(rhs_function(t), dtype=float)
        if config.method == "backward-euler":
            b = rhs_now + scaled_capacitance @ x
        else:
            b = rhs_now + rhs_previous + (2.0 * scaled_capacitance) @ x - conductance @ x
        x = step_solver.solve(b)
        if store:
            history[k] = x
        if callback is not None:
            callback(k, t, x)
        rhs_previous = rhs_now

    return TransientResult(times=times, voltages=history, vdd=vdd)


def transient_analysis(
    system: StampedSystem,
    config: TransientConfig,
    callback: Optional[StepCallback] = None,
    store: bool = True,
    solver_factory: Optional[SolverFactory] = None,
) -> TransientResult:
    """Nominal (deterministic) transient analysis of a stamped power grid."""
    return run_transient(
        system.conductance,
        system.capacitance,
        system.rhs,
        config,
        vdd=system.vdd,
        callback=callback,
        store=store,
        solver_factory=solver_factory,
    )
