"""Fixed-step transient integration of the power grid MNA equations.

The grid satisfies ``C dx/dt + G x = u(t)``.  The paper carries out its
transient analysis with a fixed time step, which lets both the deterministic
and the stochastic (augmented) systems reuse a single matrix factorisation
for all steps.  Two A-stable one-step methods are provided:

* backward Euler  : ``(G + C/h) x_{k+1} = u_{k+1} + (C/h) x_k``
* trapezoidal     : ``(G + 2C/h) x_{k+1} = u_{k+1} + u_k + (2C/h - G) x_k``

The initial condition defaults to the DC solution at the start time, which is
the standard choice for IR-drop analysis (the grid starts in steady state).

``G`` and ``C`` may be explicit sparse matrices or lazy operators
(:class:`repro.linalg.KronSumOperator`).  With operators the integrator runs
a matrix-free fast path: the stepping operator ``G + C/h`` is composed
without assembly (operator-aware backends like ``mean-block-cg`` consume it
directly; others get a one-time CSR materialisation), per-step matvecs write
into preallocated work buffers, every loop invariant (``C/h``, ``2C/h``) is
hoisted, and -- when the caller supplies a precomputed ``rhs_series`` -- the
per-step right-hand side is a buffer fill instead of a rebuild.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from ..errors import SolverError
from ..grid.stamping import StampedSystem
from .linear import _is_lazy_operator, make_solver
from .results import TransientResult

__all__ = ["TransientConfig", "run_transient", "transient_analysis"]

#: Signature of a streaming observer: ``callback(step_index, time, voltages)``.
StepCallback = Callable[[int, float, np.ndarray], None]


@dataclass(frozen=True)
class TransientConfig:
    """Settings of a fixed-step transient run.

    Attributes
    ----------
    t_stop:
        End time of the simulation (seconds).
    dt:
        Fixed step size (seconds).
    t_start:
        Start time; the initial condition is the DC solution at this time
        unless an explicit ``x0`` is supplied to the integrator.
    method:
        ``"backward-euler"`` (default) or ``"trapezoidal"``.
    solver:
        Linear solver used for the (constant) integration matrix:
        any registered backend name, e.g. ``"direct"``, ``"cg"``,
        ``"ilu-cg"`` or (for augmented Galerkin systems) ``"mean-block-cg"``.
    """

    t_stop: float
    dt: float
    t_start: float = 0.0
    method: str = "backward-euler"
    solver: str = "direct"

    def __post_init__(self):
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.t_stop <= self.t_start:
            raise ValueError("t_stop must be greater than t_start")
        if self.method not in ("backward-euler", "trapezoidal"):
            raise ValueError("method must be 'backward-euler' or 'trapezoidal'")

    @property
    def num_steps(self) -> int:
        """Number of integration steps (at least 1)."""
        return max(int(round((self.t_stop - self.t_start) / self.dt)), 1)

    def times(self) -> np.ndarray:
        """All time points including the initial one."""
        return self.t_start + self.dt * np.arange(self.num_steps + 1)


#: Signature of a solver provider: ``solver_factory(matrix, method=..., **options)``.
#: Defaults to :func:`~repro.sim.linear.make_solver`; the :class:`repro.api.Analysis`
#: facade injects a caching provider so repeated runs reuse factorisations.
SolverFactory = Callable[..., "object"]


def _supports_warm_start(solver) -> bool:
    """True when ``solver.solve`` accepts an ``x0`` initial guess."""
    try:
        return "x0" in inspect.signature(solver.solve).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


def run_transient(
    conductance,
    capacitance,
    rhs_function: Optional[Callable[[float], np.ndarray]],
    config: TransientConfig,
    x0: Optional[np.ndarray] = None,
    vdd: float = 1.0,
    callback: Optional[StepCallback] = None,
    store: bool = True,
    solver_factory: Optional[SolverFactory] = None,
    rhs_series=None,
    solver_options: Optional[dict] = None,
) -> TransientResult:
    """Integrate ``C dx/dt + G x = rhs(t)`` with a fixed step.

    Parameters
    ----------
    conductance, capacitance:
        ``G`` and ``C`` -- sparse matrices (same shape) or lazy operators
        (:class:`repro.linalg.KronSumOperator`); operators keep the whole
        run matrix-free (see the module docstring).
    rhs_function:
        Callable returning the excitation vector at a given time.  May be
        ``None`` when ``rhs_series`` is supplied.
    config:
        Step size, horizon, method and solver selection.
    x0:
        Initial node voltages; defaults to the DC solution at ``t_start``.
    vdd:
        Supply voltage recorded in the result (used for drop conversions).
    callback:
        Optional observer invoked after every accepted step (including the
        initial condition as step 0).
    store:
        When false, voltage waveforms are not retained (streaming mode);
        the result then only carries the time axis.
    solver_factory:
        Optional provider of linear solvers with the signature of
        :func:`~repro.sim.linear.make_solver`; a caching provider lets
        repeated runs share factorisations.
    rhs_series:
        Optional precomputed excitation table with a
        ``fill(step_index, out) -> out`` method (e.g.
        :class:`repro.chaos.galerkin.AugmentedRhsSeries` from
        ``GalerkinSystem.rhs_series(config.times())``).  When given, the
        loop fills a preallocated buffer per step instead of calling
        ``rhs_function``; the series must cover exactly ``config.times()``.
    solver_options:
        Extra keyword arguments forwarded to the solver factory (e.g.
        ``rtol`` for iterative backends, ``num_nodes`` for an explicit
        ``mean-block-cg`` system).
    """
    matrix_free = _is_lazy_operator(conductance)
    if matrix_free != _is_lazy_operator(capacitance):
        raise SolverError(
            "G and C must both be explicit sparse matrices or both lazy "
            "operators; mixing the representations is not supported "
            "(materialise one side with to_csr() or build both as operators)"
        )
    if not matrix_free:
        conductance = sp.csr_matrix(conductance)
        capacitance = sp.csr_matrix(capacitance)
    if conductance.shape != capacitance.shape:
        raise SolverError("G and C must have identical shapes")
    if rhs_function is None and rhs_series is None:
        raise SolverError("either rhs_function or rhs_series is required")
    n = conductance.shape[0]
    factory = solver_factory if solver_factory is not None else make_solver
    solver_options = dict(solver_options or {})

    times = config.times()
    h = config.dt
    trapezoidal = config.method == "trapezoidal"

    # ------------------------------------------------------------ excitation
    if rhs_series is not None:
        series_times = getattr(rhs_series, "times", None)
        if series_times is not None and (
            len(series_times) != times.size
            or not np.allclose(series_times, times, rtol=0.0, atol=1e-18)
        ):
            raise SolverError("rhs_series does not match the configured time axis")
        u_now = np.zeros(n)
        u_previous = np.zeros(n)
        rhs_series.fill(0, u_previous)
        rhs_initial = u_previous
    else:
        rhs_initial = np.asarray(rhs_function(float(times[0])), dtype=float)

    # ------------------------------------------------------ initial condition
    if x0 is None:
        dc_solver = factory(conductance, method=config.solver, **solver_options)
        x = dc_solver.solve(rhs_initial)
    else:
        x = np.asarray(x0, dtype=float).copy()
        if x.shape != (n,):
            raise SolverError(f"x0 must have shape ({n},)")

    # ------------------------------------------------ hoisted loop invariants
    scaled_capacitance = capacitance / h
    if trapezoidal:
        lhs = conductance + 2.0 * capacitance / h
        double_scaled = 2.0 * scaled_capacitance
    else:
        lhs = conductance + capacitance / h
        double_scaled = None
    step_solver = factory(lhs, method=config.solver, **solver_options)
    warm_start = _supports_warm_start(step_solver)

    if matrix_free:
        work = np.empty(n)
        b = np.empty(n)

    history = np.empty((times.size, n)) if store else None
    if store:
        history[0] = x
    if callback is not None:
        callback(0, float(times[0]), x)

    rhs_previous = rhs_initial

    for k in range(1, times.size):
        t = float(times[k])
        if rhs_series is not None:
            rhs_now = rhs_series.fill(k, u_now)
        else:
            rhs_now = np.asarray(rhs_function(t), dtype=float)
        if matrix_free:
            if trapezoidal:
                np.add(rhs_now, rhs_previous, out=b)
                double_scaled.matvec(x, out=work)
                b += work
                conductance.matvec(x, out=work)
                b -= work
            else:
                scaled_capacitance.matvec(x, out=work)
                np.add(rhs_now, work, out=b)
        else:
            if trapezoidal:
                b = rhs_now + rhs_previous + double_scaled @ x - conductance @ x
            else:
                b = rhs_now + scaled_capacitance @ x
        x = step_solver.solve(b, x0=x) if warm_start else step_solver.solve(b)
        if store:
            history[k] = x
        if callback is not None:
            callback(k, t, x)
        if rhs_series is not None:
            # Swap buffers: the one holding U(t_k) becomes "previous", the
            # stale one is overwritten by the next fill.
            u_now, u_previous = u_previous, u_now
            rhs_previous = u_previous
        else:
            rhs_previous = rhs_now

    return TransientResult(times=times, voltages=history, vdd=vdd)


def transient_analysis(
    system: StampedSystem,
    config: TransientConfig,
    callback: Optional[StepCallback] = None,
    store: bool = True,
    solver_factory: Optional[SolverFactory] = None,
) -> TransientResult:
    """Nominal (deterministic) transient analysis of a stamped power grid."""
    return run_transient(
        system.conductance,
        system.capacitance,
        system.rhs,
        config,
        vdd=system.vdd,
        callback=callback,
        store=store,
        solver_factory=solver_factory,
    )
