"""Fixed-step transient integration of the power grid MNA equations.

The grid satisfies ``C dx/dt + G x = u(t)``.  The paper carries out its
transient analysis with a fixed time step, which lets both the deterministic
and the stochastic (augmented) systems reuse a single matrix factorisation
for all steps.  Integration runs on the shared :mod:`repro.stepping` core:
``TransientConfig.method`` names any registered
:class:`~repro.stepping.SteppingScheme` -- the built-ins are

* backward Euler  : ``(G + C/h) x_{k+1} = u_{k+1} + (C/h) x_k``
* trapezoidal     : ``(G + 2C/h) x_{k+1} = u_{k+1} + u_k + (2C/h - G) x_k``
* theta:<value>   : the generalised theta-method (``theta:1`` = backward
  Euler, ``theta:0.5`` = trapezoidal)

The initial condition defaults to the DC solution at the start time, which is
the standard choice for IR-drop analysis (the grid starts in steady state).

``G`` and ``C`` may be explicit sparse matrices or lazy operators
(:class:`repro.linalg.KronSumOperator`).  With operators the integrator runs
a matrix-free fast path: the stepping operator is composed without assembly
(operator-aware backends like ``mean-block-cg`` consume it directly; others
get a one-time CSR materialisation), per-step matvecs write into
preallocated work buffers, every loop invariant is hoisted, and -- when the
caller supplies a precomputed ``rhs_series`` -- the per-step right-hand side
is a buffer fill instead of a rebuild.  All of that now lives in
:class:`~repro.stepping.StepLoop`; this module is the thin deterministic
entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import SolverError
from ..grid.stamping import StampedSystem
from ..stepping import MnaSystemAdapter, StepCallback, StepLoop, SteppingScheme, resolve_scheme
from .results import TransientResult

__all__ = ["TransientConfig", "run_transient", "transient_analysis", "StepCallback"]


@dataclass(frozen=True)
class TransientConfig:
    """Settings of a fixed-step transient run.

    Attributes
    ----------
    t_stop:
        End time of the simulation (seconds).
    dt:
        Fixed step size (seconds).
    t_start:
        Start time; the initial condition is the DC solution at this time
        unless an explicit ``x0`` is supplied to the integrator.
    method:
        Spec of a registered stepping scheme: ``"backward-euler"``
        (default), ``"trapezoidal"``, ``"theta:<value>"``, or any name
        added with :func:`repro.stepping.register_scheme`.
    solver:
        Linear solver used for the (constant) integration matrix:
        any registered backend name, e.g. ``"direct"``, ``"cg"``,
        ``"ilu-cg"`` or (for augmented Galerkin systems) ``"mean-block-cg"``.
    """

    t_stop: float
    dt: float
    t_start: float = 0.0
    method: str = "backward-euler"
    solver: str = "direct"

    def __post_init__(self):
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.t_stop <= self.t_start:
            raise ValueError("t_stop must be greater than t_start")
        # Unknown schemes raise SchemeError, which is also a ValueError --
        # the exception configuration callers historically caught here.
        resolve_scheme(self.method)

    @property
    def scheme(self) -> SteppingScheme:
        """The resolved stepping scheme of :attr:`method`."""
        return resolve_scheme(self.method)

    @property
    def num_steps(self) -> int:
        """Number of integration steps (at least 1)."""
        return max(int(round((self.t_stop - self.t_start) / self.dt)), 1)

    def times(self) -> np.ndarray:
        """All time points including the initial one."""
        return self.t_start + self.dt * np.arange(self.num_steps + 1)


#: Signature of a solver provider: ``solver_factory(matrix, method=..., **options)``.
#: Defaults to :func:`~repro.sim.linear.make_solver`; the :class:`repro.api.Analysis`
#: facade injects a caching provider so repeated runs reuse factorisations.
SolverFactory = Callable[..., "object"]


def run_transient(
    conductance,
    capacitance,
    rhs_function: Optional[Callable[[float], np.ndarray]],
    config: TransientConfig,
    x0: Optional[np.ndarray] = None,
    vdd: float = 1.0,
    callback: Optional[StepCallback] = None,
    store: bool = True,
    solver_factory: Optional[SolverFactory] = None,
    rhs_series=None,
    solver_options: Optional[dict] = None,
) -> TransientResult:
    """Integrate ``C dx/dt + G x = rhs(t)`` with a fixed step.

    Parameters
    ----------
    conductance, capacitance:
        ``G`` and ``C`` -- sparse matrices (same shape) or lazy operators
        (:class:`repro.linalg.KronSumOperator`); operators keep the whole
        run matrix-free (see the module docstring).
    rhs_function:
        Callable returning the excitation vector at a given time.  May be
        ``None`` when ``rhs_series`` is supplied.
    config:
        Step size, horizon, scheme and solver selection.
    x0:
        Initial node voltages; defaults to the DC solution at ``t_start``.
    vdd:
        Supply voltage recorded in the result (used for drop conversions).
    callback:
        Optional observer invoked after every accepted step (including the
        initial condition as step 0).
    store:
        When false, voltage waveforms are not retained (streaming mode);
        the result then only carries the time axis.
    solver_factory:
        Optional provider of linear solvers with the signature of
        :func:`~repro.sim.linear.make_solver`; a caching provider lets
        repeated runs share factorisations.
    rhs_series:
        Optional precomputed excitation table with a
        ``fill(step_index, out) -> out`` method (e.g.
        :class:`repro.chaos.galerkin.AugmentedRhsSeries` from
        ``GalerkinSystem.rhs_series(config.times())``).  When given, the
        loop fills a preallocated buffer per step instead of calling
        ``rhs_function``; the series must cover exactly ``config.times()``.
    solver_options:
        Extra keyword arguments forwarded to the solver factory (e.g.
        ``rtol`` for iterative backends, ``num_nodes`` for an explicit
        ``mean-block-cg`` system).
    """
    if rhs_function is None and rhs_series is None:
        raise SolverError("either rhs_function or rhs_series is required")
    adapter = MnaSystemAdapter(
        conductance,
        capacitance,
        rhs_function=rhs_function,
        rhs_series=rhs_series,
        solver=config.solver,
        solver_factory=solver_factory,
        solver_options=solver_options,
    )
    loop = StepLoop(adapter, config.scheme, config.times(), config.dt)
    history = loop.run(x0=x0, callback=callback, store=store)
    return TransientResult(times=history.times, voltages=history.states, vdd=vdd)


def transient_analysis(
    system: StampedSystem,
    config: TransientConfig,
    callback: Optional[StepCallback] = None,
    store: bool = True,
    solver_factory: Optional[SolverFactory] = None,
) -> TransientResult:
    """Nominal (deterministic) transient analysis of a stamped power grid."""
    return run_transient(
        system.conductance,
        system.capacitance,
        system.rhs,
        config,
        vdd=system.vdd,
        callback=callback,
        store=store,
        solver_factory=solver_factory,
    )
