"""Sparse linear solver wrappers used by the DC, transient and OPERA engines.

Power-grid conductance matrices are symmetric, positive definite and very
sparse, so the default solver is a cached sparse LU factorisation (SuperLU via
``scipy.sparse.linalg.splu``), which matches the "single factorisation,
repeated solves" usage pattern of both the transient integrator and the
special-case analysis of Section 5.1 of the paper.  Conjugate-gradient
solvers with Jacobi or ILU preconditioning are provided for large systems
where factorisation memory is a concern (the iterative-solver route the
paper mentions in its implementation notes).

Solvers are pluggable: each backend registers a factory under a name with
:func:`register_solver`, and :func:`make_solver` resolves names through the
registry, so new backends (e.g. multigrid, GPU solvers) can be added without
touching the engines that consume them.
"""

from __future__ import annotations

import abc
import hashlib
from collections import OrderedDict
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import ConvergenceError, SolverError
from ..registry import Registry
from ..telemetry import current_telemetry

__all__ = [
    "LinearSolver",
    "DirectSolver",
    "PreconditionedCGSolver",
    "ConjugateGradientSolver",
    "make_solver",
    "register_solver",
    "unregister_solver",
    "solver_names",
    "solver_factory",
    "solver_accepts_operator",
    "matrix_fingerprint",
    "sparsity_fingerprint",
    "canonical_csc",
    "factorization_counters",
    "reset_factorization_counters",
    "clear_pattern_cache",
    "set_pattern_cache_limit",
]


def _is_lazy_operator(obj) -> bool:
    """Duck-typed test for lazy operators (``repro.linalg.KronSumOperator``).

    Defined here (rather than imported from :mod:`repro.linalg`) because the
    linalg package registers its backend through this module -- importing it
    back would be circular.  An operator exposes matrix-free ``matvec`` and
    the explicit-assembly escape hatch ``to_csr``.
    """
    return callable(getattr(obj, "matvec", None)) and callable(getattr(obj, "to_csr", None))


# ---------------------------------------------------------------------------
# Symbolic / numeric factorisation split
# ---------------------------------------------------------------------------
#
# Corner sweeps factorise many matrices that share one sparsity pattern (the
# same grid topology stamped with different parameter values).  The symbolic
# part of the CSR -> CSC canonicalisation -- where each nonzero lands in the
# column-ordered layout SuperLU consumes -- depends only on the pattern, so it
# is cached process-wide, keyed by a values-free pattern fingerprint.  The
# numeric "refactorisation" for a new corner is then a single value gather
# plus the usual ``splu`` call on the *identical* canonical structure, which
# keeps the factors (and every downstream trajectory) bit-for-bit equal to
# the uncached path.

_FACTOR_COUNTERS = {"symbolic_analysis": 0, "symbolic_reuse": 0, "numeric_refactor": 0}


def factorization_counters() -> dict:
    """Snapshot of the process-wide factorisation counters.

    ``symbolic_analysis`` counts first-time sparsity-pattern analyses,
    ``symbolic_reuse`` counts factorisations that reused a cached pattern,
    and ``numeric_refactor`` counts :meth:`DirectSolver.refactor` calls
    (value-only refactorisations).  The same names are emitted as telemetry
    counters when tracing is enabled.  ``pattern_cache_entries`` /
    ``pattern_cache_limit`` report the occupancy and LRU bound of the
    process-wide sparsity-pattern cache those counters describe (see
    :func:`set_pattern_cache_limit`).
    """
    snapshot = dict(_FACTOR_COUNTERS)
    snapshot["pattern_cache_entries"] = len(_PATTERN_CACHE)
    snapshot["pattern_cache_limit"] = _PATTERN_CACHE_SIZE
    return snapshot


def reset_factorization_counters() -> None:
    """Zero the factorisation counters (test/bench isolation)."""
    for name in _FACTOR_COUNTERS:
        _FACTOR_COUNTERS[name] = 0


def clear_pattern_cache() -> None:
    """Drop all cached sparsity patterns (test/bench isolation)."""
    _PATTERN_CACHE.clear()


def set_pattern_cache_limit(limit: int) -> int:
    """Set the LRU bound of the process-wide sparsity-pattern cache.

    Mirrors the session cache's ``max_grids`` knob: long multi-topology
    campaigns can widen (or tighten) the bound to match how many distinct
    patterns are live at once.  Evicts immediately if the new limit is
    below the current occupancy; returns the previous limit.
    """
    global _PATTERN_CACHE_SIZE
    limit = int(limit)
    if limit < 1:
        raise SolverError(f"pattern cache limit must be at least 1, got {limit}")
    previous = _PATTERN_CACHE_SIZE
    _PATTERN_CACHE_SIZE = limit
    while len(_PATTERN_CACHE) > _PATTERN_CACHE_SIZE:
        _PATTERN_CACHE.popitem(last=False)
    return previous


def sparsity_fingerprint(matrix) -> str:
    """Values-free pattern hash: shape + CSR structure, no data.

    Two matrices get the same fingerprint exactly when they have identical
    shape and an identical nonzero layout (same ``indptr``/``indices`` in CSR
    form), i.e. when a factorisation of one can reuse the symbolic analysis
    of the other.  Lazy operators with their own content ``fingerprint``
    delegate to it (their pattern is implied by their content identity).
    """
    own = getattr(matrix, "fingerprint", None)
    if callable(own):
        return own()
    matrix = sp.csr_matrix(matrix)
    digest = hashlib.sha1()
    digest.update(repr(matrix.shape).encode())
    digest.update(matrix.indptr.tobytes())
    digest.update(matrix.indices.tobytes())
    return digest.hexdigest()


class _SparsityPattern:
    """Cached symbolic analysis of one CSR sparsity pattern.

    Holds the canonical CSC structure and the CSR-data -> CSC-data gather
    permutation, computed once by converting an index-tagged structural
    clone.  ``csc_from`` then rebuilds ``sp.csc_matrix(csr)`` for any
    same-pattern matrix without re-running the structural conversion, with
    bitwise-identical data layout (the conversion's placement depends only
    on the structure, never on the values).
    """

    __slots__ = ("shape", "csc_indices", "csc_indptr", "gather")

    def __init__(self, csr: sp.csr_matrix):
        tagged = sp.csr_matrix(
            (np.arange(csr.nnz, dtype=np.intp), csr.indices, csr.indptr), shape=csr.shape
        )
        csc = tagged.tocsc()
        self.shape = csr.shape
        self.csc_indices = csc.indices
        self.csc_indptr = csc.indptr
        self.gather = csc.data

    def csc_from(self, csr: sp.csr_matrix) -> sp.csc_matrix:
        return sp.csc_matrix(
            (csr.data[self.gather], self.csc_indices, self.csc_indptr), shape=self.shape
        )


_PATTERN_CACHE: "OrderedDict[str, _SparsityPattern]" = OrderedDict()
_PATTERN_CACHE_SIZE = 32


def _pattern_for(csr: sp.csr_matrix) -> _SparsityPattern:
    key = sparsity_fingerprint(csr)
    pattern = _PATTERN_CACHE.get(key)
    if pattern is not None:
        _PATTERN_CACHE.move_to_end(key)
        _FACTOR_COUNTERS["symbolic_reuse"] += 1
        current_telemetry().count("symbolic_reuse")
        return pattern
    pattern = _SparsityPattern(csr)
    _PATTERN_CACHE[key] = pattern
    while len(_PATTERN_CACHE) > _PATTERN_CACHE_SIZE:
        _PATTERN_CACHE.popitem(last=False)
    _FACTOR_COUNTERS["symbolic_analysis"] += 1
    return pattern


def canonical_csc(matrix) -> sp.csc_matrix:
    """``sp.csc_matrix(matrix)``, with symbolic-analysis reuse for CSR input.

    The returned matrix is bitwise identical (structure and data ordering)
    to a plain ``sp.csc_matrix(matrix)`` conversion; CSR inputs whose
    sparsity pattern was seen before skip the structural analysis and pay
    only a value gather.  This is the single funnel every LU build in the
    library goes through (:class:`DirectSolver` and the block-preconditioner
    factorisations of :mod:`repro.linalg.solvers`).
    """
    if sp.issparse(matrix) and matrix.format == "csr":
        return _pattern_for(matrix).csc_from(matrix)
    return sp.csc_matrix(matrix)


class LinearSolver(abc.ABC):
    """A reusable solver for ``A x = b`` with a fixed matrix ``A``."""

    @abc.abstractmethod
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for a single right-hand side (1-D array)."""

    def solve_many(self, rhs_columns: np.ndarray) -> np.ndarray:
        """Solve for several right-hand sides given as columns of a 2-D array."""
        rhs_columns = np.asarray(rhs_columns, dtype=float)
        if rhs_columns.ndim == 1:
            return self.solve(rhs_columns)
        return np.column_stack([self.solve(rhs_columns[:, j]) for j in range(rhs_columns.shape[1])])


class DirectSolver(LinearSolver):
    """Sparse LU factorisation (SuperLU) with cached factors."""

    def solve_many(self, rhs_columns: np.ndarray) -> np.ndarray:
        """Solve for all columns in one SuperLU call (2-D RHS support)."""
        rhs_columns = np.asarray(rhs_columns, dtype=float)
        if rhs_columns.ndim == 1:
            return self.solve(rhs_columns)
        if rhs_columns.shape[0] != self.shape[0]:
            raise SolverError(
                f"right-hand sides have length {rhs_columns.shape[0]}, "
                f"expected {self.shape[0]}"
            )
        solution = self._lu.solve(rhs_columns)
        if not np.all(np.isfinite(solution)):
            raise SolverError("direct solve produced non-finite values")
        return solution

    def __init__(self, matrix: sp.spmatrix):
        matrix = canonical_csc(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise SolverError("direct solver requires a square matrix")
        try:
            with current_telemetry().span("solver.factor", phase="factor", solver="direct"):
                self._lu = spla.splu(matrix)
        except RuntimeError as exc:  # singular matrix
            raise SolverError(f"LU factorisation failed: {exc}") from exc
        self.shape = matrix.shape

    def refactor(self, matrix: sp.spmatrix) -> "DirectSolver":
        """A new solver for a same-pattern matrix with different values.

        Numeric refactorisation: the symbolic CSR -> CSC analysis is served
        from the process-wide pattern cache, so only the value gather and
        the LU factorisation itself are paid.  The result is bitwise
        identical to ``DirectSolver(matrix)`` (a pattern that happens not to
        match simply falls back to a fresh symbolic analysis).
        """
        if sp.issparse(matrix) and matrix.shape != self.shape:
            raise SolverError(
                f"refactor expects a matrix of shape {self.shape}, got {matrix.shape}"
            )
        _FACTOR_COUNTERS["numeric_refactor"] += 1
        current_telemetry().count("numeric_refactor")
        return DirectSolver(matrix)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.shape[0]:
            raise SolverError(
                f"right-hand side has length {rhs.shape[0]}, expected {self.shape[0]}"
            )
        solution = self._lu.solve(rhs)
        if not np.all(np.isfinite(solution)):
            raise SolverError("direct solve produced non-finite values")
        return solution


class PreconditionedCGSolver(LinearSolver):
    """Shared scaffolding of every preconditioned-CG backend.

    The three CG backends of the library (``cg``/``ilu-cg`` here,
    ``mean-block-cg`` and ``degree-block-cg`` in :mod:`repro.linalg.solvers`)
    differ only in how they build their preconditioner; the solve loop, the
    diagnostics bookkeeping and the warm-started multi-RHS sweep are
    identical.  This base class holds that common machinery:

    * :meth:`solve` runs :func:`scipy.sparse.linalg.cg` with iteration
      counting, converts non-convergence into
      :class:`~repro.errors.ConvergenceError`, and updates ``stats`` (solve
      and iteration counters plus the final *true* relative residual
      ``|b - Ax| / |b|``);
    * :meth:`solve_many` sweeps the columns of a 2-D right-hand side,
      warm-starting each solve from the previous column's solution --
      consecutive right-hand sides of the transient/Galerkin callers are
      strongly correlated, so the warm start typically saves a large
      fraction of the iterations the naive cold-start loop would spend.

    Subclasses set :attr:`method_name` (the ``stats["method"]`` value) and
    :attr:`error_label` (the noun used in error messages), populate
    ``self.shape``, and call :meth:`_configure_cg` at the end of their
    ``__init__``.
    """

    #: Backend name recorded in ``stats["method"]``.
    method_name: str = "cg"
    #: Human-readable solver noun used in convergence/error messages.
    error_label: str = "conjugate gradients"

    def _configure_cg(
        self,
        cg_target,
        residual_target=None,
        preconditioner=None,
        **extra_stats,
    ) -> None:
        """Install the CG operands and initialise the ``stats`` dict.

        ``cg_target`` is what :func:`scipy.sparse.linalg.cg` iterates on (a
        sparse matrix, lazy operator or ``LinearOperator``);
        ``residual_target`` is what the true-residual check multiplies by
        (defaults to ``cg_target``; the block backends pass their native
        operator here and a wrapped ``LinearOperator`` to CG).  Extra
        keyword arguments become additional ``stats`` entries (e.g. the
        ``band_sizes`` layout of ``degree-block-cg``).
        """
        self._cg_target = cg_target
        self._residual_target = residual_target if residual_target is not None else cg_target
        self._preconditioner = preconditioner
        self.stats = {
            "method": self.method_name,
            "solves": 0,
            "total_iterations": 0,
            "last_iterations": 0,
            "last_relative_residual": None,
            "warm_starts": 0,
            "cold_starts": 0,
            **extra_stats,
        }

    def solve(self, rhs: np.ndarray, x0: Optional[np.ndarray] = None) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (self.shape[0],):
            raise SolverError(
                f"right-hand side has shape {rhs.shape}, expected ({self.shape[0]},)"
            )
        iterations = 0

        def count(_):
            nonlocal iterations
            iterations += 1

        solution, info = spla.cg(
            self._cg_target,
            rhs,
            x0=x0,
            rtol=self.rtol,
            maxiter=self.maxiter,
            M=self._preconditioner,
            callback=count,
        )
        if info > 0:
            raise ConvergenceError(
                f"{self.error_label} did not converge in {self.maxiter} iterations"
            )
        if info < 0:
            raise SolverError(f"{self.error_label} reported an illegal input")
        rhs_norm = float(np.linalg.norm(rhs))
        residual = float(np.linalg.norm(rhs - self._residual_target @ solution))
        self.stats["solves"] += 1
        self.stats["warm_starts" if x0 is not None else "cold_starts"] += 1
        self.stats["total_iterations"] += iterations
        self.stats["last_iterations"] = iterations
        self.stats["last_relative_residual"] = residual / rhs_norm if rhs_norm > 0 else residual
        return solution

    def solve_many(self, rhs_columns: np.ndarray) -> np.ndarray:
        """Warm-started column sweep (previous solution as the next ``x0``)."""
        rhs_columns = np.asarray(rhs_columns, dtype=float)
        if rhs_columns.ndim == 1:
            return self.solve(rhs_columns)
        if rhs_columns.shape[0] != self.shape[0]:
            raise SolverError(
                f"right-hand sides have length {rhs_columns.shape[0]}, "
                f"expected {self.shape[0]}"
            )
        solution = np.empty_like(rhs_columns)
        previous: Optional[np.ndarray] = None
        for j in range(rhs_columns.shape[1]):
            previous = self.solve(rhs_columns[:, j], x0=previous)
            solution[:, j] = previous
        return solution


class ConjugateGradientSolver(PreconditionedCGSolver):
    """Preconditioned conjugate gradients for symmetric positive definite systems.

    Parameters
    ----------
    matrix:
        The SPD system matrix -- an explicit sparse matrix or a lazy
        operator (e.g. :class:`repro.linalg.KronSumOperator`), in which
        case every CG matvec runs matrix-free; only the ``"ilu"``
        preconditioner materialises the matrix (once, for the factorisation).
    preconditioner:
        ``"jacobi"`` (diagonal scaling), ``"ilu"`` (incomplete LU), ``None``,
        or any operator-like object: a :class:`scipy.sparse.linalg.LinearOperator`,
        an object with ``as_linear_operator()`` or ``matvec()`` (e.g. the
        additive-Schwarz preconditioner of :mod:`repro.partition`), or a bare
        callable applying ``M^{-1}`` to a vector.
    rtol, maxiter:
        Convergence tolerance and iteration cap; failure to converge raises
        :class:`~repro.errors.ConvergenceError`.

    Every solve updates the ``stats`` attribute: solve and iteration
    counters plus the final (true) relative residual ``|b - Ax| / |b|`` of
    the most recent solve.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        preconditioner: Optional[object] = "jacobi",
        rtol: float = 1e-10,
        maxiter: int = 2000,
    ):
        self._matrix = matrix if _is_lazy_operator(matrix) else sp.csr_matrix(matrix)
        if self._matrix.shape[0] != self._matrix.shape[1]:
            raise SolverError("CG solver requires a square matrix")
        self.shape = self._matrix.shape
        self.rtol = float(rtol)
        self.maxiter = int(maxiter)
        with current_telemetry().span(
            "solver.factor", phase="factor", solver=self.method_name
        ):
            built = self._build_preconditioner(preconditioner)
        self._configure_cg(self._matrix, preconditioner=built)

    def _build_preconditioner(self, kind):
        if kind is None:
            return None
        if isinstance(kind, str):
            if kind == "jacobi":
                diagonal = self._matrix.diagonal()
                if np.any(diagonal <= 0):
                    raise SolverError("Jacobi preconditioner requires positive diagonal")
                inverse_diagonal = 1.0 / diagonal
                return spla.LinearOperator(self.shape, matvec=lambda x: inverse_diagonal * x)
            if kind == "ilu":
                explicit = (
                    self._matrix.to_csr()
                    if _is_lazy_operator(self._matrix)
                    else self._matrix
                )
                ilu = spla.spilu(sp.csc_matrix(explicit), drop_tol=1e-5, fill_factor=10)
                return spla.LinearOperator(self.shape, matvec=ilu.solve)
            raise SolverError(f"unknown preconditioner {kind!r}")
        if isinstance(kind, spla.LinearOperator):
            return kind
        as_operator = getattr(kind, "as_linear_operator", None)
        if callable(as_operator):
            return as_operator()
        matvec = getattr(kind, "matvec", None)
        if callable(matvec):
            return spla.LinearOperator(self.shape, matvec=matvec)
        if callable(kind):
            return spla.LinearOperator(self.shape, matvec=kind)
        raise SolverError(
            "preconditioner must be a name, a LinearOperator, an object with "
            f"as_linear_operator()/matvec(), or a callable; got {type(kind).__name__}"
        )


# ---------------------------------------------------------------------------
# Solver registry
# ---------------------------------------------------------------------------
_SOLVERS = Registry("solver", SolverError)


def register_solver(name: str, factory=None, *, overwrite: bool = False):
    """Register a solver factory ``factory(matrix, **options) -> LinearSolver``.

    Usable as a decorator::

        @register_solver("amg")
        def build_amg(matrix, **options):
            return MyAMGSolver(matrix, **options)

    After registration the backend is available everywhere a solver name is
    accepted (``make_solver``, ``TransientConfig.solver``, the ``--solver``
    CLI flag, ...).
    """
    return _SOLVERS.register(name, factory, overwrite=overwrite)


def unregister_solver(name: str) -> None:
    """Remove a registered solver backend."""
    _SOLVERS.unregister(name)


def solver_names() -> tuple:
    """Names of all registered solver backends, sorted."""
    return _SOLVERS.names()


def solver_factory(method: str):
    """Resolve a solver name to its factory (raises :class:`SolverError`)."""
    return _SOLVERS.get(method)


def solver_accepts_operator(method: str) -> bool:
    """True when the named backend consumes lazy operators directly.

    Factories opt in by setting ``accepts_operator = True`` on themselves;
    :func:`make_solver` materialises operators to CSR for everyone else.
    Unknown names return False (the caller will hit the registry's error
    with its name listing soon enough).
    """
    try:
        factory = _SOLVERS.get(method)
    except SolverError:
        return False
    return bool(getattr(factory, "accepts_operator", False))


def make_solver(matrix: sp.spmatrix, method: str = "direct", **options) -> LinearSolver:
    """Construct a linear solver for ``matrix``.

    Parameters
    ----------
    matrix:
        System matrix -- an explicit sparse matrix, or a lazy operator
        (:class:`repro.linalg.KronSumOperator`).  Operators are forwarded
        as-is to backends that declare ``accepts_operator`` on their
        factory (``mean-block-cg``, ``cg``, ``ilu-cg``, ``schwarz-cg``)
        and materialised with ``to_csr()`` for everything else, so every
        backend works with either input.
    method:
        Name of a registered backend; the built-ins are ``"direct"``
        (sparse LU), ``"cg"`` (Jacobi-preconditioned CG) and ``"ilu-cg"``
        (ILU-preconditioned CG).  Importing :mod:`repro.linalg` (or
        :mod:`repro.api`) additionally registers ``"mean-block-cg"``
        (matrix-free CG with the ``I_P (x) M0^{-1}`` mean-block
        preconditioner); importing :mod:`repro.partition` registers
        ``"schur"`` (partitioned Schur-complement direct solve) and
        ``"schwarz-cg"`` (CG with a block-Jacobi/additive-Schwarz
        preconditioner).
    options:
        Forwarded to the solver factory (e.g. ``rtol``, ``maxiter``).
    """
    factory = _SOLVERS.get(method)
    if _is_lazy_operator(matrix) and not getattr(factory, "accepts_operator", False):
        matrix = matrix.to_csr()
    return factory(matrix, **options)


@register_solver("direct")
def _build_direct(matrix: sp.spmatrix, **options) -> DirectSolver:
    return DirectSolver(matrix, **options)


@register_solver("cg")
def _build_cg(matrix: sp.spmatrix, **options) -> ConjugateGradientSolver:
    options.setdefault("preconditioner", "jacobi")
    return ConjugateGradientSolver(matrix, **options)


_build_cg.accepts_operator = True


@register_solver("ilu-cg")
def _build_ilu_cg(matrix: sp.spmatrix, **options) -> ConjugateGradientSolver:
    options["preconditioner"] = "ilu"
    return ConjugateGradientSolver(matrix, **options)


_build_ilu_cg.accepts_operator = True


def matrix_fingerprint(matrix: sp.spmatrix) -> str:
    """Content hash of a sparse matrix, usable as a factorisation cache key.

    Two matrices with identical shape, sparsity structure and values map to
    the same fingerprint, so a cache keyed by it can recognise "the same
    system matrix" across independently assembled objects (e.g. the stepping
    matrix ``G + C/h`` rebuilt by two runs with identical settings).

    Lazy operators that carry their own content hash (e.g.
    :class:`repro.linalg.KronSumOperator.fingerprint`) are fingerprinted
    through it, so the session solver cache works for operator-backed
    solvers too.
    """
    own = getattr(matrix, "fingerprint", None)
    if callable(own):
        return own()
    # Copy before canonicalising: sum_duplicates() would otherwise rewrite
    # the caller's matrix in place when it is already CSR.
    matrix = sp.csr_matrix(matrix, copy=True)
    matrix.sum_duplicates()
    digest = hashlib.sha1()
    digest.update(repr(matrix.shape).encode())
    digest.update(matrix.indptr.tobytes())
    digest.update(matrix.indices.tobytes())
    digest.update(matrix.data.tobytes())
    return digest.hexdigest()
