"""DC (steady-state) power grid analysis.

The DC operating point solves ``G x = U`` where ``U`` collects the pad
injections and the drain currents at a chosen time instant (or their peak
values).  It is used to obtain nominal IR-drop maps, to calibrate synthetic
grids, and to provide initial conditions for the transient integrator.
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp

from ..grid.stamping import StampedSystem
from .linear import LinearSolver, make_solver
from .results import DCResult

__all__ = ["solve_dc", "dc_operating_point"]


def solve_dc(
    conductance: sp.spmatrix,
    rhs: np.ndarray,
    solver: str = "direct",
    **solver_options,
) -> np.ndarray:
    """Solve ``G x = rhs`` and return the node voltages."""
    linear: LinearSolver = make_solver(conductance, method=solver, **solver_options)
    return linear.solve(np.asarray(rhs, dtype=float))


def dc_operating_point(
    system: StampedSystem,
    t: float = 0.0,
    solver: str = "direct",
    **solver_options,
) -> DCResult:
    """DC operating point of a stamped power grid at time ``t``.

    The capacitors are open at DC, so only the conductance matrix and the
    excitation ``U(t) = G1*VDD - i(t)`` enter the solve.
    """
    voltages = solve_dc(system.conductance, system.rhs(t), solver=solver, **solver_options)
    return DCResult(voltages=voltages, vdd=system.vdd)
