"""Result containers for deterministic DC and transient simulations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["DCResult", "TransientResult"]


@dataclass(frozen=True)
class DCResult:
    """Node voltages of a DC (steady-state) solution."""

    voltages: np.ndarray
    vdd: float

    @property
    def drops(self) -> np.ndarray:
        """Voltage drops ``VDD - V`` at every node."""
        return self.vdd - self.voltages

    @property
    def worst_drop(self) -> float:
        """Largest drop across all nodes."""
        return float(np.max(self.drops))

    def worst_node(self) -> int:
        """Index of the node with the largest drop."""
        return int(np.argmax(self.drops))


class TransientResult:
    """Node voltage waveforms from a fixed-step transient simulation.

    Attributes
    ----------
    times:
        Time points, shape ``(n_steps + 1,)``.
    voltages:
        Node voltages, shape ``(n_steps + 1, n_nodes)``; may be ``None`` when
        the simulation was run in streaming (callback-only) mode.
    vdd:
        Nominal supply voltage used to convert voltages to drops.
    """

    def __init__(self, times: np.ndarray, voltages: Optional[np.ndarray], vdd: float):
        self.times = np.asarray(times, dtype=float)
        self.voltages = None if voltages is None else np.asarray(voltages, dtype=float)
        self.vdd = float(vdd)
        if self.voltages is not None and self.voltages.shape[0] != self.times.size:
            raise ValueError("voltages must have one row per time point")

    # ------------------------------------------------------------------ shape
    @property
    def num_steps(self) -> int:
        return self.times.size - 1

    @property
    def num_nodes(self) -> int:
        if self.voltages is None:
            raise ValueError("this result was produced in streaming mode")
        return self.voltages.shape[1]

    # ------------------------------------------------------------------ access
    def node_series(self, node: int) -> np.ndarray:
        """Voltage waveform of one node."""
        if self.voltages is None:
            raise ValueError("this result was produced in streaming mode")
        return self.voltages[:, node]

    def at_time(self, t: float) -> np.ndarray:
        """Node voltages at time ``t`` (linear interpolation between steps)."""
        if self.voltages is None:
            raise ValueError("this result was produced in streaming mode")
        return np.array(
            [np.interp(t, self.times, self.voltages[:, j]) for j in range(self.num_nodes)]
        )

    # ------------------------------------------------------------------- drops
    @property
    def drops(self) -> np.ndarray:
        """Voltage drops ``VDD - V`` for every time point and node."""
        if self.voltages is None:
            raise ValueError("this result was produced in streaming mode")
        return self.vdd - self.voltages

    def peak_drop_per_node(self) -> np.ndarray:
        """Worst drop over time for each node."""
        return np.max(self.drops, axis=0)

    def worst_drop(self) -> float:
        """Worst drop over all nodes and time points."""
        return float(np.max(self.drops))

    def worst_node(self) -> int:
        """Index of the node with the worst drop over the whole simulation."""
        return int(np.argmax(self.peak_drop_per_node()))

    def time_of_peak_drop(self, node: int) -> float:
        """Time at which ``node`` experiences its largest drop."""
        series = self.drops[:, node]
        return float(self.times[int(np.argmax(series))])
