"""Convenience wrapper bundling the MNA matrices with simulation entry points.

:class:`MNASystem` is the deterministic-simulation facade: it owns the
nominal ``G`` and ``C`` matrices and the excitation of a power grid and
exposes ``dc()`` and ``transient()`` methods.  The stochastic engines build
on the same matrices through :mod:`repro.variation` and :mod:`repro.opera`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import SolverError
from ..grid.netlist import PowerGridNetlist
from ..grid.stamping import StampedSystem, stamp
from .dc import solve_dc
from .results import DCResult, TransientResult
from .transient import TransientConfig, run_transient

__all__ = ["MNASystem"]


class MNASystem:
    """Deterministic MNA system ``(G + sC) x = U`` with simulation helpers."""

    def __init__(
        self,
        conductance: sp.spmatrix,
        capacitance: sp.spmatrix,
        rhs_function: Callable[[float], np.ndarray],
        vdd: float = 1.0,
        node_names: Optional[Sequence[str]] = None,
    ):
        self.conductance = sp.csr_matrix(conductance)
        self.capacitance = sp.csr_matrix(capacitance)
        if self.conductance.shape != self.capacitance.shape:
            raise SolverError("G and C must have identical shapes")
        self.rhs_function = rhs_function
        self.vdd = float(vdd)
        self.node_names = tuple(node_names) if node_names is not None else None
        if self.node_names is not None and len(self.node_names) != self.num_nodes:
            raise SolverError("node_names length must match the matrix dimension")

    # ---------------------------------------------------------- construction
    @classmethod
    def from_stamped(cls, stamped: StampedSystem) -> "MNASystem":
        """Build an MNA system from stamped power-grid matrices."""
        return cls(
            conductance=stamped.conductance,
            capacitance=stamped.capacitance,
            rhs_function=stamped.rhs,
            vdd=stamped.vdd,
            node_names=stamped.node_names,
        )

    @classmethod
    def from_netlist(cls, netlist: PowerGridNetlist) -> "MNASystem":
        """Stamp ``netlist`` and wrap the result."""
        return cls.from_stamped(stamp(netlist))

    # ------------------------------------------------------------- simulation
    @property
    def num_nodes(self) -> int:
        return self.conductance.shape[0]

    def dc(self, t: float = 0.0, solver: str = "direct") -> DCResult:
        """DC operating point at time ``t``."""
        voltages = solve_dc(self.conductance, self.rhs_function(t), solver=solver)
        return DCResult(voltages=voltages, vdd=self.vdd)

    def transient(
        self,
        config: TransientConfig,
        x0: Optional[np.ndarray] = None,
        store: bool = True,
    ) -> TransientResult:
        """Fixed-step transient simulation."""
        return run_transient(
            self.conductance,
            self.capacitance,
            self.rhs_function,
            config,
            x0=x0,
            vdd=self.vdd,
            store=store,
        )

    def node_index(self, name: str) -> int:
        """Index of a named node (requires node names to be attached)."""
        if self.node_names is None:
            raise SolverError("this MNA system carries no node names")
        try:
            return self.node_names.index(name)
        except ValueError:
            raise SolverError(f"unknown node {name!r}") from None
