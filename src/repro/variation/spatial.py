"""Spatially correlated intra-die variation (extension of the paper's model).

The paper's experiments use *inter-die* variation: one germ per physical
parameter, shared by the whole die.  Its introduction, however, motivates the
general case of intra-die (across-die) variation, and the framework supports
it directly: model each physical parameter as a spatial random field, expand
the field over a small set of independent germs with principal component
analysis (exactly the orthogonal transformation the paper points to), and
feed the resulting multi-germ affine model to the same Galerkin machinery.

This module implements that extension for the synthetic grids produced by
:mod:`repro.grid.generator`:

1. the die is divided into rectangular regions
   (:class:`~repro.variation.regions.RegionPartition`);
2. every region carries a local deviation of the metal (W/T) parameters and
   of the channel length, with an exponential spatial correlation
   ``exp(-d / L_corr)`` between region centres;
3. the correlated per-region deviations are decorrelated with PCA, keeping
   the components that explain a requested fraction of the variance;
4. region-wise conductance / gate-capacitance / drain-current groups are
   stamped separately, so each retained germ obtains its own sparse
   sensitivity matrix and excitation sensitivity.

The result is an ordinary :class:`~repro.variation.model.StochasticSystem`
with ``m_G + m_L`` Gaussian germs, usable with both the OPERA engine and the
Monte Carlo baseline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import VariationModelError
from ..grid.elements import ResistorKind
from ..grid.netlist import PowerGridNetlist
from ..grid.stamping import StampedSystem, stamp
from .correlation import correlation_from_distance, decorrelate_gaussian
from .model import AffineExcitation, GermVariable, StochasticSystem
from .regions import RegionPartition

__all__ = ["SpatialVariationSpec", "build_spatial_stochastic_system"]

_NODE_NAME_RE = re.compile(r"^n(?P<layer>\d+)_(?P<row>\d+)_(?P<col>\d+)$")


@dataclass(frozen=True)
class SpatialVariationSpec:
    """Magnitudes and correlation structure of the intra-die variation.

    Attributes
    ----------
    sigma_w, sigma_t, sigma_l:
        Relative 1-sigma variation of metal width, metal thickness and
        channel length *per region* (total intra-die sigma).
    correlation_length:
        Correlation length of the exponential spatial model, in micrometres.
        Long lengths recover the inter-die (fully correlated) behaviour;
        short lengths make the regions nearly independent.
    node_pitch:
        Physical spacing of adjacent bottom-layer nodes in micrometres, used
        to convert region centres to physical distances.
    energy_fraction:
        Fraction of the spatial-field variance the retained principal
        components must explain (controls the number of germs).
    max_components:
        Optional hard cap on the number of retained components per field.
    current_leff_sensitivity, gate_cap_fraction, pads_vary:
        Same meaning as in :class:`~repro.variation.model.VariationSpec`.
    vary_conductance, vary_channel_length:
        Switches for the two spatial fields.
    """

    sigma_w: float = 0.20 / 3.0
    sigma_t: float = 0.15 / 3.0
    sigma_l: float = 0.20 / 3.0
    correlation_length: float = 200.0
    node_pitch: float = 10.0
    energy_fraction: float = 0.95
    max_components: Optional[int] = None
    current_leff_sensitivity: float = 1.3
    gate_cap_fraction: float = 0.40
    pads_vary: bool = True
    vary_conductance: bool = True
    vary_channel_length: bool = True

    def __post_init__(self):
        for label, value in (
            ("sigma_w", self.sigma_w),
            ("sigma_t", self.sigma_t),
            ("sigma_l", self.sigma_l),
        ):
            if value < 0 or value >= 1.0 / 3.0 + 1e-12:
                raise VariationModelError(f"{label} must lie in [0, 1/3); got {value}")
        if self.correlation_length <= 0:
            raise VariationModelError("correlation_length must be positive")
        if self.node_pitch <= 0:
            raise VariationModelError("node_pitch must be positive")
        if not (0.0 < self.energy_fraction <= 1.0):
            raise VariationModelError("energy_fraction must lie in (0, 1]")
        if self.max_components is not None and self.max_components < 1:
            raise VariationModelError("max_components must be at least 1")

    @property
    def sigma_g(self) -> float:
        """Relative 1-sigma of the combined per-region conductance deviation."""
        return float(np.sqrt(self.sigma_w**2 + self.sigma_t**2))


def _node_coordinates(name: str) -> Optional[Tuple[int, int]]:
    """Bottom-mesh (row, col) of a generator-named node, any layer."""
    match = _NODE_NAME_RE.match(name)
    if not match:
        return None
    return int(match.group("row")), int(match.group("col"))


def _region_of_node(partition: RegionPartition, name: str) -> Optional[int]:
    coords = _node_coordinates(name)
    if coords is None:
        return None
    return partition.region_of(*coords)


def _stamp_two_terminal(rows, cols, values, i, j, value):
    if i is not None:
        rows.append(i), cols.append(i), values.append(value)
    if j is not None:
        rows.append(j), cols.append(j), values.append(value)
    if i is not None and j is not None:
        rows.append(i), cols.append(j), values.append(-value)
        rows.append(j), cols.append(i), values.append(-value)


def _region_conductances(
    netlist: PowerGridNetlist,
    partition: RegionPartition,
    include_pads: bool,
) -> Tuple[List[sp.csr_matrix], List[np.ndarray]]:
    """Per-region conductance matrices and per-region pad-current vectors."""
    n = netlist.num_nodes
    buffers = [([], [], []) for _ in range(partition.num_regions)]
    pad_currents = [np.zeros(n) for _ in range(partition.num_regions)]

    def index(name: str) -> Optional[int]:
        return None if netlist.is_ground(name) else netlist.node_index(name)

    for resistor in netlist.resistors:
        if resistor.kind == ResistorKind.PACKAGE:
            continue
        region = _region_of_node(partition, resistor.a)
        if region is None:
            region = _region_of_node(partition, resistor.b)
        if region is None:
            raise VariationModelError(
                f"cannot locate resistor terminal {resistor.a!r} on the die; "
                "spatial variation requires generator-style node names"
            )
        rows, cols, values = buffers[region]
        _stamp_two_terminal(
            rows, cols, values, index(resistor.a), index(resistor.b), resistor.conductance
        )

    if include_pads:
        for pad in netlist.pads:
            region = _region_of_node(partition, pad.node)
            if region is None:
                continue
            rows, cols, values = buffers[region]
            i = netlist.node_index(pad.node)
            rows.append(i), cols.append(i), values.append(pad.conductance)
            pad_currents[region][i] += pad.conductance * pad.vdd

    matrices = [
        sp.coo_matrix((values, (rows, cols)), shape=(n, n)).tocsr()
        for rows, cols, values in buffers
    ]
    return matrices, pad_currents


def _region_gate_capacitances(
    netlist: PowerGridNetlist,
    partition: RegionPartition,
    gate_cap_fraction: float,
) -> List[sp.csr_matrix]:
    """Per-region gate-load capacitance matrices (Leff-sensitive part)."""
    n = netlist.num_nodes
    buffers = [([], [], []) for _ in range(partition.num_regions)]

    def index(name: str) -> Optional[int]:
        return None if netlist.is_ground(name) else netlist.node_index(name)

    tagged = any(c.is_gate_load for c in netlist.capacitors)
    for capacitor in netlist.capacitors:
        if tagged and not capacitor.is_gate_load:
            continue
        terminal = capacitor.a if not netlist.is_ground(capacitor.a) else capacitor.b
        region = _region_of_node(partition, terminal)
        if region is None:
            continue
        value = capacitor.capacitance if tagged else gate_cap_fraction * capacitor.capacitance
        rows, cols, values = buffers[region]
        _stamp_two_terminal(rows, cols, values, index(capacitor.a), index(capacitor.b), value)

    return [
        sp.coo_matrix((values, (rows, cols)), shape=(n, n)).tocsr()
        for rows, cols, values in buffers
    ]


def _region_current_functions(
    netlist: PowerGridNetlist, partition: RegionPartition
) -> List[Callable[[float], np.ndarray]]:
    """Per-region drain-current vectors as functions of time."""
    n = netlist.num_nodes
    grouped: List[List[Tuple[int, Callable]]] = [[] for _ in range(partition.num_regions)]
    for source in netlist.current_sources:
        region = _region_of_node(partition, source.node)
        if region is None:
            continue
        grouped[region].append((netlist.node_index(source.node), source.waveform))

    def make(entries):
        def current(t: float) -> np.ndarray:
            vector = np.zeros(n)
            for node, waveform in entries:
                vector[node] += float(waveform(t))
            return vector

        return current

    return [make(entries) for entries in grouped]


def _spatial_germs(
    partition: RegionPartition,
    pitch: float,
    spec: SpatialVariationSpec,
) -> np.ndarray:
    """PCA transform mapping independent germs to per-region deviations.

    Returns the ``(num_regions, num_components)`` matrix ``A`` such that the
    correlated unit-variance per-region deviations are ``A @ xi``.
    """
    centers = partition.region_centers() * pitch
    covariance = correlation_from_distance(
        centers, correlation_length=spec.correlation_length, sigma=1.0
    )
    pca = decorrelate_gaussian(
        covariance,
        num_components=spec.max_components,
        energy_fraction=spec.energy_fraction,
    )
    return pca.transform


def build_spatial_stochastic_system(
    netlist: PowerGridNetlist,
    partition: RegionPartition,
    spec: Optional[SpatialVariationSpec] = None,
    stamped: Optional[StampedSystem] = None,
) -> StochasticSystem:
    """Build a stochastic system with spatially correlated intra-die variation.

    Parameters
    ----------
    netlist:
        A generator-style power-grid netlist (node names carry coordinates).
    partition:
        The die partition defining the spatial resolution of the fields.
    spec:
        Variation magnitudes and correlation structure.
    stamped:
        Optional pre-stamped system (to avoid stamping twice).
    """
    spec = spec or SpatialVariationSpec()
    stamped = stamped if stamped is not None else stamp(netlist)

    transform = _spatial_germs(partition, spec.node_pitch, spec)
    num_components = transform.shape[1]

    variables: List[GermVariable] = []
    g_sens: Dict[int, sp.csr_matrix] = {}
    c_sens: Dict[int, sp.csr_matrix] = {}
    rhs_sens: Dict[int, Callable[[float], np.ndarray]] = {}

    if spec.vary_conductance and spec.sigma_g > 0:
        region_g, region_pads = _region_conductances(
            netlist, partition, include_pads=spec.pads_vary
        )
        for component in range(num_components):
            index = len(variables)
            variables.append(GermVariable(name=f"xi_G_s{component}", family="hermite"))
            matrix = sp.csr_matrix(stamped.conductance.shape)
            pad_vector = np.zeros(stamped.num_nodes)
            for region in range(partition.num_regions):
                weight = spec.sigma_g * transform[region, component]
                if weight == 0.0:
                    continue
                matrix = matrix + weight * region_g[region]
                pad_vector = pad_vector + weight * region_pads[region]
            g_sens[index] = matrix.tocsr()
            if spec.pads_vary and np.any(pad_vector):
                rhs_sens[index] = (lambda vector: (lambda t: vector))(pad_vector)

    if spec.vary_channel_length and spec.sigma_l > 0:
        region_c = _region_gate_capacitances(netlist, partition, spec.gate_cap_fraction)
        region_i = _region_current_functions(netlist, partition)
        for component in range(num_components):
            index = len(variables)
            variables.append(GermVariable(name=f"xi_L_s{component}", family="hermite"))
            matrix = sp.csr_matrix(stamped.capacitance.shape)
            weights = spec.sigma_l * transform[:, component]
            for region in range(partition.num_regions):
                if weights[region] == 0.0:
                    continue
                matrix = matrix + weights[region] * region_c[region]
            c_sens[index] = matrix.tocsr()

            def current_sensitivity(
                t: float,
                _weights=weights.copy(),
                _currents=region_i,
                _scale=spec.current_leff_sensitivity,
            ) -> np.ndarray:
                vector = np.zeros(stamped.num_nodes)
                for region, weight in enumerate(_weights):
                    if weight:
                        vector -= _scale * weight * _currents[region](t)
                return vector

            rhs_sens[index] = current_sensitivity

    if not variables:
        raise VariationModelError("the spatial variation spec enables no random variables")

    excitation = AffineExcitation(
        nominal=stamped.rhs, sensitivities=rhs_sens, num_variables=len(variables)
    )
    return StochasticSystem(
        variables=tuple(variables),
        g_nominal=stamped.conductance,
        c_nominal=stamped.capacitance,
        g_sensitivities=g_sens,
        c_sensitivities=c_sens,
        excitation=excitation,
        vdd=stamped.vdd,
        node_names=stamped.node_names,
    )
