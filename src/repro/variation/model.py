"""Stochastic power-grid system construction (Eq. (12)-(14) of the paper).

This module converts a deterministic stamped power grid plus a
:class:`VariationSpec` into a :class:`StochasticSystem`:

``G(xi) = G_a + sum_k G_k xi_k``,  ``C(xi) = C_a + sum_k C_k xi_k``,
``U(t, xi) = U_a(t) + sum_k U_k(t) xi_k``  (or a general polynomial-chaos
expansion of ``U`` for nonlinear excitations such as lognormal leakage).

The sensitivities follow the paper's first-order physical model:

* wire/via conductance scales linearly with metal width ``W`` and thickness
  ``T`` (``G ~ W*T / rho``), so its relative sensitivity to the normalised
  germs is ``sigma_W`` and ``sigma_T``;  since both act identically on ``G``
  they can be combined into a single germ ``xi_G`` with relative sigma
  ``sqrt(sigma_W^2 + sigma_T^2)`` (Eq. (14));
* the MOS gate-load part of the capacitance scales linearly with the channel
  length ``Leff`` (``Cgate ~ Weff*Leff*Cox``);
* the block drain currents scale with ``Leff`` through a first-order
  sensitivity coefficient;
* the pad injection term ``G1*VDD`` of the excitation inherits the
  conductance variation when the pad resistance is treated as on-die metal.

The same module defines the excitation abstraction shared by the OPERA
(Galerkin) engine and the Monte Carlo baseline.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import VariationModelError
from ..grid.stamping import StampedSystem

__all__ = [
    "VariationSpec",
    "GermVariable",
    "StochasticExcitation",
    "AffineExcitation",
    "SummedExcitation",
    "ConstantSensitivity",
    "ScaledDrainCurrentSensitivity",
    "StochasticSystem",
    "build_stochastic_system",
]


@dataclass(frozen=True)
class VariationSpec:
    """Inter-die process variation magnitudes (1-sigma, relative to nominal).

    The paper's experiments use maximum 3-sigma variations of 20 % in W,
    15 % in T (hence 25 % in the combined conductance germ) and 20 % in
    Leff; :meth:`paper_defaults` reproduces exactly those settings.

    Attributes
    ----------
    sigma_w, sigma_t, sigma_l:
        Relative 1-sigma variation of interconnect width, interconnect
        thickness and device channel length.
    gate_cap_fraction:
        Fraction of the total grid capacitance that follows Leff; only used
        as a fallback when the netlist does not tag gate-load capacitors.
    current_leff_sensitivity:
        First-order sensitivity of the block drain currents to the
        normalised Leff germ (dI/I per unit xi_L, in units of sigma_l).
    pads_vary:
        Whether the pad series conductance (and hence the ``G1*VDD`` part of
        the excitation) follows the W/T variation.
    combine_wt:
        Combine the W and T germs into the single conductance germ ``xi_G``
        as in Eq. (14) of the paper (2 germs total); otherwise keep W, T and
        Leff as three separate germs.
    vary_conductance, vary_capacitance, vary_currents:
        Master switches for each variation mechanism (used by ablations).
    """

    sigma_w: float = 0.20 / 3.0
    sigma_t: float = 0.15 / 3.0
    sigma_l: float = 0.20 / 3.0
    gate_cap_fraction: float = 0.40
    current_leff_sensitivity: float = 1.3
    pads_vary: bool = True
    combine_wt: bool = True
    vary_conductance: bool = True
    vary_capacitance: bool = True
    vary_currents: bool = True

    def __post_init__(self):
        for label, value in (
            ("sigma_w", self.sigma_w),
            ("sigma_t", self.sigma_t),
            ("sigma_l", self.sigma_l),
        ):
            if value < 0 or value >= 1.0 / 3.0 + 1e-12:
                raise VariationModelError(
                    f"{label} must lie in [0, 1/3) so that 3-sigma excursions "
                    f"keep the parameters physical; got {value}"
                )
        if not (0.0 <= self.gate_cap_fraction <= 1.0):
            raise VariationModelError("gate_cap_fraction must lie in [0, 1]")

    @classmethod
    def paper_defaults(cls) -> "VariationSpec":
        """The exact setting of the paper's experiments (Section 6)."""
        return cls(
            sigma_w=0.20 / 3.0,
            sigma_t=0.15 / 3.0,
            sigma_l=0.20 / 3.0,
            gate_cap_fraction=0.40,
            current_leff_sensitivity=1.3,
            pads_vary=True,
            combine_wt=True,
        )

    @classmethod
    def from_three_sigma_percent(
        cls, w: float = 20.0, t: float = 15.0, l: float = 20.0, **kwargs
    ) -> "VariationSpec":
        """Build a spec from 3-sigma percentages (the paper's convention)."""
        return cls(
            sigma_w=w / 100.0 / 3.0,
            sigma_t=t / 100.0 / 3.0,
            sigma_l=l / 100.0 / 3.0,
            **kwargs,
        )

    @property
    def sigma_g(self) -> float:
        """Relative 1-sigma variation of the combined conductance germ xi_G."""
        return math.sqrt(self.sigma_w**2 + self.sigma_t**2)


@dataclass(frozen=True)
class GermVariable:
    """One normalised (zero-mean, unit-variance) random variable of the model."""

    name: str
    family: str = "hermite"

    def __post_init__(self):
        if not self.name:
            raise VariationModelError("germ variables need a non-empty name")


# ---------------------------------------------------------------------------
# Excitations
# ---------------------------------------------------------------------------
class StochasticExcitation(abc.ABC):
    """Right-hand side ``U(t, xi)`` of the stochastic MNA system.

    Two views of the same object are needed:

    * :meth:`sample` -- exact evaluation at a germ realisation, used by the
      Monte Carlo baseline;
    * :meth:`pc_coefficients` -- the coefficients of the excitation in the
      orthonormal chaos basis, used by the Galerkin projection.
    """

    @abc.abstractmethod
    def sample(self, t: float, xi: np.ndarray) -> np.ndarray:
        """Evaluate ``U(t, xi)`` for one germ realisation ``xi``."""

    @abc.abstractmethod
    def pc_coefficients(self, basis, t: float) -> Dict[int, np.ndarray]:
        """Coefficients of ``U(t, .)`` on the orthonormal basis.

        Returns a mapping from basis index to coefficient vector; absent
        indices are zero.
        """

    def nominal(self, t: float) -> np.ndarray:
        """Mean excitation (the coefficient of the constant basis function)."""
        return self.sample(t, np.zeros(self.num_variables))

    @property
    @abc.abstractmethod
    def num_variables(self) -> int:
        """Number of germ variables this excitation depends on."""


class ConstantSensitivity:
    """A time-independent sensitivity vector as a callable of time.

    A plain class (rather than a closure) so that excitations built from it
    -- and hence whole :class:`StochasticSystem` objects -- can be pickled
    and shipped to worker processes by the chunked Monte Carlo engine and
    the :mod:`repro.sweep` runner.
    """

    def __init__(self, vector: np.ndarray):
        self.vector = np.asarray(vector, dtype=float)

    def __call__(self, t: float) -> np.ndarray:
        return self.vector


class ScaledDrainCurrentSensitivity:
    """``t -> -scale * i(t)``: drain-current sensitivity to the Leff germ.

    ``U = G1*VDD - i(t)`` gives ``dU/dxi_L = -dI/dxi_L = -scale * i(t)``.
    Implemented as a picklable class for the same reason as
    :class:`ConstantSensitivity`.
    """

    def __init__(self, stamped: StampedSystem, scale: float):
        self.stamped = stamped
        self.scale = float(scale)

    def __call__(self, t: float) -> np.ndarray:
        return -self.scale * self.stamped.drain_current_vector(t)


class AffineExcitation(StochasticExcitation):
    """``U(t, xi) = u0(t) + sum_k u_k(t) xi_k`` (first-order germ dependence).

    ``sensitivities`` maps germ *variable index* to the function returning
    that germ's sensitivity vector at time ``t``.
    """

    def __init__(
        self,
        nominal: Callable[[float], np.ndarray],
        sensitivities: Mapping[int, Callable[[float], np.ndarray]],
        num_variables: int,
    ):
        self._nominal = nominal
        self._sensitivities = dict(sensitivities)
        self._num_variables = int(num_variables)
        for var in self._sensitivities:
            if not (0 <= var < self._num_variables):
                raise VariationModelError(
                    f"sensitivity refers to variable {var} but only "
                    f"{self._num_variables} germ variables exist"
                )

    @property
    def num_variables(self) -> int:
        return self._num_variables

    def sample(self, t: float, xi: np.ndarray) -> np.ndarray:
        xi = np.asarray(xi, dtype=float)
        value = np.array(self._nominal(t), dtype=float, copy=True)
        for var, sensitivity in self._sensitivities.items():
            value += xi[var] * np.asarray(sensitivity(t), dtype=float)
        return value

    def pc_coefficients(self, basis, t: float) -> Dict[int, np.ndarray]:
        coefficients = {0: np.asarray(self._nominal(t), dtype=float)}
        if getattr(basis, "order", 1) >= 1:
            for var, sensitivity in self._sensitivities.items():
                index = basis.first_order_index(var)
                coefficients[index] = np.asarray(sensitivity(t), dtype=float)
        return coefficients


class SummedExcitation(StochasticExcitation):
    """Point-wise sum of several excitations sharing the same germ vector."""

    def __init__(self, parts: Sequence[StochasticExcitation]):
        if not parts:
            raise VariationModelError("SummedExcitation needs at least one part")
        sizes = {part.num_variables for part in parts}
        if len(sizes) > 1:
            raise VariationModelError("all excitation parts must share the germ vector")
        self.parts = list(parts)

    @property
    def num_variables(self) -> int:
        return self.parts[0].num_variables

    def sample(self, t: float, xi: np.ndarray) -> np.ndarray:
        total = self.parts[0].sample(t, xi)
        for part in self.parts[1:]:
            total = total + part.sample(t, xi)
        return total

    def pc_coefficients(self, basis, t: float) -> Dict[int, np.ndarray]:
        combined: Dict[int, np.ndarray] = {}
        for part in self.parts:
            for index, vector in part.pc_coefficients(basis, t).items():
                if index in combined:
                    combined[index] = combined[index] + vector
                else:
                    combined[index] = np.array(vector, copy=True)
        return combined


# ---------------------------------------------------------------------------
# Stochastic system
# ---------------------------------------------------------------------------
@dataclass
class StochasticSystem:
    """The stochastic MNA system ``(G(xi) + sC(xi)) x = U(s, xi)``.

    Attributes
    ----------
    variables:
        Ordered germ variables; their order defines the meaning of a germ
        realisation vector ``xi``.
    g_nominal, c_nominal:
        Mean conductance and capacitance matrices.
    g_sensitivities, c_sensitivities:
        First-order sensitivity matrices keyed by germ variable index.
    excitation:
        The stochastic right-hand side.
    vdd:
        Supply voltage (for drop conversions).
    node_names:
        Node labels aligned with the matrix ordering.
    """

    variables: Tuple[GermVariable, ...]
    g_nominal: sp.csr_matrix
    c_nominal: sp.csr_matrix
    g_sensitivities: Dict[int, sp.csr_matrix]
    c_sensitivities: Dict[int, sp.csr_matrix]
    excitation: StochasticExcitation
    vdd: float
    node_names: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        self.g_nominal = sp.csr_matrix(self.g_nominal)
        self.c_nominal = sp.csr_matrix(self.c_nominal)
        if self.g_nominal.shape != self.c_nominal.shape:
            raise VariationModelError("G and C must have identical shapes")
        for mapping_name, mapping in (
            ("g_sensitivities", self.g_sensitivities),
            ("c_sensitivities", self.c_sensitivities),
        ):
            for var, matrix in mapping.items():
                if not (0 <= var < len(self.variables)):
                    raise VariationModelError(
                        f"{mapping_name} refers to unknown variable index {var}"
                    )
                if matrix.shape != self.g_nominal.shape:
                    raise VariationModelError(
                        f"{mapping_name}[{var}] has shape {matrix.shape}, "
                        f"expected {self.g_nominal.shape}"
                    )
        if self.excitation.num_variables != len(self.variables):
            raise VariationModelError("excitation germ count does not match the system's variables")

    # ------------------------------------------------------------------ shape
    @property
    def num_nodes(self) -> int:
        return self.g_nominal.shape[0]

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def has_matrix_variation(self) -> bool:
        """True when G or C depends on the germs (the general OPERA case)."""
        return bool(self.g_sensitivities) or bool(self.c_sensitivities)

    def variable_names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    def variable_families(self) -> Tuple[str, ...]:
        return tuple(v.family for v in self.variables)

    # --------------------------------------------------------------- sampling
    def realize_matrices(self, xi: np.ndarray) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
        """Return ``(G(xi), C(xi))`` for one germ realisation."""
        xi = np.asarray(xi, dtype=float)
        if xi.shape != (self.num_variables,):
            raise VariationModelError(f"xi must have shape ({self.num_variables},), got {xi.shape}")
        conductance = self.g_nominal.copy()
        for var, matrix in self.g_sensitivities.items():
            conductance = conductance + float(xi[var]) * matrix
        capacitance = self.c_nominal.copy()
        for var, matrix in self.c_sensitivities.items():
            capacitance = capacitance + float(xi[var]) * matrix
        return conductance.tocsr(), capacitance.tocsr()

    def realize_rhs(self, xi: np.ndarray) -> Callable[[float], np.ndarray]:
        """Return the deterministic excitation ``t -> U(t, xi)`` for one sample."""
        xi = np.asarray(xi, dtype=float)
        return lambda t: self.excitation.sample(t, xi)

    def nominal_rhs(self) -> Callable[[float], np.ndarray]:
        """Excitation with every germ at zero (the nominal design)."""
        zero = np.zeros(self.num_variables)
        return lambda t: self.excitation.sample(t, zero)


# ---------------------------------------------------------------------------
# Builder (paper Eq. (13)-(14))
# ---------------------------------------------------------------------------
def build_stochastic_system(
    stamped: StampedSystem,
    spec: Optional[VariationSpec] = None,
) -> StochasticSystem:
    """Build the stochastic system for inter-die W/T/Leff variation.

    Parameters
    ----------
    stamped:
        The stamped (nominal) power grid.
    spec:
        Variation magnitudes and switches; defaults to the paper's settings.
    """
    spec = spec or VariationSpec.paper_defaults()

    variables: List[GermVariable] = []
    g_sens: Dict[int, sp.csr_matrix] = {}
    c_sens: Dict[int, sp.csr_matrix] = {}
    rhs_sens: Dict[int, Callable[[float], np.ndarray]] = {}

    if spec.pads_vary:
        g_varying = (stamped.g_wire + stamped.g_package).tocsr()
        pad_varying = stamped.pad_current
    else:
        g_varying = stamped.g_wire.tocsr()
        pad_varying = np.zeros(stamped.num_nodes)

    def add_variable(name: str) -> int:
        variables.append(GermVariable(name=name, family="hermite"))
        return len(variables) - 1

    # --- conductance (and the pad part of the excitation) --------------------
    if spec.vary_conductance and (spec.sigma_w > 0 or spec.sigma_t > 0):
        if spec.combine_wt:
            index = add_variable("xi_G")
            g_sens[index] = (spec.sigma_g * g_varying).tocsr()
            if spec.pads_vary:
                rhs_sens[index] = _scaled_constant(spec.sigma_g * pad_varying)
        else:
            if spec.sigma_w > 0:
                index = add_variable("xi_W")
                g_sens[index] = (spec.sigma_w * g_varying).tocsr()
                if spec.pads_vary:
                    rhs_sens[index] = _scaled_constant(spec.sigma_w * pad_varying)
            if spec.sigma_t > 0:
                index = add_variable("xi_T")
                g_sens[index] = (spec.sigma_t * g_varying).tocsr()
                if spec.pads_vary:
                    rhs_sens[index] = _scaled_constant(spec.sigma_t * pad_varying)

    # --- channel length: gate capacitance and drain currents -----------------
    needs_leff = (spec.vary_capacitance or spec.vary_currents) and spec.sigma_l > 0
    if needs_leff:
        index = add_variable("xi_L")
        if spec.vary_capacitance:
            gate_cap = stamped.c_gate
            if gate_cap.nnz == 0:
                # Untagged netlist: fall back to a fraction of the total capacitance.
                gate_cap = spec.gate_cap_fraction * stamped.capacitance
            c_sens[index] = (spec.sigma_l * gate_cap).tocsr()
        if spec.vary_currents:
            rhs_sens[index] = ScaledDrainCurrentSensitivity(
                stamped, spec.current_leff_sensitivity * spec.sigma_l
            )

    if not variables:
        raise VariationModelError(
            "the variation spec enables no random variables; nothing to analyse"
        )

    excitation = AffineExcitation(
        nominal=stamped.rhs,
        sensitivities=rhs_sens,
        num_variables=len(variables),
    )

    return StochasticSystem(
        variables=tuple(variables),
        g_nominal=stamped.conductance,
        c_nominal=stamped.capacitance,
        g_sensitivities=g_sens,
        c_sensitivities=c_sens,
        excitation=excitation,
        vdd=stamped.vdd,
        node_names=stamped.node_names,
    )


def _scaled_constant(vector: np.ndarray) -> Callable[[float], np.ndarray]:
    """Time-independent sensitivity vector as a (picklable) callable of time."""
    return ConstantSensitivity(vector)
