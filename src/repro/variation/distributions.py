"""Random-variable models for process parameters.

The paper normalises every varying physical parameter ``P`` as
``P = P_mu + P_sigma * xi`` where ``xi`` is a zero-mean, unit-variance random
variable (the *germ*).  The polynomial family used for the chaos expansion is
dictated by the germ distribution through the Askey scheme:

=============  =================  ==================
distribution   germ               polynomial family
=============  =================  ==================
Gaussian       standard normal    Hermite
Lognormal      standard normal    Hermite
Uniform        uniform(-1, 1)     Legendre
Gamma          exponential(1)     Laguerre
Beta           beta on [-1, 1]    Jacobi
=============  =================  ==================

Each distribution class therefore exposes the germ family name, a germ
sampler, and the map from germ value to physical value.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from ..errors import VariationModelError

__all__ = [
    "ParameterDistribution",
    "GaussianParameter",
    "LognormalParameter",
    "UniformParameter",
    "GammaParameter",
    "BetaParameter",
]


class ParameterDistribution(abc.ABC):
    """A random physical parameter expressed through a standardised germ."""

    #: Name of the orthogonal polynomial family matched to the germ.
    germ_family: str = "hermite"

    @abc.abstractmethod
    def sample_germ(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` samples of the germ random variable."""

    @abc.abstractmethod
    def from_germ(self, xi: np.ndarray) -> np.ndarray:
        """Map germ values to physical parameter values."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Mean of the physical parameter."""

    @abc.abstractmethod
    def std(self) -> float:
        """Standard deviation of the physical parameter."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw samples of the physical parameter."""
        return self.from_germ(self.sample_germ(rng, size))

    def relative_sigma(self) -> float:
        """Standard deviation relative to the mean (coefficient of variation)."""
        mu = self.mean()
        if mu == 0:
            raise VariationModelError("relative sigma undefined for zero-mean parameter")
        return self.std() / abs(mu)


@dataclass(frozen=True)
class GaussianParameter(ParameterDistribution):
    """``P = mu + sigma * xi`` with ``xi ~ N(0, 1)``."""

    mu: float
    sigma: float
    germ_family = "hermite"

    def __post_init__(self):
        if self.sigma < 0:
            raise VariationModelError("sigma must be non-negative")

    @classmethod
    def from_three_sigma_percent(cls, mu: float, three_sigma_percent: float) -> "GaussianParameter":
        """Build from the '3-sigma variation as a percentage of nominal' convention
        used throughout the paper (e.g. 20 % 3-sigma variation in W)."""
        return cls(mu=mu, sigma=abs(mu) * three_sigma_percent / 100.0 / 3.0)

    def sample_germ(self, rng, size):
        return rng.standard_normal(size)

    def from_germ(self, xi):
        return self.mu + self.sigma * np.asarray(xi)

    def mean(self):
        return self.mu

    def std(self):
        return self.sigma


@dataclass(frozen=True)
class LognormalParameter(ParameterDistribution):
    """``P = exp(log_mu + log_sigma * xi)`` with ``xi ~ N(0, 1)``.

    Used for leakage currents, which vary exponentially with the (Gaussian)
    threshold voltage.
    """

    log_mu: float
    log_sigma: float
    germ_family = "hermite"

    def __post_init__(self):
        if self.log_sigma < 0:
            raise VariationModelError("log_sigma must be non-negative")

    @classmethod
    def from_median_and_sigma(cls, median: float, log_sigma: float) -> "LognormalParameter":
        if median <= 0:
            raise VariationModelError("median of a lognormal must be positive")
        return cls(log_mu=math.log(median), log_sigma=log_sigma)

    def sample_germ(self, rng, size):
        return rng.standard_normal(size)

    def from_germ(self, xi):
        return np.exp(self.log_mu + self.log_sigma * np.asarray(xi))

    def mean(self):
        return math.exp(self.log_mu + 0.5 * self.log_sigma**2)

    def std(self):
        factor = math.exp(self.log_sigma**2)
        return self.mean() * math.sqrt(factor - 1.0)


@dataclass(frozen=True)
class UniformParameter(ParameterDistribution):
    """``P`` uniform on ``[low, high]``; germ uniform on ``[-1, 1]``."""

    low: float
    high: float
    germ_family = "legendre"

    def __post_init__(self):
        if self.high <= self.low:
            raise VariationModelError("high must exceed low")

    def sample_germ(self, rng, size):
        return rng.uniform(-1.0, 1.0, size)

    def from_germ(self, xi):
        xi = np.asarray(xi)
        return 0.5 * (self.low + self.high) + 0.5 * (self.high - self.low) * xi

    def mean(self):
        return 0.5 * (self.low + self.high)

    def std(self):
        return (self.high - self.low) / math.sqrt(12.0)


@dataclass(frozen=True)
class GammaParameter(ParameterDistribution):
    """``P = scale * xi + shift`` with ``xi ~ Exponential(1)`` (unit-rate germ).

    The matching Askey family is Laguerre.  The exponential germ is the
    ``k = 1`` member of the Gamma family, which is what standard Laguerre
    polynomials are orthogonal against.
    """

    scale: float
    shift: float = 0.0
    germ_family = "laguerre"

    def __post_init__(self):
        if self.scale <= 0:
            raise VariationModelError("scale must be positive")

    def sample_germ(self, rng, size):
        return rng.exponential(1.0, size)

    def from_germ(self, xi):
        return self.shift + self.scale * np.asarray(xi)

    def mean(self):
        return self.shift + self.scale

    def std(self):
        return self.scale


@dataclass(frozen=True)
class BetaParameter(ParameterDistribution):
    """``P`` on ``[low, high]`` with a Beta-shaped density; germ on ``[-1, 1]``.

    The germ density is proportional to ``(1 - x)^alpha (1 + x)^beta`` on
    ``[-1, 1]``, which is the weight of the Jacobi polynomials.
    """

    low: float
    high: float
    alpha: float = 1.0
    beta: float = 1.0
    germ_family = "jacobi"

    def __post_init__(self):
        if self.high <= self.low:
            raise VariationModelError("high must exceed low")
        if self.alpha <= -1 or self.beta <= -1:
            raise VariationModelError("alpha and beta must exceed -1")

    def sample_germ(self, rng, size):
        # (1-x)^alpha (1+x)^beta on [-1,1]  <=>  B ~ Beta(beta+1, alpha+1), x = 2B - 1.
        b = rng.beta(self.beta + 1.0, self.alpha + 1.0, size)
        return 2.0 * b - 1.0

    def from_germ(self, xi):
        xi = np.asarray(xi)
        return self.low + 0.5 * (xi + 1.0) * (self.high - self.low)

    def _germ_mean(self) -> float:
        a, b = self.alpha, self.beta
        mean_b = (b + 1.0) / (a + b + 2.0)
        return 2.0 * mean_b - 1.0

    def _germ_var(self) -> float:
        a, b = self.alpha, self.beta
        p, q = b + 1.0, a + 1.0
        var_b = p * q / ((p + q) ** 2 * (p + q + 1.0))
        return 4.0 * var_b

    def mean(self):
        return self.low + 0.5 * (self._germ_mean() + 1.0) * (self.high - self.low)

    def std(self):
        return 0.5 * (self.high - self.low) * math.sqrt(self._germ_var())
