"""Leakage-current variation model (the special case of Section 5.1).

When only the drain currents vary -- for instance because intra-die threshold
voltage (Vth) variation makes the subthreshold leakage currents random -- the
grid matrices stay deterministic and the stochastic MNA system becomes

``(G + sC) x(s, xi) = U(s, xi)``.

A Gaussian Vth produces *lognormal* leakage currents.  The chip is divided
into a small number of regions (see :class:`~repro.variation.regions.RegionPartition`),
each with its own Vth germ, and the lognormal factor of every region is
expanded analytically on the Hermite basis:

``exp(s*xi - s^2/2) = sum_k  (s^k / sqrt(k!)) * psi_k(xi)``

with orthonormal Hermite polynomials ``psi_k``.  The Galerkin projection then
decouples into one deterministic solve per retained basis function with the
*same* ``(G + sC)`` matrix -- a single LU factorisation and repeated
back-substitutions, which is what gives the special case its speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import VariationModelError
from ..grid.stamping import StampedSystem
from .model import GermVariable, StochasticExcitation, StochasticSystem
from .regions import RegionPartition

__all__ = [
    "LeakageVariationSpec",
    "RegionLeakageExcitation",
    "build_leakage_system",
]


@dataclass(frozen=True)
class LeakageVariationSpec:
    """Intra-die threshold-voltage variation and its leakage consequence.

    The subthreshold leakage obeys ``I = I0 * exp(-dVth / (n * vT))``; with
    Gaussian ``dVth`` of standard deviation ``vth_sigma`` the leakage is
    lognormal with log-domain sigma ``s = vth_sigma / (n * vT)``.

    Attributes
    ----------
    vth_sigma:
        1-sigma intra-die threshold voltage variation per region, in volts.
    subthreshold_factor:
        Subthreshold slope factor ``n`` (typically 1.2 - 1.6).
    thermal_voltage:
        ``kT/q`` in volts (0.0259 V at 300 K).
    mean_preserving:
        When true (default) the lognormal factor is normalised so its mean is
        exactly the nominal leakage (``exp(s*xi - s^2/2)``); otherwise the
        plain ``exp(s*xi)`` convention is used and the mean leakage exceeds
        the nominal value by ``exp(s^2/2)``.
    """

    vth_sigma: float = 0.030
    subthreshold_factor: float = 1.5
    thermal_voltage: float = 0.0259
    mean_preserving: bool = True

    def __post_init__(self):
        if self.vth_sigma < 0:
            raise VariationModelError("vth_sigma must be non-negative")
        if self.subthreshold_factor <= 0 or self.thermal_voltage <= 0:
            raise VariationModelError("subthreshold_factor and thermal_voltage must be positive")

    @property
    def lognormal_sigma(self) -> float:
        """Log-domain sigma ``s`` of the per-region lognormal leakage factor."""
        return self.vth_sigma / (self.subthreshold_factor * self.thermal_voltage)

    def hermite_coefficients(self, max_degree: int) -> np.ndarray:
        """Coefficients of the lognormal factor on orthonormal Hermite polynomials.

        Returns ``c[0..max_degree]`` such that the leakage multiplication
        factor equals ``sum_k c[k] * psi_k(xi)`` (exactly, in the limit of
        infinite degree).
        """
        s = self.lognormal_sigma
        coefficients = np.array(
            [s**k / math.sqrt(math.factorial(k)) for k in range(max_degree + 1)]
        )
        if not self.mean_preserving:
            coefficients *= math.exp(0.5 * s * s)
        return coefficients

    def factor(self, xi: np.ndarray) -> np.ndarray:
        """Exact lognormal multiplication factor for germ values ``xi``."""
        s = self.lognormal_sigma
        shift = -0.5 * s * s if self.mean_preserving else 0.0
        return np.exp(s * np.asarray(xi, dtype=float) + shift)


class RegionLeakageExcitation(StochasticExcitation):
    """Excitation with per-region lognormal leakage currents.

    ``U(t, xi) = G1*VDD - i_switch(t) - sum_r leak_r * factor(xi_r)``

    where ``leak_r`` is the nominal leakage current vector of region ``r`` and
    ``factor`` is the lognormal multiplication factor of
    :class:`LeakageVariationSpec`.
    """

    def __init__(
        self,
        stamped: StampedSystem,
        partition: RegionPartition,
        spec: Optional[LeakageVariationSpec] = None,
    ):
        self.spec = spec or LeakageVariationSpec()
        self._stamped = stamped
        self._partition = partition

        region_map = partition.region_map(stamped.node_names)
        leakage_total = stamped.drain_current_vector(
            0.0, include_leakage=True
        ) - stamped.drain_current_vector(0.0, include_leakage=False)
        if not np.any(leakage_total > 0):
            raise VariationModelError(
                "the grid carries no leakage current sources; tag them with "
                "is_leakage=True before building a leakage excitation"
            )

        self._region_leakage: List[np.ndarray] = []
        for region in range(partition.num_regions):
            vector = np.where(region_map == region, leakage_total, 0.0)
            self._region_leakage.append(vector)
        unassigned = leakage_total.copy()
        for vector in self._region_leakage:
            unassigned = unassigned - vector
        #: leakage on nodes outside every region stays deterministic
        self._unassigned_leakage = unassigned

    # ----------------------------------------------------------------- sizes
    @property
    def num_variables(self) -> int:
        return self._partition.num_regions

    @property
    def region_leakage_vectors(self) -> List[np.ndarray]:
        """Nominal leakage current vector of each region."""
        return [vector.copy() for vector in self._region_leakage]

    # ------------------------------------------------------------ evaluation
    def _deterministic_part(self, t: float) -> np.ndarray:
        """Pad injection minus switching currents minus unassigned leakage."""
        switching = self._stamped.drain_current_vector(t, include_leakage=False)
        return self._stamped.pad_current - switching - self._unassigned_leakage

    def sample(self, t: float, xi: np.ndarray) -> np.ndarray:
        xi = np.asarray(xi, dtype=float)
        if xi.shape != (self.num_variables,):
            raise VariationModelError(f"xi must have shape ({self.num_variables},), got {xi.shape}")
        value = self._deterministic_part(t)
        factors = self.spec.factor(xi)
        for region, vector in enumerate(self._region_leakage):
            value = value - factors[region] * vector
        return value

    def pc_coefficients(self, basis, t: float) -> Dict[int, np.ndarray]:
        max_degree = basis.order
        hermite = self.spec.hermite_coefficients(max_degree)

        coefficients: Dict[int, np.ndarray] = {}
        mean = self._deterministic_part(t)
        for vector in self._region_leakage:
            mean = mean - hermite[0] * vector
        coefficients[0] = mean

        for region, vector in enumerate(self._region_leakage):
            for degree in range(1, max_degree + 1):
                multi_index = tuple(
                    degree if dim == region else 0 for dim in range(self.num_variables)
                )
                index = basis.index_of(multi_index)
                contribution = -hermite[degree] * vector
                if index in coefficients:
                    coefficients[index] = coefficients[index] + contribution
                else:
                    coefficients[index] = contribution
        return coefficients


def build_leakage_system(
    stamped: StampedSystem,
    partition: RegionPartition,
    spec: Optional[LeakageVariationSpec] = None,
) -> StochasticSystem:
    """Build the Section-5.1 special-case system: deterministic G and C,
    stochastic (lognormal, per-region) leakage currents on the right-hand side."""
    excitation = RegionLeakageExcitation(stamped, partition, spec)
    variables = tuple(
        GermVariable(name=f"xi_vth_r{region}", family="hermite")
        for region in range(partition.num_regions)
    )
    return StochasticSystem(
        variables=variables,
        g_nominal=stamped.conductance,
        c_nominal=stamped.capacitance,
        g_sensitivities={},
        c_sensitivities={},
        excitation=excitation,
        vdd=stamped.vdd,
        node_names=stamped.node_names,
    )
