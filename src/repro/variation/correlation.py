"""Decorrelation of correlated process parameters.

The OPERA formulation assumes the germ variables are *uncorrelated*; the paper
notes that correlated Gaussian parameters can always be mapped to an
uncorrelated set through an orthogonal transformation such as principal
component analysis.  This module implements that transformation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import VariationModelError

__all__ = ["PrincipalComponents", "decorrelate_gaussian", "correlation_from_distance"]


@dataclass(frozen=True)
class PrincipalComponents:
    """Result of decorrelating a Gaussian parameter vector.

    The original (correlated, zero-mean) parameters ``delta`` are recovered
    from independent standard-normal germs ``xi`` via
    ``delta = transform @ xi`` with ``transform = V * sqrt(lambda)``.
    """

    transform: np.ndarray
    eigenvalues: np.ndarray
    explained_fraction: np.ndarray

    @property
    def num_parameters(self) -> int:
        return self.transform.shape[0]

    @property
    def num_components(self) -> int:
        return self.transform.shape[1]

    def to_parameters(self, xi: np.ndarray) -> np.ndarray:
        """Map independent germs to correlated parameter deviations.

        ``xi`` has shape ``(num_components,)`` or ``(m, num_components)``.
        """
        xi = np.asarray(xi, dtype=float)
        return xi @ self.transform.T

    def sensitivity_row(self, parameter: int) -> np.ndarray:
        """Sensitivity of one original parameter to every retained germ."""
        return self.transform[parameter]


def decorrelate_gaussian(
    covariance: np.ndarray,
    num_components: Optional[int] = None,
    energy_fraction: float = 1.0 - 1e-12,
) -> PrincipalComponents:
    """Principal-component decomposition of a Gaussian covariance matrix.

    Parameters
    ----------
    covariance:
        Symmetric positive semi-definite covariance matrix of the physical
        parameter deviations.
    num_components:
        Number of principal components (germs) to retain; defaults to keeping
        enough components to explain ``energy_fraction`` of the total variance.
    energy_fraction:
        Variance fraction to retain when ``num_components`` is not given.
    """
    covariance = np.asarray(covariance, dtype=float)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise VariationModelError("covariance must be a square matrix")
    if not np.allclose(covariance, covariance.T, rtol=1e-8, atol=1e-12):
        raise VariationModelError("covariance must be symmetric")

    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]
    if np.any(eigenvalues < -1e-10 * max(eigenvalues.max(), 1.0)):
        raise VariationModelError("covariance must be positive semi-definite")
    eigenvalues = np.clip(eigenvalues, 0.0, None)

    total = float(eigenvalues.sum())
    if total <= 0:
        raise VariationModelError("covariance has no variance to decompose")
    cumulative = np.cumsum(eigenvalues) / total

    if num_components is None:
        num_components = int(np.searchsorted(cumulative, energy_fraction) + 1)
    num_components = min(max(num_components, 1), eigenvalues.size)

    kept_values = eigenvalues[:num_components]
    kept_vectors = eigenvectors[:, :num_components]
    transform = kept_vectors * np.sqrt(kept_values)[None, :]
    explained = kept_values / total
    return PrincipalComponents(
        transform=transform, eigenvalues=kept_values, explained_fraction=explained
    )


def correlation_from_distance(
    positions: Sequence[Sequence[float]],
    correlation_length: float,
    sigma: float = 1.0,
) -> np.ndarray:
    """Exponential spatial correlation model for intra-die variation.

    Builds the covariance ``sigma^2 * exp(-d_ij / L)`` between chip locations,
    the standard model for spatially correlated intra-die parameter
    variation.  Combined with :func:`decorrelate_gaussian`, it converts a
    spatial random field into a small set of independent germs suitable for
    the chaos expansion.
    """
    if correlation_length <= 0:
        raise VariationModelError("correlation_length must be positive")
    points = np.asarray(positions, dtype=float)
    if points.ndim != 2:
        raise VariationModelError("positions must be an (m, d) array of coordinates")
    deltas = points[:, None, :] - points[None, :, :]
    distances = np.sqrt(np.sum(deltas**2, axis=-1))
    return sigma**2 * np.exp(-distances / correlation_length)
