"""Process-variation modelling: distributions, correlation, regions, and the
stochastic MNA system builders."""

from .correlation import PrincipalComponents, correlation_from_distance, decorrelate_gaussian
from .distributions import (
    BetaParameter,
    GammaParameter,
    GaussianParameter,
    LognormalParameter,
    ParameterDistribution,
    UniformParameter,
)
from .leakage import LeakageVariationSpec, RegionLeakageExcitation, build_leakage_system
from .model import (
    AffineExcitation,
    GermVariable,
    StochasticExcitation,
    StochasticSystem,
    SummedExcitation,
    VariationSpec,
    build_stochastic_system,
)
from .regions import RegionPartition
from .spatial import SpatialVariationSpec, build_spatial_stochastic_system

__all__ = [
    "SpatialVariationSpec",
    "build_spatial_stochastic_system",
    "PrincipalComponents",
    "correlation_from_distance",
    "decorrelate_gaussian",
    "BetaParameter",
    "GammaParameter",
    "GaussianParameter",
    "LognormalParameter",
    "ParameterDistribution",
    "UniformParameter",
    "LeakageVariationSpec",
    "RegionLeakageExcitation",
    "build_leakage_system",
    "AffineExcitation",
    "GermVariable",
    "StochasticExcitation",
    "StochasticSystem",
    "SummedExcitation",
    "VariationSpec",
    "build_stochastic_system",
    "RegionPartition",
]
