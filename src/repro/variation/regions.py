"""Chip-region partitioning for intra-die variation modelling.

The special case of Section 5.1 of the paper divides the chip into a small
number of regions, each with its own threshold-voltage (and hence leakage)
random variable.  :class:`RegionPartition` provides that division for the
synthetic grids produced by :mod:`repro.grid.generator`, mapping nodes to
rectangular regions of the bottom metal layer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import VariationModelError

__all__ = ["RegionPartition"]

_NODE_NAME_RE = re.compile(r"^n(?P<layer>\d+)_(?P<row>\d+)_(?P<col>\d+)$")


@dataclass(frozen=True)
class RegionPartition:
    """A ``region_rows x region_cols`` rectangular partition of the die.

    Attributes
    ----------
    nx, ny:
        Bottom-layer mesh dimensions of the grid being partitioned.
    region_rows, region_cols:
        Number of regions along each axis; the total number of regions (and
        hence intra-die germs) is their product.
    """

    nx: int
    ny: int
    region_rows: int = 2
    region_cols: int = 1

    def __post_init__(self):
        if self.nx < 1 or self.ny < 1:
            raise VariationModelError("grid dimensions must be positive")
        if self.region_rows < 1 or self.region_cols < 1:
            raise VariationModelError("region counts must be positive")
        if self.region_rows > self.nx or self.region_cols > self.ny:
            raise VariationModelError("cannot have more regions than grid nodes")

    @property
    def num_regions(self) -> int:
        return self.region_rows * self.region_cols

    # ------------------------------------------------------------- region map
    def region_of(self, row: int, col: int) -> int:
        """Region index of a bottom-layer node at ``(row, col)``."""
        if not (0 <= row < self.nx and 0 <= col < self.ny):
            raise VariationModelError(f"coordinates ({row}, {col}) lie outside the grid")
        r = min(row * self.region_rows // self.nx, self.region_rows - 1)
        c = min(col * self.region_cols // self.ny, self.region_cols - 1)
        return r * self.region_cols + c

    def region_of_node_name(self, name: str) -> Optional[int]:
        """Region of a generator-named node; ``None`` for upper-layer nodes.

        Only bottom-layer (layer 0) nodes carry devices, so only those are
        assigned to a region.
        """
        match = _NODE_NAME_RE.match(name)
        if not match:
            raise VariationModelError(
                f"node name {name!r} does not follow the generator convention 'n<layer>_<row>_<col>'"
            )
        if int(match.group("layer")) != 0:
            return None
        return self.region_of(int(match.group("row")), int(match.group("col")))

    def region_map(self, node_names: Sequence[str]) -> np.ndarray:
        """Region index per node (-1 for nodes without a region)."""
        out = np.full(len(node_names), -1, dtype=int)
        for i, name in enumerate(node_names):
            region = self.region_of_node_name(name)
            if region is not None:
                out[i] = region
        return out

    def region_centers(self) -> np.ndarray:
        """Approximate (row, col) centre of each region, for correlation models."""
        centers = []
        for r in range(self.region_rows):
            for c in range(self.region_cols):
                row = (r + 0.5) * self.nx / self.region_rows
                col = (c + 0.5) * self.ny / self.region_cols
                centers.append((row, col))
        return np.asarray(centers)
