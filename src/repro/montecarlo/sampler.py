"""Germ-vector sampling for the Monte Carlo baseline.

Each germ dimension is sampled from the density its polynomial family is
orthogonal against (standard normal for Hermite, uniform for Legendre, ...),
so OPERA and Monte Carlo see exactly the same input randomness.  Antithetic
sampling (pairing ``xi`` with ``-xi``) is available as a cheap
variance-reduction option for symmetric germ densities.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..chaos.basis import family_for
from ..errors import AnalysisError
from ..variation.model import StochasticSystem

__all__ = ["GermSampler"]

_SYMMETRIC_FAMILIES = {"hermite", "legendre"}


class GermSampler:
    """Draws germ vectors consistent with a stochastic system's variables.

    ``seed`` accepts anything :func:`numpy.random.default_rng` does -- in
    particular a :class:`numpy.random.SeedSequence`, which is how the chunked
    Monte Carlo engine hands each worker chunk its own independent stream
    (children spawned from one parent sequence never overlap).
    """

    def __init__(
        self,
        system: StochasticSystem,
        seed: Union[int, np.random.SeedSequence, None] = 0,
    ):
        self._families = [family_for(name) for name in system.variable_families()]
        self._rng = np.random.default_rng(seed)

    @property
    def num_variables(self) -> int:
        return len(self._families)

    @property
    def supports_antithetic(self) -> bool:
        """Antithetic pairs are only unbiased for symmetric germ densities."""
        return all(f.name in _SYMMETRIC_FAMILIES for f in self._families)

    def sample(self, num_samples: int) -> np.ndarray:
        """Draw ``num_samples`` germ vectors, shape ``(num_samples, num_vars)``."""
        if num_samples < 1:
            raise AnalysisError("num_samples must be at least 1")
        return np.column_stack(
            [family.sample_germ(self._rng, num_samples) for family in self._families]
        )

    def sample_antithetic(self, num_samples: int) -> np.ndarray:
        """Draw an antithetic set: pairs ``(xi, -xi)``; total count is ``num_samples``.

        When ``num_samples`` is odd the final sample is unpaired.
        """
        if not self.supports_antithetic:
            raise AnalysisError(
                "antithetic sampling requires symmetric germ densities "
                "(Gaussian or uniform germs)"
            )
        half = (num_samples + 1) // 2
        base = self.sample(half)
        paired = np.vstack([base, -base])
        return paired[:num_samples]
