"""Streaming statistics for Monte Carlo sweeps.

Monte Carlo over a power grid produces one full voltage waveform matrix per
sample; storing them all is wasteful, so the engine accumulates running
moments with Welford's algorithm (numerically stable single-pass mean and
variance) over arrays of arbitrary shape.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = ["RunningMoments"]


class RunningMoments:
    """Welford running mean / variance accumulator for equal-shaped arrays."""

    def __init__(self, shape: Optional[Tuple[int, ...]] = None):
        self._count = 0
        self._mean: Optional[np.ndarray] = None
        self._m2: Optional[np.ndarray] = None
        self._shape = tuple(shape) if shape is not None else None
        if self._shape is not None:
            self._mean = np.zeros(self._shape)
            self._m2 = np.zeros(self._shape)

    @property
    def count(self) -> int:
        """Number of samples accumulated so far."""
        return self._count

    def update(self, sample: np.ndarray) -> None:
        """Add one sample (an array of the accumulator's shape)."""
        sample = np.asarray(sample, dtype=float)
        if self._mean is None:
            self._shape = sample.shape
            self._mean = np.zeros(self._shape)
            self._m2 = np.zeros(self._shape)
        if sample.shape != self._shape:
            raise AnalysisError(
                f"sample shape {sample.shape} does not match accumulator shape {self._shape}"
            )
        self._count += 1
        delta = sample - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (sample - self._mean)

    @property
    def mean(self) -> np.ndarray:
        """Running mean."""
        if self._mean is None or self._count == 0:
            raise AnalysisError("no samples accumulated yet")
        return self._mean.copy()

    def variance(self, ddof: int = 1) -> np.ndarray:
        """Running variance (sample variance by default, ``ddof=1``)."""
        if self._m2 is None or self._count == 0:
            raise AnalysisError("no samples accumulated yet")
        if self._count <= ddof:
            return np.zeros_like(self._m2)
        return self._m2 / (self._count - ddof)

    def std(self, ddof: int = 1) -> np.ndarray:
        """Running standard deviation."""
        return np.sqrt(self.variance(ddof=ddof))
