"""Streaming statistics for Monte Carlo sweeps.

Monte Carlo over a power grid produces one full voltage waveform matrix per
sample; storing them all is wasteful, so the engine accumulates running
moments with Welford's algorithm (numerically stable single-pass mean and
variance) over arrays of arbitrary shape.

Accumulators built independently -- e.g. one per worker process of a chunked
Monte Carlo sweep -- combine losslessly with :meth:`RunningMoments.merge`,
which applies the parallel variance formula of Chan, Golub and LeVeque; the
merged moments match a single-stream accumulation of the concatenated
samples up to floating-point round-off.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = ["RunningMoments"]


class RunningMoments:
    """Welford running mean / variance accumulator for equal-shaped arrays."""

    def __init__(self, shape: Optional[Tuple[int, ...]] = None):
        self._count = 0
        self._mean: Optional[np.ndarray] = None
        self._m2: Optional[np.ndarray] = None
        self._shape = tuple(shape) if shape is not None else None
        if self._shape is not None:
            self._mean = np.zeros(self._shape)
            self._m2 = np.zeros(self._shape)

    @property
    def count(self) -> int:
        """Number of samples accumulated so far."""
        return self._count

    def update(self, sample: np.ndarray) -> None:
        """Add one sample (an array of the accumulator's shape)."""
        sample = np.asarray(sample, dtype=float)
        if self._mean is None:
            self._shape = sample.shape
            self._mean = np.zeros(self._shape)
            self._m2 = np.zeros(self._shape)
        if sample.shape != self._shape:
            raise AnalysisError(
                f"sample shape {sample.shape} does not match accumulator shape {self._shape}"
            )
        self._count += 1
        delta = sample - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (sample - self._mean)

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """Fold another accumulator into this one (parallel variance combine).

        Implements the pairwise update of Chan, Golub & LeVeque (1983): with
        partial counts ``n_a``/``n_b``, means and second central moments, the
        combined statistics are

        ``n = n_a + n_b``,
        ``mean = mean_a + delta * n_b / n``,
        ``M2 = M2_a + M2_b + delta**2 * n_a * n_b / n``

        where ``delta = mean_b - mean_a``.  The result matches accumulating
        every sample through a single :meth:`update` stream up to
        floating-point round-off, so independently accumulated worker chunks
        merge losslessly.  Returns ``self`` for chaining; ``other`` is left
        untouched.  Empty accumulators merge as no-ops.
        """
        if not isinstance(other, RunningMoments):
            raise AnalysisError(f"can only merge RunningMoments, got {type(other).__name__}")
        if other._count == 0:
            return self
        if self._shape is not None and other._shape != self._shape:
            raise AnalysisError(
                f"cannot merge accumulator of shape {other._shape} into "
                f"accumulator of shape {self._shape}"
            )
        if self._count == 0:
            self._shape = other._shape
            self._mean = other._mean.copy()
            self._m2 = other._m2.copy()
            self._count = other._count
            return self
        count = self._count + other._count
        delta = other._mean - self._mean
        self._mean = self._mean + delta * (other._count / count)
        self._m2 = (self._m2 + other._m2 + delta * delta * (self._count * other._count / count))
        self._count = count
        return self

    def state(self) -> Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]:
        """The accumulator's ``(count, mean, M2)`` triple (copies).

        Together with :meth:`from_state` this gives a compact, picklable
        transfer format for shipping per-chunk moments between worker
        processes without serialising the accumulator object itself.
        """
        if self._count == 0:
            return 0, None, None
        return self._count, self._mean.copy(), self._m2.copy()

    @classmethod
    def from_state(
        cls,
        count: int,
        mean: Optional[np.ndarray],
        m2: Optional[np.ndarray],
    ) -> "RunningMoments":
        """Rebuild an accumulator from a :meth:`state` triple."""
        moments = cls()
        if count:
            if mean is None or m2 is None:
                raise AnalysisError("non-empty state needs mean and M2 arrays")
            mean = np.asarray(mean, dtype=float)
            m2 = np.asarray(m2, dtype=float)
            if mean.shape != m2.shape:
                raise AnalysisError(
                    f"state mean shape {mean.shape} does not match M2 shape {m2.shape}"
                )
            moments._count = int(count)
            moments._shape = mean.shape
            moments._mean = mean.copy()
            moments._m2 = m2.copy()
        return moments

    @property
    def mean(self) -> np.ndarray:
        """Running mean."""
        if self._mean is None or self._count == 0:
            raise AnalysisError("no samples accumulated yet")
        return self._mean.copy()

    def variance(self, ddof: int = 1) -> np.ndarray:
        """Running variance (sample variance by default, ``ddof=1``)."""
        if self._m2 is None or self._count == 0:
            raise AnalysisError("no samples accumulated yet")
        if self._count <= ddof:
            return np.zeros_like(self._m2)
        return self._m2 / (self._count - ddof)

    def std(self, ddof: int = 1) -> np.ndarray:
        """Running standard deviation."""
        return np.sqrt(self.variance(ddof=ddof))
