"""Monte Carlo baseline for stochastic power-grid analysis.

This is the "golden" reference the paper compares OPERA against: draw germ
samples, realise the corresponding grid matrices and excitation, run a full
deterministic transient per sample, and accumulate the statistics of the node
voltages.  The engine streams Welford statistics so memory stays flat in the
number of samples, and can optionally record the full per-sample waveforms of
a few selected nodes (used for the distribution plots of Figures 1-2).

Chunked execution
-----------------
With ``MonteCarloConfig(workers=N)`` (or an explicit ``chunk_size``) the
sweep is split into fixed-size chunks, each drawing its germs from an
independently seeded :class:`GermSampler` stream (children of one
:class:`numpy.random.SeedSequence` spawned from ``seed``) and accumulating
its own Welford moments; chunks run on a
:class:`concurrent.futures.ProcessPoolExecutor` and the per-chunk moments
are folded together with :meth:`RunningMoments.merge`.  The chunk layout
depends only on ``num_samples`` and ``chunk_size`` -- never on ``workers``
-- and chunks are merged in index order, so the statistics of a chunked
sweep are bit-identical for any worker count (the unchunked single-stream
path, ``workers=1`` without ``chunk_size``, remains byte-compatible with
earlier releases).  Systems that cannot be pickled fall back to in-process
chunk execution with a warning.
"""

from __future__ import annotations

import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..sim.dc import solve_dc
from ..sim.transient import TransientConfig, run_transient
from ..variation.model import StochasticSystem
from .sampler import GermSampler
from .statistics import RunningMoments

__all__ = ["MonteCarloConfig", "MonteCarloTransientResult", "MonteCarloDCResult",
           "run_monte_carlo_transient", "run_monte_carlo_dc",
           "DEFAULT_CHUNK_SIZE"]

#: Samples per chunk when chunked execution is requested without an explicit
#: ``chunk_size``.  A fixed (worker-independent) default keeps the chunk
#: layout -- and therefore the merged statistics -- identical for any
#: ``workers`` count.  Even, so antithetic pairs never straddle chunks.
DEFAULT_CHUNK_SIZE = 32


def _chunk_layout(num_samples: int, chunk_size: Optional[int]) -> Tuple[int, ...]:
    """Per-chunk sample counts of a chunked sweep.

    The single source of the worker-invariance guarantee: the layout depends
    only on ``num_samples`` and ``chunk_size`` (defaulting to
    :data:`DEFAULT_CHUNK_SIZE`), never on the worker count.  Shared by the
    transient and DC paths.
    """
    size = chunk_size or DEFAULT_CHUNK_SIZE
    full, remainder = divmod(num_samples, size)
    sizes = [size] * full
    if remainder:
        sizes.append(remainder)
    return tuple(sizes)


@dataclass(frozen=True)
class MonteCarloConfig:
    """Settings of a Monte Carlo sweep.

    Attributes
    ----------
    transient:
        Time axis and integration settings (shared with the OPERA run so the
        comparison is apples-to-apples).
    num_samples:
        Number of Monte Carlo samples; the paper uses 1000.
    seed:
        Seed of the germ sampler.
    antithetic:
        Use antithetic pairs for variance reduction (symmetric germs only).
    store_nodes:
        Node indices whose full per-sample drop waveforms are recorded
        (needed for distribution plots).
    solver:
        Linear solver for the per-sample factorisations.
    workers:
        Number of worker processes.  ``1`` (default) runs serially on the
        legacy single-stream path unless ``chunk_size`` is set; ``> 1``
        enables chunked execution over a process pool.
    chunk_size:
        Samples per chunk in chunked mode; defaults to
        :data:`DEFAULT_CHUNK_SIZE`.  Setting it with ``workers=1`` runs the
        chunked path in-process (useful to reproduce a parallel run's
        statistics serially).  Must be even when ``antithetic`` is set so
        antithetic pairs never straddle a chunk boundary.
    """

    transient: TransientConfig
    num_samples: int = 1000
    seed: int = 0
    antithetic: bool = False
    store_nodes: Tuple[int, ...] = ()
    solver: str = "direct"
    workers: int = 1
    chunk_size: Optional[int] = None

    def __post_init__(self):
        if self.num_samples < 2:
            raise AnalysisError("Monte Carlo needs at least 2 samples")
        if self.workers < 1:
            raise AnalysisError(f"workers must be at least 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 2:
            raise AnalysisError(f"chunk_size must be at least 2, got {self.chunk_size}")
        if self.antithetic and self.chunked:
            size = self.chunk_size or DEFAULT_CHUNK_SIZE
            if size % 2:
                raise AnalysisError(
                    "antithetic sampling needs an even chunk_size so that "
                    f"(xi, -xi) pairs stay within one chunk; got {size}"
                )
            if self.num_samples % 2:
                raise AnalysisError(
                    "antithetic chunked sampling needs an even num_samples "
                    "so the final chunk is not left with an unpaired sample; "
                    f"got {self.num_samples}"
                )

    @property
    def chunked(self) -> bool:
        """Whether this configuration uses the chunked execution path."""
        return self.workers > 1 or self.chunk_size is not None

    def chunk_sizes(self) -> Tuple[int, ...]:
        """Per-chunk sample counts.

        The layout depends only on ``num_samples`` and ``chunk_size`` (never
        on ``workers``), which is what makes chunked statistics invariant to
        the worker count.
        """
        if not self.chunked:
            return (self.num_samples,)
        return _chunk_layout(self.num_samples, self.chunk_size)


class MonteCarloTransientResult:
    """Statistics of a Monte Carlo transient sweep."""

    def __init__(
        self,
        times: np.ndarray,
        mean_voltage: np.ndarray,
        variance: np.ndarray,
        num_samples: int,
        vdd: float,
        node_names: Optional[Sequence[str]] = None,
        node_drop_samples: Optional[Dict[int, np.ndarray]] = None,
        wall_time: Optional[float] = None,
    ):
        self.times = np.asarray(times, dtype=float)
        self._mean = np.asarray(mean_voltage, dtype=float)
        self._variance = np.asarray(variance, dtype=float)
        self.num_samples = int(num_samples)
        self.vdd = float(vdd)
        self.node_names = tuple(node_names) if node_names is not None else None
        self.node_drop_samples = node_drop_samples or {}
        self.wall_time = wall_time

    # ------------------------------------------------------------------ sizes
    @property
    def num_times(self) -> int:
        return self.times.size

    @property
    def num_nodes(self) -> int:
        return self._mean.shape[1]

    # ------------------------------------------------------------- statistics
    @property
    def mean_voltage(self) -> np.ndarray:
        return self._mean

    @property
    def variance(self) -> np.ndarray:
        return self._variance

    @property
    def std_voltage(self) -> np.ndarray:
        return np.sqrt(np.maximum(self._variance, 0.0))

    @property
    def mean_drop(self) -> np.ndarray:
        return self.vdd - self._mean

    @property
    def std_drop(self) -> np.ndarray:
        return self.std_voltage

    def drop_samples(self, node: int, time_index: Optional[int] = None) -> np.ndarray:
        """Recorded per-sample drops of a stored node (all times or one index)."""
        if node not in self.node_drop_samples:
            raise AnalysisError(f"node {node} was not in store_nodes when the sweep was run")
        samples = self.node_drop_samples[node]
        return samples if time_index is None else samples[:, time_index]


@dataclass(frozen=True)
class MonteCarloDCResult:
    """Statistics of a Monte Carlo DC sweep."""

    mean_voltage: np.ndarray
    variance: np.ndarray
    num_samples: int
    vdd: float
    wall_time: Optional[float] = None

    @property
    def std_voltage(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.variance, 0.0))

    @property
    def mean_drop(self) -> np.ndarray:
        return self.vdd - self.mean_voltage

    @property
    def std_drop(self) -> np.ndarray:
        return self.std_voltage


def _draw_samples(system: StochasticSystem, config: MonteCarloConfig) -> np.ndarray:
    sampler = GermSampler(system, seed=config.seed)
    if config.antithetic:
        return sampler.sample_antithetic(config.num_samples)
    return sampler.sample(config.num_samples)


def _accumulate_transient_chunk(
    system: StochasticSystem,
    transient: TransientConfig,
    germs: np.ndarray,
    store_nodes: Tuple[int, ...],
) -> Tuple[RunningMoments, Dict[int, np.ndarray]]:
    """One deterministic transient per germ; Welford moments + stored drops."""
    moments = RunningMoments()
    stored: Dict[int, List[np.ndarray]] = {node: [] for node in store_nodes}
    for xi in germs:
        conductance, capacitance = system.realize_matrices(xi)
        rhs = system.realize_rhs(xi)
        result = run_transient(
            conductance,
            capacitance,
            rhs,
            transient,
            vdd=system.vdd,
            store=True,
        )
        moments.update(result.voltages)
        for node in store_nodes:
            stored[node].append(system.vdd - result.voltages[:, node])
    waveforms = {
        node: np.vstack(samples) if samples else np.empty((0, transient.num_steps + 1))
        for node, samples in stored.items()
    }
    return moments, waveforms


#: The system a chunk worker operates on.  Installed once per worker process
#: by the pool initializer (so the system is pickled once per worker, not
#: once per chunk) and set directly for in-process chunk execution.
_CHUNK_SYSTEM: Optional[StochasticSystem] = None


def _init_chunk_worker(system: StochasticSystem) -> None:
    global _CHUNK_SYSTEM
    _CHUNK_SYSTEM = system


def _transient_chunk_job(args):
    """Worker entry point of a chunked transient sweep (module-level for pickling)."""
    transient, chunk_seed, chunk_samples, antithetic, store_nodes = args
    system = _CHUNK_SYSTEM
    sampler = GermSampler(system, seed=chunk_seed)
    if antithetic:
        germs = sampler.sample_antithetic(chunk_samples)
    else:
        germs = sampler.sample(chunk_samples)
    moments, waveforms = _accumulate_transient_chunk(system, transient, germs, store_nodes)
    return moments.state() + (waveforms,)


def _dc_chunk_job(args):
    """Worker entry point of a chunked DC sweep (module-level for pickling)."""
    t, chunk_seed, chunk_samples, solver = args
    system = _CHUNK_SYSTEM
    sampler = GermSampler(system, seed=chunk_seed)
    germs = sampler.sample(chunk_samples)
    moments = RunningMoments()
    for xi in germs:
        conductance, _ = system.realize_matrices(xi)
        voltages = solve_dc(conductance, system.excitation.sample(t, xi), solver=solver)
        moments.update(voltages)
    return moments.state()


def _system_ships_to_workers(system: StochasticSystem) -> bool:
    """Whether ``system`` can be pickled into worker processes."""
    try:
        pickle.dumps(system)
        return True
    except Exception:  # pickle raises a zoo: PicklingError, TypeError, ...
        return False


def _run_chunk_jobs(
    jobs: List[tuple], worker, workers: int, system: StochasticSystem
) -> List[tuple]:
    """Run chunk jobs in order, over a process pool when possible.

    The system is shipped to each worker process exactly once (pool
    initializer); the per-chunk job tuples carry only seeds and settings.
    Results come back in chunk-index order regardless of completion order
    (``ProcessPoolExecutor.map`` preserves ordering), so downstream merges
    are deterministic for any worker count.
    """
    if workers > 1 and len(jobs) > 1:
        if _system_ships_to_workers(system):
            with ProcessPoolExecutor(
                max_workers=min(workers, len(jobs)),
                initializer=_init_chunk_worker,
                initargs=(system,),
            ) as pool:
                return list(pool.map(worker, jobs))
        warnings.warn(
            "stochastic system cannot be pickled into worker processes; "
            "running Monte Carlo chunks serially in-process",
            RuntimeWarning,
            stacklevel=3,
        )
    previous = _CHUNK_SYSTEM
    _init_chunk_worker(system)
    try:
        return [worker(job) for job in jobs]
    finally:
        _init_chunk_worker(previous)


def _chunk_seeds(seed: int, num_chunks: int) -> List[np.random.SeedSequence]:
    """Independent, non-overlapping per-chunk seed sequences."""
    return np.random.SeedSequence(seed).spawn(num_chunks)


def run_monte_carlo_transient(
    system: StochasticSystem, config: MonteCarloConfig
) -> MonteCarloTransientResult:
    """Monte Carlo transient sweep over the process-variation space.

    With ``config.workers > 1`` (or an explicit ``chunk_size``) the sweep
    runs chunked: statistics are identical for any worker count given the
    same ``seed``, ``num_samples`` and ``chunk_size``; see the module
    docstring.
    """
    started = time.perf_counter()
    times = config.transient.times()

    if config.chunked:
        sizes = config.chunk_sizes()
        seeds = _chunk_seeds(config.seed, len(sizes))
        jobs = [
            (
                config.transient,
                chunk_seed,
                chunk_samples,
                config.antithetic,
                config.store_nodes,
            )
            for chunk_seed, chunk_samples in zip(seeds, sizes)
        ]
        outcomes = _run_chunk_jobs(jobs, _transient_chunk_job, config.workers, system)
        moments = RunningMoments()
        chunk_waveforms: Dict[int, List[np.ndarray]] = {node: [] for node in config.store_nodes}
        for count, mean, m2, waveforms in outcomes:
            moments.merge(RunningMoments.from_state(count, mean, m2))
            for node in config.store_nodes:
                chunk_waveforms[node].append(waveforms[node])
        node_drop_samples = {node: np.vstack(parts) for node, parts in chunk_waveforms.items()}
        num_samples = moments.count
    else:
        germs = _draw_samples(system, config)
        moments, node_drop_samples = _accumulate_transient_chunk(
            system, config.transient, germs, config.store_nodes
        )
        num_samples = germs.shape[0]

    elapsed = time.perf_counter() - started
    return MonteCarloTransientResult(
        times=times,
        mean_voltage=moments.mean,
        variance=moments.variance(ddof=1),
        num_samples=num_samples,
        vdd=system.vdd,
        node_names=system.node_names,
        node_drop_samples=node_drop_samples,
        wall_time=elapsed,
    )


def run_monte_carlo_dc(
    system: StochasticSystem,
    num_samples: int = 1000,
    t: float = 0.0,
    seed: int = 0,
    solver: str = "direct",
    workers: int = 1,
    chunk_size: Optional[int] = None,
) -> MonteCarloDCResult:
    """Monte Carlo DC sweep (steady-state IR drop under variation).

    ``workers`` / ``chunk_size`` behave exactly as in the transient sweep:
    chunked statistics depend on the seed and chunk layout but never on the
    worker count.
    """
    if num_samples < 2:
        raise AnalysisError("Monte Carlo needs at least 2 samples")
    if workers < 1:
        raise AnalysisError(f"workers must be at least 1, got {workers}")
    if chunk_size is not None and chunk_size < 2:
        raise AnalysisError(f"chunk_size must be at least 2, got {chunk_size}")
    started = time.perf_counter()
    if workers > 1 or chunk_size is not None:
        sizes = _chunk_layout(num_samples, chunk_size)
        seeds = _chunk_seeds(seed, len(sizes))
        jobs = [
            (t, chunk_seed, chunk_samples, solver)
            for chunk_seed, chunk_samples in zip(seeds, sizes)
        ]
        outcomes = _run_chunk_jobs(jobs, _dc_chunk_job, workers, system)
        moments = RunningMoments()
        for state in outcomes:
            moments.merge(RunningMoments.from_state(*state))
    else:
        sampler = GermSampler(system, seed=seed)
        germs = sampler.sample(num_samples)
        moments = RunningMoments()
        for xi in germs:
            conductance, _ = system.realize_matrices(xi)
            voltages = solve_dc(conductance, system.excitation.sample(t, xi), solver=solver)
            moments.update(voltages)
    elapsed = time.perf_counter() - started
    return MonteCarloDCResult(
        mean_voltage=moments.mean,
        variance=moments.variance(ddof=1),
        num_samples=num_samples,
        vdd=system.vdd,
        wall_time=elapsed,
    )
