"""Monte Carlo baseline for stochastic power-grid analysis.

This is the "golden" reference the paper compares OPERA against: draw germ
samples, realise the corresponding grid matrices and excitation, run a full
deterministic transient per sample, and accumulate the statistics of the node
voltages.  The engine streams Welford statistics so memory stays flat in the
number of samples, and can optionally record the full per-sample waveforms of
a few selected nodes (used for the distribution plots of Figures 1-2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..sim.dc import solve_dc
from ..sim.transient import TransientConfig, run_transient
from ..variation.model import StochasticSystem
from .sampler import GermSampler
from .statistics import RunningMoments

__all__ = ["MonteCarloConfig", "MonteCarloTransientResult", "MonteCarloDCResult",
           "run_monte_carlo_transient", "run_monte_carlo_dc"]


@dataclass(frozen=True)
class MonteCarloConfig:
    """Settings of a Monte Carlo sweep.

    Attributes
    ----------
    transient:
        Time axis and integration settings (shared with the OPERA run so the
        comparison is apples-to-apples).
    num_samples:
        Number of Monte Carlo samples; the paper uses 1000.
    seed:
        Seed of the germ sampler.
    antithetic:
        Use antithetic pairs for variance reduction (symmetric germs only).
    store_nodes:
        Node indices whose full per-sample drop waveforms are recorded
        (needed for distribution plots).
    solver:
        Linear solver for the per-sample factorisations.
    """

    transient: TransientConfig
    num_samples: int = 1000
    seed: int = 0
    antithetic: bool = False
    store_nodes: Tuple[int, ...] = ()
    solver: str = "direct"

    def __post_init__(self):
        if self.num_samples < 2:
            raise AnalysisError("Monte Carlo needs at least 2 samples")


class MonteCarloTransientResult:
    """Statistics of a Monte Carlo transient sweep."""

    def __init__(
        self,
        times: np.ndarray,
        mean_voltage: np.ndarray,
        variance: np.ndarray,
        num_samples: int,
        vdd: float,
        node_names: Optional[Sequence[str]] = None,
        node_drop_samples: Optional[Dict[int, np.ndarray]] = None,
        wall_time: Optional[float] = None,
    ):
        self.times = np.asarray(times, dtype=float)
        self._mean = np.asarray(mean_voltage, dtype=float)
        self._variance = np.asarray(variance, dtype=float)
        self.num_samples = int(num_samples)
        self.vdd = float(vdd)
        self.node_names = tuple(node_names) if node_names is not None else None
        self.node_drop_samples = node_drop_samples or {}
        self.wall_time = wall_time

    # ------------------------------------------------------------------ sizes
    @property
    def num_times(self) -> int:
        return self.times.size

    @property
    def num_nodes(self) -> int:
        return self._mean.shape[1]

    # ------------------------------------------------------------- statistics
    @property
    def mean_voltage(self) -> np.ndarray:
        return self._mean

    @property
    def variance(self) -> np.ndarray:
        return self._variance

    @property
    def std_voltage(self) -> np.ndarray:
        return np.sqrt(np.maximum(self._variance, 0.0))

    @property
    def mean_drop(self) -> np.ndarray:
        return self.vdd - self._mean

    @property
    def std_drop(self) -> np.ndarray:
        return self.std_voltage

    def drop_samples(self, node: int, time_index: Optional[int] = None) -> np.ndarray:
        """Recorded per-sample drops of a stored node (all times or one index)."""
        if node not in self.node_drop_samples:
            raise AnalysisError(
                f"node {node} was not in store_nodes when the sweep was run"
            )
        samples = self.node_drop_samples[node]
        return samples if time_index is None else samples[:, time_index]


@dataclass(frozen=True)
class MonteCarloDCResult:
    """Statistics of a Monte Carlo DC sweep."""

    mean_voltage: np.ndarray
    variance: np.ndarray
    num_samples: int
    vdd: float
    wall_time: Optional[float] = None

    @property
    def std_voltage(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.variance, 0.0))

    @property
    def mean_drop(self) -> np.ndarray:
        return self.vdd - self.mean_voltage

    @property
    def std_drop(self) -> np.ndarray:
        return self.std_voltage


def _draw_samples(system: StochasticSystem, config: MonteCarloConfig) -> np.ndarray:
    sampler = GermSampler(system, seed=config.seed)
    if config.antithetic:
        return sampler.sample_antithetic(config.num_samples)
    return sampler.sample(config.num_samples)


def run_monte_carlo_transient(
    system: StochasticSystem, config: MonteCarloConfig
) -> MonteCarloTransientResult:
    """Monte Carlo transient sweep over the process-variation space."""
    started = time.perf_counter()
    germs = _draw_samples(system, config)
    times = config.transient.times()

    moments = RunningMoments()
    stored: Dict[int, list] = {node: [] for node in config.store_nodes}

    for xi in germs:
        conductance, capacitance = system.realize_matrices(xi)
        rhs = system.realize_rhs(xi)
        result = run_transient(
            conductance,
            capacitance,
            rhs,
            config.transient,
            vdd=system.vdd,
            store=True,
        )
        moments.update(result.voltages)
        for node in config.store_nodes:
            stored[node].append(system.vdd - result.voltages[:, node])

    node_drop_samples = {
        node: np.vstack(waveforms) for node, waveforms in stored.items()
    }
    elapsed = time.perf_counter() - started
    return MonteCarloTransientResult(
        times=times,
        mean_voltage=moments.mean,
        variance=moments.variance(ddof=1),
        num_samples=germs.shape[0],
        vdd=system.vdd,
        node_names=system.node_names,
        node_drop_samples=node_drop_samples,
        wall_time=elapsed,
    )


def run_monte_carlo_dc(
    system: StochasticSystem,
    num_samples: int = 1000,
    t: float = 0.0,
    seed: int = 0,
    solver: str = "direct",
) -> MonteCarloDCResult:
    """Monte Carlo DC sweep (steady-state IR drop under variation)."""
    if num_samples < 2:
        raise AnalysisError("Monte Carlo needs at least 2 samples")
    started = time.perf_counter()
    sampler = GermSampler(system, seed=seed)
    germs = sampler.sample(num_samples)
    moments = RunningMoments()
    for xi in germs:
        conductance, _ = system.realize_matrices(xi)
        voltages = solve_dc(conductance, system.excitation.sample(t, xi), solver=solver)
        moments.update(voltages)
    elapsed = time.perf_counter() - started
    return MonteCarloDCResult(
        mean_voltage=moments.mean,
        variance=moments.variance(ddof=1),
        num_samples=num_samples,
        vdd=system.vdd,
        wall_time=elapsed,
    )
