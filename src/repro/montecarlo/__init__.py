"""Monte Carlo baseline engine and streaming statistics."""

from .engine import (
    MonteCarloConfig,
    MonteCarloDCResult,
    MonteCarloTransientResult,
    run_monte_carlo_dc,
    run_monte_carlo_transient,
)
from .sampler import GermSampler
from .statistics import RunningMoments

__all__ = [
    "MonteCarloConfig",
    "MonteCarloDCResult",
    "MonteCarloTransientResult",
    "run_monte_carlo_dc",
    "run_monte_carlo_transient",
    "GermSampler",
    "RunningMoments",
]
