"""Time-domain waveforms used as excitations of the power grid.

Functional blocks are modelled (as in the paper) as *known* transient current
sources.  The classes here provide the waveform shapes used by the synthetic
grid generator and by the transient simulator:

* :class:`Constant` -- a DC value.
* :class:`PiecewiseLinear` -- SPICE-style PWL source.
* :class:`PeriodicPulse` -- trapezoidal periodic pulse (SPICE ``PULSE``).
* :class:`ClockedActivity` -- clock-synchronised triangular current pulses
  whose per-cycle amplitude follows a per-cycle activity factor, mimicking the
  current signatures obtained from logic simulation of functional blocks.
* :class:`Scaled` / :class:`Summed` -- composition helpers.

All waveforms are callables mapping a scalar or ``numpy`` array of times to
values of the same shape.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "Waveform",
    "Constant",
    "PiecewiseLinear",
    "PeriodicPulse",
    "ClockedActivity",
    "Scaled",
    "Summed",
    "as_waveform",
]


class Waveform(abc.ABC):
    """Abstract time-domain waveform ``w(t)``."""

    @abc.abstractmethod
    def __call__(self, t):
        """Evaluate the waveform at time(s) ``t`` (scalar or array)."""

    def scaled(self, factor: float) -> "Waveform":
        """Return this waveform multiplied by ``factor``."""
        return Scaled(self, float(factor))

    def __mul__(self, factor: float) -> "Waveform":
        return self.scaled(factor)

    __rmul__ = __mul__

    def __add__(self, other: "Waveform") -> "Waveform":
        return Summed((self, as_waveform(other)))

    def max_abs(self, t_end: float, n_samples: int = 2048) -> float:
        """Return the maximum absolute value over ``[0, t_end]`` by sampling."""
        t = np.linspace(0.0, float(t_end), int(n_samples))
        return float(np.max(np.abs(self(t))))


def as_waveform(value) -> Waveform:
    """Coerce a number or waveform into a :class:`Waveform` instance."""
    if isinstance(value, Waveform):
        return value
    return Constant(float(value))


@dataclass(frozen=True)
class Constant(Waveform):
    """A constant (DC) waveform."""

    value: float

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        out = np.full_like(t, self.value, dtype=float)
        return out if out.ndim else float(out)


@dataclass(frozen=True)
class Scaled(Waveform):
    """A waveform multiplied by a constant factor."""

    base: Waveform
    factor: float

    def __call__(self, t):
        return self.factor * np.asarray(self.base(t), dtype=float)


@dataclass(frozen=True)
class Summed(Waveform):
    """Point-wise sum of several waveforms."""

    parts: tuple

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        total = np.zeros_like(t, dtype=float)
        for part in self.parts:
            total = total + np.asarray(part(t), dtype=float)
        return total if total.ndim else float(total)


class PiecewiseLinear(Waveform):
    """SPICE-style piecewise-linear waveform.

    Values are held constant before the first and after the last breakpoint.
    """

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or values.ndim != 1 or times.size != values.size:
            raise ValueError("times and values must be 1-D sequences of equal length")
        if times.size < 2:
            raise ValueError("a PWL waveform needs at least two breakpoints")
        if np.any(np.diff(times) <= 0):
            raise ValueError("PWL breakpoint times must be strictly increasing")
        self.times = times
        self.values = values

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        out = np.interp(t, self.times, self.values)
        return out if out.ndim else float(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PiecewiseLinear(n_points={self.times.size})"


@dataclass(frozen=True)
class PeriodicPulse(Waveform):
    """Trapezoidal periodic pulse, equivalent to a SPICE ``PULSE`` source.

    Parameters mirror SPICE: the waveform sits at ``low``, rises linearly to
    ``high`` over ``rise``, stays for ``width``, falls over ``fall``, and
    repeats every ``period`` seconds after an initial ``delay``.
    """

    low: float
    high: float
    delay: float
    rise: float
    fall: float
    width: float
    period: float

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("period must be positive")
        if min(self.rise, self.fall, self.width) < 0:
            raise ValueError("rise, fall and width must be non-negative")
        if self.rise + self.width + self.fall > self.period:
            raise ValueError("rise + width + fall must fit inside one period")

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        tau = np.mod(t - self.delay, self.period)
        tau = np.where(t < self.delay, -1.0, tau)

        out = np.full_like(tau, self.low, dtype=float)
        rise_end = self.rise
        width_end = self.rise + self.width
        fall_end = self.rise + self.width + self.fall

        rising = (tau >= 0) & (tau < rise_end)
        if self.rise > 0:
            out = np.where(rising, self.low + (self.high - self.low) * tau / self.rise, out)
        else:
            out = np.where(rising, self.high, out)
        out = np.where((tau >= rise_end) & (tau < width_end), self.high, out)
        falling = (tau >= width_end) & (tau < fall_end)
        if self.fall > 0:
            out = np.where(
                falling,
                self.high - (self.high - self.low) * (tau - width_end) / self.fall,
                out,
            )
        return out if out.ndim else float(out)


@dataclass(frozen=True)
class ClockedActivity(Waveform):
    """Clock-synchronised triangular current pulses with per-cycle activity.

    Each clock cycle ``k`` produces a triangular current pulse of peak
    ``peak * activity[k]`` that starts at the cycle boundary, rises for
    ``rise_fraction`` of the cycle and decays back to zero by
    ``duty_fraction`` of the cycle.  This is the shape commonly used to mimic
    the switching-current signature of a logic block: a sharp draw right
    after the clock edge followed by a decay.
    """

    period: float
    peak: float
    activity: tuple = field(default=(1.0,))
    rise_fraction: float = 0.2
    duty_fraction: float = 0.6

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not (0 < self.rise_fraction < self.duty_fraction <= 1.0):
            raise ValueError("need 0 < rise_fraction < duty_fraction <= 1")
        if len(self.activity) == 0:
            raise ValueError("activity must contain at least one factor")

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        cycle = np.floor_divide(t, self.period).astype(int)
        cycle = np.clip(cycle, 0, None)
        activity = np.asarray(self.activity, dtype=float)
        amp = self.peak * activity[np.mod(cycle, activity.size)]

        tau = np.mod(t, self.period) / self.period
        rise = self.rise_fraction
        duty = self.duty_fraction
        shape = np.zeros_like(tau)
        rising = tau < rise
        shape = np.where(rising, tau / rise, shape)
        decaying = (tau >= rise) & (tau < duty)
        shape = np.where(decaying, 1.0 - (tau - rise) / (duty - rise), shape)
        out = np.where(t < 0, 0.0, amp * shape)
        return out if out.ndim else float(out)
