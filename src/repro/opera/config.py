"""Configuration of an OPERA stochastic analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import AnalysisError
from ..sim.transient import TransientConfig

__all__ = ["OperaConfig"]


@dataclass(frozen=True)
class OperaConfig:
    """Settings of a stochastic (OPERA) transient analysis.

    Attributes
    ----------
    transient:
        Time axis, step size, integration method and linear solver of the
        underlying fixed-step integrator.
    order:
        Total order ``p`` of the chaos expansion.  The paper finds order 2
        or 3 sufficient for realistic variation magnitudes.
    solver:
        Linear solver for the augmented system (``"direct"``, ``"cg"`` or
        ``"ilu-cg"``); defaults to the transient config's solver.
    store_coefficients:
        Keep the full chaos coefficients at every time step (needed for
        distributions / Figures 1-2).  When false only mean and variance are
        retained, which saves memory on very large grids.
    force_coupled:
        Assemble and solve the full augmented system even when the grid
        matrices are deterministic (used to cross-check the decoupled
        special-case path).
    """

    transient: TransientConfig
    order: int = 2
    solver: Optional[str] = None
    store_coefficients: bool = True
    force_coupled: bool = False

    def __post_init__(self):
        if self.order < 0:
            raise AnalysisError("expansion order must be non-negative")

    @property
    def effective_solver(self) -> str:
        return self.solver if self.solver is not None else self.transient.solver
