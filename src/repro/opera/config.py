"""Configuration of an OPERA stochastic analysis."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from ..errors import AnalysisError
from ..sim.transient import TransientConfig

__all__ = ["OperaConfig"]


@dataclass(frozen=True)
class OperaConfig:
    """Settings of a stochastic (OPERA) transient analysis.

    Attributes
    ----------
    transient:
        Time axis, step size, integration method and linear solver of the
        underlying fixed-step integrator.
    order:
        Total order ``p`` of the chaos expansion.  The paper finds order 2
        or 3 sufficient for realistic variation magnitudes.
    solver:
        Linear solver for the augmented system (any registered backend,
        e.g. ``"direct"``, ``"cg"``, ``"ilu-cg"``, ``"mean-block-cg"``);
        defaults to the transient config's solver.
    scheme:
        Stepping-scheme spec for the augmented transient (any registered
        scheme, e.g. ``"trapezoidal"``, ``"backward-euler"``,
        ``"theta:0.75"``); defaults to the transient config's method.
    assemble:
        Representation of the augmented Galerkin matrices: ``"explicit"``
        materialises the Kronecker-sum CSR, ``"lazy"`` keeps it as a
        matrix-free :class:`~repro.linalg.KronSumOperator`, and ``"auto"``
        (default) picks lazily whenever the effective solver backend
        declares it consumes operators (``mean-block-cg``, ``cg``, ...).
    solver_options:
        Extra keyword arguments for the solver factory (``rtol``,
        ``maxiter``, ...).
    store_coefficients:
        Keep the full chaos coefficients at every time step (needed for
        distributions / Figures 1-2).  When false only mean and variance are
        retained, which saves memory on very large grids.
    force_coupled:
        Assemble and solve the full augmented system even when the grid
        matrices are deterministic (used to cross-check the decoupled
        special-case path).
    """

    transient: TransientConfig
    order: int = 2
    solver: Optional[str] = None
    scheme: Optional[str] = None
    assemble: str = "auto"
    solver_options: Optional[Mapping] = None
    store_coefficients: bool = True
    force_coupled: bool = False

    def __post_init__(self):
        if self.order < 0:
            raise AnalysisError("expansion order must be non-negative")
        if self.assemble not in ("auto", "explicit", "lazy"):
            raise AnalysisError(
                "assemble must be 'auto', 'explicit' or 'lazy'; "
                f"got {self.assemble!r}"
            )
        if self.scheme is not None:
            from ..stepping import resolve_scheme

            resolve_scheme(self.scheme)  # raises SchemeError with a listing

    @property
    def effective_solver(self) -> str:
        return self.solver if self.solver is not None else self.transient.solver

    @property
    def effective_transient(self) -> TransientConfig:
        """The transient config with the ``solver``/``scheme`` overrides folded in."""
        transient = self.transient
        if self.solver is not None and self.solver != transient.solver:
            transient = replace(transient, solver=self.solver)
        if self.scheme is not None and self.scheme != transient.method:
            transient = replace(transient, method=self.scheme)
        return transient

    @property
    def effective_assemble(self) -> str:
        """The resolved assembly mode (``"explicit"`` or ``"lazy"``).

        ``"auto"`` resolves to lazy exactly when the effective solver's
        registered factory declares ``accepts_operator`` -- i.e. when the
        backend can exploit the matrix-free representation.
        """
        if self.assemble != "auto":
            return self.assemble
        from ..sim.linear import solver_accepts_operator

        return "lazy" if solver_accepts_operator(self.effective_solver) else "explicit"
