"""OPERA: Orthogonal Polynomial Expansions for Response Analysis."""

from .config import OperaConfig
from .engine import build_basis, build_galerkin_system, run_opera_dc, run_opera_transient
from .report import NodeSummary, OperaReport, summarize
from .special_case import run_decoupled_transient

__all__ = [
    "OperaConfig",
    "build_basis",
    "build_galerkin_system",
    "run_opera_dc",
    "run_opera_transient",
    "NodeSummary",
    "OperaReport",
    "summarize",
    "run_decoupled_transient",
]
