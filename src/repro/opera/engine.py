"""The OPERA stochastic analysis engine.

This module turns a :class:`~repro.variation.model.StochasticSystem` into the
stochastic voltage response of the grid:

1. build the orthonormal chaos basis matched to the germ distributions
   (Hermite for Gaussian germs, per the Askey scheme);
2. assemble the augmented Galerkin system ``(G~ + s C~) a(s) = U~(s)``
   (Eq. (19) of the paper);
3. integrate it with the same fixed-step scheme as the deterministic
   simulator (one factorisation, repeated solves);
4. return the chaos coefficients of every node voltage at every time point,
   from which means, variances, higher moments and densities follow
   analytically.

When the grid matrices are deterministic (only the excitation varies), the
engine automatically falls back to the decoupled special case of
Section 5.1, which reuses a single factorisation of the nominal matrix.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Mapping, Optional

import numpy as np
import scipy.sparse as sp

from ..chaos.basis import PolynomialChaosBasis
from ..errors import AnalysisError
from ..chaos.galerkin import (
    GalerkinSystem,
    assemble_augmented_matrix,
    assemble_augmented_operator,
    assemble_augmented_rhs,
)
from ..chaos.response import StochasticField, StochasticTransientResult
from ..sim.linear import make_solver, solver_accepts_operator
from ..stepping import GalerkinSystemAdapter, StepLoop
from ..telemetry import current_telemetry
from ..variation.model import StochasticSystem
from .config import OperaConfig
from .special_case import run_decoupled_transient

__all__ = ["build_basis", "build_galerkin_system", "run_opera_dc", "run_opera_transient"]


def build_basis(system: StochasticSystem, order: int) -> PolynomialChaosBasis:
    """Chaos basis matched to the system's germ variables."""
    return PolynomialChaosBasis(
        families=system.variable_families(),
        order=order,
        num_vars=system.num_variables,
    )


def _matrix_coefficients(
    basis: PolynomialChaosBasis,
    nominal: sp.spmatrix,
    sensitivities: Mapping[int, sp.spmatrix],
) -> Dict[int, sp.spmatrix]:
    """Map an affine parameter model onto chaos-basis coefficient matrices.

    The nominal matrix is the coefficient of the constant basis function; a
    first-order sensitivity to germ ``k`` is the coefficient of that germ's
    degree-one basis function (for Gaussian germs ``psi = xi`` exactly).
    """
    coefficients: Dict[int, sp.spmatrix] = {0: nominal}
    if basis.order >= 1:
        for var, matrix in sensitivities.items():
            coefficients[basis.first_order_index(var)] = matrix
    return coefficients


def build_galerkin_system(
    system: StochasticSystem,
    basis: PolynomialChaosBasis,
    assemble: str = "explicit",
) -> GalerkinSystem:
    """Assemble the augmented (Galerkin-projected) MNA system.

    ``assemble="lazy"`` builds matrix-free Kronecker-sum operators instead
    of explicit CSR matrices; either representation stays reachable from
    the returned system (see :class:`~repro.chaos.galerkin.GalerkinSystem`).
    """
    return GalerkinSystem(
        basis=basis,
        conductance_coefficients=_matrix_coefficients(
            basis, system.g_nominal, system.g_sensitivities
        ),
        capacitance_coefficients=_matrix_coefficients(
            basis, system.c_nominal, system.c_sensitivities
        ),
        excitation_coefficients=lambda t: system.excitation.pc_coefficients(basis, t),
        num_nodes=system.num_nodes,
        assemble=assemble,
    )


def run_opera_dc(
    system: StochasticSystem,
    order: int = 2,
    t: float = 0.0,
    solver: str = "direct",
    basis: Optional[PolynomialChaosBasis] = None,
    solver_factory: Optional[Callable] = None,
    assemble: str = "auto",
    solver_options: Optional[Mapping] = None,
) -> StochasticField:
    """Stochastic DC analysis: chaos expansion of the steady-state voltages.

    ``assemble`` selects the augmented-matrix representation (``"auto"``
    goes matrix-free exactly when the solver backend consumes operators,
    e.g. ``solver="mean-block-cg"``); ``solver_options`` is forwarded to
    the solver factory.
    """
    if basis is None:
        basis = build_basis(system, order)
    factory = solver_factory if solver_factory is not None else make_solver
    if assemble not in ("auto", "explicit", "lazy"):
        raise AnalysisError(
            f"assemble must be 'auto', 'explicit' or 'lazy'; got {assemble!r}"
        )
    if assemble == "auto":
        assemble = "lazy" if solver_accepts_operator(solver) else "explicit"
    conductance_coefficients = _matrix_coefficients(
        basis, system.g_nominal, system.g_sensitivities
    )
    solver_options = dict(solver_options or {})
    with current_telemetry().span("opera.assemble", phase="assemble", order=basis.order):
        if assemble == "lazy":
            augmented_conductance = assemble_augmented_operator(basis, conductance_coefficients)
        else:
            augmented_conductance = assemble_augmented_matrix(basis, conductance_coefficients)
            if solver in ("mean-block-cg", "degree-block-cg"):
                solver_options.setdefault("num_nodes", system.num_nodes)
    if solver == "degree-block-cg":
        solver_options.setdefault("degrees", tuple(int(d) for d in basis.degrees))
    rhs = assemble_augmented_rhs(
        basis, system.excitation.pc_coefficients(basis, t), system.num_nodes
    )
    solution = factory(augmented_conductance, method=solver, **solver_options).solve(rhs)
    coefficients = solution.reshape(basis.size, system.num_nodes)
    return StochasticField(basis, coefficients, vdd=system.vdd, node_names=system.node_names)


def run_opera_transient(
    system: StochasticSystem,
    config: OperaConfig,
    basis: Optional[PolynomialChaosBasis] = None,
    solver_factory: Optional[Callable] = None,
    galerkin: Optional[GalerkinSystem] = None,
) -> StochasticTransientResult:
    """Stochastic transient analysis of a power grid (the OPERA method).

    Returns the chaos coefficients of every node voltage at every time point
    (or mean/variance only, when ``config.store_coefficients`` is false).
    ``basis``, ``solver_factory`` and ``galerkin`` let a caching caller (the
    :class:`repro.api.Analysis` facade) supply precomputed intermediates.
    """
    if basis is None:
        basis = build_basis(system, config.order)

    if not system.has_matrix_variation and not config.force_coupled:
        return run_decoupled_transient(system, config, basis=basis, solver_factory=solver_factory)

    started = time.perf_counter()
    assemble = config.effective_assemble
    if galerkin is None:
        with current_telemetry().span(
            "opera.assemble", phase="assemble", order=basis.order
        ):
            galerkin = build_galerkin_system(system, basis, assemble=assemble)
    transient = config.effective_transient
    times = transient.times()
    num_nodes = system.num_nodes

    store_full = config.store_coefficients
    if store_full:
        coefficients = np.zeros((times.size, basis.size, num_nodes))
    else:
        mean = np.zeros((times.size, num_nodes))
        variance = np.zeros((times.size, num_nodes))

    def collect(step: int, t: float, stacked: np.ndarray) -> None:
        blocks = stacked.reshape(basis.size, num_nodes)
        if store_full:
            coefficients[step] = blocks
        else:
            mean[step] = blocks[0]
            if basis.size > 1:
                variance[step] = np.sum(blocks[1:] ** 2, axis=0)

    # The operator-aware adapter binds the representation, the solver (with
    # block-structure options threaded automatically) and the precomputed
    # rhs_series; the shared StepLoop does the marching.
    adapter = GalerkinSystemAdapter(
        galerkin,
        assemble=assemble,
        solver=transient.solver,
        solver_factory=solver_factory,
        solver_options=config.solver_options,
    )
    StepLoop(adapter, transient.scheme, times, transient.dt).run(
        callback=collect, store=False
    )
    elapsed = time.perf_counter() - started

    if store_full:
        return StochasticTransientResult(
            times=times,
            basis=basis,
            vdd=system.vdd,
            coefficients=coefficients,
            node_names=system.node_names,
            wall_time=elapsed,
        )
    return StochasticTransientResult(
        times=times,
        basis=basis,
        vdd=system.vdd,
        mean=mean,
        variance=variance,
        node_names=system.node_names,
        wall_time=elapsed,
    )
