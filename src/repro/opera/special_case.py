"""Decoupled OPERA analysis for right-hand-side-only variation (Section 5.1).

When the grid matrices ``G`` and ``C`` are deterministic and only the
excitation ``U(t, xi)`` is stochastic (e.g. lognormal leakage currents from
threshold-voltage variation), the Galerkin system block-diagonalises: the
chaos coefficients of the response satisfy *independent* deterministic
equations

``(G + sC) a_j(s) = U_j(s)``    for  ``j = 0 .. N``

(Eq. (27) of the paper).  A single factorisation of the stepping matrix is
therefore shared by every coefficient and every time step, which is what
makes this special case almost as cheap as a single nominal simulation.

The marching runs on the shared :mod:`repro.stepping` core: the active
coefficients are stacked into one state vector behind a
:class:`~repro.stepping.DecoupledSystemAdapter` (block-diagonal step matrix
``I_J (x) (aG + bC/h)``), so each step is a single multi-RHS solve of the
one ``n x n`` factorisation and any registered scheme applies.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from ..chaos.basis import PolynomialChaosBasis
from ..chaos.response import StochasticTransientResult
from ..errors import AnalysisError
from ..stepping import DecoupledSystemAdapter, StackedRhsSeries, StepLoop
from ..variation.model import StochasticSystem
from .config import OperaConfig

__all__ = ["run_decoupled_transient"]


def run_decoupled_transient(
    system: StochasticSystem,
    config: OperaConfig,
    basis: Optional[PolynomialChaosBasis] = None,
    solver_factory: Optional[Callable] = None,
) -> StochasticTransientResult:
    """Stochastic transient analysis with deterministic G and C.

    Raises :class:`AnalysisError` if the system actually has matrix
    variation; use the general engine in that case.  ``solver_factory``
    optionally supplies (possibly cached) linear solvers in place of
    :func:`~repro.sim.linear.make_solver`.
    """
    if system.has_matrix_variation:
        raise AnalysisError(
            "the decoupled special case requires deterministic G and C; "
            "this system has matrix variation"
        )
    if basis is None:
        basis = PolynomialChaosBasis(
            families=system.variable_families(),
            order=config.order,
            num_vars=system.num_variables,
        )

    started = time.perf_counter()
    transient = config.effective_transient
    times = transient.times()
    n = system.num_nodes

    conductance = system.g_nominal.tocsr()
    capacitance = system.c_nominal.tocsr()

    # The set of active chaos coefficients is fixed by the excitation structure.
    initial_coefficients = system.excitation.pc_coefficients(basis, float(times[0]))
    active = sorted(initial_coefficients.keys())

    coefficients = np.zeros((times.size, basis.size, n))
    if active:
        series = StackedRhsSeries.from_coefficients(
            lambda t: system.excitation.pc_coefficients(basis, t),
            times,
            active,
            n,
        )
        adapter = DecoupledSystemAdapter(
            conductance,
            capacitance,
            tracks=len(active),
            rhs_series=series,
            solver=config.effective_solver,
            solver_factory=solver_factory,
        )
        active_rows = np.asarray(active, dtype=int)

        def scatter(step: int, t: float, stacked: np.ndarray) -> None:
            coefficients[step, active_rows] = stacked.reshape(len(active), n)

        StepLoop(adapter, transient.scheme, times, transient.dt).run(
            callback=scatter, store=False
        )

    elapsed = time.perf_counter() - started
    if config.store_coefficients:
        return StochasticTransientResult(
            times=times,
            basis=basis,
            vdd=system.vdd,
            coefficients=coefficients,
            node_names=system.node_names,
            wall_time=elapsed,
        )
    mean = coefficients[:, 0, :]
    variance = np.sum(coefficients[:, 1:, :] ** 2, axis=1)
    return StochasticTransientResult(
        times=times,
        basis=basis,
        vdd=system.vdd,
        mean=mean,
        variance=variance,
        node_names=system.node_names,
        wall_time=elapsed,
    )
