"""Decoupled OPERA analysis for right-hand-side-only variation (Section 5.1).

When the grid matrices ``G`` and ``C`` are deterministic and only the
excitation ``U(t, xi)`` is stochastic (e.g. lognormal leakage currents from
threshold-voltage variation), the Galerkin system block-diagonalises: the
chaos coefficients of the response satisfy *independent* deterministic
equations

``(G + sC) a_j(s) = U_j(s)``    for  ``j = 0 .. N``

(Eq. (27) of the paper).  A single LU factorisation of the stepping matrix is
therefore shared by every coefficient and every time step, which is what
makes this special case almost as cheap as a single nominal simulation.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

from ..chaos.basis import PolynomialChaosBasis
from ..chaos.response import StochasticTransientResult
from ..errors import AnalysisError
from ..sim.linear import make_solver
from ..variation.model import StochasticSystem
from .config import OperaConfig

__all__ = ["run_decoupled_transient"]


def run_decoupled_transient(
    system: StochasticSystem,
    config: OperaConfig,
    basis: Optional[PolynomialChaosBasis] = None,
    solver_factory: Optional[Callable] = None,
) -> StochasticTransientResult:
    """Stochastic transient analysis with deterministic G and C.

    Raises :class:`AnalysisError` if the system actually has matrix
    variation; use the general engine in that case.  ``solver_factory``
    optionally supplies (possibly cached) linear solvers in place of
    :func:`~repro.sim.linear.make_solver`.
    """
    if system.has_matrix_variation:
        raise AnalysisError(
            "the decoupled special case requires deterministic G and C; "
            "this system has matrix variation"
        )
    if basis is None:
        basis = PolynomialChaosBasis(
            families=system.variable_families(),
            order=config.order,
            num_vars=system.num_variables,
        )

    started = time.perf_counter()
    transient = config.transient
    times = transient.times()
    h = transient.dt
    n = system.num_nodes

    conductance = system.g_nominal.tocsr()
    capacitance = system.c_nominal.tocsr()
    scaled_capacitance = capacitance / h

    if transient.method == "backward-euler":
        lhs = conductance + scaled_capacitance
    else:  # trapezoidal
        lhs = conductance + 2.0 * scaled_capacitance

    factory = solver_factory if solver_factory is not None else make_solver
    solver_name = config.effective_solver
    dc_solver = factory(conductance, method=solver_name)
    step_solver = factory(lhs, method=solver_name)

    # The set of active chaos coefficients is fixed by the excitation structure.
    initial_coefficients = system.excitation.pc_coefficients(basis, float(times[0]))
    active = sorted(initial_coefficients.keys())

    coefficients = np.zeros((times.size, basis.size, n))
    for j in active:
        coefficients[0, j] = dc_solver.solve(np.asarray(initial_coefficients[j], dtype=float))

    previous_rhs: Dict[int, np.ndarray] = {
        j: np.asarray(initial_coefficients[j], dtype=float) for j in active
    }

    for k in range(1, times.size):
        t = float(times[k])
        current = system.excitation.pc_coefficients(basis, t)
        for j in active:
            u_now = np.asarray(current.get(j, np.zeros(n)), dtype=float)
            a_prev = coefficients[k - 1, j]
            if transient.method == "backward-euler":
                b = u_now + scaled_capacitance @ a_prev
            else:
                b = (
                    u_now
                    + previous_rhs[j]
                    + (2.0 * scaled_capacitance) @ a_prev
                    - conductance @ a_prev
                )
            coefficients[k, j] = step_solver.solve(b)
            previous_rhs[j] = u_now

    elapsed = time.perf_counter() - started
    if config.store_coefficients:
        return StochasticTransientResult(
            times=times,
            basis=basis,
            vdd=system.vdd,
            coefficients=coefficients,
            node_names=system.node_names,
            wall_time=elapsed,
        )
    mean = coefficients[:, 0, :]
    variance = np.sum(coefficients[:, 1:, :] ** 2, axis=1)
    return StochasticTransientResult(
        times=times,
        basis=basis,
        vdd=system.vdd,
        mean=mean,
        variance=variance,
        node_names=system.node_names,
        wall_time=elapsed,
    )
