"""Decoupled OPERA analysis for right-hand-side-only variation (Section 5.1).

When the grid matrices ``G`` and ``C`` are deterministic and only the
excitation ``U(t, xi)`` is stochastic (e.g. lognormal leakage currents from
threshold-voltage variation), the Galerkin system block-diagonalises: the
chaos coefficients of the response satisfy *independent* deterministic
equations

``(G + sC) a_j(s) = U_j(s)``    for  ``j = 0 .. N``

(Eq. (27) of the paper).  A single factorisation of the stepping matrix is
therefore shared by every coefficient and every time step, which is what
makes this special case almost as cheap as a single nominal simulation.

The marching runs on the shared :mod:`repro.stepping` core: the active
coefficients are stacked into one state vector behind a
:class:`~repro.stepping.DecoupledSystemAdapter` (block-diagonal step matrix
``I_J (x) (aG + bC/h)``), so each step is a single multi-RHS solve of the
one ``n x n`` factorisation and any registered scheme applies.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..chaos.basis import PolynomialChaosBasis
from ..chaos.response import StochasticTransientResult
from ..errors import AnalysisError
from ..stepping import DecoupledSystemAdapter, StackedRhsSeries, StepLoop
from ..telemetry import current_telemetry
from ..variation.model import StochasticSystem
from .config import OperaConfig

__all__ = ["run_decoupled_transient", "run_decoupled_transient_stacked"]


def run_decoupled_transient(
    system: StochasticSystem,
    config: OperaConfig,
    basis: Optional[PolynomialChaosBasis] = None,
    solver_factory: Optional[Callable] = None,
) -> StochasticTransientResult:
    """Stochastic transient analysis with deterministic G and C.

    Raises :class:`AnalysisError` if the system actually has matrix
    variation; use the general engine in that case.  ``solver_factory``
    optionally supplies (possibly cached) linear solvers in place of
    :func:`~repro.sim.linear.make_solver`.
    """
    if system.has_matrix_variation:
        raise AnalysisError(
            "the decoupled special case requires deterministic G and C; "
            "this system has matrix variation"
        )
    if basis is None:
        basis = PolynomialChaosBasis(
            families=system.variable_families(),
            order=config.order,
            num_vars=system.num_variables,
        )

    started = time.perf_counter()
    transient = config.effective_transient
    times = transient.times()
    n = system.num_nodes

    conductance = system.g_nominal.tocsr()
    capacitance = system.c_nominal.tocsr()

    # The set of active chaos coefficients is fixed by the excitation structure.
    initial_coefficients = system.excitation.pc_coefficients(basis, float(times[0]))
    active = sorted(initial_coefficients.keys())

    coefficients = np.zeros((times.size, basis.size, n))
    if active:
        series = StackedRhsSeries.from_coefficients(
            lambda t: system.excitation.pc_coefficients(basis, t),
            times,
            active,
            n,
        )
        adapter = DecoupledSystemAdapter(
            conductance,
            capacitance,
            tracks=len(active),
            rhs_series=series,
            solver=config.effective_solver,
            solver_factory=solver_factory,
        )
        active_rows = np.asarray(active, dtype=int)

        def scatter(step: int, t: float, stacked: np.ndarray) -> None:
            coefficients[step, active_rows] = stacked.reshape(len(active), n)

        StepLoop(adapter, transient.scheme, times, transient.dt).run(
            callback=scatter, store=False
        )

    elapsed = time.perf_counter() - started
    if config.store_coefficients:
        return StochasticTransientResult(
            times=times,
            basis=basis,
            vdd=system.vdd,
            coefficients=coefficients,
            node_names=system.node_names,
            wall_time=elapsed,
        )
    mean = coefficients[:, 0, :]
    variance = np.sum(coefficients[:, 1:, :] ** 2, axis=1)
    return StochasticTransientResult(
        times=times,
        basis=basis,
        vdd=system.vdd,
        mean=mean,
        variance=variance,
        node_names=system.node_names,
        wall_time=elapsed,
    )


def run_decoupled_transient_stacked(
    systems: Sequence[StochasticSystem],
    config: OperaConfig,
    bases: Sequence[PolynomialChaosBasis],
    solver_factory: Optional[Callable] = None,
) -> List[StochasticTransientResult]:
    """One multi-RHS march for several RHS-only systems on one topology.

    The batched counterpart of :func:`run_decoupled_transient`: every
    system (one per sweep case/corner) shares the deterministic nominal
    ``G`` and ``C``, so their active chaos tracks are concatenated into a
    single :class:`~repro.stepping.DecoupledSystemAdapter` state vector and
    the whole stack advances through one :class:`~repro.stepping.StepLoop`
    run -- one factorisation, one multi-RHS solve per step, for *all*
    cases.  Because the direct multi-RHS solve and the stacked matvecs are
    column-wise operations, each case's coefficient trajectory is bitwise
    identical to its own :func:`run_decoupled_transient` run.

    Results are returned in input order; per-case wall times apportion the
    shared march by track count.  Raises :class:`AnalysisError` when a
    system has matrix variation or the nominal matrices do not match.
    """
    if not systems:
        return []
    if len(bases) != len(systems):
        raise AnalysisError("need one chaos basis per stacked system")
    reference = systems[0]
    for system in systems:
        if system.has_matrix_variation:
            raise AnalysisError(
                "the decoupled special case requires deterministic G and C; "
                "this system has matrix variation"
            )
        if system.num_nodes != reference.num_nodes:
            raise AnalysisError("stacked systems must share one grid topology")

    started = time.perf_counter()
    transient = config.effective_transient
    times = transient.times()
    n = reference.num_nodes
    conductance = reference.g_nominal.tocsr()
    capacitance = reference.c_nominal.tocsr()

    actives: List[np.ndarray] = []
    tables: List[np.ndarray] = []
    spans: List[Optional[tuple]] = []
    offset = 0
    for system, basis in zip(systems, bases):
        initial = system.excitation.pc_coefficients(basis, float(times[0]))
        active = sorted(initial.keys())
        actives.append(np.asarray(active, dtype=int))
        if active:
            series = StackedRhsSeries.from_coefficients(
                lambda t, s=system, b=basis: s.excitation.pc_coefficients(b, t),
                times,
                active,
                n,
            )
            tables.append(series._waveforms)
            spans.append((offset, offset + len(active)))
            offset += len(active)
        else:
            spans.append(None)

    coefficients = [np.zeros((times.size, basis.size, n)) for basis in bases]
    total_tracks = offset
    if total_tracks:
        combined = StackedRhsSeries(times, np.concatenate(tables, axis=1))
        adapter = DecoupledSystemAdapter(
            conductance,
            capacitance,
            tracks=total_tracks,
            rhs_series=combined,
            solver=config.effective_solver,
            solver_factory=solver_factory,
            # One solve_many call per case, each with exactly the shape of
            # that case's own unbatched solve: SuperLU's multi-RHS back-
            # substitution is not bitwise invariant to the column count.
            track_spans=[span[1] - span[0] for span in spans if span is not None],
        )

        def scatter(step: int, t: float, stacked: np.ndarray) -> None:
            blocks = stacked.reshape(total_tracks, n)
            for index, span in enumerate(spans):
                if span is not None:
                    coefficients[index][step, actives[index]] = blocks[span[0] : span[1]]

        StepLoop(adapter, transient.scheme, times, transient.dt).run(callback=scatter, store=False)
        current_telemetry().count("batched_cases", len(systems))

    elapsed = time.perf_counter() - started
    results: List[StochasticTransientResult] = []
    for index, (system, basis) in enumerate(zip(systems, bases)):
        span = spans[index]
        share = (span[1] - span[0]) / total_tracks if span is not None and total_tracks else 0.0
        wall = elapsed * share
        if config.store_coefficients:
            results.append(
                StochasticTransientResult(
                    times=times,
                    basis=basis,
                    vdd=system.vdd,
                    coefficients=coefficients[index],
                    node_names=system.node_names,
                    wall_time=wall,
                )
            )
        else:
            block = coefficients[index]
            results.append(
                StochasticTransientResult(
                    times=times,
                    basis=basis,
                    vdd=system.vdd,
                    mean=block[:, 0, :],
                    variance=np.sum(block[:, 1:, :] ** 2, axis=1),
                    node_names=system.node_names,
                    wall_time=wall,
                )
            )
    return results
