"""Designer-facing summaries of a stochastic power-grid analysis.

The quantity the paper highlights is the spread of the voltage drop around
its nominal value: across its industrial grids, the +/-3-sigma band averaged
about +/-35 % of the nominal drop, making variation-aware sign-off necessary.
:func:`summarize` produces that figure plus per-node worst-case statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..chaos.response import StochasticTransientResult
from ..errors import AnalysisError
from ..sim.results import TransientResult

__all__ = ["NodeSummary", "OperaReport", "summarize"]


@dataclass(frozen=True)
class NodeSummary:
    """Per-node voltage-drop statistics at the node's own peak-drop time."""

    node: int
    name: Optional[str]
    peak_mean_drop: float
    sigma_at_peak: float
    three_sigma_percent_of_nominal: float

    def __str__(self) -> str:
        label = self.name or f"node {self.node}"
        return (
            f"{label}: mean drop {1e3 * self.peak_mean_drop:.2f} mV, "
            f"sigma {1e3 * self.sigma_at_peak:.2f} mV, "
            f"+/-3sigma = +/-{self.three_sigma_percent_of_nominal:.1f}% of nominal"
        )


@dataclass(frozen=True)
class OperaReport:
    """Grid-level summary of a stochastic transient analysis."""

    vdd: float
    worst_node: NodeSummary
    average_three_sigma_percent: float
    peak_mean_drop_percent_vdd: float
    node_summaries: List[NodeSummary]

    def __str__(self) -> str:
        lines = [
            f"VDD = {self.vdd:.3f} V",
            f"worst node: {self.worst_node}",
            f"peak mean drop = {self.peak_mean_drop_percent_vdd:.2f}% of VDD",
            (
                "average +/-3sigma spread = "
                f"+/-{self.average_three_sigma_percent:.1f}% of the nominal drop"
            ),
        ]
        return "\n".join(lines)


def summarize(
    result: StochasticTransientResult,
    nominal: Optional[TransientResult] = None,
    top_k: int = 10,
    drop_floor_fraction: float = 0.10,
) -> OperaReport:
    """Summarise a stochastic transient result.

    Parameters
    ----------
    result:
        The OPERA analysis result.
    nominal:
        Optional deterministic (no-variation) transient used as the reference
        for the "percent of nominal drop" figures; when omitted the mean drop
        serves as the reference (the paper observes the two are nearly equal).
    top_k:
        Number of worst nodes to include in ``node_summaries``.
    drop_floor_fraction:
        Nodes whose peak drop is below this fraction of the grid's worst drop
        are excluded from the spread average, so that nodes with essentially
        no drop (e.g. right under a pad) do not distort the percentage.
    """
    mean_drop = result.mean_drop
    sigma = result.std_drop
    if nominal is not None:
        if nominal.voltages is None:
            raise AnalysisError("the nominal transient must be run with store=True")
        nominal_drop = nominal.drops
        if nominal_drop.shape != mean_drop.shape:
            raise AnalysisError("nominal result shape does not match the stochastic result")
    else:
        nominal_drop = mean_drop

    peak_steps = np.argmax(nominal_drop, axis=0)
    node_range = np.arange(result.num_nodes)
    peak_nominal = nominal_drop[peak_steps, node_range]
    sigma_at_peak = sigma[peak_steps, node_range]
    mean_at_peak = mean_drop[peak_steps, node_range]

    worst_drop = float(np.max(peak_nominal))
    if worst_drop <= 0:
        raise AnalysisError("the grid shows no voltage drop; nothing to report")
    significant = peak_nominal >= drop_floor_fraction * worst_drop

    with np.errstate(divide="ignore", invalid="ignore"):
        spread_percent = np.where(peak_nominal > 0, 100.0 * 3.0 * sigma_at_peak / peak_nominal, 0.0)
    average_spread = float(np.mean(spread_percent[significant]))

    def summary_for(node: int) -> NodeSummary:
        name = result.node_names[node] if result.node_names else None
        return NodeSummary(
            node=int(node),
            name=name,
            peak_mean_drop=float(mean_at_peak[node]),
            sigma_at_peak=float(sigma_at_peak[node]),
            three_sigma_percent_of_nominal=float(spread_percent[node]),
        )

    order = np.argsort(peak_nominal)[::-1]
    summaries = [summary_for(node) for node in order[:top_k]]
    worst = summaries[0]

    return OperaReport(
        vdd=result.vdd,
        worst_node=worst,
        average_three_sigma_percent=average_spread,
        peak_mean_drop_percent_vdd=100.0 * worst_drop / result.vdd,
        node_summaries=summaries,
    )
