"""Matrix-free structured linear algebra for the augmented Galerkin system.

The OPERA Galerkin projection produces matrices that are sums of Kronecker
products ``sum_m T_m (x) A_m`` (small triple-product factors ``T_m`` times
sparse grid matrices ``A_m``).  This package keeps that structure *lazy*:

* :class:`KronSumOperator` -- the lazy operator itself: ``matvec``/``matmat``
  via reshape + batched sparse-dense products, ``diagonal()``,
  ``mean_block()``, ``to_csr()`` fallback and scalar/additive composition
  (``G_op + C_op / h`` without ever assembling the kron);
* :class:`MeanBlockCGSolver` -- the ``mean-block-cg`` solver backend:
  conjugate gradients on the operator, preconditioned by one LU of the
  ``n x n`` nominal (mean) block applied to all ``P`` chaos blocks in a
  single 2-D solve (the ``I_P (x) M0^{-1}`` structure);
* :class:`DegreeBlockCGSolver` -- the ``degree-block-cg`` variant: the
  preconditioner is block-diagonal over contiguous chaos-degree bands,
  each band's exact sub-matrix factorised once (stronger than the mean
  block for wide germ vectors, at larger factorisation cost);
* :func:`kron_sum_csr` -- linear-time explicit assembly (single COO
  concatenation) shared by the operator's ``to_csr`` and the eager
  assembly path of :mod:`repro.chaos.galerkin`.

Importing this package registers the ``mean-block-cg`` and
``degree-block-cg`` backends with the solver registry; :mod:`repro.api`
imports it, so the backends are available everywhere a solver name is
accepted.
"""

from .operator import KronSumOperator, KronTerm, is_operator, kron_sum_csr
from .solvers import DegreeBlockCGSolver, MeanBlockCGSolver

__all__ = [
    "KronSumOperator",
    "KronTerm",
    "MeanBlockCGSolver",
    "DegreeBlockCGSolver",
    "kron_sum_csr",
    "is_operator",
]
