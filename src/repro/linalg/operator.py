"""Matrix-free Kronecker-sum operators.

The augmented Galerkin system of the OPERA method is a sum of Kronecker
products ``A~ = sum_m T_m (x) A_m`` where every ``T_m`` is a small
``P x P`` triple-product matrix (``P`` = chaos basis size) and every
``A_m`` is an ``n x n`` grid matrix (``n`` = node count).  Materialising
the kron explicitly costs ``sum_m nnz(T_m) * nnz(A_m)`` memory and makes
every operator application (and any factorisation) scale with that fill.

:class:`KronSumOperator` keeps the tensor structure lazy instead.  With the
stacked vector ``x`` viewed as the row-major matrix ``X`` of shape
``(P, n)`` (chaos block ``j`` in row ``j``), the identity

``(T (x) A) vec(X) = vec(T (X A^T))``

turns one application of the full operator into a handful of small
sparse-dense products: ``W_m = A_m X^T`` (an ``n x n`` sparse matrix times
an ``n x P`` dense block) followed by ``T_m W_m^T`` (a ``P x P`` sparse
matrix times a ``P x n`` dense block).  The cost is
``sum_m (nnz(A_m) P + nnz(T_m) n)`` -- linear in the grid fill -- and no
``P n x P n`` matrix ever exists.

The operator supports the compositions the integrators need (``a*Op1 +
b*Op2`` so the stepping operator ``G~ + C~/h`` is formed without assembly),
``diagonal()`` for Jacobi scaling, ``mean_block()`` for the
``I_P (x) M0^{-1}`` preconditioner of the ``mean-block-cg`` backend, and an
explicit :meth:`to_csr` fallback for direct solvers.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SolverError

__all__ = ["KronTerm", "KronSumOperator", "kron_sum_csr", "is_operator"]


def is_operator(obj) -> bool:
    """True for lazy operator objects (duck-typed, no import cycles).

    The solver registry and the transient integrator use this to tell a
    :class:`KronSumOperator` (or anything shaped like one) apart from an
    explicit ``scipy.sparse`` matrix: an operator exposes ``matvec`` *and*
    an explicit-assembly escape hatch ``to_csr``.
    """
    return callable(getattr(obj, "matvec", None)) and callable(getattr(obj, "to_csr", None))


class KronTerm:
    """One term ``alpha * (T (x) A)`` of a Kronecker sum.

    ``identity`` records that ``T`` is the identity, which lets
    :meth:`KronSumOperator.matvec` skip the (small) left factor entirely --
    the ``m = 0`` (mean) term of every Galerkin matrix has ``T_0 = I``.
    ``alpha`` is a scalar weight kept separate so that scaling an operator
    (``C~ / h``) copies no matrix data at all.
    """

    __slots__ = ("left", "right", "alpha", "identity")

    def __init__(self, left: sp.spmatrix, right: sp.spmatrix, alpha: float = 1.0):
        self.left = sp.csr_matrix(left)
        self.right = sp.csr_matrix(right)
        self.alpha = float(alpha)
        if self.left.shape[0] != self.left.shape[1]:
            raise SolverError("Kronecker left factors must be square")
        if self.right.shape[0] != self.right.shape[1]:
            raise SolverError("Kronecker right factors must be square")
        size = self.left.shape[0]
        identity = sp.identity(size, format="csr")
        delta = (self.left - identity).tocoo()
        self.identity = delta.nnz == 0 or bool(np.all(delta.data == 0.0))

    def scaled(self, factor: float) -> "KronTerm":
        term = KronTerm.__new__(KronTerm)
        term.left = self.left
        term.right = self.right
        term.alpha = self.alpha * float(factor)
        term.identity = self.identity
        return term


def _merge_terms(terms: Sequence[KronTerm]) -> List[KronTerm]:
    """Fold terms sharing a left factor into one (fewer products per apply).

    All identity-left terms collapse into a single term (this is what makes
    ``G~ + C~/h`` apply its combined mean block ``G_0 + C_0/h`` once), and
    terms whose left factors are the *same object* -- guaranteed for
    triple-product matrices by the per-basis cache in
    :mod:`repro.chaos.triples` -- merge likewise.
    """
    groups: dict = {}
    order: List = []
    for term in terms:
        key = "identity" if term.identity else id(term.left)
        if key not in groups:
            groups[key] = [term]
            order.append(key)
        else:
            groups[key].append(term)
    merged: List[KronTerm] = []
    for key in order:
        group = groups[key]
        if len(group) == 1:
            merged.append(group[0])
            continue
        right = group[0].alpha * group[0].right
        for term in group[1:]:
            right = right + term.alpha * term.right
        merged.append(KronTerm(group[0].left, right.tocsr(), 1.0))
    return merged


def kron_sum_csr(
    pairs: Iterable[Tuple[sp.spmatrix, sp.spmatrix]],
    weights: Optional[Sequence[float]] = None,
) -> sp.csr_matrix:
    """Assemble ``sum_m w_m kron(T_m, A_m)`` with one COO concatenation.

    Incrementally accumulating CSR sums (``total = total + term``) costs
    O(terms^2) merges; concatenating every term's COO triplets and letting
    a single ``tocsr()`` fold duplicates is linear in the total fill.
    """
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    data: List[np.ndarray] = []
    shape = None
    for index, (left, right) in enumerate(pairs):
        weight = 1.0 if weights is None else float(weights[index])
        term = sp.kron(left, right, format="coo")
        if shape is None:
            shape = term.shape
        elif term.shape != shape:
            raise SolverError("all Kronecker terms must share the same shape")
        rows.append(term.row)
        cols.append(term.col)
        data.append(weight * term.data if weight != 1.0 else term.data)
    if shape is None:
        raise SolverError("at least one Kronecker term is required")
    combined = sp.coo_matrix(
        (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
        shape=shape,
    )
    return combined.tocsr()


class KronSumOperator:
    """Lazy ``sum_m alpha_m (T_m (x) A_m)`` with matrix-free application.

    Parameters
    ----------
    terms:
        Either :class:`KronTerm` objects or ``(T, A)`` / ``(T, A, alpha)``
        tuples.  All ``T`` must share one shape ``(P, P)`` and all ``A``
        one shape ``(n, n)``.

    The operator behaves like a square matrix of shape ``(P*n, P*n)`` for
    ``@``, exposes ``matvec``/``matmat`` (with optional ``out=`` buffers so
    time-stepping loops allocate nothing per step), ``diagonal()``,
    ``mean_block()``, ``to_csr()`` and scalar/additive composition.
    """

    def __init__(self, terms: Sequence):
        built: List[KronTerm] = []
        for term in terms:
            if isinstance(term, KronTerm):
                built.append(term)
            else:
                built.append(KronTerm(*term))
        if not built:
            raise SolverError("KronSumOperator needs at least one term")
        left_shapes = {term.left.shape for term in built}
        right_shapes = {term.right.shape for term in built}
        if len(left_shapes) != 1 or len(right_shapes) != 1:
            raise SolverError("all Kronecker terms must share left and right shapes")
        self.terms: Tuple[KronTerm, ...] = tuple(_merge_terms(built))
        self.basis_size = built[0].left.shape[0]
        self.num_nodes = built[0].right.shape[0]
        size = self.basis_size * self.num_nodes
        self.shape = (size, size)
        self.dtype = np.dtype(float)
        self._csr: Optional[sp.csr_matrix] = None

    # ------------------------------------------------------------ application
    def matvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply the operator to a stacked vector (``out`` is overwritten)."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.shape[1],):
            if x.ndim == 2:
                return self.matmat(x, out=out)
            raise SolverError(f"operand has shape {x.shape}, expected ({self.shape[1]},)")
        if out is None:
            out = np.zeros(self.shape[0])
        else:
            if out.shape != (self.shape[0],):
                raise SolverError(f"out has shape {out.shape}, expected ({self.shape[0]},)")
            out[:] = 0.0
        blocks = x.reshape(self.basis_size, self.num_nodes)
        result = out.reshape(self.basis_size, self.num_nodes)
        for term in self.terms:
            applied = term.right @ blocks.T  # (n, P): A X^T
            if term.identity:
                if term.alpha == 1.0:
                    result += applied.T
                else:
                    result += term.alpha * applied.T
            else:
                contribution = term.left @ applied.T  # (P, n): T (X A^T)
                if term.alpha == 1.0:
                    result += contribution
                else:
                    result += term.alpha * contribution
        return out

    def matmat(self, columns: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply the operator to every column of a 2-D block of vectors."""
        columns = np.asarray(columns, dtype=float)
        if columns.ndim != 2 or columns.shape[0] != self.shape[1]:
            raise SolverError(
                f"operand has shape {columns.shape}, expected ({self.shape[1]}, k)"
            )
        k = columns.shape[1]
        if out is None:
            out = np.zeros((self.shape[0], k))
        else:
            if out.shape != (self.shape[0], k):
                raise SolverError(f"out has shape {out.shape}, expected {(self.shape[0], k)}")
            out[:] = 0.0
        p, n = self.basis_size, self.num_nodes
        blocks = columns.reshape(p, n, k)
        result = out.reshape(p, n, k)
        # Contract A over the node axis, then T over the chaos axis.
        by_nodes = np.ascontiguousarray(blocks.transpose(1, 0, 2)).reshape(n, p * k)
        for term in self.terms:
            applied = (term.right @ by_nodes).reshape(n, p, k)
            if term.identity:
                contribution = applied.transpose(1, 0, 2)
            else:
                by_chaos = np.ascontiguousarray(applied.transpose(1, 0, 2)).reshape(p, n * k)
                contribution = (term.left @ by_chaos).reshape(p, n, k)
            if term.alpha == 1.0:
                result += contribution
            else:
                result += term.alpha * contribution
        return out

    def __matmul__(self, other):
        other = np.asarray(other, dtype=float)
        if other.ndim == 1:
            return self.matvec(other)
        return self.matmat(other)

    def dot(self, other):
        return self.__matmul__(other)

    # ------------------------------------------------------------- structure
    def diagonal(self) -> np.ndarray:
        """``diag(sum_m alpha_m T_m (x) A_m)`` without assembling anything."""
        total = np.zeros(self.shape[0])
        for term in self.terms:
            total += term.alpha * np.outer(term.left.diagonal(), term.right.diagonal()).ravel()
        return total

    def mean_block(self) -> sp.csr_matrix:
        """The ``(0, 0)`` chaos block ``sum_m alpha_m T_m[0, 0] A_m``.

        For Galerkin matrices this is the nominal grid matrix (``T_0 = I``
        contributes 1; first-order triple-product matrices have a zero
        ``[0, 0]`` entry), i.e. exactly the ``M0`` of the ``I_P (x) M0^{-1}``
        mean-block preconditioner.
        """
        block = None
        for term in self.terms:
            weight = term.alpha * (1.0 if term.identity else float(term.left[0, 0]))
            if weight == 0.0:
                continue
            contribution = weight * term.right
            block = contribution if block is None else block + contribution
        if block is None:
            block = sp.csr_matrix((self.num_nodes, self.num_nodes))
        return sp.csr_matrix(block)

    def to_csr(self) -> sp.csr_matrix:
        """Materialise the explicit CSR matrix (cached after the first call)."""
        if self._csr is None:
            self._csr = kron_sum_csr(
                [(term.left, term.right) for term in self.terms],
                weights=[term.alpha for term in self.terms],
            )
        return self._csr

    def as_linear_operator(self) -> spla.LinearOperator:
        """A :class:`scipy.sparse.linalg.LinearOperator` view (for CG & co)."""
        return spla.LinearOperator(
            self.shape,
            matvec=lambda x: self.matvec(np.asarray(x, dtype=float).ravel()),
            matmat=lambda x: self.matmat(x),
            dtype=float,
        )

    @property
    def num_terms(self) -> int:
        return len(self.terms)

    @property
    def nnz(self) -> int:
        """Upper bound on the explicit fill (duplicates counted once each)."""
        return int(sum(term.left.nnz * term.right.nnz for term in self.terms))

    def fingerprint(self) -> str:
        """Content hash, compatible with the solver-cache keying scheme.

        Two operators with identical terms (shapes, sparsity, values and
        weights) map to the same fingerprint, mirroring
        :func:`repro.sim.linear.matrix_fingerprint` for explicit matrices.
        """
        import hashlib

        digest = hashlib.sha1()
        digest.update(b"kron-sum")
        digest.update(repr(self.shape).encode())
        for term in self.terms:
            digest.update(np.float64(term.alpha).tobytes())
            for factor in (term.left, term.right):
                canonical = sp.csr_matrix(factor, copy=True)
                canonical.sum_duplicates()
                digest.update(repr(canonical.shape).encode())
                digest.update(canonical.indptr.tobytes())
                digest.update(canonical.indices.tobytes())
                digest.update(canonical.data.tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------ composition
    def __mul__(self, factor):
        if not np.isscalar(factor):
            return NotImplemented
        return KronSumOperator([term.scaled(factor) for term in self.terms])

    __rmul__ = __mul__

    def __truediv__(self, factor):
        if not np.isscalar(factor):
            return NotImplemented
        return self * (1.0 / float(factor))

    def __neg__(self):
        return self * -1.0

    def __add__(self, other):
        if not isinstance(other, KronSumOperator):
            return NotImplemented
        if other.shape != self.shape:
            raise SolverError(
                f"cannot add operators of shapes {self.shape} and {other.shape}"
            )
        if (other.basis_size, other.num_nodes) != (self.basis_size, self.num_nodes):
            raise SolverError("cannot add operators with different block structure")
        return KronSumOperator(list(self.terms) + list(other.terms))

    def __sub__(self, other):
        if not isinstance(other, KronSumOperator):
            return NotImplemented
        return self + (other * -1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KronSumOperator({self.num_terms} term(s), "
            f"P={self.basis_size}, n={self.num_nodes})"
        )
