"""Block-preconditioned CG backends for the augmented Galerkin system.

``mean-block-cg``: matrix-free CG with an ``I_P (x) M0^{-1}`` preconditioner.
The augmented Galerkin stepping operator ``G~ + C~/h`` is, to first order,
block-diagonal: its ``(j, j)`` chaos block equals the nominal step matrix
``M0 = G_0 + C_0/h`` and the off-diagonal coupling is scaled by the (small)
process-variation sensitivities.  One sparse LU of the ``n x n`` mean block
therefore preconditions the whole ``P n x P n`` system extremely well, and
because the preconditioner is ``I_P (x) M0^{-1}``, applying it to a stacked
residual is a *single* 2-D SuperLU solve over all ``P`` chaos blocks at
once -- not ``P`` separate back-substitutions.

Combined with the matrix-free :class:`~repro.linalg.operator.KronSumOperator`
application, every CG iteration costs ``O(sum_m nnz(A_m) P)`` plus one
``n x n`` back-substitution per chaos block, so the solve scales with the
grid fill instead of the factorisation fill of the explicit Kronecker sum.

``degree-block-cg``: the block-diagonal per-chaos-degree variant.  For wide
germ vectors the coupling between the mean and the (large) first-order
degree group dominates the off-block-diagonal mass that ``mean-block-cg``
ignores.  This backend partitions the chaos indices into contiguous bands
of consecutive total degrees (``band_degrees`` per band, default 2 so the
leading band is ``{degree 0, degree 1}``), factorises each band's *exact*
sub-matrix ``sum_m T_m[J, J] (x) A_m`` once, and applies the block-diagonal
of those factorisations as the preconditioner.  Within-band coupling --
including the dominant mean<->first-order terms -- is then handled exactly,
at the cost of larger band factorisations.  (For symmetric germs the
orthogonality relations zero all *within-degree* coupling of an affine
parameter model, which is why bands pair adjacent degrees rather than
splitting per degree; ``band_degrees=1`` gives the pure per-degree variant.)
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SolverError
from ..sim.linear import PreconditionedCGSolver, canonical_csc, register_solver
from ..telemetry import current_telemetry
from .operator import KronSumOperator, is_operator, kron_sum_csr

__all__ = ["MeanBlockCGSolver", "DegreeBlockCGSolver"]


class MeanBlockCGSolver(PreconditionedCGSolver):
    """Conjugate gradients on a Kronecker-sum operator, preconditioned by
    one LU of the mean (nominal) block applied to all chaos blocks at once.

    Parameters
    ----------
    operator:
        A :class:`~repro.linalg.operator.KronSumOperator` (the natural
        input), or an explicit sparse matrix together with ``num_nodes``
        so the ``n x n`` mean block can be sliced out of the top-left
        corner.
    num_nodes:
        Block size ``n``; required only for explicit-matrix input.
    mean_block:
        Optional override of the preconditioner matrix ``M0`` (defaults to
        the operator's :meth:`~repro.linalg.operator.KronSumOperator.mean_block`).
    rtol, maxiter:
        CG convergence tolerance and iteration cap; non-convergence raises
        :class:`~repro.errors.ConvergenceError`.  The default is tight
        (``1e-14``): the mean-block preconditioner converges in ~10
        iterations anyway (tightening from 1e-13 costs about one more), and
        the tight tolerance keeps the matrix-free transient within ~1e-10
        of the explicit direct solve -- the accuracy contract the engine
        tests and the operator benchmark pin down.

    Every solve updates ``stats`` (solve/iteration counters and the true
    final relative residual), matching the diagnostics contract of the
    other iterative backends.
    """

    method_name = "mean-block-cg"
    error_label = "mean-block CG"

    def __init__(
        self,
        operator: Union[KronSumOperator, sp.spmatrix],
        num_nodes: Optional[int] = None,
        mean_block: Optional[sp.spmatrix] = None,
        rtol: float = 1e-14,
        maxiter: int = 2000,
    ):
        if is_operator(operator):
            self._operator = operator
            self._apply = operator.as_linear_operator()
            self.basis_size = operator.basis_size
            self.num_nodes = operator.num_nodes
            if mean_block is None:
                mean_block = operator.mean_block()
        else:
            matrix = sp.csr_matrix(operator)
            if matrix.shape[0] != matrix.shape[1]:
                raise SolverError("mean-block-cg requires a square system")
            if num_nodes is None:
                raise SolverError(
                    "mean-block-cg needs a KronSumOperator (lazy Galerkin "
                    "assembly) or an explicit matrix plus num_nodes=<block "
                    "size> to locate the mean block"
                )
            num_nodes = int(num_nodes)
            if num_nodes <= 0 or matrix.shape[0] % num_nodes:
                raise SolverError(
                    f"block size {num_nodes} does not tile a system of "
                    f"dimension {matrix.shape[0]}"
                )
            self._operator = matrix
            self._apply = spla.aslinearoperator(matrix)
            self.num_nodes = num_nodes
            self.basis_size = matrix.shape[0] // num_nodes
            if mean_block is None:
                mean_block = matrix[: self.num_nodes, : self.num_nodes]
        self.shape = (
            self.basis_size * self.num_nodes,
            self.basis_size * self.num_nodes,
        )
        self.rtol = float(rtol)
        self.maxiter = int(maxiter)

        mean_block = canonical_csc(mean_block)
        if mean_block.shape != (self.num_nodes, self.num_nodes):
            raise SolverError(
                f"mean block has shape {mean_block.shape}, expected "
                f"({self.num_nodes}, {self.num_nodes})"
            )
        try:
            with current_telemetry().span(
                "solver.factor", phase="factor", solver=self.method_name
            ):
                self._mean_lu = spla.splu(mean_block)
        except RuntimeError as exc:  # singular mean block
            raise SolverError(f"mean-block LU factorisation failed: {exc}") from exc
        self._configure_cg(
            self._apply,
            residual_target=self._operator,
            preconditioner=spla.LinearOperator(
                self.shape, matvec=self._apply_mean_inverse, dtype=float
            ),
        )

    def _apply_mean_inverse(self, residual: np.ndarray) -> np.ndarray:
        """``(I_P (x) M0^{-1}) r``: one 2-D solve over all chaos blocks."""
        blocks = np.asarray(residual, dtype=float).reshape(self.basis_size, self.num_nodes)
        return self._mean_lu.solve(blocks.T).T.ravel()


@register_solver("mean-block-cg")
def _build_mean_block_cg(matrix, **options) -> MeanBlockCGSolver:
    return MeanBlockCGSolver(matrix, **options)


#: Consumed by :func:`repro.sim.linear.make_solver`: this backend takes lazy
#: operators as-is instead of having them materialised to CSR first.
_build_mean_block_cg.accepts_operator = True


def _degree_bands(degrees: np.ndarray, band_degrees: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` index bands grouping consecutive degrees.

    Requires the graded ordering every :class:`PolynomialChaosBasis` uses
    (degrees non-decreasing), so each band is a contiguous slice of the
    stacked chaos blocks.
    """
    degrees = np.asarray(degrees, dtype=int)
    if degrees.ndim != 1 or degrees.size == 0:
        raise SolverError("degrees must be a non-empty 1-D integer array")
    if np.any(np.diff(degrees) < 0):
        raise SolverError(
            "degrees must be non-decreasing (the graded chaos-basis order); "
            "pass basis.degrees"
        )
    band_ids = degrees // int(band_degrees)
    bands: List[Tuple[int, int]] = []
    start = 0
    for index in range(1, degrees.size + 1):
        if index == degrees.size or band_ids[index] != band_ids[start]:
            bands.append((start, index))
            start = index
    return bands


class DegreeBlockCGSolver(PreconditionedCGSolver):
    """CG preconditioned by exact block LUs over chaos-degree bands.

    Parameters
    ----------
    operator:
        A :class:`~repro.linalg.operator.KronSumOperator` (the natural
        input -- band sub-matrices are assembled from the restricted
        Kronecker factors), or an explicit sparse matrix together with
        ``num_nodes``.
    degrees:
        Total degree of every chaos basis function, in basis order
        (``basis.degrees``); must be non-decreasing (graded order) so the
        bands are contiguous.  The engines thread this automatically when
        the backend is selected by name.
    num_nodes:
        Block size ``n``; required only for explicit-matrix input.
    band_degrees:
        Consecutive total degrees per preconditioner band (default 2: the
        leading band couples the mean with the full first-order group).
        ``1`` is the pure per-degree variant.
    rtol, maxiter:
        CG convergence tolerance and iteration cap (the same tight default
        as ``mean-block-cg``; the accuracy contract is shared).

    Every solve updates ``stats``; the band layout is reported as
    ``band_sizes`` (chaos indices per band).
    """

    method_name = "degree-block-cg"
    error_label = "degree-block CG"

    def __init__(
        self,
        operator: Union[KronSumOperator, sp.spmatrix],
        degrees: Optional[Sequence[int]] = None,
        num_nodes: Optional[int] = None,
        band_degrees: int = 2,
        rtol: float = 1e-14,
        maxiter: int = 2000,
    ):
        if degrees is None:
            raise SolverError(
                "degree-block-cg needs the chaos degrees of the basis "
                "(degrees=basis.degrees); the opera engine threads them "
                "automatically when the backend is selected by name"
            )
        band_degrees = int(band_degrees)
        if band_degrees < 1:
            raise SolverError(f"band_degrees must be at least 1, got {band_degrees}")
        degrees = np.asarray(degrees, dtype=int)

        if is_operator(operator):
            self._operator = operator
            self._apply = operator.as_linear_operator()
            self.basis_size = operator.basis_size
            self.num_nodes = operator.num_nodes
        else:
            matrix = sp.csr_matrix(operator)
            if matrix.shape[0] != matrix.shape[1]:
                raise SolverError("degree-block-cg requires a square system")
            if num_nodes is None:
                raise SolverError(
                    "degree-block-cg needs a KronSumOperator (lazy Galerkin "
                    "assembly) or an explicit matrix plus num_nodes=<block "
                    "size> to locate the chaos blocks"
                )
            num_nodes = int(num_nodes)
            if num_nodes <= 0 or matrix.shape[0] % num_nodes:
                raise SolverError(
                    f"block size {num_nodes} does not tile a system of "
                    f"dimension {matrix.shape[0]}"
                )
            self._operator = matrix
            self._apply = spla.aslinearoperator(matrix)
            self.num_nodes = num_nodes
            self.basis_size = matrix.shape[0] // num_nodes
        if degrees.shape != (self.basis_size,):
            raise SolverError(
                f"degrees has shape {degrees.shape}, expected ({self.basis_size},)"
            )
        size = self.basis_size * self.num_nodes
        self.shape = (size, size)
        self.rtol = float(rtol)
        self.maxiter = int(maxiter)

        self._bands: List[Tuple[int, int, object]] = []
        with current_telemetry().span(
            "solver.factor", phase="factor", solver=self.method_name
        ):
            for start, stop in _degree_bands(degrees, band_degrees):
                block = self._band_matrix(start, stop)
                try:
                    lu = spla.splu(canonical_csc(block))
                except RuntimeError as exc:  # singular band block
                    raise SolverError(
                        f"degree-band LU factorisation failed for chaos indices "
                        f"[{start}, {stop}): {exc}"
                    ) from exc
                self._bands.append((start * self.num_nodes, stop * self.num_nodes, lu))
        self._configure_cg(
            self._apply,
            residual_target=self._operator,
            preconditioner=spla.LinearOperator(
                self.shape, matvec=self._apply_band_inverses, dtype=float
            ),
            band_sizes=[
                (stop - start) // self.num_nodes for start, stop, _ in self._bands
            ],
        )

    def _band_matrix(self, start: int, stop: int) -> sp.csr_matrix:
        """The exact sub-matrix coupling chaos indices ``[start, stop)``."""
        if is_operator(self._operator):
            return kron_sum_csr(
                [
                    (term.left[start:stop, start:stop], term.right)
                    for term in self._operator.terms
                ],
                weights=[term.alpha for term in self._operator.terms],
            )
        rows = slice(start * self.num_nodes, stop * self.num_nodes)
        return sp.csr_matrix(self._operator[rows, rows])

    def _apply_band_inverses(self, residual: np.ndarray) -> np.ndarray:
        """Block-diagonal application: one band LU solve per degree band."""
        residual = np.asarray(residual, dtype=float)
        out = np.empty_like(residual)
        for start, stop, lu in self._bands:
            out[start:stop] = lu.solve(residual[start:stop])
        return out


@register_solver("degree-block-cg")
def _build_degree_block_cg(matrix, **options) -> DegreeBlockCGSolver:
    return DegreeBlockCGSolver(matrix, **options)


_build_degree_block_cg.accepts_operator = True
