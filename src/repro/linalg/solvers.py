"""The ``mean-block-cg`` backend: matrix-free CG with an ``I_P (x) M0^{-1}``
preconditioner.

The augmented Galerkin stepping operator ``G~ + C~/h`` is, to first order,
block-diagonal: its ``(j, j)`` chaos block equals the nominal step matrix
``M0 = G_0 + C_0/h`` and the off-diagonal coupling is scaled by the (small)
process-variation sensitivities.  One sparse LU of the ``n x n`` mean block
therefore preconditions the whole ``P n x P n`` system extremely well, and
because the preconditioner is ``I_P (x) M0^{-1}``, applying it to a stacked
residual is a *single* 2-D SuperLU solve over all ``P`` chaos blocks at
once -- not ``P`` separate back-substitutions.

Combined with the matrix-free :class:`~repro.linalg.operator.KronSumOperator`
application, every CG iteration costs ``O(sum_m nnz(A_m) P)`` plus one
``n x n`` back-substitution per chaos block, so the solve scales with the
grid fill instead of the factorisation fill of the explicit Kronecker sum.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import ConvergenceError, SolverError
from ..sim.linear import LinearSolver, register_solver
from .operator import KronSumOperator, is_operator

__all__ = ["MeanBlockCGSolver"]


class MeanBlockCGSolver(LinearSolver):
    """Conjugate gradients on a Kronecker-sum operator, preconditioned by
    one LU of the mean (nominal) block applied to all chaos blocks at once.

    Parameters
    ----------
    operator:
        A :class:`~repro.linalg.operator.KronSumOperator` (the natural
        input), or an explicit sparse matrix together with ``num_nodes``
        so the ``n x n`` mean block can be sliced out of the top-left
        corner.
    num_nodes:
        Block size ``n``; required only for explicit-matrix input.
    mean_block:
        Optional override of the preconditioner matrix ``M0`` (defaults to
        the operator's :meth:`~repro.linalg.operator.KronSumOperator.mean_block`).
    rtol, maxiter:
        CG convergence tolerance and iteration cap; non-convergence raises
        :class:`~repro.errors.ConvergenceError`.  The default is tight
        (``1e-14``): the mean-block preconditioner converges in ~10
        iterations anyway (tightening from 1e-13 costs about one more), and
        the tight tolerance keeps the matrix-free transient within ~1e-10
        of the explicit direct solve -- the accuracy contract the engine
        tests and the operator benchmark pin down.

    Every solve updates ``stats`` (solve/iteration counters and the true
    final relative residual), matching the diagnostics contract of the
    other iterative backends.
    """

    def __init__(
        self,
        operator: Union[KronSumOperator, sp.spmatrix],
        num_nodes: Optional[int] = None,
        mean_block: Optional[sp.spmatrix] = None,
        rtol: float = 1e-14,
        maxiter: int = 2000,
    ):
        if is_operator(operator):
            self._operator = operator
            self._apply = operator.as_linear_operator()
            self.basis_size = operator.basis_size
            self.num_nodes = operator.num_nodes
            if mean_block is None:
                mean_block = operator.mean_block()
        else:
            matrix = sp.csr_matrix(operator)
            if matrix.shape[0] != matrix.shape[1]:
                raise SolverError("mean-block-cg requires a square system")
            if num_nodes is None:
                raise SolverError(
                    "mean-block-cg needs a KronSumOperator (lazy Galerkin "
                    "assembly) or an explicit matrix plus num_nodes=<block "
                    "size> to locate the mean block"
                )
            num_nodes = int(num_nodes)
            if num_nodes <= 0 or matrix.shape[0] % num_nodes:
                raise SolverError(
                    f"block size {num_nodes} does not tile a system of "
                    f"dimension {matrix.shape[0]}"
                )
            self._operator = matrix
            self._apply = spla.aslinearoperator(matrix)
            self.num_nodes = num_nodes
            self.basis_size = matrix.shape[0] // num_nodes
            if mean_block is None:
                mean_block = matrix[: self.num_nodes, : self.num_nodes]
        self.shape = (
            self.basis_size * self.num_nodes,
            self.basis_size * self.num_nodes,
        )
        self.rtol = float(rtol)
        self.maxiter = int(maxiter)

        mean_block = sp.csc_matrix(mean_block)
        if mean_block.shape != (self.num_nodes, self.num_nodes):
            raise SolverError(
                f"mean block has shape {mean_block.shape}, expected "
                f"({self.num_nodes}, {self.num_nodes})"
            )
        try:
            self._mean_lu = spla.splu(mean_block)
        except RuntimeError as exc:  # singular mean block
            raise SolverError(f"mean-block LU factorisation failed: {exc}") from exc
        self._preconditioner = spla.LinearOperator(
            self.shape, matvec=self._apply_mean_inverse, dtype=float
        )
        self.stats = {
            "method": "mean-block-cg",
            "solves": 0,
            "total_iterations": 0,
            "last_iterations": 0,
            "last_relative_residual": None,
        }

    def _apply_mean_inverse(self, residual: np.ndarray) -> np.ndarray:
        """``(I_P (x) M0^{-1}) r``: one 2-D solve over all chaos blocks."""
        blocks = np.asarray(residual, dtype=float).reshape(self.basis_size, self.num_nodes)
        return self._mean_lu.solve(blocks.T).T.ravel()

    def solve(self, rhs: np.ndarray, x0: Optional[np.ndarray] = None) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (self.shape[0],):
            raise SolverError(
                f"right-hand side has shape {rhs.shape}, expected ({self.shape[0]},)"
            )
        iterations = 0

        def count(_):
            nonlocal iterations
            iterations += 1

        solution, info = spla.cg(
            self._apply,
            rhs,
            x0=x0,
            rtol=self.rtol,
            maxiter=self.maxiter,
            M=self._preconditioner,
            callback=count,
        )
        if info > 0:
            raise ConvergenceError(
                f"mean-block CG did not converge in {self.maxiter} iterations"
            )
        if info < 0:
            raise SolverError("mean-block CG reported an illegal input")
        rhs_norm = float(np.linalg.norm(rhs))
        residual = float(np.linalg.norm(rhs - self._operator @ solution))
        self.stats["solves"] += 1
        self.stats["total_iterations"] += iterations
        self.stats["last_iterations"] = iterations
        self.stats["last_relative_residual"] = residual / rhs_norm if rhs_norm > 0 else residual
        return solution

    def solve_many(self, rhs_columns: np.ndarray) -> np.ndarray:
        """Warm-started column sweep (previous solution as the next ``x0``)."""
        rhs_columns = np.asarray(rhs_columns, dtype=float)
        if rhs_columns.ndim == 1:
            return self.solve(rhs_columns)
        if rhs_columns.shape[0] != self.shape[0]:
            raise SolverError(
                f"right-hand sides have length {rhs_columns.shape[0]}, "
                f"expected {self.shape[0]}"
            )
        solution = np.empty_like(rhs_columns)
        previous: Optional[np.ndarray] = None
        for j in range(rhs_columns.shape[1]):
            previous = self.solve(rhs_columns[:, j], x0=previous)
            solution[:, j] = previous
        return solution


@register_solver("mean-block-cg")
def _build_mean_block_cg(matrix, **options) -> MeanBlockCGSolver:
    return MeanBlockCGSolver(matrix, **options)


#: Consumed by :func:`repro.sim.linear.make_solver`: this backend takes lazy
#: operators as-is instead of having them materialised to CSR first.
_build_mean_block_cg.accepts_operator = True
