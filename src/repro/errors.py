"""Exception hierarchy for the OPERA reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class NetlistError(ReproError):
    """Raised for malformed netlists (unknown nodes, invalid element values)."""


class SpiceFormatError(NetlistError):
    """Raised when a SPICE-subset netlist file cannot be parsed."""


class StampingError(ReproError):
    """Raised when MNA matrices cannot be assembled from a netlist."""


class SolverError(ReproError):
    """Raised when a linear solve or transient integration fails."""


class ConvergenceError(SolverError):
    """Raised when an iterative solver fails to reach the requested tolerance."""


class SchemeError(SolverError, ValueError):
    """Raised for unknown or invalid time-integration schemes.

    Also a :class:`ValueError`: scheme names travel through plain
    configuration fields (``TransientConfig.method``, CLI flags) whose
    callers traditionally catch ``ValueError`` for bad settings.
    """


class VariationModelError(ReproError):
    """Raised for inconsistent process-variation specifications."""


class BasisError(ReproError):
    """Raised for invalid polynomial-chaos basis construction or usage."""


class AnalysisError(ReproError):
    """Raised when a stochastic analysis is configured inconsistently."""


class RegressionError(AnalysisError):
    """Raised for invalid non-intrusive regression setups (design matrices,
    fitter configuration, cross-validation settings)."""


class StoreError(AnalysisError):
    """Raised for invalid sweep results-store usage: a backend opened against
    an incompatible plan, a duplicate or missing case, a corrupt shard, or a
    result the backend cannot hold (e.g. raw engine payloads in an on-disk
    store)."""
