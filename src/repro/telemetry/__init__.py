"""Structured tracing and solver metrics for every layer of the library.

The observability backbone: a :class:`Telemetry` context collects nested
:class:`Span` timers (monotonic clocks), typed :class:`Counter` /
:class:`Gauge` metrics and the per-step solver aggregate
:class:`StepStats`; a versioned JSON-lines exporter
(:data:`TRACE_SCHEMA` = ``repro.telemetry/trace/v1``) persists traces for
``opera-run trace-report`` and the CI schema gate
(``python -m repro.telemetry.validate``).

Telemetry is **off by default** and free when off: instrumented code calls
:func:`current_telemetry`, which returns the no-op :data:`NULL` singleton
until a context is installed -- results are bit-identical either way,
because instrumentation only ever *reads* solver state.

Enable it scoped::

    from repro import telemetry

    with telemetry.profile() as tele:
        view = session.run("opera", mode="transient")
    telemetry.write_trace(tele, "trace.jsonl")

or process-wide with :func:`enable_telemetry` / :func:`disable_telemetry`.
The sweep runner has its own switch (``SweepRunner(telemetry=True)``) that
profiles each worker-process case and ships the summary back with the
result.
"""

from .core import (
    NULL,
    Counter,
    Gauge,
    NullTelemetry,
    Span,
    Telemetry,
    current_telemetry,
    disable_telemetry,
    enable_telemetry,
    merge_summaries,
    profile,
)
from .report import phase_summary, render_report, solver_summary
from .stepstats import StepStats
from .trace import REQUIRED_FIELDS, TRACE_SCHEMA, read_trace, trace_events, write_trace
from .validate import validate_trace

__all__ = [
    "Counter",
    "Gauge",
    "NULL",
    "NullTelemetry",
    "REQUIRED_FIELDS",
    "Span",
    "StepStats",
    "TRACE_SCHEMA",
    "Telemetry",
    "current_telemetry",
    "disable_telemetry",
    "enable_telemetry",
    "merge_summaries",
    "phase_summary",
    "profile",
    "read_trace",
    "render_report",
    "solver_summary",
    "trace_events",
    "validate_trace",
    "write_trace",
]
