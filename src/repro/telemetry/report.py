"""Render a per-phase / per-solver summary table from a v1 trace.

Consumed by the ``opera-run trace-report`` subcommand: the per-phase totals
are computed from top-level spans only (depth-0 spans already contain their
children), so the phase column sums to the recorded run wall time instead of
double-counting nested sections.  A second table breaks the ``factor`` and
``step`` time down by the ``solver`` attribute of the emitting span.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["phase_summary", "solver_summary", "render_report"]

#: Canonical display order of the phases; unknown phases sort after these.
#: ``reduce`` / ``project`` are the mor engine's macromodel phases (PRIMA
#: block reduction and per-corner congruence projection).
_PHASE_ORDER = ("run", "assemble", "reduce", "project", "factor", "step", "fit", "other")


def _phase_rank(phase: str) -> tuple:
    try:
        return (_PHASE_ORDER.index(phase), phase)
    except ValueError:
        return (len(_PHASE_ORDER), phase)


def _spans(events: List[dict]) -> List[dict]:
    return [event for event in events if event.get("type") == "span"]


def phase_summary(events: List[dict]) -> Dict[str, Dict[str, float]]:
    """Per-phase call counts, total and self durations.

    ``total_s`` sums every span of the phase; ``top_s`` sums only the
    depth-0 spans (those not enclosed by another span), which is the column
    that adds up to the run wall time.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for event in _spans(events):
        phase = event.get("phase", "other")
        entry = totals.setdefault(phase, {"count": 0, "total_s": 0.0, "top_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += event["duration_s"]
        if event.get("depth", 0) == 0:
            entry["top_s"] += event["duration_s"]
    return {phase: totals[phase] for phase in sorted(totals, key=_phase_rank)}


def solver_summary(events: List[dict]) -> Dict[str, Dict[str, float]]:
    """Count and total duration of spans that carry a ``solver`` attribute."""
    totals: Dict[str, Dict[str, float]] = {}
    for event in _spans(events):
        solver = (event.get("attrs") or {}).get("solver")
        if solver is None:
            continue
        entry = totals.setdefault(str(solver), {"count": 0, "total_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += event["duration_s"]
    return {name: totals[name] for name in sorted(totals)}


def _table(title: str, header: tuple, rows: List[tuple]) -> List[str]:
    widths = [
        max(len(str(header[col])), max((len(str(row[col])) for row in rows), default=0))
        for col in range(len(header))
    ]

    def fmt(row: tuple) -> str:
        cells = [str(row[0]).ljust(widths[0])]
        cells += [str(row[col]).rjust(widths[col]) for col in range(1, len(header))]
        return "  " + "  ".join(cells)

    lines = [title, fmt(header)]
    lines.append("  " + "  ".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in rows)
    return lines


def render_report(events: List[dict]) -> str:
    """The full trace report: meta line, phase table, solver table, steps."""
    lines: List[str] = []
    meta = next((event for event in events if event.get("type") == "meta"), None)
    elapsed = None
    if meta is not None:
        elapsed = (meta.get("attrs") or {}).get("elapsed_s")
        spans = (meta.get("attrs") or {}).get("spans")
        header = f"trace: {spans} span(s)"
        if elapsed is not None:
            header += f", recorded wall time {elapsed:.4f}s"
        lines.append(header)

    phases = phase_summary(events)
    if phases:
        rows = [
            (
                phase,
                entry["count"],
                f"{entry['total_s']:.4f}",
                f"{entry['top_s']:.4f}",
            )
            for phase, entry in phases.items()
        ]
        top_total = sum(entry["top_s"] for entry in phases.values())
        rows.append(("(sum of top-level)", "", "", f"{top_total:.4f}"))
        lines.append("")
        lines.extend(_table("per-phase totals", ("phase", "count", "total_s", "top_s"), rows))
        if elapsed:
            coverage = 100.0 * top_total / elapsed
            lines.append(f"  top-level span coverage: {coverage:.1f}% of wall time")

    solvers = solver_summary(events)
    if solvers:
        rows = [
            (name, entry["count"], f"{entry['total_s']:.4f}")
            for name, entry in solvers.items()
        ]
        lines.append("")
        lines.extend(_table("per-solver spans", ("solver", "count", "total_s"), rows))

    steps = next((event for event in events if event.get("type") == "step_stats"), None)
    if steps is not None:
        stats = steps.get("stats") or {}
        lines.append("")
        lines.append("step stats")
        for key in sorted(stats):
            lines.append(f"  {key:24s} {stats[key]}")

    counters = [event for event in events if event.get("type") == "counter"]
    if counters:
        lines.append("")
        lines.append("counters")
        for event in counters:
            lines.append(f"  {event['name']:24s} {event['value']}")

    return "\n".join(lines) if lines else "trace: no events"
