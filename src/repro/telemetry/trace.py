"""Versioned JSON-lines trace export (schema ``repro.telemetry/trace/v1``).

A trace is one JSON object per line.  Every event carries the v1 required
fields -- ``schema``, ``seq``, ``type``, ``name``, ``t_s`` -- plus
type-specific payloads:

``meta``
    First line of the file; ``attrs`` holds the producing context's elapsed
    wall time (``elapsed_s``) and span count.
``span``
    A closed timed section: ``duration_s``, ``depth`` and the optional
    ``phase`` (``assemble`` / ``factor`` / ``step`` / ``fit`` / ``run``)
    plus free-form ``attrs`` (e.g. ``solver``).
``counter`` / ``gauge``
    Final metric snapshots: ``value``.
``step_stats``
    The merged per-step solver aggregate: ``stats`` is
    :meth:`~repro.telemetry.stepstats.StepStats.to_dict` output.

``t_s`` offsets are monotonic seconds relative to the context epoch.  The
schema string is versioned; readers reject other versions rather than guess.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .core import Telemetry

__all__ = ["TRACE_SCHEMA", "REQUIRED_FIELDS", "trace_events", "write_trace", "read_trace"]

#: Schema identifier stamped on every event line.
TRACE_SCHEMA = "repro.telemetry/trace/v1"

#: Fields every v1 event must carry.
REQUIRED_FIELDS = ("schema", "seq", "type", "name", "t_s")


def trace_events(telemetry: Telemetry) -> List[dict]:
    """All v1 events of a context: meta, spans, metric and step snapshots."""
    elapsed = telemetry.elapsed()
    spans = [dict(event, schema=TRACE_SCHEMA) for event in telemetry.events]
    seq = max((event["seq"] for event in telemetry.events), default=0)
    events: List[dict] = [
        {
            "schema": TRACE_SCHEMA,
            "seq": 0,
            "type": "meta",
            "name": "trace",
            "t_s": 0.0,
            "attrs": {"elapsed_s": elapsed, "spans": len(spans)},
        }
    ]
    events.extend(sorted(spans, key=lambda event: event["seq"]))
    for name in sorted(telemetry.counters):
        seq += 1
        events.append(
            {
                "schema": TRACE_SCHEMA,
                "seq": seq,
                "type": "counter",
                "name": name,
                "t_s": elapsed,
                "value": telemetry.counters[name].value,
            }
        )
    for name in sorted(telemetry.gauges):
        seq += 1
        events.append(
            {
                "schema": TRACE_SCHEMA,
                "seq": seq,
                "type": "gauge",
                "name": name,
                "t_s": elapsed,
                "value": telemetry.gauges[name].value,
            }
        )
    if telemetry.step_stats.solves or telemetry.step_stats.steps:
        seq += 1
        events.append(
            {
                "schema": TRACE_SCHEMA,
                "seq": seq,
                "type": "step_stats",
                "name": "steps",
                "t_s": elapsed,
                "stats": telemetry.step_stats.to_dict(),
            }
        )
    return events


def write_trace(telemetry: Telemetry, path: Union[str, Path]) -> Path:
    """Write the context's events as JSON lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in trace_events(telemetry):
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_trace(path: Union[str, Path]) -> List[dict]:
    """Read a v1 trace back as a list of event dicts.

    Raises :class:`ValueError` on malformed lines or foreign schemas; use
    :mod:`repro.telemetry.validate` for a diagnostic pass that reports every
    problem instead of stopping at the first.
    """
    events: List[dict] = []
    for line_number, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            event: Dict[str, object] = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{line_number}: not valid JSON: {exc}") from exc
        schema = event.get("schema")
        if schema != TRACE_SCHEMA:
            raise ValueError(
                f"{path}:{line_number}: schema {schema!r}, expected {TRACE_SCHEMA!r}"
            )
        events.append(event)
    return events
