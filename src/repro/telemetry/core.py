"""The telemetry context: nested span timers and typed counters/gauges.

Instrumented code never checks whether telemetry is on -- it asks
:func:`current_telemetry` for the active context and calls it.  When nothing
is enabled that returns the module-wide :data:`NULL` singleton, whose methods
do nothing and whose ``span`` hands back one shared, stateless context
manager -- no per-call object is allocated, so disabled telemetry costs a
few attribute lookups per *run* (hot per-step work is additionally guarded
by ``Telemetry.enabled`` so it costs nothing at all).

Timing uses :func:`time.perf_counter` (monotonic); span events carry offsets
relative to the context's epoch, so traces are insensitive to wall-clock
adjustments.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from .stepstats import StepStats

__all__ = [
    "Counter",
    "Gauge",
    "Span",
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "current_telemetry",
    "enable_telemetry",
    "disable_telemetry",
    "merge_summaries",
    "profile",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += int(amount)


class Gauge:
    """A float metric holding its most recently set value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Span:
    """A timed section; use as a context manager via :meth:`Telemetry.span`.

    Spans nest: the depth recorded in the trace event is the number of
    enclosing open spans at entry time.  The ``phase`` attribute (if given)
    is hoisted to a top-level event field so reports can group sections into
    the canonical phases (``assemble`` / ``factor`` / ``step`` / ``fit`` /
    ``run``).
    """

    __slots__ = ("_telemetry", "name", "attrs", "phase", "start", "duration", "depth")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict[str, object]):
        self._telemetry = telemetry
        self.name = name
        self.phase = attrs.pop("phase", None)
        self.attrs = attrs
        self.start = 0.0
        self.duration = 0.0
        self.depth = 0

    def __enter__(self) -> "Span":
        tele = self._telemetry
        self.depth = len(tele._stack)
        tele._stack.append(self)
        self.start = tele._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tele = self._telemetry
        self.duration = tele._clock() - self.start
        if tele._stack and tele._stack[-1] is self:
            tele._stack.pop()
        tele._finish_span(self)
        return False


class Telemetry:
    """An enabled telemetry context collecting spans, metrics and step stats.

    Spans become trace events as they close; counters, gauges and the merged
    :class:`~repro.telemetry.stepstats.StepStats` are snapshotted by
    :meth:`summary` / the trace exporter.  Install a context process-wide
    with :func:`enable_telemetry` or scoped with :func:`profile`.
    """

    enabled = True

    def __init__(self):
        self._clock = time.perf_counter
        self.epoch = self._clock()
        self.events: List[dict] = []
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.step_stats = StepStats()
        self._pending_steps: Optional[StepStats] = None
        self._stack: List[Span] = []
        self._seq = 0

    # ------------------------------------------------------------------ spans
    def span(self, name: str, **attrs) -> Span:
        """Open a named, timed section (context manager); ``phase=`` groups it."""
        return Span(self, name, attrs)

    def _finish_span(self, span: Span) -> None:
        self._seq += 1
        event = {
            "type": "span",
            "seq": self._seq,
            "name": span.name,
            "t_s": span.start - self.epoch,
            "duration_s": span.duration,
            "depth": span.depth,
        }
        if span.phase is not None:
            event["phase"] = span.phase
        if span.attrs:
            event["attrs"] = span.attrs
        self.events.append(event)

    # ---------------------------------------------------------------- metrics
    def counter(self, name: str) -> Counter:
        """The named :class:`Counter`, created on first use."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the named counter."""
        self.counter(name).add(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        gauge.set(value)

    # ------------------------------------------------------------- step stats
    def record_step_stats(self, stats: StepStats) -> None:
        """Fold one step loop's aggregate into the context.

        The cumulative aggregate (``self.step_stats``) spans the whole
        context lifetime; a second, drainable aggregate feeds
        :meth:`pop_step_stats` so each engine can claim the stats of exactly
        the loops it ran.
        """
        self.step_stats.merge(stats)
        if self._pending_steps is None:
            self._pending_steps = StepStats()
        self._pending_steps.merge(stats)

    def pop_step_stats(self) -> Optional[StepStats]:
        """Drain the step stats recorded since the last pop (None when none)."""
        pending = self._pending_steps
        self._pending_steps = None
        return pending

    # ---------------------------------------------------------------- summary
    def elapsed(self) -> float:
        """Seconds since the context was created (monotonic)."""
        return self._clock() - self.epoch

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-phase call counts and total durations from the closed spans."""
        totals: Dict[str, Dict[str, float]] = {}
        for event in self.events:
            if event["type"] != "span":
                continue
            phase = event.get("phase", "other")
            entry = totals.setdefault(phase, {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += event["duration_s"]
        return {phase: totals[phase] for phase in sorted(totals)}

    def summary(self) -> Dict[str, object]:
        """JSON-safe snapshot: phase totals, counters, gauges, step stats.

        This is what sweep workers ship back with each case result and what
        the sharded store persists in case meta; keys are sorted so merged
        summaries are deterministic.
        """
        payload: Dict[str, object] = {
            "phases": self.phase_totals(),
            "counters": {name: self.counters[name].value for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name].value for name in sorted(self.gauges)},
            "spans": sum(1 for event in self.events if event["type"] == "span"),
            "elapsed_s": self.elapsed(),
        }
        if self.step_stats.solves or self.step_stats.steps:
            payload["step_stats"] = self.step_stats.to_dict()
        return dict(sorted(payload.items()))


class _NullSpan:
    """The shared no-op span: stateless, reentrant, allocation-free."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled default: every method is a no-op.

    ``span`` returns one module-wide stateless context manager, so code can
    unconditionally write ``with current_telemetry().span(...)`` without
    allocating per call when telemetry is off.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def record_step_stats(self, stats: StepStats) -> None:
        pass

    def pop_step_stats(self) -> None:
        return None


#: The process-wide disabled singleton.
NULL = NullTelemetry()

_ACTIVE: Optional[Telemetry] = None


def current_telemetry():
    """The active :class:`Telemetry`, or :data:`NULL` when disabled."""
    active = _ACTIVE
    return NULL if active is None else active


def enable_telemetry(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Install (and return) a process-wide telemetry context."""
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else Telemetry()
    return _ACTIVE


def disable_telemetry() -> Optional[Telemetry]:
    """Remove the active context (returned, so callers can still export it)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def merge_summaries(summaries) -> Optional[Dict[str, object]]:
    """Deterministically merge per-run :meth:`Telemetry.summary` dicts.

    Callers iterate their runs in a canonical order (the sweep runner merges
    in plan order) so the float sums -- phase totals, elapsed times -- are
    identical no matter how many workers produced the parts.  Returns None
    when no summary is present.
    """
    merged_phases: Dict[str, Dict[str, float]] = {}
    merged_counters: Dict[str, int] = {}
    merged_gauges: Dict[str, float] = {}
    merged_steps: Optional[StepStats] = None
    spans = 0
    elapsed = 0.0
    cases = 0
    for summary in summaries:
        if not summary:
            continue
        cases += 1
        for phase, entry in summary.get("phases", {}).items():
            slot = merged_phases.setdefault(phase, {"count": 0, "total_s": 0.0})
            slot["count"] += entry.get("count", 0)
            slot["total_s"] += entry.get("total_s", 0.0)
        for name, value in summary.get("counters", {}).items():
            merged_counters[name] = merged_counters.get(name, 0) + value
        for name, value in summary.get("gauges", {}).items():
            if value is not None:
                merged_gauges[name] = value
        steps = summary.get("step_stats")
        if steps:
            if merged_steps is None:
                merged_steps = StepStats()
            merged_steps.merge(StepStats.from_dict(steps))
        spans += summary.get("spans", 0)
        elapsed += summary.get("elapsed_s", 0.0)
    if not cases:
        return None
    payload: Dict[str, object] = {
        "cases": cases,
        "counters": dict(sorted(merged_counters.items())),
        "elapsed_s": elapsed,
        "gauges": dict(sorted(merged_gauges.items())),
        "phases": {phase: merged_phases[phase] for phase in sorted(merged_phases)},
        "spans": spans,
    }
    if merged_steps is not None:
        payload["step_stats"] = merged_steps.to_dict()
    return dict(sorted(payload.items()))


@contextmanager
def profile(telemetry: Optional[Telemetry] = None):
    """Scoped activation: enable a context, yield it, restore the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    tele = telemetry if telemetry is not None else Telemetry()
    _ACTIVE = tele
    try:
        yield tele
    finally:
        _ACTIVE = previous
