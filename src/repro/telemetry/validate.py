"""Schema validation of ``repro.telemetry/trace/v1`` files.

Runnable as a module -- this is the CI gate of the bench-smoke job::

    python -m repro.telemetry.validate trace.jsonl

Exit status 0 means every line is valid JSON, carries the v1 schema string
and every required field with a sane type; any problem is reported with its
line number and the exit status is 1.  Unlike :func:`repro.telemetry.trace.read_trace`
(which raises at the first problem) the validator scans the whole file and
lists everything wrong.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .trace import REQUIRED_FIELDS, TRACE_SCHEMA

__all__ = ["validate_trace", "main"]

#: Event types the v1 schema defines, with their type-specific required fields.
_TYPE_FIELDS = {
    "meta": (),
    "span": ("duration_s", "depth"),
    "counter": ("value",),
    "gauge": ("value",),
    "step_stats": ("stats",),
}


def _check_event(event: object, where: str) -> List[str]:
    problems: List[str] = []
    if not isinstance(event, dict):
        return [f"{where}: event is {type(event).__name__}, expected an object"]
    for field in REQUIRED_FIELDS:
        if field not in event:
            problems.append(f"{where}: missing required field {field!r}")
    if problems:
        return problems
    if event["schema"] != TRACE_SCHEMA:
        problems.append(f"{where}: schema {event['schema']!r}, expected {TRACE_SCHEMA!r}")
    if not isinstance(event["seq"], int) or event["seq"] < 0:
        problems.append(f"{where}: seq must be a non-negative integer")
    if not isinstance(event["name"], str) or not event["name"]:
        problems.append(f"{where}: name must be a non-empty string")
    if not isinstance(event["t_s"], (int, float)):
        problems.append(f"{where}: t_s must be a number")
    kind = event["type"]
    if kind not in _TYPE_FIELDS:
        problems.append(f"{where}: unknown event type {kind!r}")
        return problems
    for field in _TYPE_FIELDS[kind]:
        if field not in event:
            problems.append(f"{where}: {kind} event missing field {field!r}")
    if kind == "span" and isinstance(event.get("duration_s"), (int, float)):
        if event["duration_s"] < 0:
            problems.append(f"{where}: span duration_s must be non-negative")
    return problems


def validate_trace(path: Union[str, Path]) -> List[str]:
    """All schema problems of a trace file (empty list == valid)."""
    path = Path(path)
    if not path.exists():
        return [f"{path}: no such file"]
    problems: List[str] = []
    events = 0
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        where = f"{path}:{line_number}"
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{where}: not valid JSON: {exc}")
            continue
        events += 1
        problems.extend(_check_event(event, where))
    if events == 0:
        problems.append(f"{path}: trace contains no events")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.validate",
        description="validate a repro.telemetry/trace/v1 JSON-lines trace",
    )
    parser.add_argument("trace", type=Path, nargs="+", help="trace file(s) to check")
    args = parser.parse_args(argv)
    failed = False
    for path in args.trace:
        problems = validate_trace(path)
        if problems:
            failed = True
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(f"{path}: OK ({TRACE_SCHEMA})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
