"""Per-step solver statistics aggregated by the shared integration loop.

:class:`StepStats` is the aggregate the ROADMAP's stepping item asks for:
while telemetry is enabled, :class:`~repro.stepping.loop.StepLoop` records
every per-step linear solve -- iteration counts and final relative residuals
when the solver exposes them, warm-start versus cold-start usage, and how
many solves reused the single hoisted LHS factorisation -- and the engines
surface the merged aggregate through ``AnalysisResult.solver_stats()`` under
the ``"steps"`` key.

The aggregate is additive: :meth:`StepStats.merge` folds the stats of many
runs (e.g. the per-sample loops of a Monte Carlo sweep) into one, and
:meth:`StepStats.to_dict` / :meth:`StepStats.from_dict` round-trip it
through JSON for sweep-store persistence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["StepStats"]


@dataclass
class StepStats:
    """Aggregate of the per-step linear solves of one or more step loops.

    Attributes
    ----------
    steps:
        Accepted time steps (excluding the initial condition).
    solves:
        Step-matrix solves; equals ``steps`` for a single run.
    total_iterations:
        Summed iteration counts of solvers that report them (CG backends);
        ``0`` when every solve was direct.
    warm_starts / cold_starts:
        Solves that did / did not receive the previous state as an initial
        guess; ``warm_starts + cold_starts == solves``.
    lhs_hoists:
        Step-matrix factorisations (one per run: the loop hoists the LHS).
    lhs_reused_solves:
        Solves served by an already-hoisted LHS (``solves - lhs_hoists``
        when every run takes at least one step).
    last_iterations / last_relative_residual:
        Diagnostics of the most recent iterative solve, when any.
    max_relative_residual:
        Worst final relative residual observed across all solves.
    """

    steps: int = 0
    solves: int = 0
    total_iterations: int = 0
    warm_starts: int = 0
    cold_starts: int = 0
    lhs_hoists: int = 0
    lhs_reused_solves: int = 0
    last_iterations: int = 0
    last_relative_residual: Optional[float] = None
    max_relative_residual: Optional[float] = None

    # ------------------------------------------------------------- recording
    def record_solve(
        self,
        warm: bool,
        iterations: Optional[int] = None,
        residual: Optional[float] = None,
    ) -> None:
        """Record one step solve (called by the loop while telemetry is on)."""
        self.solves += 1
        if warm:
            self.warm_starts += 1
        else:
            self.cold_starts += 1
        if iterations is not None:
            count = int(iterations)
            self.total_iterations += count
            self.last_iterations = count
        if residual is not None:
            value = float(residual)
            self.last_relative_residual = value
            if self.max_relative_residual is None or value > self.max_relative_residual:
                self.max_relative_residual = value

    def merge(self, other: "StepStats") -> "StepStats":
        """Fold another aggregate into this one (in place; returns self)."""
        self.steps += other.steps
        self.solves += other.solves
        self.total_iterations += other.total_iterations
        self.warm_starts += other.warm_starts
        self.cold_starts += other.cold_starts
        self.lhs_hoists += other.lhs_hoists
        self.lhs_reused_solves += other.lhs_reused_solves
        if other.solves:
            self.last_iterations = other.last_iterations
            if other.last_relative_residual is not None:
                self.last_relative_residual = other.last_relative_residual
        if other.max_relative_residual is not None:
            if (
                self.max_relative_residual is None
                or other.max_relative_residual > self.max_relative_residual
            ):
                self.max_relative_residual = other.max_relative_residual
        return self

    # ------------------------------------------------------------- derived
    @property
    def warm_start_hit_rate(self) -> Optional[float]:
        """Fraction of solves that received an initial guess (None when idle)."""
        return self.warm_starts / self.solves if self.solves else None

    @property
    def mean_iterations(self) -> Optional[float]:
        """Mean iterations per solve, for solvers that report iterations."""
        return self.total_iterations / self.solves if self.solves else None

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary with derived rates, keys sorted for determinism."""
        payload = {
            "steps": self.steps,
            "solves": self.solves,
            "total_iterations": self.total_iterations,
            "warm_starts": self.warm_starts,
            "cold_starts": self.cold_starts,
            "warm_start_hit_rate": self.warm_start_hit_rate,
            "lhs_hoists": self.lhs_hoists,
            "lhs_reused_solves": self.lhs_reused_solves,
            "last_iterations": self.last_iterations,
            "last_relative_residual": self.last_relative_residual,
            "max_relative_residual": self.max_relative_residual,
            "mean_iterations": self.mean_iterations,
        }
        return dict(sorted(payload.items()))

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StepStats":
        """Rebuild an aggregate from :meth:`to_dict` output (derived keys ignored)."""
        stats = cls()
        for field in (
            "steps",
            "solves",
            "total_iterations",
            "warm_starts",
            "cold_starts",
            "lhs_hoists",
            "lhs_reused_solves",
            "last_iterations",
        ):
            if payload.get(field) is not None:
                setattr(stats, field, int(payload[field]))
        for field in ("last_relative_residual", "max_relative_residual"):
            if payload.get(field) is not None:
                setattr(stats, field, float(payload[field]))
        return stats
