"""A small named-factory registry shared by the solver and engine layers.

Both pluggable backends of the library -- linear solvers
(:mod:`repro.sim.linear`) and analysis engines (:mod:`repro.api.engines`) --
follow the same pattern: a string name maps to a factory/runner callable, the
built-ins are registered at import time, and user code can add its own
entries with a decorator::

    @register_solver("my-solver")
    def build_my_solver(matrix, **options):
        ...

Lookups of unknown names raise the registry's error class with a message
listing every registered name, so typos fail with an actionable hint instead
of a bare ``KeyError``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple, Type

__all__ = ["Registry"]


class Registry:
    """A case-insensitive mapping from names to factory callables.

    Parameters
    ----------
    kind:
        Human-readable noun used in error messages (``"solver"``,
        ``"engine"``).
    error_class:
        Exception type raised on unknown names and duplicate registrations.
    """

    def __init__(self, kind: str, error_class: Type[Exception]):
        self.kind = kind
        self._error_class = error_class
        self._entries: Dict[str, Callable] = {}

    @staticmethod
    def _normalize(name: str) -> str:
        return str(name).strip().lower()

    # ------------------------------------------------------------ registration
    def register(
        self,
        name: str,
        obj: Optional[Callable] = None,
        *,
        overwrite: bool = False,
    ) -> Callable:
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        Raises the registry's error class if the name is already taken and
        ``overwrite`` is false.
        """
        key = self._normalize(name)
        if not key:
            raise self._error_class(f"{self.kind} names must be non-empty")

        def decorate(target: Callable) -> Callable:
            if not callable(target):
                raise self._error_class(
                    f"{self.kind} {name!r} must be callable, got {type(target).__name__}"
                )
            if key in self._entries and not overwrite:
                raise self._error_class(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass overwrite=True to replace it"
                )
            self._entries[key] = target
            return target

        if obj is None:
            return decorate
        return decorate(obj)

    def unregister(self, name: str) -> None:
        """Remove an entry (unknown names raise the registry's error class)."""
        key = self._normalize(name)
        if key not in self._entries:
            raise self._error_class(self._unknown_message(name))
        del self._entries[key]

    # ------------------------------------------------------------------ lookup
    def get(self, name: str) -> Callable:
        """Resolve a name to its callable, with a listing on failure."""
        try:
            return self._entries[self._normalize(name)]
        except KeyError:
            raise self._error_class(self._unknown_message(name)) from None

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._entries))

    def _unknown_message(self, name: str) -> str:
        known = ", ".join(self.names()) or "(none)"
        return f"unknown {self.kind} {name!r}; registered {self.kind}s: {known}"

    def __contains__(self, name: str) -> bool:
        return self._normalize(name) in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)
