"""Command-line interface of the OPERA reproduction.

Three sub-commands cover the typical flow of the tool:

``opera-run generate``
    Synthesise a power grid and write it as a SPICE-subset deck.

``opera-run analyze``
    Run the OPERA stochastic transient analysis on a SPICE deck (or a
    freshly generated grid) and print the variation report.

``opera-run compare``
    Run OPERA and the Monte Carlo reference on the same grid and print the
    Table-1 style accuracy/speed-up row.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import Table1Row, compare_to_monte_carlo, format_table1, three_sigma_spread_percent
from .grid import GridSpec, generate_power_grid, read_spice, spec_for_node_count, stamp, write_spice
from .montecarlo import MonteCarloConfig, run_monte_carlo_transient
from .opera import OperaConfig, run_opera_transient, summarize
from .sim import TransientConfig, transient_analysis
from .variation import VariationSpec, build_stochastic_system

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="opera-run",
        description="Stochastic power grid analysis under process variations (OPERA).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="synthesise a power grid SPICE deck")
    generate.add_argument("output", help="path of the SPICE deck to write")
    generate.add_argument("--nodes", type=int, default=2000, help="approximate node count")
    generate.add_argument("--layers", type=int, default=2, help="number of metal layers")
    generate.add_argument("--blocks", type=int, default=9, help="number of functional blocks")
    generate.add_argument("--seed", type=int, default=0, help="generator seed")

    def add_analysis_arguments(sub: argparse.ArgumentParser) -> None:
        source = sub.add_mutually_exclusive_group(required=True)
        source.add_argument("--spice", help="SPICE-subset deck to analyse")
        source.add_argument(
            "--synthetic-nodes",
            type=int,
            help="generate a synthetic grid with roughly this many nodes",
        )
        sub.add_argument("--seed", type=int, default=0, help="synthetic grid seed")
        sub.add_argument("--order", type=int, default=2, help="chaos expansion order")
        sub.add_argument("--t-stop", type=float, default=8e-9, help="transient horizon (s)")
        sub.add_argument("--dt", type=float, default=0.2e-9, help="transient step (s)")
        sub.add_argument(
            "--three-sigma",
            nargs=3,
            type=float,
            default=(20.0, 15.0, 20.0),
            metavar=("W", "T", "L"),
            help="3-sigma variation percentages for W, T and Leff",
        )

    analyze = subparsers.add_parser("analyze", help="run the OPERA stochastic analysis")
    add_analysis_arguments(analyze)

    compare = subparsers.add_parser("compare", help="compare OPERA against Monte Carlo")
    add_analysis_arguments(compare)
    compare.add_argument("--samples", type=int, default=200, help="Monte Carlo sample count")

    return parser


def _load_grid(args: argparse.Namespace):
    if getattr(args, "spice", None):
        return read_spice(args.spice)
    spec = spec_for_node_count(args.synthetic_nodes, seed=args.seed)
    return generate_power_grid(spec)


def _build_system(args: argparse.Namespace):
    netlist = _load_grid(args)
    stamped = stamp(netlist)
    w, t, l = args.three_sigma
    spec = VariationSpec.from_three_sigma_percent(w=w, t=t, l=l)
    return stamped, build_stochastic_system(stamped, spec)


def _command_generate(args: argparse.Namespace) -> int:
    spec = spec_for_node_count(
        args.nodes, num_layers=args.layers, num_blocks=args.blocks, seed=args.seed
    )
    netlist = generate_power_grid(spec)
    write_spice(netlist, args.output)
    print(f"wrote {netlist.stats()} to {args.output}")
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    stamped, system = _build_system(args)
    transient = TransientConfig(t_stop=args.t_stop, dt=args.dt)
    config = OperaConfig(transient=transient, order=args.order)
    result = run_opera_transient(system, config)
    nominal = transient_analysis(stamped, transient)
    print(summarize(result, nominal))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    stamped, system = _build_system(args)
    transient = TransientConfig(t_stop=args.t_stop, dt=args.dt)
    opera_result = run_opera_transient(
        system, OperaConfig(transient=transient, order=args.order)
    )
    monte_carlo = run_monte_carlo_transient(
        system, MonteCarloConfig(transient=transient, num_samples=args.samples)
    )
    metrics = compare_to_monte_carlo(opera_result, monte_carlo)
    nominal = transient_analysis(stamped, transient)
    spread = three_sigma_spread_percent(opera_result, nominal)
    row = Table1Row.from_metrics(
        name="cli",
        num_nodes=system.num_nodes,
        metrics=metrics,
        three_sigma_spread=spread,
        monte_carlo_seconds=monte_carlo.wall_time or 0.0,
        opera_seconds=opera_result.wall_time or 0.0,
    )
    print(format_table1([row], title="OPERA vs Monte Carlo"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``opera-run`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "analyze": _command_analyze,
        "compare": _command_compare,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
