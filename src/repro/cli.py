"""Command-line interface of the OPERA reproduction.

Five sub-commands cover the typical flow of the tool:

``opera-run generate``
    Synthesise a power grid and write it as a SPICE-subset deck.

``opera-run analyze``
    Run a stochastic analysis on a SPICE deck (or a freshly generated grid)
    and print the variation report.  ``--engine`` selects any registered
    analysis engine (``opera``, ``decoupled``, ``montecarlo``, ...) and
    ``--solver`` any registered linear-solver backend.

``opera-run compare``
    Run the stochastic engine and the Monte Carlo reference on the same grid
    and print the Table-1 style accuracy/speed-up row.

``opera-run sweep``
    Fan a grid of cases (node counts x engines x chaos orders x variation
    corners) out over worker processes, print the per-case wall times and
    speedups, and optionally emit a ``BenchRecord`` JSON artifact and gate
    it against a baseline artifact (see :mod:`repro.sweep`).  With
    ``--store DIR`` completed cases stream into an append-only on-disk
    results store as they finish; ``--resume`` restarts an interrupted
    campaign from that store, executing only the missing cases.  With
    ``--telemetry`` every case is profiled in its worker process and the
    merged campaign summary lands in the artifact.

``opera-run trace-report``
    Summarise a telemetry trace written by ``analyze --profile PATH``:
    per-phase wall-time totals, per-solver spans, step-loop statistics.

All analysis work is routed through the :class:`repro.api.Analysis` session
facade, so the sub-commands are thin argument adapters; unknown engine or
solver names produce the registry's listing of valid choices.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .api import Analysis, engine_names, get_engine, solver_names
from .errors import ReproError
from .grid import generate_power_grid, spec_for_node_count, write_spice
from .sim import TransientConfig
from .sim.linear import solver_factory
from .stepping import resolve_scheme, scheme_names
from .variation import VariationSpec

__all__ = ["main", "build_parser"]


def _int_list(text: str) -> List[int]:
    """Parse a comma-separated list of integers (argparse type)."""
    values = [int(token) for token in text.split(",") if token.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected a comma-separated list of integers")
    return values


def _str_list(text: str) -> List[str]:
    """Parse a comma-separated list of names (argparse type)."""
    values = [token.strip() for token in text.split(",") if token.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected a comma-separated list of names")
    return values


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="opera-run",
        description="Stochastic power grid analysis under process variations (OPERA).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="synthesise a power grid SPICE deck")
    generate.add_argument("output", help="path of the SPICE deck to write")
    generate.add_argument("--nodes", type=int, default=2000, help="approximate node count")
    generate.add_argument("--layers", type=int, default=2, help="number of metal layers")
    generate.add_argument("--blocks", type=int, default=9, help="number of functional blocks")
    generate.add_argument("--seed", type=int, default=0, help="generator seed")

    def add_analysis_arguments(sub: argparse.ArgumentParser) -> None:
        source = sub.add_mutually_exclusive_group(required=True)
        source.add_argument("--spice", help="SPICE-subset deck to analyse")
        source.add_argument(
            "--synthetic-nodes",
            type=int,
            help="generate a synthetic grid with roughly this many nodes",
        )
        sub.add_argument("--seed", type=int, default=0, help="synthetic grid seed")
        sub.add_argument(
            "--order",
            type=int,
            default=None,
            help="chaos expansion order (engine default: 2)",
        )
        sub.add_argument("--t-stop", type=float, default=8e-9, help="transient horizon (s)")
        sub.add_argument("--dt", type=float, default=0.2e-9, help="transient step (s)")
        sub.add_argument(
            "--solver",
            default=None,
            metavar="NAME",
            help=f"linear solver backend (registered: {', '.join(solver_names())})",
        )
        sub.add_argument(
            "--three-sigma",
            nargs=3,
            type=float,
            default=(20.0, 15.0, 20.0),
            metavar=("W", "T", "L"),
            help="3-sigma variation percentages for W, T and Leff",
        )

    analyze = subparsers.add_parser("analyze", help="run a stochastic analysis")
    add_analysis_arguments(analyze)
    analyze.add_argument(
        "--engine",
        default="opera",
        metavar="NAME",
        help=f"analysis engine (registered: {', '.join(engine_names())})",
    )
    analyze.add_argument(
        "--samples",
        type=int,
        default=None,
        help="sample count for the sampling engines (montecarlo default: 200; "
        "pce-regression default: twice the basis size)",
    )
    analyze.add_argument(
        "--degree",
        type=int,
        dest="order",
        help="alias of --order (regression-PCE vocabulary)",
    )
    analyze.add_argument(
        "--fit",
        default=None,
        metavar="NAME",
        help="coefficient fitter for the pce-regression engine "
        "(registered: ols, ridge, omp, lasso, ...)",
    )
    analyze.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (montecarlo chunking / hierarchical block fan-out)",
    )
    analyze.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="K",
        help="schedule group count for the hierarchical engine",
    )
    analyze.add_argument(
        "--mor-order",
        type=int,
        default=None,
        metavar="Q",
        help="PRIMA reduction order for the mor engine (matched block "
        "moments per macromodel; default: 2)",
    )
    analyze.add_argument(
        "--assemble",
        choices=("auto", "explicit", "lazy"),
        default=None,
        help="Galerkin assembly mode for the opera engine: explicit CSR, "
        "lazy (matrix-free Kronecker-sum operators), or auto (lazy exactly "
        "when the solver backend consumes operators, e.g. mean-block-cg)",
    )
    analyze.add_argument(
        "--scheme",
        default=None,
        metavar="NAME",
        help="stepping scheme of the transient (registered: "
        f"{', '.join(scheme_names())}; parametrised specs like theta:0.75 "
        "are accepted)",
    )
    analyze.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="profile the run with repro.telemetry and write the JSON-lines "
        "trace (schema repro.telemetry/trace/v1) to PATH; inspect it with "
        "'opera-run trace-report PATH'",
    )

    compare = subparsers.add_parser("compare", help="compare OPERA against Monte Carlo")
    add_analysis_arguments(compare)
    compare.add_argument("--samples", type=int, default=200, help="Monte Carlo sample count")

    from .sweep.plan import corner_names  # deferred: keeps CLI import light

    sweep = subparsers.add_parser(
        "sweep",
        help="run a parallel analysis sweep and emit a benchmark artifact",
    )
    sweep.add_argument(
        "--nodes",
        type=_int_list,
        default=[600, 1200, 2500],
        metavar="N,N,...",
        help="target node counts of the synthetic grids (default: 600,1200,2500)",
    )
    sweep.add_argument(
        "--engines",
        type=_str_list,
        default=["opera", "montecarlo"],
        metavar="NAME,NAME,...",
        help=f"engines to sweep (registered: {', '.join(engine_names())})",
    )
    sweep.add_argument(
        "--orders",
        type=_int_list,
        default=[2],
        metavar="K,K,...",
        help="chaos expansion orders for the chaos engines (default: 2)",
    )
    sweep.add_argument(
        "--corners",
        type=_str_list,
        default=["paper"],
        metavar="NAME,NAME,...",
        help=f"variation corners (known: {', '.join(corner_names())})",
    )
    sweep.add_argument(
        "--samples", type=int, default=200, help="Monte Carlo sample count per MC case"
    )
    sweep.add_argument("--workers", type=int, default=1, help="worker processes for the sweep")
    sweep.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="group cases by grid topology and stack same-shape direct-solver "
        "cases into shared multi-RHS marches (results are bit-identical to "
        "the unbatched path)",
    )
    sweep.add_argument(
        "--mc-workers",
        type=int,
        default=None,
        help="chunk workers inside each Monte Carlo case (default: --workers)",
    )
    sweep.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="K",
        help="schedule group count for hierarchical-engine cases",
    )
    sweep.add_argument(
        "--scheme",
        default=None,
        metavar="NAME",
        help=f"stepping scheme of every case (registered: {', '.join(scheme_names())})",
    )
    sweep.add_argument(
        "--mor-order",
        type=int,
        default=None,
        metavar="Q",
        help="PRIMA reduction order for mor-engine cases (default: engine default)",
    )
    sweep.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persist completed cases in a sharded .npz results store at DIR "
        "(append-only; cases already in the store are reused instead of re-run)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted campaign from an existing --store directory, "
        "executing only the missing cases",
    )
    sweep.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="cases per store shard (default: 64); smaller shards flush "
        "progress to disk more often",
    )
    sweep.add_argument("--steps", type=int, default=12, help="transient steps of every case")
    sweep.add_argument("--dt", type=float, default=0.2e-9, help="transient step size (s)")
    sweep.add_argument("--base-seed", type=int, default=0, help="plan base seed")
    sweep.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the BenchRecord JSON artifact here",
    )
    sweep.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="gate the sweep against this baseline BenchRecord (exit 1 on regression)",
    )
    sweep.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="PCT",
        help="allowed wall-time growth vs the baseline, percent (default: 75)",
    )
    sweep.add_argument(
        "--telemetry",
        action="store_true",
        help="profile every case in its worker process; per-case summaries "
        "persist with the results and the merged campaign summary lands in "
        "the BenchRecord artifact",
    )

    trace_report = subparsers.add_parser(
        "trace-report",
        help="summarise a telemetry trace written by analyze --profile",
    )
    trace_report.add_argument(
        "trace",
        help="JSON-lines trace file (schema repro.telemetry/trace/v1)",
    )

    return parser


def _build_session(args: argparse.Namespace) -> Analysis:
    """An :class:`Analysis` session from the common sub-command arguments."""
    w, t, l = args.three_sigma
    variation = VariationSpec.from_three_sigma_percent(w=w, t=t, l=l)
    transient = TransientConfig(t_stop=args.t_stop, dt=args.dt)
    if getattr(args, "spice", None):
        return Analysis.from_spice(args.spice, variation=variation, transient=transient)
    spec = spec_for_node_count(args.synthetic_nodes, seed=args.seed)
    return Analysis.from_spec(spec, variation=variation, transient=transient)


def _check_names(args: argparse.Namespace) -> None:
    """Fail fast on unknown engine/solver names, before any expensive setup.

    Both registries are consulted through their own (case-normalising)
    lookups, so the CLI accepts exactly what the library accepts.
    """
    if args.solver is not None:
        solver_factory(args.solver)  # raises SolverError with a listing
    if getattr(args, "engine", None) is not None:
        get_engine(args.engine)  # raises AnalysisError with a listing
    if getattr(args, "scheme", None) is not None:
        resolve_scheme(args.scheme)  # raises SchemeError with a listing
    if getattr(args, "fit", None) is not None:
        from .regression.fit import get_fitter

        get_fitter(args.fit)  # raises RegressionError with a listing


def _command_generate(args: argparse.Namespace) -> int:
    spec = spec_for_node_count(
        args.nodes, num_layers=args.layers, num_blocks=args.blocks, seed=args.seed
    )
    netlist = generate_power_grid(spec)
    write_spice(netlist, args.output)
    print(f"wrote {netlist.stats()} to {args.output}")
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    _check_names(args)
    session = _build_session(args)
    # Only user-supplied options are forwarded, so every registered engine
    # works with its own defaults, and an engine that does not understand an
    # explicit option rejects it with a clear AnalysisError instead of the
    # CLI silently dropping it.
    options = {}
    if args.solver is not None:
        options["solver"] = args.solver
    if args.order is not None:
        options["order"] = args.order
    if args.samples is not None:
        options["samples"] = args.samples
    if args.workers is not None:
        options["workers"] = args.workers
    if args.partitions is not None:
        options["partitions"] = args.partitions
    if getattr(args, "mor_order", None) is not None:
        options["mor_order"] = args.mor_order
    if getattr(args, "assemble", None) is not None:
        options["assemble"] = args.assemble
    if getattr(args, "scheme", None) is not None:
        options["scheme"] = args.scheme
    if getattr(args, "fit", None) is not None:
        options["fit"] = args.fit
    trace_path = None
    if getattr(args, "profile", None):
        from .telemetry import profile, write_trace

        with profile() as tele:
            result = session.run(args.engine, **options)
        trace_path = write_trace(tele, args.profile)
    else:
        result = session.run(args.engine, **options)

    if hasattr(result.raw, "basis"):
        # Chaos-expansion engines get the full designer-facing report.
        print(session.summarize(result))
    else:
        summary = result.to_dict()
        print(f"engine {result.engine} ({result.mode} mode)")
        for key, value in summary.items():
            if key in ("engine", "mode"):
                continue
            print(f"  {key:12s}: {value}")
    if trace_path is not None:
        print(f"wrote telemetry trace to {trace_path}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    _check_names(args)
    session = _build_session(args)
    solver_options = {"solver": args.solver} if args.solver is not None else {}
    comparison = session.compare(
        order=args.order if args.order is not None else 2,
        samples=args.samples if args.samples is not None else 200,
        reference_options=solver_options,
        baseline_options=solver_options,
    )
    print(comparison.table(title="OPERA vs Monte Carlo"))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .errors import StoreError
    from .sweep import (
        ShardedNpzBackend,
        SweepPlan,
        SweepRunner,
        BenchRecord,
        compare_records,
        record_from_outcome,
    )
    from .sweep.regress import DEFAULT_MAX_REGRESSION_PERCENT

    for engine in args.engines:
        get_engine(engine)  # fail fast with the registry's listing
    if args.scheme is not None:
        resolve_scheme(args.scheme)  # fail fast with the registry's listing
    if args.resume and args.store is None:
        raise StoreError("--resume needs --store DIR (the interrupted campaign's store)")
    if args.shard_size is not None and args.store is None:
        raise StoreError("--shard-size only applies together with --store DIR")
    store = None
    if args.store is not None:
        if args.resume and not Path(args.store).exists():
            raise StoreError(
                f"store {args.store} does not exist; drop --resume to start "
                "a fresh campaign there"
            )
        store_options = {} if args.shard_size is None else {"shard_size": args.shard_size}
        store = ShardedNpzBackend(args.store, **store_options)
    transient = TransientConfig(t_stop=args.steps * args.dt, dt=args.dt)
    plan = SweepPlan.grid(
        args.nodes,
        engines=args.engines,
        orders=args.orders,
        corners=args.corners,
        samples=args.samples,
        mc_workers=args.mc_workers if args.mc_workers is not None else args.workers,
        partitions=args.partitions,
        scheme=args.scheme,
        mor_order=args.mor_order,
        transient=transient,
        base_seed=args.base_seed,
    )
    runner = SweepRunner(workers=args.workers, telemetry=args.telemetry, batch=args.batch)
    outcome = runner.resume(plan, store) if args.resume else runner.run(plan, store=store)
    record = record_from_outcome(outcome)

    speedups = outcome.speedups()
    reused = f", {outcome.reused} from store" if outcome.reused else ""
    print(
        f"sweep: {len(outcome)} case(s), workers={args.workers}, "
        f"wall {outcome.wall_time:.2f}s ({outcome.executed} executed{reused})"
    )
    for result in outcome:
        speed = speedups.get(result.name)
        suffix = f"  speedup vs MC {speed:6.2f}x" if speed is not None else ""
        print(
            f"  {result.name:40s} {result.num_nodes:6d} nodes  "
            f"{result.wall_time:8.3f}s  worst drop {result.worst_drop:.4f}V{suffix}"
        )

    if args.telemetry:
        merged = outcome.telemetry_summary()
        if merged is not None:
            phases = merged.get("phases", {})
            breakdown = ", ".join(
                f"{phase} {phases[phase]['total_s']:.3f}s" for phase in sorted(phases)
            )
            print(f"telemetry: {merged['cases']} case(s) profiled; {breakdown}")

    if args.output:
        path = record.write(args.output)
        print(f"wrote benchmark artifact to {path}")

    if args.baseline:
        threshold = (
            args.max_regression
            if args.max_regression is not None
            else DEFAULT_MAX_REGRESSION_PERCENT
        )
        report = compare_records(
            BenchRecord.load(args.baseline), record, max_regression_percent=threshold
        )
        print()
        print(report.format())
        if not report.ok:
            return 1
    return 0


def _command_trace_report(args: argparse.Namespace) -> int:
    from .telemetry import read_trace, render_report

    try:
        events = read_trace(args.trace)
    except OSError as exc:
        print(f"opera-run: error: cannot read trace {args.trace}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"opera-run: error: {exc}", file=sys.stderr)
        return 2
    print(render_report(events))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``opera-run`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "analyze": _command_analyze,
        "compare": _command_compare,
        "sweep": _command_sweep,
        "trace-report": _command_trace_report,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"opera-run: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
