"""Comparison metrics, Table-1 assembly and Figure-1/2 histogram helpers."""

from .histogram import DropDistributionComparison, ascii_histogram, drop_distribution_comparison
from .metrics import AccuracyMetrics, compare_to_monte_carlo, three_sigma_spread_percent
from .sobol import (
    SobolIndices,
    sobol_from_coefficients,
    sobol_indices,
    transient_total_indices,
)
from .tables import PAPER_TABLE1, Table1Row, format_table1

__all__ = [
    "SobolIndices",
    "sobol_indices",
    "sobol_from_coefficients",
    "transient_total_indices",
    "DropDistributionComparison",
    "ascii_histogram",
    "drop_distribution_comparison",
    "AccuracyMetrics",
    "compare_to_monte_carlo",
    "three_sigma_spread_percent",
    "PAPER_TABLE1",
    "Table1Row",
    "format_table1",
]
