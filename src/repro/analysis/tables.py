"""Assembly and rendering of Table 1 of the paper.

Each row of Table 1 describes one grid: its size, the average/maximum
percentage errors of the OPERA mean and sigma against Monte Carlo, the
average +/-3-sigma spread as a percentage of the nominal drop, the CPU times
of both methods and the speed-up.  :class:`Table1Row` captures one such row
and :func:`format_table1` renders the whole table as text in the same column
order as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from .metrics import AccuracyMetrics

__all__ = ["Table1Row", "format_table1", "PAPER_TABLE1"]


@dataclass(frozen=True)
class Table1Row:
    """One grid's worth of Table 1 data."""

    name: str
    num_nodes: int
    average_mean_error_percent: float
    maximum_mean_error_percent: float
    average_sigma_error_percent: float
    maximum_sigma_error_percent: float
    three_sigma_spread_percent: float
    monte_carlo_seconds: float
    opera_seconds: float

    @property
    def speedup(self) -> float:
        """Monte Carlo runtime divided by OPERA runtime."""
        if self.opera_seconds <= 0:
            return float("inf")
        return self.monte_carlo_seconds / self.opera_seconds

    @classmethod
    def from_metrics(
        cls,
        name: str,
        num_nodes: int,
        metrics: AccuracyMetrics,
        three_sigma_spread: float,
        monte_carlo_seconds: float,
        opera_seconds: float,
    ) -> "Table1Row":
        return cls(
            name=name,
            num_nodes=num_nodes,
            average_mean_error_percent=metrics.average_mean_error_percent,
            maximum_mean_error_percent=metrics.maximum_mean_error_percent,
            average_sigma_error_percent=metrics.average_sigma_error_percent,
            maximum_sigma_error_percent=metrics.maximum_sigma_error_percent,
            three_sigma_spread_percent=three_sigma_spread,
            monte_carlo_seconds=monte_carlo_seconds,
            opera_seconds=opera_seconds,
        )


_HEADER = (
    "Size",
    "Avg %Err mu",
    "Max %Err mu",
    "Avg %Err sigma",
    "Max %Err sigma",
    "+/-3sigma (% nominal)",
    "MC (s)",
    "OPERA (s)",
    "Speedup",
)


def format_table1(rows: Sequence[Table1Row], title: Optional[str] = None) -> str:
    """Render rows in the layout of Table 1 (plain text)."""
    body: List[List[str]] = []
    for row in rows:
        body.append(
            [
                f"{row.num_nodes}",
                f"{row.average_mean_error_percent:.4f}",
                f"{row.maximum_mean_error_percent:.4f}",
                f"{row.average_sigma_error_percent:.2f}",
                f"{row.maximum_sigma_error_percent:.2f}",
                f"+/- {row.three_sigma_spread_percent:.0f}",
                f"{row.monte_carlo_seconds:.2f}",
                f"{row.opera_seconds:.2f}",
                f"{row.speedup:.0f}x",
            ]
        )
    widths = [
        max(len(_HEADER[c]), max((len(line[c]) for line in body), default=0))
        for c in range(len(_HEADER))
    ]

    def render_line(cells: Iterable[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(_HEADER))
    lines.append(render_line("-" * w for w in widths))
    lines.extend(render_line(line) for line in body)
    return "\n".join(lines)


#: The seven rows of Table 1 as printed in the paper (for shape comparison in
#: EXPERIMENTS.md and the benchmark output).  Columns: nodes, avg/max % error
#: in mu, avg/max % error in sigma, +/-3sigma spread (% of nominal), MC CPU
#: seconds, OPERA CPU seconds.
PAPER_TABLE1 = (
    Table1Row("paper-19181", 19181, 0.0155, 0.0282, 2.53, 2.78, 34.0, 1444.00, 14.32),
    Table1Row("paper-25813", 25813, 0.0422, 0.0838, 3.41, 3.84, 33.0, 1565.30, 77.93),
    Table1Row("paper-34938", 34938, 0.0204, 0.5146, 1.53, 12.17, 32.0, 1140.10, 17.50),
    Table1Row("paper-49262", 49262, 0.1992, 0.3713, 6.73, 7.37, 37.0, 4777.87, 178.52),
    Table1Row("paper-62812", 62812, 0.0680, 0.1253, 3.82, 6.45, 46.0, 1481.70, 17.40),
    Table1Row("paper-91729", 91729, 0.0137, 0.6037, 3.28, 18.03, 30.0, 3172.67, 25.50),
    Table1Row("paper-351838", 351838, 0.0926, 0.1457, 5.27, 18.39, 33.0, 109315.00, 1050.72),
)
