"""Accuracy metrics comparing OPERA against the Monte Carlo reference.

Table 1 of the paper reports, for each grid, the average and maximum
percentage error of the OPERA mean and standard deviation relative to Monte
Carlo, taken over *all nodes and all time points* of the transient run, plus
the average +/-3-sigma spread of the drops as a percentage of the nominal
drop.  The functions here compute exactly those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..chaos.response import StochasticTransientResult
from ..errors import AnalysisError
from ..montecarlo.engine import MonteCarloTransientResult
from ..sim.results import TransientResult

__all__ = ["AccuracyMetrics", "compare_to_monte_carlo", "three_sigma_spread_percent"]


@dataclass(frozen=True)
class AccuracyMetrics:
    """Error statistics of OPERA vs Monte Carlo over nodes and time points."""

    average_mean_error_percent: float
    maximum_mean_error_percent: float
    average_sigma_error_percent: float
    maximum_sigma_error_percent: float
    num_points_compared: int

    def __str__(self) -> str:
        return (
            f"mean error: avg {self.average_mean_error_percent:.4f}% "
            f"/ max {self.maximum_mean_error_percent:.4f}%; "
            f"sigma error: avg {self.average_sigma_error_percent:.2f}% "
            f"/ max {self.maximum_sigma_error_percent:.2f}% "
            f"({self.num_points_compared} node-time points)"
        )


def compare_to_monte_carlo(
    opera: StochasticTransientResult,
    monte_carlo: MonteCarloTransientResult,
    drop_threshold_fraction: float = 0.05,
    sigma_threshold_fraction: float = 0.05,
) -> AccuracyMetrics:
    """Percentage errors of the OPERA mean and sigma against Monte Carlo.

    Only node-time points with a meaningful drop (above
    ``drop_threshold_fraction`` of the worst Monte Carlo drop) enter the mean
    comparison, and only points with meaningful sigma enter the sigma
    comparison -- otherwise near-zero denominators (e.g. nodes directly under
    a pad before any switching happens) dominate the percentages without
    carrying any engineering meaning.
    """
    if opera.mean_drop.shape != monte_carlo.mean_drop.shape:
        raise AnalysisError("OPERA and Monte Carlo results have different shapes")
    if opera.times.shape != monte_carlo.times.shape or not np.allclose(
        opera.times, monte_carlo.times, rtol=1e-9, atol=1e-15
    ):
        raise AnalysisError("OPERA and Monte Carlo results use different time axes")

    mc_mean = monte_carlo.mean_drop
    mc_sigma = monte_carlo.std_drop
    opera_mean = opera.mean_drop
    opera_sigma = opera.std_drop

    worst_drop = float(np.max(mc_mean))
    worst_sigma = float(np.max(mc_sigma))
    if worst_drop <= 0:
        raise AnalysisError("Monte Carlo reports no voltage drop; nothing to compare")

    mean_mask = mc_mean >= drop_threshold_fraction * worst_drop
    sigma_mask = mc_sigma >= sigma_threshold_fraction * worst_sigma
    if not np.any(mean_mask) or not np.any(sigma_mask):
        raise AnalysisError("comparison masks are empty; lower the thresholds")

    mean_errors = 100.0 * np.abs(opera_mean - mc_mean)[mean_mask] / mc_mean[mean_mask]
    sigma_errors = 100.0 * np.abs(opera_sigma - mc_sigma)[sigma_mask] / mc_sigma[sigma_mask]

    return AccuracyMetrics(
        average_mean_error_percent=float(np.mean(mean_errors)),
        maximum_mean_error_percent=float(np.max(mean_errors)),
        average_sigma_error_percent=float(np.mean(sigma_errors)),
        maximum_sigma_error_percent=float(np.max(sigma_errors)),
        num_points_compared=int(np.count_nonzero(mean_mask)),
    )


def three_sigma_spread_percent(
    opera: StochasticTransientResult,
    nominal: Optional[TransientResult] = None,
    drop_floor_fraction: float = 0.10,
) -> float:
    """Average +/-3-sigma spread of node drops as a percentage of the nominal drop.

    For each node the statistic is evaluated at the node's own peak-drop time;
    nodes whose drop is below ``drop_floor_fraction`` of the grid's worst drop
    are excluded.  The paper reports roughly +/-30-46 % for its grids.
    """
    mean_drop = opera.mean_drop
    sigma = opera.std_drop
    if nominal is not None:
        if nominal.voltages is None:
            raise AnalysisError("the nominal transient must be run with store=True")
        reference = nominal.drops
        if reference.shape != mean_drop.shape:
            raise AnalysisError("nominal result shape does not match the stochastic result")
    else:
        reference = mean_drop

    peak_steps = np.argmax(reference, axis=0)
    nodes = np.arange(opera.num_nodes)
    peak_reference = reference[peak_steps, nodes]
    sigma_at_peak = sigma[peak_steps, nodes]

    worst = float(np.max(peak_reference))
    if worst <= 0:
        raise AnalysisError("the grid shows no voltage drop")
    mask = peak_reference >= drop_floor_fraction * worst
    spread = 100.0 * 3.0 * sigma_at_peak[mask] / peak_reference[mask]
    return float(np.mean(spread))
