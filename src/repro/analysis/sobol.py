"""Variance decomposition (Sobol' indices) from the chaos coefficients.

One practical advantage of having the voltage response as an explicit
polynomial in the germ variables is that *global sensitivity analysis* comes
for free: because the basis is orthonormal and organised by multi-index, the
variance contribution of every germ (and of every interaction of germs) is
just a partial sum of squared coefficients.  A power-grid designer can
therefore ask "how much of the drop variability at this node comes from the
metal (W/T) variation versus the channel-length variation?" without any
additional simulation.

Definitions (for a response ``x = sum_i a_i psi_i``):

* first-order index of germ ``k``:  sum of ``a_i^2`` over basis functions
  that depend *only* on germ ``k``, divided by the total variance;
* total-effect index of germ ``k``: sum over basis functions that depend on
  germ ``k`` *at all*, divided by the total variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..chaos.response import StochasticField, StochasticTransientResult
from ..errors import AnalysisError

__all__ = [
    "SobolIndices",
    "sobol_indices",
    "sobol_from_coefficients",
    "transient_total_indices",
]


@dataclass(frozen=True)
class SobolIndices:
    """Variance decomposition of a stochastic field over its germ variables.

    Attributes
    ----------
    variable_names:
        Germ labels, in the order of the index arrays.
    first_order:
        Array of shape ``(num_vars, num_values)``: fraction of each entry's
        variance explained by each germ alone.
    total_effect:
        Array of the same shape: fraction of each entry's variance involving
        each germ (alone or in interaction).
    interaction:
        Fraction of each entry's variance carried by basis functions that mix
        two or more germs, shape ``(num_values,)``.
    variance:
        Total variance per entry, shape ``(num_values,)``.
    """

    variable_names: Sequence[str]
    first_order: np.ndarray
    total_effect: np.ndarray
    interaction: np.ndarray
    variance: np.ndarray

    def ranked(self, value_index: int = 0):
        """Germ names ordered by decreasing total effect for one entry."""
        order = np.argsort(self.total_effect[:, value_index])[::-1]
        return [(self.variable_names[k], float(self.total_effect[k, value_index])) for k in order]


def sobol_indices(
    field: StochasticField,
    variable_names: Optional[Sequence[str]] = None,
    variance_floor: float = 0.0,
) -> SobolIndices:
    """Compute Sobol' indices of every entry of a chaos-expanded field.

    Entries whose variance does not exceed ``variance_floor`` get zero
    indices (they have nothing to decompose).
    """
    basis = field.basis
    num_vars = basis.num_vars
    if variable_names is None:
        variable_names = [f"xi_{k}" for k in range(num_vars)]
    if len(variable_names) != num_vars:
        raise AnalysisError("variable_names must have one entry per germ variable")

    coefficients = field.coefficients
    squared = coefficients**2
    variance = np.sum(squared[1:], axis=0) if basis.size > 1 else np.zeros(field.num_values)

    first_order = np.zeros((num_vars, field.num_values))
    total_effect = np.zeros((num_vars, field.num_values))
    interaction_mass = np.zeros(field.num_values)

    for i, multi_index in enumerate(basis.multi_indices):
        degree = sum(multi_index)
        if degree == 0:
            continue
        active = [k for k, exponent in enumerate(multi_index) if exponent > 0]
        if len(active) == 1:
            first_order[active[0]] += squared[i]
        else:
            interaction_mass += squared[i]
        for k in active:
            total_effect[k] += squared[i]

    safe = np.where(variance > max(variance_floor, 0.0), variance, np.inf)
    return SobolIndices(
        variable_names=tuple(variable_names),
        first_order=first_order / safe,
        total_effect=total_effect / safe,
        interaction=interaction_mass / safe,
        variance=variance,
    )


def sobol_from_coefficients(
    basis,
    coefficients: np.ndarray,
    variable_names: Optional[Sequence[str]] = None,
    variance_floor: float = 0.0,
) -> SobolIndices:
    """Sobol' indices straight from a chaos coefficient array.

    The variance decomposition only needs the basis multi-indices and the
    squared coefficients, so it is agnostic to *how* the coefficients were
    obtained -- Galerkin projection (``opera``) and sampled regression fits
    (``pce-regression``, or a raw :class:`~repro.regression.FitResult` mapped
    through ``DesignMatrix.unscale``/``expand``) feed the identical formula.
    ``coefficients`` has shape ``(basis.size,)`` for a scalar response or
    ``(basis.size, num_values)`` for a field.
    """
    field = StochasticField(basis, coefficients)
    return sobol_indices(field, variable_names=variable_names, variance_floor=variance_floor)


def transient_total_indices(
    result: StochasticTransientResult,
    node: int,
    time_index: Optional[int] = None,
    variable_names: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Total-effect Sobol' indices of one node's drop at one time point.

    Convenience wrapper used by reports and examples: returns a mapping from
    germ name to its total-effect index at the node's peak-drop time (or an
    explicit ``time_index``).  Pass the stochastic system's
    ``variable_names()`` to get meaningfully labelled germs.
    """
    if not result.has_coefficients:
        raise AnalysisError("Sobol indices need the full chaos coefficients")
    if time_index is None:
        time_index = result.peak_time_index(node)
    field = result.field_at(time_index)
    indices = sobol_indices(field, variable_names=variable_names)
    return {
        name: float(indices.total_effect[k, node])
        for k, name in enumerate(indices.variable_names)
    }
