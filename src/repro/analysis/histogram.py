"""Voltage-drop distribution comparisons (Figures 1 and 2 of the paper).

The paper plots, for a selected node of the 19 181-node grid, the histogram of
the voltage drop (as a percentage of VDD) obtained from Monte Carlo and from
sampling the OPERA polynomial expansion; the two coincide.  The helpers here
produce the same two series on a shared bin axis and can render them as an
ASCII chart for terminal inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..chaos.response import StochasticTransientResult
from ..errors import AnalysisError
from ..montecarlo.engine import MonteCarloTransientResult

__all__ = ["DropDistributionComparison", "drop_distribution_comparison", "ascii_histogram"]


@dataclass(frozen=True)
class DropDistributionComparison:
    """Voltage-drop histograms of OPERA and Monte Carlo on a shared axis."""

    node: int
    time_index: int
    bin_centers_percent_vdd: np.ndarray
    opera_percent_occurrence: np.ndarray
    monte_carlo_percent_occurrence: np.ndarray
    opera_mean_percent_vdd: float
    monte_carlo_mean_percent_vdd: float
    opera_sigma_percent_vdd: float
    monte_carlo_sigma_percent_vdd: float

    def histogram_distance(self) -> float:
        """Total-variation-style distance between the two histograms (0..100)."""
        return 0.5 * float(
            np.sum(np.abs(self.opera_percent_occurrence - self.monte_carlo_percent_occurrence))
        )


def drop_distribution_comparison(
    opera: StochasticTransientResult,
    monte_carlo: MonteCarloTransientResult,
    node: int,
    time_index: Optional[int] = None,
    bins: int = 24,
    num_opera_samples: int = 20000,
    rng: Optional[np.random.Generator] = None,
) -> DropDistributionComparison:
    """Compare the drop distribution of one node from OPERA and Monte Carlo.

    ``node`` must be one of the nodes whose waveforms the Monte Carlo sweep
    recorded (``store_nodes``).  The comparison is made at ``time_index``
    (default: the node's peak mean-drop time) and both histograms share the
    same bins so the series can be overlaid exactly as in Figures 1-2.
    """
    if node not in monte_carlo.node_drop_samples:
        raise AnalysisError(
            f"node {node} was not recorded by the Monte Carlo sweep; add it to store_nodes"
        )
    if time_index is None:
        time_index = opera.peak_time_index(node)

    mc_drops = monte_carlo.drop_samples(node, time_index)
    opera_drops = opera.drop_samples(node, time_index, num_samples=num_opera_samples, rng=rng)

    vdd = opera.vdd
    mc_percent = 100.0 * mc_drops / vdd
    opera_percent = 100.0 * opera_drops / vdd

    low = min(mc_percent.min(), opera_percent.min())
    high = max(mc_percent.max(), opera_percent.max())
    if high <= low:
        high = low + 1e-9
    edges = np.linspace(low, high, bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])

    mc_counts, _ = np.histogram(mc_percent, bins=edges)
    opera_counts, _ = np.histogram(opera_percent, bins=edges)

    return DropDistributionComparison(
        node=node,
        time_index=int(time_index),
        bin_centers_percent_vdd=centers,
        opera_percent_occurrence=100.0 * opera_counts / opera_percent.size,
        monte_carlo_percent_occurrence=100.0 * mc_counts / mc_percent.size,
        opera_mean_percent_vdd=float(np.mean(opera_percent)),
        monte_carlo_mean_percent_vdd=float(np.mean(mc_percent)),
        opera_sigma_percent_vdd=float(np.std(opera_percent, ddof=1)),
        monte_carlo_sigma_percent_vdd=float(np.std(mc_percent, ddof=1)),
    )


def ascii_histogram(comparison: DropDistributionComparison, width: int = 50) -> str:
    """Render the two histogram series as a side-by-side ASCII chart."""
    peak = max(
        float(np.max(comparison.opera_percent_occurrence)),
        float(np.max(comparison.monte_carlo_percent_occurrence)),
        1e-9,
    )
    lines = [
        f"voltage drop distribution at node {comparison.node} "
        f"(time index {comparison.time_index})",
        f"{'drop %VDD':>10}  {'OPERA':<{width}}  {'Monte Carlo':<{width}}",
    ]
    for center, opera_value, mc_value in zip(
        comparison.bin_centers_percent_vdd,
        comparison.opera_percent_occurrence,
        comparison.monte_carlo_percent_occurrence,
    ):
        opera_bar = "#" * int(round(width * opera_value / peak))
        mc_bar = "*" * int(round(width * mc_value / peak))
        lines.append(f"{center:>10.2f}  {opera_bar:<{width}}  {mc_bar:<{width}}")
    lines.append(
        "mean %VDD: OPERA "
        f"{comparison.opera_mean_percent_vdd:.3f} vs MC {comparison.monte_carlo_mean_percent_vdd:.3f}; "
        "sigma %VDD: OPERA "
        f"{comparison.opera_sigma_percent_vdd:.3f} vs MC {comparison.monte_carlo_sigma_percent_vdd:.3f}"
    )
    return "\n".join(lines)
