"""SPICE-subset reader and writer for power-grid netlists.

Industrial IR-drop flows exchange power grids as flat SPICE decks containing
only resistors, capacitors, current sources and supply sources.  This module
implements that subset so synthetic grids can be exported, inspected with
standard tools, and re-imported.

Supported cards
---------------

``R<name> n1 n2 value [kind=wire|via|package]``
    Resistor.  The ``kind`` annotation (an extension, written as a trailing
    token) records which variation group the resistor belongs to.

``C<name> n1 n2 value [gate=1]``
    Capacitor; ``gate=1`` marks MOS gate-load capacitance.

``I<name> n+ n- DC value`` / ``PWL(t1 v1 t2 v2 ...)`` / ``PULSE(v1 v2 td tr tf pw per)``
    Drain current source.  ``leakage=1`` marks the leakage component.

``V<name> node 0 DC value [R=resistance]``
    VDD pad: an ideal supply attached to ``node`` through a series
    resistance.  ``R=`` is an extension; when omitted a 1 mOhm series
    resistance is assumed.

Lines starting with ``*`` are comments; ``.end`` and blank lines are ignored.
Values accept the usual SPICE magnitude suffixes (``f p n u m k meg g t``).
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterable, List, TextIO, Tuple, Union

import numpy as np

from ..errors import SpiceFormatError
from ..waveforms import Constant, PeriodicPulse, PiecewiseLinear, Waveform
from .elements import ResistorKind
from .netlist import PowerGridNetlist

__all__ = ["read_spice", "write_spice", "parse_spice_value", "format_spice_value"]

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_VALUE_RE = re.compile(
    r"^\s*([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*(meg|t|g|k|m|u|n|p|f)?\s*$",
    re.IGNORECASE,
)


def parse_spice_value(token: str) -> float:
    """Parse a SPICE numeric token such as ``1.5n`` or ``2meg`` into a float."""
    match = _VALUE_RE.match(token)
    if not match:
        raise SpiceFormatError(f"cannot parse numeric value {token!r}")
    number = float(match.group(1))
    suffix = match.group(2)
    if suffix:
        number *= _SUFFIXES[suffix.lower()]
    return number


def format_spice_value(value: float) -> str:
    """Format a float compactly for a SPICE deck (plain scientific notation)."""
    return f"{value:.6g}"


def _split_keyword_tokens(tokens: Iterable[str]) -> Tuple[List[str], Dict[str, str]]:
    """Split trailing ``key=value`` annotations from positional tokens."""
    positional: List[str] = []
    keywords: Dict[str, str] = {}
    for token in tokens:
        if "=" in token and not token.upper().startswith(("PWL(", "PULSE(")):
            key, _, value = token.partition("=")
            keywords[key.lower()] = value
        else:
            positional.append(token)
    return positional, keywords


def _parse_waveform(tokens: List[str], line_no: int) -> Waveform:
    """Parse the waveform part of a current-source card."""
    joined = " ".join(tokens)
    upper = joined.upper()
    if upper.startswith("DC"):
        value_tokens = tokens[1:]
        if len(value_tokens) != 1:
            raise SpiceFormatError(f"line {line_no}: malformed DC specification")
        return Constant(parse_spice_value(value_tokens[0]))
    if upper.startswith("PWL"):
        inner = joined[joined.index("(") + 1 : joined.rindex(")")]
        numbers = [parse_spice_value(tok) for tok in inner.replace(",", " ").split()]
        if len(numbers) < 4 or len(numbers) % 2:
            raise SpiceFormatError(f"line {line_no}: PWL needs an even number of values")
        times = numbers[0::2]
        values = numbers[1::2]
        return PiecewiseLinear(times, values)
    if upper.startswith("PULSE"):
        inner = joined[joined.index("(") + 1 : joined.rindex(")")]
        numbers = [parse_spice_value(tok) for tok in inner.replace(",", " ").split()]
        if len(numbers) != 7:
            raise SpiceFormatError(f"line {line_no}: PULSE needs 7 values (v1 v2 td tr tf pw per)")
        low, high, delay, rise, fall, width, period = numbers
        return PeriodicPulse(
            low=low, high=high, delay=delay, rise=rise, fall=fall, width=width, period=period
        )
    if len(tokens) == 1:
        return Constant(parse_spice_value(tokens[0]))
    raise SpiceFormatError(f"line {line_no}: unsupported source specification {joined!r}")


def read_spice(source: Union[str, TextIO], name: str = "spice-grid") -> PowerGridNetlist:
    """Read a SPICE-subset deck from a path, deck string, or open file."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = str(source)
        if "\n" not in text and os.path.exists(text):
            with open(text, "r", encoding="utf-8") as handle:
                text = handle.read()

    netlist = PowerGridNetlist(name=name)
    default_pad_resistance = 1.0e-3

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("*"):
            continue
        if line.startswith("."):
            continue
        tokens = line.split()
        card = tokens[0]
        kind_letter = card[0].upper()
        positional, keywords = _split_keyword_tokens(tokens[1:])

        if kind_letter == "R":
            if len(positional) != 3:
                raise SpiceFormatError(f"line {line_no}: resistor needs 'R n1 n2 value'")
            kind = keywords.get("kind", ResistorKind.WIRE)
            netlist.add_resistor(
                positional[0],
                positional[1],
                parse_spice_value(positional[2]),
                kind=kind,
                name=card,
            )
        elif kind_letter == "C":
            if len(positional) != 3:
                raise SpiceFormatError(f"line {line_no}: capacitor needs 'C n1 n2 value'")
            is_gate = keywords.get("gate", "0") in ("1", "true", "yes")
            netlist.add_capacitor(
                positional[0],
                positional[1],
                parse_spice_value(positional[2]),
                is_gate_load=is_gate,
                name=card,
            )
        elif kind_letter == "I":
            if len(positional) < 3:
                raise SpiceFormatError(f"line {line_no}: current source needs 'I n+ n- <spec>'")
            node_plus, node_minus = positional[0], positional[1]
            waveform = _parse_waveform(positional[2:], line_no)
            if not netlist.is_ground(node_minus):
                raise SpiceFormatError(
                    f"line {line_no}: drain current sources must return to ground"
                )
            is_leakage = keywords.get("leakage", "0") in ("1", "true", "yes")
            netlist.add_current_source(
                node_plus,
                waveform,
                block=keywords.get("block"),
                is_leakage=is_leakage,
                name=card,
            )
        elif kind_letter == "V":
            if len(positional) < 3:
                raise SpiceFormatError(f"line {line_no}: pad needs 'V node 0 [DC] value'")
            node, node_minus = positional[0], positional[1]
            if not netlist.is_ground(node_minus):
                raise SpiceFormatError(f"line {line_no}: VDD pads must reference ground")
            value_tokens = positional[2:]
            if value_tokens and value_tokens[0].upper() == "DC":
                value_tokens = value_tokens[1:]
            if len(value_tokens) != 1:
                raise SpiceFormatError(f"line {line_no}: malformed pad voltage")
            vdd = parse_spice_value(value_tokens[0])
            resistance = parse_spice_value(keywords.get("r", str(default_pad_resistance)))
            netlist.add_pad(node, resistance, vdd, name=card)
        else:
            raise SpiceFormatError(
                f"line {line_no}: unsupported element card {card!r} "
                "(only R, C, I and V are part of the power-grid subset)"
            )
    return netlist


def _format_waveform(waveform: Waveform, pwl_horizon: float, pwl_points: int) -> str:
    """Render a waveform as the source-specification part of an ``I`` card."""
    if isinstance(waveform, Constant):
        return f"DC {format_spice_value(waveform.value)}"
    if isinstance(waveform, PiecewiseLinear):
        pairs = " ".join(
            f"{format_spice_value(t)} {format_spice_value(v)}"
            for t, v in zip(waveform.times, waveform.values)
        )
        return f"PWL({pairs})"
    if isinstance(waveform, PeriodicPulse):
        fields = (
            waveform.low,
            waveform.high,
            waveform.delay,
            waveform.rise,
            waveform.fall,
            waveform.width,
            waveform.period,
        )
        return "PULSE(" + " ".join(format_spice_value(v) for v in fields) + ")"
    # Generic fallback: sample to PWL over the requested horizon.
    times = np.linspace(0.0, pwl_horizon, pwl_points)
    values = np.asarray(waveform(times), dtype=float)
    pairs = " ".join(
        f"{format_spice_value(t)} {format_spice_value(v)}" for t, v in zip(times, values)
    )
    return f"PWL({pairs})"


def write_spice(
    netlist: PowerGridNetlist,
    destination: Union[str, TextIO],
    pwl_horizon: float = 8.0e-9,
    pwl_points: int = 64,
) -> None:
    """Write ``netlist`` as a SPICE-subset deck to a path or open file.

    Waveforms that have no native SPICE card (e.g. clock-activity pulse
    trains) are sampled into PWL sources over ``pwl_horizon`` seconds using
    ``pwl_points`` samples.
    """
    lines: List[str] = [f"* power grid netlist: {netlist.name}", "* generated by repro"]
    for index, r in enumerate(netlist.resistors):
        name = r.name or f"R{index}"
        lines.append(f"{name} {r.a} {r.b} {format_spice_value(r.resistance)} kind={r.kind}")
    for index, c in enumerate(netlist.capacitors):
        name = c.name or f"C{index}"
        gate = " gate=1" if c.is_gate_load else ""
        lines.append(f"{name} {c.a} {c.b} {format_spice_value(c.capacitance)}{gate}")
    for index, s in enumerate(netlist.current_sources):
        name = s.name or f"I{index}"
        spec = _format_waveform(s.waveform, pwl_horizon, pwl_points)
        leak = " leakage=1" if s.is_leakage else ""
        block = f" block={s.block}" if s.block else ""
        lines.append(f"{name} {s.node} 0 {spec}{leak}{block}")
    for index, p in enumerate(netlist.pads):
        name = p.name or f"V{index}"
        lines.append(
            f"{name} {p.node} 0 DC {format_spice_value(p.vdd)} "
            f"R={format_spice_value(p.resistance)}"
        )
    lines.append(".end")
    text = "\n".join(lines) + "\n"

    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
