"""Functional-block current models.

The paper models the logic blocks of the chip as *known* transient current
sources attached to the power-grid nodes beneath them, with their
non-switching load capacitance in parallel.  The current profiles are
obtained, in the paper, from logic simulation of each block over a long
random input sequence; here we substitute clock-synchronised pulse trains
with per-cycle random activity factors, which reproduce the same
statistical character (a sharp draw after every clock edge whose height
varies cycle to cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..waveforms import ClockedActivity, Constant, Waveform

__all__ = ["FunctionalBlock", "place_blocks", "block_waveform", "BlockCurrentConfig"]


@dataclass(frozen=True)
class FunctionalBlock:
    """A rectangular logic block drawing current from the grid.

    The footprint is expressed in bottom-layer node coordinates:
    ``row0 <= i < row1`` and ``col0 <= j < col1``.
    """

    name: str
    row0: int
    row1: int
    col0: int
    col1: int
    peak_current: float
    activity_mean: float = 0.6
    activity_spread: float = 0.3

    def __post_init__(self):
        if self.row1 <= self.row0 or self.col1 <= self.col0:
            raise ValueError(f"block {self.name!r} has an empty footprint")
        if self.peak_current <= 0:
            raise ValueError(f"block {self.name!r} must draw positive peak current")
        if not (0.0 < self.activity_mean <= 1.0):
            raise ValueError("activity_mean must be in (0, 1]")
        if not (0.0 <= self.activity_spread <= 1.0):
            raise ValueError("activity_spread must be in [0, 1]")

    @property
    def num_nodes(self) -> int:
        """Number of bottom-layer nodes covered by this block."""
        return (self.row1 - self.row0) * (self.col1 - self.col0)

    @property
    def peak_current_per_node(self) -> float:
        """Peak switching current attributed to each covered node."""
        return self.peak_current / self.num_nodes

    def covers(self, row: int, col: int) -> bool:
        """Return True if bottom-layer node ``(row, col)`` lies under the block."""
        return self.row0 <= row < self.row1 and self.col0 <= col < self.col1

    def node_coordinates(self) -> List[Tuple[int, int]]:
        """All bottom-layer ``(row, col)`` coordinates covered by the block."""
        return [
            (row, col)
            for row in range(self.row0, self.row1)
            for col in range(self.col0, self.col1)
        ]


@dataclass(frozen=True)
class BlockCurrentConfig:
    """Parameters controlling block current waveform synthesis."""

    clock_period: float = 1.0e-9
    num_cycles: int = 8
    rise_fraction: float = 0.2
    duty_fraction: float = 0.6


def place_blocks(
    nx: int,
    ny: int,
    num_blocks: int,
    rng: np.random.Generator,
    total_peak_current: float = 1.0,
    min_span: int = 2,
) -> List[FunctionalBlock]:
    """Place ``num_blocks`` rectangular functional blocks on an ``nx x ny`` grid.

    Blocks are placed on a regular tile pattern (so that every run covers a
    healthy portion of the die) and then jittered in size; the total peak
    current budget is split randomly but reproducibly across blocks.

    Parameters
    ----------
    nx, ny:
        Bottom-layer grid dimensions (rows, columns).
    num_blocks:
        Number of blocks to generate (at least 1).
    rng:
        Random generator driving placement, sizes and current split.
    total_peak_current:
        Sum of the per-block peak currents, in amps.
    min_span:
        Minimum block extent, in nodes, along each axis.
    """
    if num_blocks < 1:
        raise ValueError("num_blocks must be at least 1")
    if nx < min_span or ny < min_span:
        raise ValueError("grid too small for the requested block span")

    # Arrange the blocks on a ceil(sqrt) x ceil(sqrt) tile pattern.
    tiles_per_side = int(np.ceil(np.sqrt(num_blocks)))
    tile_rows = max(nx // tiles_per_side, min_span)
    tile_cols = max(ny // tiles_per_side, min_span)

    weights = rng.uniform(0.5, 1.5, size=num_blocks)
    weights = weights / weights.sum()

    blocks: List[FunctionalBlock] = []
    for b in range(num_blocks):
        tile_r = b // tiles_per_side
        tile_c = b % tiles_per_side
        row0 = min(tile_r * tile_rows, nx - min_span)
        col0 = min(tile_c * tile_cols, ny - min_span)
        max_rows = min(tile_rows, nx - row0)
        max_cols = min(tile_cols, ny - col0)
        span_r = int(rng.integers(min_span, max(max_rows, min_span) + 1))
        span_c = int(rng.integers(min_span, max(max_cols, min_span) + 1))
        row1 = min(row0 + span_r, nx)
        col1 = min(col0 + span_c, ny)
        blocks.append(
            FunctionalBlock(
                name=f"block{b}",
                row0=row0,
                row1=row1,
                col0=col0,
                col1=col1,
                peak_current=float(total_peak_current * weights[b]),
                activity_mean=float(rng.uniform(0.4, 0.8)),
                activity_spread=float(rng.uniform(0.1, 0.4)),
            )
        )
    return blocks


def block_waveform(
    block: FunctionalBlock,
    config: BlockCurrentConfig,
    rng: np.random.Generator,
) -> Waveform:
    """Synthesise the per-node switching-current waveform for a block.

    Returns a :class:`~repro.waveforms.ClockedActivity` waveform whose peak is
    the block's per-node peak current and whose per-cycle activity factors are
    drawn from the block's activity distribution (clipped to [0.05, 1]).
    """
    activity = rng.normal(
        loc=block.activity_mean, scale=block.activity_spread, size=config.num_cycles
    )
    activity = np.clip(activity, 0.05, 1.0)
    return ClockedActivity(
        period=config.clock_period,
        peak=block.peak_current_per_node,
        activity=tuple(float(a) for a in activity),
        rise_fraction=config.rise_fraction,
        duty_fraction=config.duty_fraction,
    )


def block_leakage_waveform(block: FunctionalBlock, leakage_fraction: float) -> Waveform:
    """Constant per-node leakage current for a block.

    Leakage is modelled as ``leakage_fraction`` of the block's average
    switching current (about 5 % in the technologies the paper cites),
    spread uniformly over the block's nodes.
    """
    average_switching = block.peak_current * block.activity_mean * 0.5
    per_node = leakage_fraction * average_switching / block.num_nodes
    return Constant(max(per_node, 0.0))
