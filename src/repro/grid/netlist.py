"""Netlist container for power-grid circuits.

A :class:`PowerGridNetlist` owns the node name space and the element lists
(resistors, capacitors, current sources, VDD pads).  It performs structural
validation (unknown nodes, dangling nodes, supply reachability) but contains
no numerics; matrix assembly lives in :mod:`repro.grid.stamping`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import NetlistError
from ..waveforms import Waveform, as_waveform
from .elements import Capacitor, CurrentSource, Resistor, ResistorKind, VddPad

__all__ = ["PowerGridNetlist", "NetlistStats", "GROUND_NAMES"]

#: Node names treated as the ground / reference node.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "vss", "VSS"})


@dataclass(frozen=True)
class NetlistStats:
    """Summary counts for a netlist."""

    num_nodes: int
    num_resistors: int
    num_capacitors: int
    num_current_sources: int
    num_pads: int

    def __str__(self) -> str:
        return (
            f"{self.num_nodes} nodes, {self.num_resistors} resistors, "
            f"{self.num_capacitors} capacitors, "
            f"{self.num_current_sources} current sources, {self.num_pads} pads"
        )


class PowerGridNetlist:
    """A power-grid circuit: nodes plus R/C/I/pad elements.

    Node names are arbitrary strings; ground aliases (``0``, ``gnd``, ``vss``)
    are recognised and never allocated an index.  Non-ground nodes receive
    dense integer indices in order of first appearance, which is also the
    column/row ordering of the MNA matrices produced by the stamper.
    """

    def __init__(self, name: str = "grid"):
        self.name = name
        self._node_index: Dict[str, int] = {}
        self._node_names: List[str] = []
        self.resistors: List[Resistor] = []
        self.capacitors: List[Capacitor] = []
        self.current_sources: List[CurrentSource] = []
        self.pads: List[VddPad] = []

    # ------------------------------------------------------------------ nodes
    @staticmethod
    def is_ground(node: str) -> bool:
        """Return ``True`` if ``node`` names the ground/reference node."""
        return node in GROUND_NAMES

    def add_node(self, name: str) -> Optional[int]:
        """Register ``name`` and return its index (``None`` for ground)."""
        if self.is_ground(name):
            return None
        if name not in self._node_index:
            self._node_index[name] = len(self._node_names)
            self._node_names.append(name)
        return self._node_index[name]

    def node_index(self, name: str) -> int:
        """Return the index of a non-ground node, raising if unknown."""
        if self.is_ground(name):
            raise NetlistError("the ground node has no index")
        try:
            return self._node_index[name]
        except KeyError:
            raise NetlistError(f"unknown node {name!r} in netlist {self.name!r}") from None

    def has_node(self, name: str) -> bool:
        return self.is_ground(name) or name in self._node_index

    @property
    def node_names(self) -> Sequence[str]:
        """Non-ground node names in index order."""
        return tuple(self._node_names)

    @property
    def num_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_names)

    # --------------------------------------------------------------- elements
    def add_resistor(
        self,
        a: str,
        b: str,
        resistance: float,
        kind: str = ResistorKind.WIRE,
        name: Optional[str] = None,
    ) -> Resistor:
        """Add a resistor between nodes ``a`` and ``b`` and return it."""
        element = Resistor(a=a, b=b, resistance=resistance, kind=kind, name=name)
        self.add_node(a)
        self.add_node(b)
        self.resistors.append(element)
        return element

    def add_capacitor(
        self,
        a: str,
        b: str,
        capacitance: float,
        is_gate_load: bool = False,
        name: Optional[str] = None,
    ) -> Capacitor:
        """Add a capacitor between nodes ``a`` and ``b`` and return it."""
        element = Capacitor(a=a, b=b, capacitance=capacitance, is_gate_load=is_gate_load, name=name)
        self.add_node(a)
        self.add_node(b)
        self.capacitors.append(element)
        return element

    def add_current_source(
        self,
        node: str,
        waveform: Waveform,
        block: Optional[str] = None,
        is_leakage: bool = False,
        name: Optional[str] = None,
    ) -> CurrentSource:
        """Add a drain current source at ``node`` (current flows to ground)."""
        if self.is_ground(node):
            raise NetlistError("a current source cannot be attached to ground only")
        element = CurrentSource(
            node=node,
            waveform=as_waveform(waveform),
            block=block,
            is_leakage=is_leakage,
            name=name,
        )
        self.add_node(node)
        self.current_sources.append(element)
        return element

    def add_pad(
        self, node: str, resistance: float, vdd: float, name: Optional[str] = None
    ) -> VddPad:
        """Add a VDD pad (ideal supply through a series resistance) at ``node``."""
        if self.is_ground(node):
            raise NetlistError("a VDD pad cannot be attached to the ground node")
        element = VddPad(node=node, resistance=resistance, vdd=vdd, name=name)
        self.add_node(node)
        self.pads.append(element)
        return element

    # ------------------------------------------------------------- inspection
    def stats(self) -> NetlistStats:
        """Return element and node counts."""
        return NetlistStats(
            num_nodes=self.num_nodes,
            num_resistors=len(self.resistors),
            num_capacitors=len(self.capacitors),
            num_current_sources=len(self.current_sources),
            num_pads=len(self.pads),
        )

    @property
    def vdd(self) -> float:
        """Nominal supply voltage, taken from the pads (must agree)."""
        if not self.pads:
            raise NetlistError(f"netlist {self.name!r} has no VDD pads")
        values = {pad.vdd for pad in self.pads}
        if len(values) > 1:
            raise NetlistError("pads disagree on VDD; a single supply level is required")
        return next(iter(values))

    def nodes_with_current_sources(self) -> List[int]:
        """Indices of nodes that have at least one attached current source."""
        seen = set()
        out: List[int] = []
        for source in self.current_sources:
            idx = self.node_index(source.node)
            if idx not in seen:
                seen.add(idx)
                out.append(idx)
        return out

    def pad_node_indices(self) -> List[int]:
        """Indices of nodes with at least one VDD pad."""
        seen = set()
        out: List[int] = []
        for pad in self.pads:
            idx = self.node_index(pad.node)
            if idx not in seen:
                seen.add(idx)
                out.append(idx)
        return out

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural sanity; raise :class:`NetlistError` on problems.

        Checks performed:

        * the netlist has at least one node, one pad and one current source
          path to be a meaningful power grid (pads are required; sources are
          allowed to be absent for pure-structure tests);
        * every non-ground node is connected to some VDD pad through the
          resistive network (otherwise its DC voltage is undefined).
        """
        if self.num_nodes == 0:
            raise NetlistError(f"netlist {self.name!r} has no nodes")
        if not self.pads:
            raise NetlistError(f"netlist {self.name!r} has no VDD pads")

        parent = list(range(self.num_nodes))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[ri] = rj

        for resistor in self.resistors:
            if self.is_ground(resistor.a) or self.is_ground(resistor.b):
                # Resistors to ground do not help supply reachability.
                continue
            union(self.node_index(resistor.a), self.node_index(resistor.b))

        pad_roots = {find(idx) for idx in self.pad_node_indices()}
        unreachable = [name for name, idx in self._node_index.items() if find(idx) not in pad_roots]
        if unreachable:
            sample = ", ".join(sorted(unreachable)[:5])
            raise NetlistError(
                f"{len(unreachable)} node(s) are not resistively connected to any "
                f"VDD pad (e.g. {sample}); their DC voltages would be undefined"
            )

    # ------------------------------------------------------------------ misc
    def merge_from(self, other: "PowerGridNetlist", prefix: str = "") -> None:
        """Append all elements of ``other``, optionally prefixing node names."""

        def rename(node: str) -> str:
            return node if self.is_ground(node) or not prefix else prefix + node

        for r in other.resistors:
            self.add_resistor(rename(r.a), rename(r.b), r.resistance, r.kind, r.name)
        for c in other.capacitors:
            self.add_capacitor(rename(c.a), rename(c.b), c.capacitance, c.is_gate_load, c.name)
        for s in other.current_sources:
            self.add_current_source(rename(s.node), s.waveform, s.block, s.is_leakage, s.name)
        for p in other.pads:
            self.add_pad(rename(p.node), p.resistance, p.vdd, p.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PowerGridNetlist({self.name!r}: {self.stats()})"
