"""Modified nodal analysis (MNA) matrix assembly for power-grid netlists.

The stamper turns a :class:`~repro.grid.netlist.PowerGridNetlist` into the
sparse matrices of the MNA equation of the paper (Eq. (1)):

``(G + sC) x(s) = U(s)``  with  ``U(s) = G1 * VDD - i(s)``

where ``x`` are the node voltages, ``G1 * VDD`` is the contribution of the
VDD pads (ideal supply through a series resistance) and ``i(s)`` are the
functional-block drain currents.

Because the process-variation model needs to perturb different element groups
differently (interconnect conductance follows W/T, gate-load capacitance
follows Leff, the package resistance is off-die), the stamper keeps the
groups separate:

* ``g_wire``    -- conductance of wires and vias,
* ``g_package`` -- conductance of the pad series resistances,
* ``c_gate``    -- MOS gate-load capacitance,
* ``c_fixed``   -- wire + diffusion capacitance.

The full nominal matrices are simply the sums of the group matrices.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import StampingError
from ..waveforms import Waveform
from .netlist import PowerGridNetlist

__all__ = ["StampedSystem", "stamp"]

#: Bound on the memoised drain-current evaluations (distinct time points).
_DRAIN_CACHE_SIZE = 256


def _two_terminal_stamp(rows, cols, vals, i: Optional[int], j: Optional[int], value: float):
    """Append the 2x2 conductance/capacitance stamp for a branch value."""
    if i is not None:
        rows.append(i)
        cols.append(i)
        vals.append(value)
    if j is not None:
        rows.append(j)
        cols.append(j)
        vals.append(value)
    if i is not None and j is not None:
        rows.append(i)
        cols.append(j)
        vals.append(-value)
        rows.append(j)
        cols.append(i)
        vals.append(-value)


@dataclass
class StampedSystem:
    """Sparse MNA matrices and excitation data for a power grid.

    All matrices are ``n x n`` CSR matrices over the non-ground nodes, indexed
    consistently with ``node_names``.
    """

    node_names: Tuple[str, ...]
    vdd: float
    g_wire: sp.csr_matrix
    g_package: sp.csr_matrix
    c_gate: sp.csr_matrix
    c_fixed: sp.csr_matrix
    pad_current: np.ndarray
    source_nodes: np.ndarray
    source_waveforms: Tuple[Waveform, ...]
    source_is_leakage: np.ndarray
    pad_nodes: np.ndarray

    # ------------------------------------------------------------ properties
    @property
    def num_nodes(self) -> int:
        return len(self.node_names)

    @property
    def conductance(self) -> sp.csr_matrix:
        """Nominal conductance matrix ``G = G_wire + G_package``."""
        return (self.g_wire + self.g_package).tocsr()

    @property
    def capacitance(self) -> sp.csr_matrix:
        """Nominal capacitance matrix ``C = C_gate + C_fixed``."""
        return (self.c_gate + self.c_fixed).tocsr()

    # ------------------------------------------------------------ excitation
    def enable_drain_cache(self) -> None:
        """Memoise :meth:`drain_current_vector` per ``(t, include_leakage)``.

        Opt-in for callers that share this stamped system across many runs
        on one fixed time grid -- the sweep runner's session cache enables
        it so every corner session (and the excitation sensitivities, which
        revisit the very same time points) pays the waveform sum once.  It
        is *not* on by default: single-run engine benchmarks (e.g. the
        OPERA-vs-Monte-Carlo wall-time comparison) measure the uncached
        evaluation cost on both sides.
        """
        if getattr(self, "_drain_cache", None) is None:
            self._drain_cache = OrderedDict()

    def drain_current_vector(self, t: float, include_leakage: bool = True) -> np.ndarray:
        """Total drain current drawn at each node at time ``t`` (amps, >= 0).

        With :meth:`enable_drain_cache` active, evaluations are memoised per
        ``(t, include_leakage)`` in a bounded LRU; the waveform sum is a
        deterministic function of the netlist alone, so cached and uncached
        results are identical.  A fresh copy is returned on every call, so
        callers may mutate the result freely.
        """
        cache = getattr(self, "_drain_cache", None)
        if cache is not None:
            key = (float(t), bool(include_leakage))
            value = cache.get(key)
            if value is not None:
                cache.move_to_end(key)
                return value.copy()
        i = np.zeros(self.num_nodes)
        for node, waveform, leak in zip(
            self.source_nodes, self.source_waveforms, self.source_is_leakage
        ):
            if not include_leakage and leak:
                continue
            i[node] += float(waveform(t))
        if cache is not None:
            cache[key] = i
            while len(cache) > _DRAIN_CACHE_SIZE:
                cache.popitem(last=False)
            return i.copy()
        return i

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_drain_cache", None)
        return state

    def drain_current_matrix(
        self, times: Sequence[float], include_leakage: bool = True
    ) -> np.ndarray:
        """Drain currents for all ``times`` at once; shape ``(n_times, n_nodes)``."""
        times = np.asarray(times, dtype=float)
        out = np.zeros((times.size, self.num_nodes))
        for node, waveform, leak in zip(
            self.source_nodes, self.source_waveforms, self.source_is_leakage
        ):
            if not include_leakage and leak:
                continue
            out[:, node] += np.asarray(waveform(times), dtype=float)
        return out

    def rhs(self, t: float) -> np.ndarray:
        """MNA right-hand side ``U(t) = G1*VDD - i(t)`` at time ``t``."""
        return self.pad_current - self.drain_current_vector(t)

    def rhs_matrix(self, times: Sequence[float]) -> np.ndarray:
        """Right-hand sides for all ``times``; shape ``(n_times, n_nodes)``."""
        return self.pad_current[None, :] - self.drain_current_matrix(times)

    # ---------------------------------------------------------------- helpers
    def node_index(self, name: str) -> int:
        try:
            return self.node_names.index(name)
        except ValueError:
            raise StampingError(f"unknown node {name!r}") from None

    def drop(self, voltages: np.ndarray) -> np.ndarray:
        """Convert node voltages to voltage drops ``VDD - V``."""
        return self.vdd - np.asarray(voltages)


def stamp(netlist: PowerGridNetlist, validate: bool = True) -> StampedSystem:
    """Assemble the sparse MNA matrices for ``netlist``.

    Parameters
    ----------
    netlist:
        The power-grid netlist to stamp.
    validate:
        If true (default), run :meth:`PowerGridNetlist.validate` first so that
        singular systems are rejected with a clear message.
    """
    if validate:
        netlist.validate()

    n = netlist.num_nodes
    vdd = netlist.vdd

    def idx(node: str) -> Optional[int]:
        return None if netlist.is_ground(node) else netlist.node_index(node)

    # --- conductances -------------------------------------------------------
    wire_rows: List[int] = []
    wire_cols: List[int] = []
    wire_vals: List[float] = []
    for r in netlist.resistors:
        _two_terminal_stamp(wire_rows, wire_cols, wire_vals, idx(r.a), idx(r.b), r.conductance)
    g_wire = sp.coo_matrix((wire_vals, (wire_rows, wire_cols)), shape=(n, n)).tocsr()

    pad_rows: List[int] = []
    pad_cols: List[int] = []
    pad_vals: List[float] = []
    pad_current = np.zeros(n)
    pad_nodes: List[int] = []
    for pad in netlist.pads:
        i = netlist.node_index(pad.node)
        pad_rows.append(i)
        pad_cols.append(i)
        pad_vals.append(pad.conductance)
        pad_current[i] += pad.conductance * pad.vdd
        pad_nodes.append(i)
    g_package = sp.coo_matrix((pad_vals, (pad_rows, pad_cols)), shape=(n, n)).tocsr()

    # --- capacitances -------------------------------------------------------
    gate_rows: List[int] = []
    gate_cols: List[int] = []
    gate_vals: List[float] = []
    fixed_rows: List[int] = []
    fixed_cols: List[int] = []
    fixed_vals: List[float] = []
    for c in netlist.capacitors:
        if c.is_gate_load:
            _two_terminal_stamp(gate_rows, gate_cols, gate_vals, idx(c.a), idx(c.b), c.capacitance)
        else:
            _two_terminal_stamp(
                fixed_rows, fixed_cols, fixed_vals, idx(c.a), idx(c.b), c.capacitance
            )
    c_gate = sp.coo_matrix((gate_vals, (gate_rows, gate_cols)), shape=(n, n)).tocsr()
    c_fixed = sp.coo_matrix((fixed_vals, (fixed_rows, fixed_cols)), shape=(n, n)).tocsr()

    # --- current sources ----------------------------------------------------
    source_nodes = np.array(
        [netlist.node_index(s.node) for s in netlist.current_sources], dtype=int
    )
    source_waveforms = tuple(s.waveform for s in netlist.current_sources)
    source_is_leakage = np.array([s.is_leakage for s in netlist.current_sources], dtype=bool)

    return StampedSystem(
        node_names=tuple(netlist.node_names),
        vdd=vdd,
        g_wire=g_wire,
        g_package=g_package,
        c_gate=c_gate,
        c_fixed=c_fixed,
        pad_current=pad_current,
        source_nodes=source_nodes,
        source_waveforms=source_waveforms,
        source_is_leakage=source_is_leakage,
        pad_nodes=np.array(sorted(set(pad_nodes)), dtype=int),
    )
