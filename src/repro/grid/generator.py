"""Synthetic multi-layer power grid generator.

The paper evaluates OPERA on seven proprietary industrial power grids
(19 181 to 351 838 nodes).  This module is the substitution for those grids:
it synthesises multi-layer RC power meshes with

* a dense bottom-layer mesh carrying the functional-block loads,
* progressively coarser upper-layer meshes tied down with via stacks,
* VDD pads (ideal supply through a package resistance) on the top layer,
* functional blocks drawing clock-synchronised switching currents plus a
  small constant leakage component, with their non-switching load
  capacitance attached to the same nodes.

The generator can calibrate the total block current so that the nominal peak
IR drop is a requested fraction of VDD (the paper keeps it below 10 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse.linalg as spla

from ..errors import NetlistError
from .blocks import BlockCurrentConfig, block_leakage_waveform, block_waveform, place_blocks
from .elements import ResistorKind
from .netlist import PowerGridNetlist
from .stamping import stamp
from .technology import Technology, default_technology

__all__ = [
    "GridSpec",
    "generate_power_grid",
    "spec_for_node_count",
    "PAPER_GRID_NODE_COUNTS",
]

#: Node counts of the seven industrial grids reported in Table 1 of the paper.
PAPER_GRID_NODE_COUNTS: Tuple[int, ...] = (
    19181,
    25813,
    34938,
    49262,
    62812,
    91729,
    351838,
)


@dataclass(frozen=True)
class GridSpec:
    """Parameters of a synthetic power grid.

    Attributes
    ----------
    nx, ny:
        Bottom-layer mesh dimensions (rows x columns of nodes).
    num_layers:
        Number of power metal layers; upper layers are coarsened copies of
        the bottom mesh connected through via stacks.
    coarsening:
        Node decimation factor applied per layer when going up the stack.
    num_blocks:
        Number of functional blocks placed on the bottom layer.
    pad_spacing:
        Spacing between VDD pads on the top layer, in top-layer node units.
    total_peak_current:
        Total peak switching current of all blocks before calibration, amps.
    target_peak_drop_fraction:
        If ``calibrate`` is true, the block currents are scaled so that the
        worst-case nominal DC drop equals this fraction of VDD.
    calibrate:
        Whether to run the DC calibration pass.
    technology:
        Process technology; defaults to :func:`default_technology`.
    block_config:
        Clocking parameters of the synthetic block current waveforms.
    seed:
        Seed of the generator used for block placement and activity factors.
    name:
        Netlist name.
    """

    nx: int = 30
    ny: int = 30
    num_layers: int = 2
    coarsening: int = 4
    num_blocks: int = 9
    pad_spacing: int = 2
    total_peak_current: float = 1.0
    target_peak_drop_fraction: float = 0.08
    calibrate: bool = True
    technology: Optional[Technology] = None
    block_config: BlockCurrentConfig = field(default_factory=BlockCurrentConfig)
    seed: int = 0
    name: str = "synthetic-grid"

    def __post_init__(self):
        if self.nx < 2 or self.ny < 2:
            raise ValueError("the bottom mesh must be at least 2 x 2 nodes")
        if self.num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        if self.coarsening < 2:
            raise ValueError("coarsening must be at least 2")
        if self.pad_spacing < 1:
            raise ValueError("pad_spacing must be at least 1")
        if not (0.0 < self.target_peak_drop_fraction < 0.5):
            raise ValueError("target_peak_drop_fraction must be in (0, 0.5)")

    def resolved_technology(self) -> Technology:
        """Return the technology, constructing the default if none was given."""
        if self.technology is not None:
            if self.technology.num_layers < self.num_layers:
                raise ValueError("technology metal stack has fewer layers than the grid spec")
            return self.technology
        return default_technology(num_layers=self.num_layers)

    def estimated_node_count(self) -> int:
        """Approximate total node count over all layers."""
        total = 0
        for level in range(self.num_layers):
            step = self.coarsening**level
            total += len(range(0, self.nx, step)) * len(range(0, self.ny, step))
        return total


def node_name(layer: int, row: int, col: int) -> str:
    """Canonical node name for layer/row/column coordinates."""
    return f"n{layer}_{row}_{col}"


def _layer_coordinates(spec: GridSpec, layer: int) -> Tuple[List[int], List[int]]:
    step = spec.coarsening**layer
    rows = list(range(0, spec.nx, step))
    cols = list(range(0, spec.ny, step))
    return rows, cols


def _build_netlist(spec: GridSpec, current_scale: float) -> PowerGridNetlist:
    """Build the netlist with block currents and load caps scaled by ``current_scale``."""
    tech = spec.resolved_technology()
    rng = np.random.default_rng(spec.seed)
    netlist = PowerGridNetlist(name=spec.name)

    bottom_pitch = tech.layer(0).pitch

    # --- meshes on every layer ---------------------------------------------
    for layer in range(spec.num_layers):
        rows, cols = _layer_coordinates(spec, layer)
        metal = tech.layer(layer)
        step = spec.coarsening**layer
        segment_length = step * bottom_pitch
        resistance = metal.wire_resistance(segment_length)

        for ri, row in enumerate(rows):
            for ci, col in enumerate(cols):
                here = node_name(layer, row, col)
                netlist.add_node(here)
                if ci + 1 < len(cols):
                    right = node_name(layer, row, cols[ci + 1])
                    netlist.add_resistor(here, right, resistance, ResistorKind.WIRE)
                if ri + 1 < len(rows):
                    down = node_name(layer, rows[ri + 1], col)
                    netlist.add_resistor(here, down, resistance, ResistorKind.WIRE)

    # --- via stacks between adjacent layers ---------------------------------
    for layer in range(1, spec.num_layers):
        rows, cols = _layer_coordinates(spec, layer)
        for row in rows:
            for col in cols:
                upper = node_name(layer, row, col)
                lower = node_name(layer - 1, row, col)
                netlist.add_resistor(upper, lower, tech.via_stack_resistance, ResistorKind.VIA)

    # --- VDD pads on the top layer ------------------------------------------
    top = spec.num_layers - 1
    rows, cols = _layer_coordinates(spec, top)
    pad_rows = rows[:: spec.pad_spacing] or [rows[0]]
    pad_cols = cols[:: spec.pad_spacing] or [cols[0]]
    for row in pad_rows:
        for col in pad_cols:
            netlist.add_pad(node_name(top, row, col), tech.package_resistance, tech.vdd)

    # --- functional blocks: currents and load capacitance --------------------
    blocks = place_blocks(
        spec.nx,
        spec.ny,
        spec.num_blocks,
        rng,
        total_peak_current=spec.total_peak_current * current_scale,
    )
    for block in blocks:
        waveform = block_waveform(block, spec.block_config, rng)
        leakage = block_leakage_waveform(block, tech.leakage_fraction)
        load_cap = tech.block_cap_per_current * block.peak_current_per_node
        gate_cap = tech.gate_cap_fraction * load_cap
        fixed_cap = load_cap - gate_cap
        for row, col in block.node_coordinates():
            node = node_name(0, row, col)
            netlist.add_current_source(node, waveform, block=block.name)
            netlist.add_current_source(node, leakage, block=block.name, is_leakage=True)
            if gate_cap > 0:
                netlist.add_capacitor(node, "0", gate_cap, is_gate_load=True)
            if fixed_cap > 0:
                netlist.add_capacitor(node, "0", fixed_cap, is_gate_load=False)

    # --- parasitic wire capacitance on every bottom-layer node ---------------
    if tech.wire_cap_per_node > 0:
        for row in range(spec.nx):
            for col in range(spec.ny):
                netlist.add_capacitor(node_name(0, row, col), "0", tech.wire_cap_per_node)

    return netlist


def _peak_drop(netlist: PowerGridNetlist, horizon: float) -> float:
    """Worst-case nominal DC drop with every source at its peak value."""
    stamped = stamp(netlist, validate=True)
    peak_current = np.zeros(stamped.num_nodes)
    for source in netlist.current_sources:
        idx = netlist.node_index(source.node)
        peak_current[idx] += source.waveform.max_abs(t_end=horizon)
    rhs = stamped.pad_current - peak_current
    voltages = spla.spsolve(stamped.conductance.tocsc(), rhs)
    return float(np.max(stamped.vdd - voltages))


def generate_power_grid(spec: GridSpec) -> PowerGridNetlist:
    """Generate a synthetic power grid netlist from ``spec``.

    When ``spec.calibrate`` is true the generator performs a worst-case DC
    solve and rescales the block currents (and the proportional load
    capacitances) so that the worst nominal drop equals
    ``spec.target_peak_drop_fraction * VDD``.
    """
    netlist = _build_netlist(spec, current_scale=1.0)
    if not spec.calibrate:
        return netlist

    horizon = spec.block_config.clock_period * spec.block_config.num_cycles
    drop = _peak_drop(netlist, horizon)
    if drop <= 0:
        raise NetlistError("calibration failed: non-positive worst-case drop")
    target = spec.target_peak_drop_fraction * spec.resolved_technology().vdd
    scale = target / drop
    return _build_netlist(spec, current_scale=scale)


def spec_for_node_count(
    target_nodes: int,
    num_layers: int = 2,
    coarsening: int = 4,
    **overrides,
) -> GridSpec:
    """Return a :class:`GridSpec` whose node count approximates ``target_nodes``.

    The bottom mesh is made square; extra keyword arguments are forwarded to
    :class:`GridSpec`.
    """
    if target_nodes < 4:
        raise ValueError("target_nodes must be at least 4")
    density = sum(coarsening ** (-2 * level) for level in range(num_layers))
    side = max(int(round(math.sqrt(target_nodes / density))), 2)
    return GridSpec(
        nx=side,
        ny=side,
        num_layers=num_layers,
        coarsening=coarsening,
        **overrides,
    )
