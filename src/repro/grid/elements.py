"""Circuit element records stored in a power-grid netlist.

The power grid model follows Section 3 of the paper:

* metal interconnect and vias -> passive resistors and capacitors;
* functional blocks -> transient current sources to ground in parallel with
  their non-switching load capacitance;
* power sources -> ideal VDD sources in series with a package resistance,
  represented here by :class:`VddPad`.

Elements are lightweight frozen dataclasses; all electrical behaviour lives in
the stamping and simulation layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import NetlistError
from ..waveforms import Waveform, as_waveform

__all__ = [
    "ResistorKind",
    "Resistor",
    "Capacitor",
    "CurrentSource",
    "VddPad",
]


class ResistorKind:
    """Categories of resistive elements; used by the variation model.

    Interconnect wires and vias scale with metal width/thickness variations,
    while the package resistance is off-die and is held at its nominal value
    unless the model is told otherwise.
    """

    WIRE = "wire"
    VIA = "via"
    PACKAGE = "package"

    ALL = (WIRE, VIA, PACKAGE)


@dataclass(frozen=True)
class Resistor:
    """A two-terminal resistor between nodes ``a`` and ``b``."""

    a: str
    b: str
    resistance: float
    kind: str = ResistorKind.WIRE
    name: Optional[str] = None

    def __post_init__(self):
        if self.resistance <= 0.0:
            raise NetlistError(
                f"resistor {self.name or ''} between {self.a!r} and {self.b!r} "
                f"has non-positive resistance {self.resistance!r}"
            )
        if self.kind not in ResistorKind.ALL:
            raise NetlistError(f"unknown resistor kind {self.kind!r}")
        if self.a == self.b:
            raise NetlistError("resistor terminals must be distinct nodes")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclass(frozen=True)
class Capacitor:
    """A two-terminal capacitor; ``is_gate_load`` marks MOS gate capacitance.

    Gate load capacitance is the portion of the grid capacitance that varies
    with the device channel length Leff (about 40 % of the total in the
    paper's model); wire and diffusion capacitance is held nominal.
    """

    a: str
    b: str
    capacitance: float
    is_gate_load: bool = False
    name: Optional[str] = None

    def __post_init__(self):
        if self.capacitance <= 0.0:
            raise NetlistError(
                f"capacitor {self.name or ''} between {self.a!r} and {self.b!r} "
                f"has non-positive capacitance {self.capacitance!r}"
            )
        if self.a == self.b:
            raise NetlistError("capacitor terminals must be distinct nodes")


@dataclass(frozen=True)
class CurrentSource:
    """A transient drain current from ``node`` to ground.

    Positive waveform values mean current drawn *out of* the grid node (the
    usual convention for power drains).  ``is_leakage`` tags the leakage
    component, which the special-case analysis of Section 5.1 treats as a
    lognormal random quantity.
    """

    node: str
    waveform: Waveform
    block: Optional[str] = None
    is_leakage: bool = False
    name: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "waveform", as_waveform(self.waveform))


@dataclass(frozen=True)
class VddPad:
    """An ideal VDD source connected to ``node`` through a series resistance.

    This models a package pin / C4 bump contact: the ideal external supply in
    series with the pin resistance, exactly as in the paper's grid model.
    """

    node: str
    resistance: float
    vdd: float
    name: Optional[str] = None

    def __post_init__(self):
        if self.resistance <= 0.0:
            raise NetlistError(f"pad at node {self.node!r} must have positive series resistance")
        if self.vdd <= 0.0:
            raise NetlistError(f"pad at node {self.node!r} must have positive VDD")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance
