"""Technology description used by the synthetic power grid generator.

The paper evaluates OPERA on proprietary industrial grids.  This module
provides the technology-level substitution: a small set of process parameters
(metal stack, via and package resistances, device capacitance shares) from
which the generator in :mod:`repro.grid.generator` synthesises realistic
multi-layer RC power meshes.

The numbers in :func:`default_technology` are representative of a 90 nm-class
process (the node the paper targets); they only set absolute scales -- the
stochastic analysis itself works with *relative* variations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["MetalLayer", "Technology", "default_technology"]


@dataclass(frozen=True)
class MetalLayer:
    """Geometry and electrical properties of one power-grid metal layer.

    Attributes
    ----------
    name:
        Layer label, e.g. ``"M2"``.
    resistivity:
        Metal resistivity in ohm * um (so resistance = rho * L / (W * T) with
        all lengths in um gives ohms).
    width:
        Drawn wire width in um.
    thickness:
        Metal thickness in um.
    pitch:
        Distance between parallel power stripes on this layer, in um.
    direction:
        ``"horizontal"`` or ``"vertical"`` routing direction.
    """

    name: str
    resistivity: float = 0.022
    width: float = 1.0
    thickness: float = 0.35
    pitch: float = 30.0
    direction: str = "horizontal"

    def __post_init__(self):
        if self.resistivity <= 0 or self.width <= 0 or self.thickness <= 0:
            raise ValueError("resistivity, width and thickness must be positive")
        if self.pitch <= 0:
            raise ValueError("pitch must be positive")
        if self.direction not in ("horizontal", "vertical"):
            raise ValueError("direction must be 'horizontal' or 'vertical'")

    @property
    def sheet_resistance(self) -> float:
        """Sheet resistance in ohm/square (rho / thickness)."""
        return self.resistivity / self.thickness

    def wire_resistance(self, length: float) -> float:
        """Resistance of a wire segment of ``length`` um on this layer."""
        if length <= 0:
            raise ValueError("length must be positive")
        return self.resistivity * length / (self.width * self.thickness)


@dataclass(frozen=True)
class Technology:
    """Process technology parameters for grid synthesis and variation modelling.

    Attributes
    ----------
    name:
        Human-readable technology label.
    vdd:
        Nominal supply voltage in volts.
    metal_layers:
        Metal stack used by the power grid, ordered bottom (device layer
        side) to top (package side).
    via_resistance:
        Resistance of a single inter-layer via cut, in ohms.
    vias_per_stack:
        Number of parallel via cuts per via stack between layers.
    package_resistance:
        Series resistance of one package pin / C4 bump connection, in ohms.
    block_cap_per_current:
        Non-switching load capacitance attached per ampere of peak block
        current, in farads per ampere.  Models the gate + diffusion
        capacitance of the logic that draws the current.
    wire_cap_per_node:
        Small parasitic wire capacitance attached to every grid node, in F.
    gate_cap_fraction:
        Fraction of the total grid capacitance contributed by MOS gate
        capacitance (the part that varies with Leff); 40 % in the paper.
    leakage_fraction:
        Fraction of the total block current drawn as leakage; about 5 % in the
        technologies the paper considers.
    """

    name: str = "generic-90nm"
    vdd: float = 1.2
    metal_layers: Tuple[MetalLayer, ...] = field(default_factory=tuple)
    via_resistance: float = 1.0
    vias_per_stack: int = 4
    package_resistance: float = 0.05
    block_cap_per_current: float = 3.0e-10
    wire_cap_per_node: float = 1.0e-15
    gate_cap_fraction: float = 0.40
    leakage_fraction: float = 0.05

    def __post_init__(self):
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.via_resistance <= 0 or self.package_resistance <= 0:
            raise ValueError("via and package resistances must be positive")
        if self.vias_per_stack < 1:
            raise ValueError("vias_per_stack must be at least 1")
        if not (0.0 <= self.gate_cap_fraction <= 1.0):
            raise ValueError("gate_cap_fraction must lie in [0, 1]")
        if not (0.0 <= self.leakage_fraction <= 1.0):
            raise ValueError("leakage_fraction must lie in [0, 1]")

    @property
    def num_layers(self) -> int:
        return len(self.metal_layers)

    def layer(self, index: int) -> MetalLayer:
        """Return metal layer ``index`` (0 = bottom of the power stack)."""
        return self.metal_layers[index]

    @property
    def via_stack_resistance(self) -> float:
        """Effective resistance of one inter-layer via stack."""
        return self.via_resistance / self.vias_per_stack

    def with_vdd(self, vdd: float) -> "Technology":
        """Return a copy of this technology with a different supply voltage."""
        return replace(self, vdd=vdd)


def default_technology(num_layers: int = 2, vdd: float = 1.2) -> Technology:
    """Return a representative 90 nm-class power-grid technology.

    Parameters
    ----------
    num_layers:
        Number of power metal layers (1 to 4).  Layers alternate routing
        direction and become wider / thicker / sparser going up the stack,
        as real power grids do.
    vdd:
        Nominal supply voltage.
    """
    if not (1 <= num_layers <= 4):
        raise ValueError("num_layers must be between 1 and 4")

    stack = []
    widths = [0.6, 1.2, 2.4, 4.8]
    thicknesses = [0.25, 0.35, 0.55, 0.9]
    pitches = [10.0, 20.0, 40.0, 80.0]
    for level in range(num_layers):
        direction = "horizontal" if level % 2 == 0 else "vertical"
        stack.append(
            MetalLayer(
                name=f"M{level + 4}",
                resistivity=0.022,
                width=widths[level],
                thickness=thicknesses[level],
                pitch=pitches[level],
                direction=direction,
            )
        )
    return Technology(
        name=f"generic-90nm-{num_layers}layer",
        vdd=vdd,
        metal_layers=tuple(stack),
    )
