"""Power-grid substrate: technology, netlists, synthetic grids and MNA stamping."""

from .blocks import BlockCurrentConfig, FunctionalBlock, block_waveform, place_blocks
from .elements import Capacitor, CurrentSource, Resistor, ResistorKind, VddPad
from .generator import (
    PAPER_GRID_NODE_COUNTS,
    GridSpec,
    generate_power_grid,
    spec_for_node_count,
)
from .netlist import GROUND_NAMES, NetlistStats, PowerGridNetlist
from .spice_io import read_spice, write_spice
from .stamping import StampedSystem, stamp
from .technology import MetalLayer, Technology, default_technology

__all__ = [
    "BlockCurrentConfig",
    "FunctionalBlock",
    "block_waveform",
    "place_blocks",
    "Capacitor",
    "CurrentSource",
    "Resistor",
    "ResistorKind",
    "VddPad",
    "PAPER_GRID_NODE_COUNTS",
    "GridSpec",
    "generate_power_grid",
    "spec_for_node_count",
    "GROUND_NAMES",
    "NetlistStats",
    "PowerGridNetlist",
    "read_spice",
    "write_spice",
    "StampedSystem",
    "stamp",
    "MetalLayer",
    "Technology",
    "default_technology",
]
