"""Parallel sweep subsystem: plans, process-pool execution, bench artifacts.

This package executes many analyses -- a grid of ``node counts x engines x
chaos orders x variation corners`` -- in parallel and serialises the
outcome as a versioned benchmark artifact:

* :mod:`repro.sweep.plan` -- :class:`SweepCase` / :class:`SweepPlan`, the
  declarative, picklable description of what to run, with deterministic
  per-case seeds;
* :mod:`repro.sweep.store` -- :class:`ResultsBackend` and its two
  implementations: the default in-memory :class:`MemoryBackend` and the
  chunked, append-only :class:`ShardedNpzBackend` for resumable on-disk
  campaigns;
* :mod:`repro.sweep.runner` -- :class:`SweepRunner`, fanning cases out over
  a :class:`concurrent.futures.ProcessPoolExecutor` with a per-worker
  session cache and streaming completed cases into the backend (results
  are identical for any worker count and any interrupt/resume split);
  :class:`SweepOutcome` is a lazy read-view over the backend;
* :mod:`repro.sweep.record` -- :class:`BenchRecord`, the JSON artifact
  (export views :func:`record_from_outcome` / :func:`record_from_store`);
* :mod:`repro.sweep.regress` -- the wall-time regression gate used by CI
  (``python -m repro.sweep baseline.json current.json``).

Quick start::

    from repro.sweep import SweepPlan, SweepRunner, record_from_outcome

    plan = SweepPlan.grid([600, 1200], engines=("opera", "montecarlo"),
                          orders=(2,), samples=100)
    outcome = SweepRunner(workers=4).run(plan)
    record_from_outcome(outcome).write("benchmarks/results/sweep.json")

Resumable campaigns persist every completed case as it finishes and skip
the stored ones on the next run::

    from repro.sweep import ShardedNpzBackend

    store = ShardedNpzBackend("campaign-store/")
    outcome = SweepRunner(workers=4).resume(plan, store)   # re-runs only
    record_from_store(store, plan=plan).write("sweep.json")  # missing cases

The same flows are available from the command line as ``opera-run sweep``
(``--store DIR`` / ``--resume``).

Artifact schema (``repro.sweep/bench-record/v1``)
-------------------------------------------------
A benchmark artifact is a single JSON object::

    {
      "schema": "repro.sweep/bench-record/v1",
      "created_unix": 1753840000.0,          # seconds since the epoch, or null
      "config": {                            # how the sweep was run
        "workers": 4,
        "base_seed": 0,
        "num_cases": 6,
        "sweep_wall_time_s": 12.3,
        "transient": {"t_stop": 2.4e-9, "dt": 2e-10, "steps": 12},
        ...                                  # callers may add entries
      },
      "environment": {                       # informational, never compared
        "python": "3.11.7", "platform": "linux", "machine": "x86_64",
        "numpy": "...", "scipy": "..."
      },
      "cases": [                             # one entry per executed case
        {
          "name": "opera-n600-o2-paper",     # stable human-readable label
          "engine": "opera",                 # registered engine name
          "nodes": 600,                      # requested grid size
          "num_nodes": 613,                  # realised grid size
          "corner": "paper",                 # variation corner name
          "order": 2,                        # chaos order, or null
          "samples": null,                   # MC sample count, or null
          "partitions": null,                # hierarchical schedule groups,
          "seed": 123456789,                 #   or null; the deterministic seed
          "wall_time_s": 0.41,               # engine wall time, seconds
          "worst_drop_v": 0.132,             # max mean drop, volts
          "max_std_v": 0.011,                # max sigma, volts
          "speedup_vs_mc": 9.7               # vs the same grid+corner MC
        }                                    #   case, or null
      ]
    }

Cases are matched across artifacts by the identity tuple ``(engine, nodes,
order, samples, corner, partitions)``; ``name`` is derived from the same
fields.  ``partitions`` (added with the partition subsystem) is optional on
read, so older artifacts remain loadable: their cases carry ``None``, which
matches current non-partitioned cases.  The ``schema`` string is bumped on
any backwards-incompatible change, and readers reject artifacts with an
unknown schema.
"""

from .batch import BatchedCaseRunner, group_cases, topology_key
from .plan import (
    DEFAULT_SWEEP_TRANSIENT,
    SweepCase,
    SweepPlan,
    corner_names,
    corner_spec,
    case_seed_for,
    grid_seed_for,
)
from .record import SCHEMA, BenchRecord, record_from_outcome, record_from_store
from .regress import (
    CaseDelta,
    RegressionReport,
    ThroughputReport,
    check_throughput,
    compare_records,
)
from .runner import SweepCaseResult, SweepOutcome, SweepRunner
from .store import (
    STORE_SCHEMA,
    MemoryBackend,
    ResultsBackend,
    ShardedNpzBackend,
    plan_fingerprint,
)

__all__ = [
    "SweepCase",
    "SweepPlan",
    "DEFAULT_SWEEP_TRANSIENT",
    "corner_names",
    "corner_spec",
    "case_seed_for",
    "grid_seed_for",
    "SweepRunner",
    "SweepOutcome",
    "SweepCaseResult",
    "ResultsBackend",
    "MemoryBackend",
    "ShardedNpzBackend",
    "STORE_SCHEMA",
    "plan_fingerprint",
    "BenchRecord",
    "SCHEMA",
    "record_from_outcome",
    "record_from_store",
    "CaseDelta",
    "RegressionReport",
    "ThroughputReport",
    "check_throughput",
    "compare_records",
    "BatchedCaseRunner",
    "group_cases",
    "topology_key",
]
