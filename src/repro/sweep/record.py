"""Benchmark artifacts: serialising sweep outcomes with a stable schema.

A :class:`BenchRecord` is the JSON artifact one sweep run emits -- the CI
``bench-smoke`` job uploads it on every push and the
:mod:`repro.sweep.regress` checker compares two of them.  The schema (see
the ``SCHEMA`` constant and :mod:`repro.sweep` for the field-by-field
description) is versioned: readers reject records whose ``schema`` string
they do not understand, so silent drift is impossible.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import AnalysisError, StoreError
from ..telemetry import merge_summaries

__all__ = ["SCHEMA", "BenchRecord", "record_from_outcome", "record_from_store"]

#: Schema identifier of the artifact format this module reads and writes.
SCHEMA = "repro.sweep/bench-record/v1"

#: Keys every case entry must carry (``speedup_vs_mc`` may be ``None``).
_CASE_KEYS = (
    "name",
    "engine",
    "nodes",
    "num_nodes",
    "corner",
    "order",
    "samples",
    "seed",
    "wall_time_s",
    "worst_drop_v",
    "max_std_v",
    "speedup_vs_mc",
)


def _environment() -> Dict[str, str]:
    import numpy
    import scipy

    return {
        "python": platform.python_version(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
    }


@dataclass(frozen=True)
class BenchRecord:
    """One sweep run's benchmark artifact (schema ``repro.sweep/bench-record/v1``).

    ``telemetry`` is the optional campaign-wide merged telemetry summary
    (see :func:`repro.telemetry.merge_summaries`); it is carried only when
    the producing sweep profiled its cases, and readers of artifacts
    written before the field existed see ``None``.
    """

    cases: Tuple[Dict, ...]
    config: Dict = field(default_factory=dict)
    environment: Dict = field(default_factory=dict)
    created_unix: Optional[float] = None
    telemetry: Optional[Dict] = None
    schema: str = SCHEMA

    def __post_init__(self):
        if self.schema != SCHEMA:
            raise AnalysisError(
                f"unsupported benchmark artifact schema {self.schema!r}; "
                f"this build reads {SCHEMA!r}"
            )
        for case in self.cases:
            missing = [key for key in _CASE_KEYS if key not in case]
            if missing:
                raise AnalysisError(
                    f"benchmark case {case.get('name', '<unnamed>')!r} lacks "
                    f"schema field(s): {', '.join(missing)}"
                )

    def __len__(self) -> int:
        return len(self.cases)

    def case_map(self) -> Dict[Tuple, Dict]:
        """Cases keyed by their cross-sweep identity (engine/grid/settings).

        ``partitions`` joined the identity with the partition subsystem and
        ``solver`` with the matrix-free linalg subsystem; ``.get`` keeps
        artifacts written before those fields readable (their cases match
        current cases that carry ``None``).  Like
        :meth:`~repro.sweep.plan.SweepCase.key`, ``solver`` extends the
        identity only when set.
        """
        mapping: Dict[Tuple, Dict] = {}
        for case in self.cases:
            identity = (
                case["engine"],
                case["nodes"],
                case["order"],
                case["samples"],
                case["corner"],
                case.get("partitions"),
            )
            if case.get("solver") is not None:
                identity = identity + (case["solver"],)
            if case.get("scheme") is not None:
                identity = identity + (case["scheme"],)
            mapping[identity] = case
        return mapping

    # ------------------------------------------------------------- round trip
    def to_dict(self) -> Dict:
        payload = {
            "schema": self.schema,
            "created_unix": self.created_unix,
            "config": dict(self.config),
            "environment": dict(self.environment),
            "cases": [dict(case) for case in self.cases],
        }
        if self.telemetry is not None:
            payload["telemetry"] = dict(self.telemetry)
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict) -> "BenchRecord":
        if not isinstance(payload, dict):
            raise AnalysisError(
                f"benchmark artifact must be a JSON object, got {type(payload).__name__}"
            )
        return cls(
            cases=tuple(payload.get("cases", ())),
            config=dict(payload.get("config", {})),
            environment=dict(payload.get("environment", {})),
            created_unix=payload.get("created_unix"),
            telemetry=payload.get("telemetry"),
            schema=payload.get("schema", "<missing>"),
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchRecord":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"benchmark artifact is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    def write(self, path: Union[str, Path]) -> Path:
        """Write the artifact; parent directories are created as needed."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BenchRecord":
        path = Path(path)
        if not path.exists():
            raise AnalysisError(f"benchmark artifact {path} does not exist")
        return cls.from_json(path.read_text(encoding="utf-8"))


def _case_entries(results) -> List[Dict]:
    """Artifact case entries (with ``speedup_vs_mc``) for an outcome/store scan."""
    from .runner import speedups_for  # deferred: runner imports this module's peers

    results = list(results)
    speedups = speedups_for(results)
    cases: List[Dict] = []
    for result in results:
        entry = result.to_record()
        entry["speedup_vs_mc"] = speedups.get(result.name)
        cases.append(entry)
    return cases


def _merged_telemetry(cases: List[Dict]) -> Optional[Dict]:
    """Campaign-wide telemetry folded from the case entries, in entry order.

    ``_case_entries`` walks outcomes in plan order and stores in insertion
    order, so the merge is deterministic either way; sweeps that ran
    without profiling contribute nothing and the artifact omits the field.
    """
    return merge_summaries(
        case["telemetry"] for case in cases if case.get("telemetry") is not None
    )


def record_from_outcome(outcome, config: Optional[Dict] = None) -> BenchRecord:
    """Build the artifact of a :class:`~repro.sweep.runner.SweepOutcome`.

    One plan-order pass over the outcome's results backend; every
    non-Monte-Carlo case gets its wall-time ``speedup_vs_mc`` against the
    ``montecarlo`` case of the same grid and corner (``None`` when the plan
    has no such baseline).
    """
    cases = _case_entries(outcome)
    merged_config = {
        "workers": outcome.workers,
        "base_seed": outcome.plan.base_seed,
        "num_cases": len(cases),
        "cases_executed": int(outcome.executed),
        "cases_reused": int(outcome.reused),
        "sweep_wall_time_s": float(outcome.wall_time),
        "batched": bool(outcome.batched),
        "cases_per_second": (
            len(cases) / float(outcome.wall_time) if outcome.wall_time > 0 else None
        ),
        "transient": {
            "t_stop": outcome.plan.transient.t_stop,
            "dt": outcome.plan.transient.dt,
            "steps": outcome.plan.transient.num_steps,
        },
    }
    merged_config.update(config or {})
    return BenchRecord(
        cases=tuple(cases),
        config=merged_config,
        environment=_environment(),
        created_unix=time.time(),
        telemetry=_merged_telemetry(cases),
    )


def record_from_store(store, plan=None, config: Optional[Dict] = None) -> BenchRecord:
    """Export a results backend as a v1 :class:`BenchRecord` artifact.

    The export view of the streaming store redesign: the committed smoke
    baselines and the :mod:`repro.sweep.regress` gate keep consuming the
    unchanged v1 JSON schema no matter which backend held the results.
    With ``plan`` given, cases are exported in plan order (and every plan
    case must be present in the store); without it, in the store's
    insertion order.  The transient configuration and base seed come from
    the fingerprint the store was opened with, so two store exports gate
    against each other exactly like two live sweeps.
    """
    if plan is not None:
        results = (store.get(case) for case in plan.cases)
    else:
        results = store.iter_results()
    cases = _case_entries(results)
    if not cases:
        raise StoreError("cannot export an empty results store as a BenchRecord")
    merged_config: Dict = {"num_cases": len(cases)}
    fingerprint = getattr(store, "fingerprint", None)
    if fingerprint:
        merged_config["base_seed"] = fingerprint["base_seed"]
        merged_config["transient"] = dict(fingerprint["transient"])
    merged_config.update(config or {})
    return BenchRecord(
        cases=tuple(cases),
        config=merged_config,
        environment=_environment(),
        created_unix=time.time(),
        telemetry=_merged_telemetry(cases),
    )
