"""Topology-grouped batched execution of sweep cases.

Corner/scenario sweeps run many cases on the *same* grid topology; the
unbatched runner treats each as an island.  This module groups plan cases by
:func:`topology_key` -- ``(nodes, grid_seed, order, scheme)`` -- and executes
each group through a :class:`BatchedCaseRunner` that shares everything the
topology determines:

* the generated netlist and stamped MNA system (one per grid, shared across
  the group's corner sessions via the runner's session cache);
* LU work: the group's sessions hit the process-wide symbolic-analysis cache
  (:func:`repro.sim.linear.canonical_csc`), so structurally identical step
  matrices across corners pay only numeric refactorisation;
* the transient march itself, for cases that block-diagonalise: RHS-only
  ``opera``/``decoupled`` cases on the group's topology stack their active
  chaos tracks into one multi-RHS :class:`~repro.stepping.StepLoop` run
  (:func:`repro.opera.special_case.run_decoupled_transient_stacked`), and
  ``deterministic`` cases -- whose result ignores the corner entirely --
  execute once per distinct solver and replicate.

Every per-case result is bit-identical to the unbatched path: stacking uses
only column-wise operations (multi-RHS direct solves, stacked matvecs), the
shared grid resources are deterministic functions of the case identity, and
the sampled engines (whose statistics depend on their own seeded streams)
simply run per-case inside the group.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..opera.config import OperaConfig
from ..opera.special_case import run_decoupled_transient_stacked
from ..sim.transient import TransientConfig
from ..telemetry import profile
from .plan import SweepCase
from .runner import SweepCaseResult, _run_case, _session_for, result_from_view

__all__ = ["topology_key", "group_cases", "BatchedCaseRunner"]


def topology_key(case: SweepCase) -> Tuple:
    """The grouping identity: cases sharing it share grid structure and march
    shape (same stamped matrices, same stepping scheme).

    The chaos order is deliberately *not* part of the key: the grid
    matrices, the excitation and the active first-order tracks are
    order-independent (the excitation is affine in the germ), so cases that
    differ only in order still stack into one march -- each brings its own
    basis and scatters into its own coefficient array.
    """
    return (case.nodes, case.grid_seed, case.scheme)


def group_cases(cases: Sequence[SweepCase]) -> List[List[SweepCase]]:
    """Partition cases into topology groups, preserving plan order within
    each group (first-appearance order across groups)."""
    groups: Dict[Tuple, List[SweepCase]] = {}
    for case in cases:
        groups.setdefault(topology_key(case), []).append(case)
    return list(groups.values())


class BatchedCaseRunner:
    """Executes one topology group of cases with shared setup and marches.

    Parameters mirror the worker-side knobs of
    :class:`~repro.sweep.runner.SweepRunner`; ``session_provider`` defaults
    to the runner's per-process session cache (grid resources shared across
    corners).
    """

    def __init__(
        self,
        transient: TransientConfig,
        *,
        keep_statistics: bool = False,
        keep_raw: bool = False,
        profile_case: bool = False,
        session_provider=None,
    ):
        self.transient = transient
        self.keep_statistics = bool(keep_statistics)
        self.keep_raw = bool(keep_raw)
        self.profile_case = bool(profile_case)
        self._session_for = session_provider if session_provider is not None else _session_for

    # ------------------------------------------------------------ scheduling
    def _stackable(self, case: SweepCase, session) -> bool:
        """True when the case rides the stacked decoupled march.

        Requires the RHS-only special case (deterministic G and C) and the
        direct solver: iterative inner solvers warm-start across stacked
        columns, which would couple cases numerically.
        """
        if case.engine not in ("opera", "decoupled"):
            return False
        solver = case.solver if case.solver is not None else self.transient.solver
        if str(solver) != "direct":
            return False
        return not session.system.has_matrix_variation

    def run_group(self, cases: Sequence[SweepCase]) -> List[Tuple[SweepCase, SweepCaseResult]]:
        """Execute the group; returns ``(case, result)`` in input order."""
        cases = list(cases)
        if not cases:
            return []
        key = topology_key(cases[0])
        for case in cases:
            if topology_key(case) != key:
                raise AnalysisError(
                    f"case {case.name!r} does not belong to topology group {key!r}"
                )
        sessions = {case: self._session_for(case, self.transient) for case in cases}
        stacked = [case for case in cases if self._stackable(case, sessions[case])]
        stacked_set = set(stacked)
        results: Dict[SweepCase, SweepCaseResult] = {}

        if stacked:
            for case, result in self._run_stacked(stacked, sessions):
                results[case] = result

        deterministic_first: Dict[Optional[str], SweepCaseResult] = {}
        for case in cases:
            if case in stacked_set:
                continue
            session = sessions[case]
            if case.engine == "deterministic":
                # The nominal run ignores the corner: execute once per
                # distinct solver and replicate for the other corners.
                executed = deterministic_first.get(case.solver)
                if executed is None:
                    result = dataclasses.replace(
                        _run_case(
                            case, session, self.keep_statistics, self.keep_raw, self.profile_case
                        ),
                        reused_factorization=False,
                    )
                    deterministic_first[case.solver] = result
                else:
                    result = dataclasses.replace(
                        executed,
                        corner=case.corner,
                        seed=case.seed,
                        name=case.name,
                        telemetry=None,
                        reused_factorization=True,
                    )
            else:
                result = _run_case(
                    case, session, self.keep_statistics, self.keep_raw, self.profile_case
                )
            results[case] = result

        return [(case, results[case]) for case in cases]

    # ------------------------------------------------------------ stacked march
    def _run_stacked(
        self, stacked: List[SweepCase], sessions: Dict[SweepCase, object]
    ) -> List[Tuple[SweepCase, SweepCaseResult]]:
        from ..api.result import StochasticResultView  # deferred like the engines

        first = stacked[0]
        transient = self.transient
        if first.scheme is not None:
            transient = dataclasses.replace(transient, method=str(first.scheme))
        config = OperaConfig(
            transient=transient,
            order=int(first.order if first.order is not None else 2),
            solver=first.solver,
            store_coefficients=True,
        )
        # Scenario dedup: on an RHS-only system the ``opera`` engine falls
        # back to the very same decoupled march as the ``decoupled`` engine
        # (same session, basis, config), so cases that differ only in engine
        # name share one march span and one raw trajectory.
        scenario_of: Dict[SweepCase, Tuple] = {
            case: (case.corner, case.order, case.solver) for case in stacked
        }
        leaders: Dict[Tuple, SweepCase] = {}
        for case in stacked:
            leaders.setdefault(scenario_of[case], case)
        unique = list(leaders.values())
        systems = [sessions[case].system for case in unique]
        bases = [
            sessions[case].basis(int(case.order if case.order is not None else 2))
            for case in unique
        ]
        # One session's solver cache serves the whole march (the nominal G
        # and the step matrix are shared by construction).
        solver_factory = sessions[first].solver

        started = time.perf_counter()
        tele_summary = None
        if self.profile_case:
            with profile() as tele:
                raw_results = run_decoupled_transient_stacked(
                    systems, config, bases, solver_factory=solver_factory
                )
            tele_summary = tele.summary()
        else:
            raw_results = run_decoupled_transient_stacked(
                systems, config, bases, solver_factory=solver_factory
            )
        elapsed = time.perf_counter() - started

        raw_of = {scenario_of[case]: raw for case, raw in zip(unique, raw_results)}
        leader_set = set(unique)
        out: List[Tuple[SweepCase, SweepCaseResult]] = []
        for index, case in enumerate(stacked):
            raw = raw_of[scenario_of[case]]
            view = StochasticResultView(
                case.engine, "transient", raw, sessions[case].system.vdd
            )
            result = result_from_view(
                case,
                view,
                vdd=float(sessions[case].vdd),
                elapsed=elapsed / len(stacked),
                keep_statistics=self.keep_statistics,
                keep_raw=self.keep_raw,
                telemetry=tele_summary if index == 0 else None,
                reused_factorization=index > 0 or case not in leader_set,
            )
            out.append((case, result))
        return out
