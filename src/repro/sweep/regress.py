"""Benchmark regression checking between two sweep artifacts.

``compare_records`` matches the cases of two :class:`~repro.sweep.record.BenchRecord`
artifacts by identity (engine, grid size, order, samples, corner) and flags
every case whose wall time grew by more than the allowed percentage.  Tiny
absolute times are noise on shared CI runners, so cases below a configurable
floor are never flagged (both sides are clamped to the floor before the
ratio is taken).

The module doubles as the CI gate::

    python -m repro.sweep baseline.json current.json --max-regression 75

exits non-zero when a regression (or a vanished case) is detected and prints
a per-case report either way.  (``python -m repro.sweep`` delegates here;
running ``repro.sweep.regress`` with ``-m`` directly also works but triggers
runpy's re-import warning.)
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from .record import BenchRecord

__all__ = [
    "CaseDelta",
    "RegressionReport",
    "ThroughputReport",
    "compare_records",
    "check_throughput",
    "main",
]

#: Default allowed wall-time growth, percent.  Generous on purpose: CI
#: runners are shared and the smoke grids are tiny.
DEFAULT_MAX_REGRESSION_PERCENT = 75.0

#: Wall times below this floor (seconds) are clamped before comparing.
DEFAULT_MIN_SECONDS = 0.05


@dataclass(frozen=True)
class CaseDelta:
    """Wall-time comparison of one case across two artifacts."""

    name: str
    baseline_s: float
    current_s: float
    ratio: float
    regressed: bool

    def format(self) -> str:
        marker = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.name:40s} {self.baseline_s:9.3f}s -> {self.current_s:9.3f}s "
            f"({self.ratio:6.2f}x)  {marker}"
        )


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of comparing a current artifact against a baseline."""

    deltas: Tuple[CaseDelta, ...]
    missing: Tuple[str, ...]
    added: Tuple[str, ...]
    max_regression_percent: float

    @property
    def regressions(self) -> Tuple[CaseDelta, ...]:
        return tuple(delta for delta in self.deltas if delta.regressed)

    @property
    def ok(self) -> bool:
        """True when no case regressed and no baseline case vanished."""
        return not self.regressions and not self.missing

    def format(self) -> str:
        lines = [
            f"benchmark regression check (threshold +{self.max_regression_percent:.0f}%)",
            "",
        ]
        lines.extend(delta.format() for delta in self.deltas)
        if self.missing:
            lines.append("")
            lines.append(
                "missing from current run (present in baseline): "
                + ", ".join(self.missing)
            )
        if self.added:
            lines.append("")
            lines.append("new in current run (not gated): " + ", ".join(self.added))
        lines.append("")
        if self.ok:
            lines.append(f"OK: {len(self.deltas)} case(s) within threshold")
        else:
            lines.append(
                f"FAIL: {len(self.regressions)} regression(s), "
                f"{len(self.missing)} missing case(s)"
            )
        return "\n".join(lines)


def compare_records(
    baseline: BenchRecord,
    current: BenchRecord,
    max_regression_percent: float = DEFAULT_MAX_REGRESSION_PERCENT,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> RegressionReport:
    """Compare ``current`` against ``baseline`` case by case.

    A case regresses when ``clamp(current) > clamp(baseline) * (1 + p/100)``
    with both wall times clamped up to ``min_seconds`` first.  Cases present
    only in the baseline are reported as missing (and fail the check); cases
    present only in the current run are reported but never gate.

    Records that declare different transient configurations are rejected:
    their wall times measure different work, and matching them by case
    identity would produce phantom regressions (or mask real ones).
    """
    if max_regression_percent < 0:
        raise ValueError("max_regression_percent must be non-negative")
    base_transient = baseline.config.get("transient")
    cur_transient = current.config.get("transient")
    if base_transient and cur_transient and base_transient != cur_transient:
        raise AnalysisError(
            "benchmark artifacts use different transient configurations "
            f"({base_transient} vs {cur_transient}); wall times are not "
            "comparable -- regenerate the baseline with the current settings"
        )
    baseline_cases = baseline.case_map()
    current_cases = current.case_map()

    deltas: List[CaseDelta] = []
    limit = 1.0 + max_regression_percent / 100.0
    for key, base_case in baseline_cases.items():
        if key not in current_cases:
            continue
        base_s = max(float(base_case["wall_time_s"]), min_seconds)
        cur_s = max(float(current_cases[key]["wall_time_s"]), min_seconds)
        ratio = cur_s / base_s
        deltas.append(
            CaseDelta(
                name=str(base_case["name"]),
                baseline_s=float(base_case["wall_time_s"]),
                current_s=float(current_cases[key]["wall_time_s"]),
                ratio=ratio,
                regressed=ratio > limit,
            )
        )
    missing = tuple(
        str(case["name"])
        for key, case in baseline_cases.items()
        if key not in current_cases
    )
    added = tuple(
        str(case["name"])
        for key, case in current_cases.items()
        if key not in baseline_cases
    )
    return RegressionReport(
        deltas=tuple(deltas),
        missing=missing,
        added=added,
        max_regression_percent=float(max_regression_percent),
    )


@dataclass(frozen=True)
class ThroughputReport:
    """Outcome of gating one artifact's sweep throughput against a floor."""

    cases: int
    wall_time_s: Optional[float]
    cases_per_second: Optional[float]
    min_cases_per_second: float
    min_seconds: float
    ok: bool

    def format(self) -> str:
        cps = "n/a" if self.cases_per_second is None else f"{self.cases_per_second:.2f}"
        wall = "n/a" if self.wall_time_s is None else f"{self.wall_time_s:.3f}s"
        verdict = "OK" if self.ok else "FAIL"
        return (
            f"throughput check: {self.cases} case(s) in {wall} "
            f"({cps} cases/s, floor {self.min_cases_per_second:.2f} cases/s, "
            f"clamp below {self.min_seconds:.2f}s total)  {verdict}"
        )


def check_throughput(
    record: BenchRecord,
    min_cases_per_second: float,
    min_seconds: float = 1.0,
) -> ThroughputReport:
    """Gate an artifact's sweep throughput against a cases/second floor.

    The floor is *clamped*: a run whose total wall time is at most
    ``min_seconds`` always passes, because cases/second computed from a
    handful of milliseconds on a shared CI runner is noise, not signal.
    Records written before ``cases_per_second``/``sweep_wall_time_s``
    existed (or store exports, which have no sweep wall time) pass
    vacuously -- there is nothing to gate.
    """
    if min_cases_per_second < 0:
        raise ValueError("min_cases_per_second must be non-negative")
    wall = record.config.get("sweep_wall_time_s")
    cps = record.config.get("cases_per_second")
    if cps is None and wall and wall > 0:
        cps = len(record.cases) / float(wall)
    ok = (
        wall is None
        or cps is None
        or float(wall) <= min_seconds
        or float(cps) >= min_cases_per_second
    )
    return ThroughputReport(
        cases=len(record.cases),
        wall_time_s=None if wall is None else float(wall),
        cases_per_second=None if cps is None else float(cps),
        min_cases_per_second=float(min_cases_per_second),
        min_seconds=float(min_seconds),
        ok=ok,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: compare two artifact files, exit 1 on regression."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Fail when a sweep benchmark artifact regresses against a baseline.",
    )
    parser.add_argument("baseline", type=Path, help="baseline BenchRecord JSON")
    parser.add_argument("current", type=Path, help="current BenchRecord JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION_PERCENT,
        metavar="PCT",
        help="allowed wall-time growth in percent (default: %(default)s)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        metavar="S",
        help="clamp wall times up to this floor before comparing (default: %(default)s)",
    )
    parser.add_argument(
        "--min-throughput",
        type=float,
        default=None,
        metavar="CPS",
        help="also require the current artifact to sustain this many cases/second "
        "(clamped: runs at most --throughput-min-seconds long always pass)",
    )
    parser.add_argument(
        "--throughput-min-seconds",
        type=float,
        default=1.0,
        metavar="S",
        help="total wall time below which the throughput floor is waived "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    try:
        current = BenchRecord.load(args.current)
        report = compare_records(
            BenchRecord.load(args.baseline),
            current,
            max_regression_percent=args.max_regression,
            min_seconds=args.min_seconds,
        )
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format())
    ok = report.ok
    if args.min_throughput is not None:
        throughput = check_throughput(
            current, args.min_throughput, min_seconds=args.throughput_min_seconds
        )
        print(throughput.format())
        ok = ok and throughput.ok
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
