"""``python -m repro.sweep``: the benchmark regression gate.

Equivalent to ``python -m repro.sweep.regress`` but without runpy's
re-import warning (the package ``__init__`` already imports ``regress``).
"""

import sys

from .regress import main

if __name__ == "__main__":
    sys.exit(main())
