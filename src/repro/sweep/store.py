"""Results backends: where a sweep's case results live while (and after) it runs.

A :class:`ResultsBackend` is the storage side of the redesigned sweep
results API.  :class:`~repro.sweep.runner.SweepRunner` streams every
completed :class:`~repro.sweep.runner.SweepCaseResult` into the backend as
workers return it, and :class:`~repro.sweep.runner.SweepOutcome` is a lazy
read-view over the backend -- the runner never holds a result list of its
own.  Results are keyed by :meth:`repro.sweep.plan.SweepCase.store_key`, an
append-only extension of the case's seed identity covering every field that
can change the case's numbers, so a backend doubles as a result *cache*:
a case whose key is already present is served from the store instead of a
solver.

Two implementations ship:

:class:`MemoryBackend`
    The classic in-memory behaviour (and the default of
    ``SweepRunner.run``): a dict of results, raw engine payloads welcome.

:class:`ShardedNpzBackend`
    A chunked, append-only on-disk store for resumable campaigns.  Results
    are buffered and flushed in ``shard_size``-case ``.npz`` shards written
    atomically (temp file + rename), so a killed campaign keeps every
    flushed shard; ``SweepRunner.resume`` then skips the persisted cases
    and re-runs only the missing ones.  Scalar fields travel in a JSON
    metadata entry per case (floats round-trip exactly through ``repr``)
    and statistics arrays as native float64 ``.npz`` members, so a
    resumed campaign's statistics and exported
    :class:`~repro.sweep.record.BenchRecord` cases are bit-identical to an
    uninterrupted run's.

Both backends pin the plan "fingerprint" (transient configuration and base
seed) at :meth:`~ResultsBackend.open` time and refuse plans that disagree:
case keys do not encode the time axis, so reusing a store across transient
configurations would silently serve wrong numbers.

A store must be resumed with the same runner settings
(``keep_statistics``) it was started with: backends persist exactly what
the producing run shipped, so a campaign started without statistics cannot
serve them later.
"""

from __future__ import annotations

import json
import os
import tempfile
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..errors import StoreError
from .plan import SweepCase, SweepPlan

__all__ = [
    "STORE_SCHEMA",
    "ResultsBackend",
    "MemoryBackend",
    "ShardedNpzBackend",
    "plan_fingerprint",
]

#: Schema identifier of the on-disk store layout (manifest + shards).
STORE_SCHEMA = "repro.sweep/store/v1"

#: Default number of case results per flushed shard.
DEFAULT_SHARD_SIZE = 64


def plan_fingerprint(plan: SweepPlan) -> Dict:
    """The plan settings a results store is pinned to.

    Case store keys cover everything *per-case* that changes the numbers;
    the fingerprint covers the plan-wide remainder -- the shared transient
    configuration (same shape as the ``BenchRecord`` config entry, so
    :func:`~repro.sweep.record.record_from_store` can export it) and the
    base seed.
    """
    transient = plan.transient
    return {
        "base_seed": int(plan.base_seed),
        "transient": {
            "t_stop": float(transient.t_stop),
            "dt": float(transient.dt),
            "steps": int(transient.num_steps),
        },
    }


class ResultsBackend(ABC):
    """Protocol of a sweep results store.

    Lifecycle: the runner calls :meth:`open` with the plan before executing
    anything, :meth:`append` once per freshly executed case, and
    :meth:`finalize` when the sweep ends (including on failure, so partial
    progress survives).  :meth:`contains`/:meth:`get` serve the cache and
    the :class:`~repro.sweep.runner.SweepOutcome` read-view;
    :meth:`iter_results` walks everything stored, in insertion order.
    """

    #: Whether :meth:`append` accepts results carrying raw engine payloads
    #: (``SweepRunner(keep_raw=True)``).
    supports_raw = False

    def __init__(self):
        self._fingerprint: Optional[Dict] = None

    @property
    def fingerprint(self) -> Optional[Dict]:
        """The pinned plan fingerprint (``None`` before :meth:`open`)."""
        return self._fingerprint

    def open(self, plan: SweepPlan) -> None:
        """Bind the backend to ``plan``; reject incompatible reuse."""
        self._pin_fingerprint(plan_fingerprint(plan))

    def _pin_fingerprint(self, fingerprint: Dict) -> None:
        if self._fingerprint is not None and self._fingerprint != fingerprint:
            raise StoreError(
                "results store was opened for a different plan "
                f"(stored fingerprint {self._fingerprint!r}, new plan "
                f"{fingerprint!r}); use one store per transient "
                "configuration and base seed"
            )
        self._fingerprint = fingerprint

    @abstractmethod
    def append(self, case: SweepCase, result) -> None:
        """Store the result of ``case``; duplicate keys are an error."""

    @abstractmethod
    def contains(self, case: SweepCase) -> bool:
        """Whether a result for ``case`` (by store key) is present."""

    @abstractmethod
    def get(self, case: SweepCase):
        """The stored :class:`SweepCaseResult` of ``case``; raises if absent."""

    @abstractmethod
    def iter_results(self) -> Iterator:
        """All stored results, in insertion order."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored results."""

    def keys(self) -> frozenset:
        """Store keys of every stored case (order-free)."""
        return frozenset(result_key for result_key in self._iter_keys())

    @abstractmethod
    def _iter_keys(self) -> Iterator[str]: ...

    def finalize(self) -> None:
        """Flush pending state; safe to call more than once."""

    def _missing(self, case: SweepCase) -> StoreError:
        return StoreError(
            f"case {case.name!r} (key {case.store_key()!r}) is not in this "
            f"results store ({len(self)} case(s) stored)"
        )

    def _duplicate(self, case: SweepCase) -> StoreError:
        return StoreError(
            f"results store already holds case {case.name!r} "
            f"(key {case.store_key()!r}); stored cases are append-only -- "
            "skip cases via contains() instead of re-appending them"
        )


class MemoryBackend(ResultsBackend):
    """The default backend: results held in a plain in-process dict.

    Byte-for-byte the pre-store behaviour of the sweep runner -- results
    (including raw engine payloads) live in memory for the lifetime of the
    :class:`~repro.sweep.runner.SweepOutcome` and vanish with it.
    """

    supports_raw = True

    def __init__(self):
        super().__init__()
        self._results: Dict[str, object] = {}

    def append(self, case: SweepCase, result) -> None:
        key = case.store_key()
        if key in self._results:
            raise self._duplicate(case)
        self._results[key] = result

    def contains(self, case: SweepCase) -> bool:
        return case.store_key() in self._results

    def get(self, case: SweepCase):
        try:
            return self._results[case.store_key()]
        except KeyError:
            raise self._missing(case) from None

    def iter_results(self) -> Iterator:
        return iter(self._results.values())

    def __len__(self) -> int:
        return len(self._results)

    def _iter_keys(self) -> Iterator[str]:
        return iter(self._results)


# --------------------------------------------------------------------------
# Sharded on-disk backend
# --------------------------------------------------------------------------
_MANIFEST_NAME = "manifest.json"
_SHARD_PATTERN = "shard-*.npz"


def _shard_name(index: int) -> str:
    return f"shard-{index:06d}.npz"


def _entry_payload(key: str, result) -> Dict:
    """The JSON-safe scalar payload of one stored case."""
    entry = result.to_record()
    entry["vdd"] = float(result.vdd)
    entry["store_key"] = key
    return entry


def _result_from_entry(entry: Dict, times, mean, std):
    from .runner import SweepCaseResult  # deferred: runner imports this module

    return SweepCaseResult(
        engine=str(entry["engine"]),
        nodes=int(entry["nodes"]),
        corner=str(entry["corner"]),
        order=None if entry["order"] is None else int(entry["order"]),
        samples=None if entry["samples"] is None else int(entry["samples"]),
        seed=int(entry["seed"]),
        name=str(entry["name"]),
        num_nodes=int(entry["num_nodes"]),
        wall_time=float(entry["wall_time_s"]),
        worst_drop=float(entry["worst_drop_v"]),
        max_std=float(entry["max_std_v"]),
        vdd=float(entry["vdd"]),
        partitions=None if entry["partitions"] is None else int(entry["partitions"]),
        solver=None if entry["solver"] is None else str(entry["solver"]),
        scheme=None if entry["scheme"] is None else str(entry["scheme"]),
        telemetry=entry.get("telemetry"),
        reused_factorization=entry.get("reused_factorization"),
        times=times,
        mean=mean,
        std=std,
    )


class ShardedNpzBackend(ResultsBackend):
    """Chunked, append-only on-disk results store (``.npz`` shards).

    Layout (one directory)::

        store/
          manifest.json     # schema + pinned plan fingerprint
          shard-000000.npz  # up to shard_size cases: meta_<i> (JSON string)
          shard-000001.npz  #   + optional times_<i>/mean_<i>/std_<i> arrays
          ...

    Appends are buffered and flushed one full shard at a time; each shard
    is written to a temporary file in the store directory and renamed into
    place, so readers (and a resume after a kill) only ever see complete
    shards.  A crash loses at most the unflushed tail of the buffer --
    bounded by ``shard_size`` cases -- and :meth:`finalize` flushes the
    partial remainder, so an orderly interruption loses nothing.

    Raw engine payloads are refused (``supports_raw = False``): they are
    arbitrary objects with no stable serialisation; campaigns that need
    them keep the in-memory backend.
    """

    def __init__(self, path: Union[str, Path], shard_size: int = DEFAULT_SHARD_SIZE):
        super().__init__()
        if shard_size < 1:
            raise StoreError(f"shard_size must be at least 1, got {shard_size}")
        self.path = Path(path)
        self.shard_size = int(shard_size)
        #: key -> (shard path, slot within the shard), for flushed cases.
        self._index: Dict[str, Tuple[Path, int]] = {}
        #: Flushed keys in shard order, then pending keys in append order.
        self._sequence: List[str] = []
        #: key -> result, for appended-but-unflushed cases.
        self._pending: Dict[str, object] = {}
        self._next_shard = 0
        self._opened = False
        # One-shard read cache: plan-order reads of a completion-order store
        # hop between shards; keeping the last NpzFile open amortises that.
        self._open_shard: Optional[Tuple[Path, object]] = None

    # ------------------------------------------------------------------ open
    def open(self, plan: SweepPlan) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        fingerprint = plan_fingerprint(plan)
        manifest_path = self.path / _MANIFEST_NAME
        if manifest_path.exists():
            manifest = self._load_manifest(manifest_path)
            self._pin_fingerprint(manifest["fingerprint"])
            self._pin_fingerprint(fingerprint)
        else:
            self._pin_fingerprint(fingerprint)
            self._write_atomic(
                manifest_path,
                json.dumps(
                    {"schema": STORE_SCHEMA, "fingerprint": fingerprint},
                    indent=2,
                    sort_keys=True,
                ).encode("utf-8"),
            )
        if not self._opened:
            self._scan_shards()
            self._opened = True

    def _load_manifest(self, manifest_path: Path) -> Dict:
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"cannot read store manifest {manifest_path}: {exc}") from None
        schema = manifest.get("schema")
        if schema != STORE_SCHEMA:
            raise StoreError(
                f"results store {self.path} has schema {schema!r}; "
                f"this build reads {STORE_SCHEMA!r}"
            )
        if "fingerprint" not in manifest:
            raise StoreError(f"store manifest {manifest_path} lacks a plan fingerprint")
        return manifest

    def _scan_shards(self) -> None:
        for shard_path in sorted(self.path.glob(_SHARD_PATTERN)):
            with np.load(shard_path) as shard:
                for slot in range(_shard_count(shard)):
                    entry = json.loads(shard[f"meta_{slot}"].item())
                    key = str(entry["store_key"])
                    self._index[key] = (shard_path, slot)
                    self._sequence.append(key)
            stem_index = int(shard_path.stem.split("-", 1)[1])
            self._next_shard = max(self._next_shard, stem_index + 1)

    # ---------------------------------------------------------------- writes
    def append(self, case: SweepCase, result) -> None:
        key = case.store_key()
        if key in self._index or key in self._pending:
            raise self._duplicate(case)
        if getattr(result, "raw", None) is not None:
            raise StoreError(
                "the sharded npz store cannot hold raw engine payloads; run "
                "without keep_raw or use the in-memory backend"
            )
        self._pending[key] = result
        self._sequence.append(key)
        while len(self._pending) >= self.shard_size:
            self._flush_shard(self.shard_size)

    def _flush_shard(self, count: int) -> None:
        keys = list(self._pending)[:count]
        payload: Dict[str, object] = {}
        for slot, key in enumerate(keys):
            result = self._pending[key]
            payload[f"meta_{slot}"] = np.array(
                json.dumps(_entry_payload(key, result), sort_keys=True)
            )
            for field in ("times", "mean", "std"):
                value = getattr(result, field)
                if value is not None:
                    payload[f"{field}_{slot}"] = np.asarray(value, dtype=float)
        shard_path = self.path / _shard_name(self._next_shard)
        handle, tmp_name = tempfile.mkstemp(prefix=".tmp-shard-", suffix=".npz", dir=self.path)
        try:
            with os.fdopen(handle, "wb") as stream:
                np.savez(stream, **payload)
            os.replace(tmp_name, shard_path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        for slot, key in enumerate(keys):
            self._index[key] = (shard_path, slot)
            del self._pending[key]
        self._next_shard += 1

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        handle, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    def finalize(self) -> None:
        """Flush the partial tail shard and release the read handle."""
        if self._pending:
            self._flush_shard(len(self._pending))
        self._close_shard()

    # ----------------------------------------------------------------- reads
    def contains(self, case: SweepCase) -> bool:
        key = case.store_key()
        return key in self._index or key in self._pending

    def get(self, case: SweepCase):
        key = case.store_key()
        if key in self._pending:
            return self._pending[key]
        try:
            shard_path, slot = self._index[key]
        except KeyError:
            raise self._missing(case) from None
        return self._read_slot(shard_path, slot)

    def _read_slot(self, shard_path: Path, slot: int):
        shard = self._shard_handle(shard_path)
        entry = json.loads(shard[f"meta_{slot}"].item())
        arrays = {
            field: shard[f"{field}_{slot}"] if f"{field}_{slot}" in shard.files else None
            for field in ("times", "mean", "std")
        }
        return _result_from_entry(entry, **arrays)

    def _shard_handle(self, shard_path: Path):
        if self._open_shard is not None and self._open_shard[0] == shard_path:
            return self._open_shard[1]
        self._close_shard()
        try:
            handle = np.load(shard_path)
        except (OSError, ValueError) as exc:
            raise StoreError(f"cannot read store shard {shard_path}: {exc}") from None
        self._open_shard = (shard_path, handle)
        return handle

    def _close_shard(self) -> None:
        if self._open_shard is not None:
            self._open_shard[1].close()
            self._open_shard = None

    def iter_results(self) -> Iterator:
        for key in self._sequence:
            if key in self._pending:
                yield self._pending[key]
            else:
                shard_path, slot = self._index[key]
                yield self._read_slot(shard_path, slot)

    def __len__(self) -> int:
        return len(self._index) + len(self._pending)

    def _iter_keys(self) -> Iterator[str]:
        return iter(self._sequence)


def _shard_count(shard) -> int:
    """Number of case slots in a loaded shard file."""
    return sum(1 for name in shard.files if name.startswith("meta_"))
