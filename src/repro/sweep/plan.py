"""Sweep plans: declarative grids of analysis cases.

A :class:`SweepCase` is a small, picklable description of one engine run --
which synthetic grid (target node count + generator seed), which engine,
which chaos order or sample count, and which *variation corner* (a named
:class:`~repro.variation.model.VariationSpec`).  A :class:`SweepPlan` is an
ordered collection of cases sharing one transient configuration, typically
built as the cartesian product ``node counts x engines x orders x corners``
via :meth:`SweepPlan.grid`.

Cases are deterministic: every case carries a seed derived (stably, via
CRC-32 of its identity) from the plan's ``base_seed``, so a case produces
the same numbers whether it runs serially, on a process pool, or alone --
and the same numbers tomorrow.  The runner lives in
:mod:`repro.sweep.runner`.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..montecarlo.engine import DEFAULT_CHUNK_SIZE
from ..sim.transient import TransientConfig
from ..variation.model import VariationSpec

__all__ = [
    "SweepCase",
    "SweepPlan",
    "corner_spec",
    "corner_names",
    "grid_seed_for",
    "case_seed_for",
    "DEFAULT_SWEEP_TRANSIENT",
]

#: Default time axis of sweep plans (short: sweeps time many engine runs).
DEFAULT_SWEEP_TRANSIENT = TransientConfig(t_stop=2.4e-9, dt=0.2e-9)

#: Engines whose options include a chaos expansion order.
_CHAOS_ENGINES = ("opera", "decoupled", "hierarchical", "pce-regression", "mor")

#: Engines that consume germ samples (and therefore chunked ``workers`` /
#: ``chunk_size`` settings plus a sample count in their identity).
_SAMPLED_ENGINES = ("montecarlo", "pce-regression")

# Named variation corners.  "paper" is the experiment setting of Section 6;
# "wide"/"tight" bracket it; the "rhs-only" family disables matrix variation
# so the decoupled special case applies ("rhs-wide"/"rhs-tight" bracket the
# excitation sigmas the same way "wide"/"tight" bracket the paper corner --
# they give batched corner sweeps several stackable scenarios per topology).
_CORNERS: Dict[str, Dict] = {
    "paper": {},
    "wide": {"w": 30.0, "t": 20.0, "l": 30.0},
    "tight": {"w": 10.0, "t": 8.0, "l": 10.0},
    "rhs-only": {"vary_conductance": False, "vary_capacitance": False},
    "rhs-wide": {
        "w": 30.0,
        "t": 20.0,
        "l": 30.0,
        "vary_conductance": False,
        "vary_capacitance": False,
    },
    "rhs-tight": {
        "w": 10.0,
        "t": 8.0,
        "l": 10.0,
        "vary_conductance": False,
        "vary_capacitance": False,
    },
}


def corner_names() -> Tuple[str, ...]:
    """Names of all predefined variation corners, sorted."""
    return tuple(sorted(_CORNERS))


def corner_spec(name: str) -> VariationSpec:
    """The :class:`VariationSpec` of a named corner."""
    key = str(name).strip().lower()
    if key not in _CORNERS:
        known = ", ".join(corner_names())
        raise AnalysisError(f"unknown variation corner {name!r}; known corners: {known}")
    overrides = dict(_CORNERS[key])
    if not overrides:
        return VariationSpec.paper_defaults()
    sigma = {field: overrides.pop(field) for field in ("w", "t", "l") if field in overrides}
    if sigma:
        return VariationSpec.from_three_sigma_percent(**sigma, **overrides)
    return dataclasses.replace(VariationSpec.paper_defaults(), **overrides)


@dataclass(frozen=True)
class SweepCase:
    """One engine run of a sweep: grid, engine, settings, deterministic seed.

    ``workers`` applies to the sampled engines (``montecarlo``,
    ``pce-regression``) only: the case's sample sweep is chunked (fixed
    ``chunk_size``-sample chunks, independently seeded streams) and fanned
    over that many processes.  Sampled cases always run the chunked path --
    even with ``workers=1`` -- so their statistics never depend on the
    worker count; ``workers`` is therefore excluded from the case identity
    (:meth:`key`, :attr:`name`, seeds).

    ``partitions`` applies to the ``hierarchical`` engine only: the schedule
    group count ``K`` of the partitioned Galerkin run.  It *is* part of the
    case identity (it is what a partition ablation sweeps), even though the
    engine guarantees the statistics are bit-identical for every ``K``.

    ``solver`` selects a registered linear-solver backend for the case
    (``None`` keeps the engine default); like ``partitions`` it is part of
    the case identity when set -- a solver ablation (e.g. explicit ``direct``
    vs matrix-free ``mean-block-cg``) sweeps exactly this field.

    ``scheme`` selects a registered stepping scheme for the case's
    transient (``None`` keeps the plan transient's method); when set it
    joins the case identity the same append-only way, so a scheme ablation
    (e.g. ``trapezoidal`` vs ``backward-euler``) sweeps exactly this field
    and pre-existing case identities keep their seeds.

    ``mor_order`` applies to the ``mor`` engine only: the PRIMA reduction
    order ``q`` of every block macromodel.  Like the other optional fields
    it joins the case identity append-only (only when set), so pre-existing
    case identities -- and therefore their derived seeds -- are untouched
    by the field's introduction.
    """

    engine: str
    nodes: int
    grid_seed: int = 0
    corner: str = "paper"
    order: Optional[int] = None
    samples: Optional[int] = None
    antithetic: bool = False
    store_nodes: Tuple[int, ...] = ()
    workers: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE
    partitions: Optional[int] = None
    solver: Optional[str] = None
    scheme: Optional[str] = None
    mor_order: Optional[int] = None
    seed: int = 0

    def __post_init__(self):
        if self.nodes < 4:
            raise AnalysisError(f"cases need at least 4 nodes, got {self.nodes}")
        if self.workers < 1:
            raise AnalysisError(f"workers must be at least 1, got {self.workers}")
        if self.partitions is not None:
            if self.engine != "hierarchical":
                raise AnalysisError(
                    "partitions only applies to the 'hierarchical' engine; "
                    f"got engine {self.engine!r}"
                )
            if self.partitions < 1:
                raise AnalysisError(f"partitions must be at least 1, got {self.partitions}")
        if self.solver is not None and not str(self.solver).strip():
            raise AnalysisError("solver must be a non-empty backend name or None")
        if self.mor_order is not None:
            if self.engine != "mor":
                raise AnalysisError(
                    "mor_order only applies to the 'mor' engine; "
                    f"got engine {self.engine!r}"
                )
            if self.mor_order < 1:
                raise AnalysisError(f"mor_order must be at least 1, got {self.mor_order}")
        if self.scheme is not None:
            from ..stepping import resolve_scheme

            resolve_scheme(self.scheme)  # fail at plan construction, not in a worker
        corner_spec(self.corner)  # validate eagerly, before any worker sees it
        if self.engine == "montecarlo" and self.antithetic:
            # Mirror MonteCarloConfig's chunked-antithetic parity rules here
            # so a bad case fails at plan construction, not inside a worker.
            if self.chunk_size % 2:
                raise AnalysisError(
                    "antithetic Monte Carlo cases need an even chunk_size; "
                    f"got {self.chunk_size}"
                )
            if (self.samples or 200) % 2:
                raise AnalysisError(
                    "antithetic Monte Carlo cases need an even sample count; "
                    f"got {self.samples}"
                )

    @property
    def name(self) -> str:
        """Stable human-readable case label, e.g. ``opera-n600-o2-paper``."""
        parts = [self.engine, f"n{self.nodes}"]
        if self.order is not None:
            parts.append(f"o{self.order}")
        if self.samples is not None:
            parts.append(f"s{self.samples}")
        if self.partitions is not None:
            parts.append(f"p{self.partitions}")
        if self.solver is not None:
            parts.append(self.solver)
        if self.scheme is not None:
            parts.append(self.scheme)
        if self.mor_order is not None:
            parts.append(f"r{self.mor_order}")
        parts.append(self.corner)
        return "-".join(parts)

    def key(self) -> Tuple:
        """Identity used to match cases across sweeps (excludes seeds).

        ``solver`` and ``scheme`` are appended only when set, so the
        identities (and hence the derived seeds) of cases without them
        predate and survive the fields' introduction.
        """
        identity = (
            self.engine,
            self.nodes,
            self.order,
            self.samples,
            self.corner,
            self.partitions,
        )
        if self.solver is not None:
            identity = identity + (self.solver,)
        if self.scheme is not None:
            identity = identity + (self.scheme,)
        if self.mor_order is not None:
            identity = identity + (self.mor_order,)
        return identity

    def seed_identity(self) -> Tuple:
        """The identity tuple seed derivation uses (append-only convention).

        Unlike :meth:`key`, optional fields (``partitions``, ``solver``,
        ``scheme``) join the tuple *only when set*, so the seeds of case
        identities that predate those fields survive their introduction.
        Hand-built cases should derive their seed with
        :meth:`with_derived_seed` -- exactly what :meth:`SweepPlan.grid`
        does.
        """
        identity = (self.engine, self.nodes, self.order, self.samples, self.corner)
        if self.partitions is not None:
            identity = identity + (self.partitions,)
        if self.solver is not None:
            identity = identity + (self.solver,)
        if self.scheme is not None:
            identity = identity + (self.scheme,)
        if self.mor_order is not None:
            identity = identity + (self.mor_order,)
        return identity

    def store_key(self) -> str:
        """The case's results-store key (see :mod:`repro.sweep.store`).

        Extends the append-only :meth:`seed_identity` with every remaining
        field that can change the case's *numbers* -- the grid generator
        seed, the derived case seed, and (for the sampled engines) the
        chunking settings the statistics depend on.  ``workers`` is the one
        deliberate exclusion: sampled engines chunk identically for every
        worker count, so re-running a stored case with more processes is a
        cache hit, not a different result.  Optional fields follow the same
        append-only convention as :meth:`seed_identity`, so keys of cases
        that predate a field survive its introduction.
        """
        parts = [str(part) for part in self.seed_identity()]
        parts.append(f"grid={self.grid_seed}")
        if self.engine in _SAMPLED_ENGINES:
            parts.append(f"antithetic={int(self.antithetic)}")
            parts.append(f"chunk={self.chunk_size}")
            if self.store_nodes:
                parts.append("stored=" + ",".join(str(node) for node in self.store_nodes))
        parts.append(f"seed={self.seed}")
        return "|".join(parts)

    def with_derived_seed(self, base_seed: int) -> "SweepCase":
        """A copy whose seed is derived from ``base_seed`` and the identity.

        The one sanctioned way to seed hand-built cases (solver/scheme
        ablations, appended bench cases): it applies the same append-only
        :meth:`seed_identity` convention as :meth:`SweepPlan.grid`, so a
        hand-built case and a grid-built case with equal identities get
        equal seeds.
        """
        return dataclasses.replace(self, seed=_case_seed(base_seed, self.seed_identity()))

    def run_options(self) -> Dict:
        """Options forwarded to :meth:`repro.api.Analysis.run`."""
        options: Dict = {}
        if self.order is not None:
            options["order"] = int(self.order)
        if self.partitions is not None:
            options["partitions"] = int(self.partitions)
        if self.solver is not None:
            options["solver"] = str(self.solver)
        if self.scheme is not None:
            options["scheme"] = str(self.scheme)
        if self.mor_order is not None:
            options["mor_order"] = int(self.mor_order)
        if self.engine == "montecarlo":
            options["samples"] = int(self.samples or 200)
            options["seed"] = int(self.seed)
            options["antithetic"] = bool(self.antithetic)
            # Always chunked (even serially) so the statistics are invariant
            # to the worker count; see the class docstring.
            options["workers"] = int(self.workers)
            options["chunk_size"] = int(self.chunk_size)
            if self.store_nodes:
                options["store_nodes"] = tuple(int(node) for node in self.store_nodes)
        elif self.engine == "pce-regression":
            # The regression engine shares the chunked-sampling contract:
            # germ draws depend on (seed, samples, chunk_size), never on the
            # worker count, so sweep statistics stay bit-identical.
            options["samples"] = int(self.samples or 200)
            options["seed"] = int(self.seed)
            options["workers"] = int(self.workers)
            options["chunk_size"] = int(self.chunk_size)
        return options


def _case_seed(base_seed: int, identity: Tuple) -> int:
    """A stable per-case seed: CRC-32 of the case identity under ``base_seed``."""
    text = f"{base_seed}|" + "|".join(str(part) for part in identity)
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


def case_seed_for(base_seed: int, identity: Tuple) -> int:
    """The deterministic seed a case identity receives under ``base_seed``.

    Exposed so harnesses that hand-build :class:`SweepCase` objects outside
    :meth:`SweepPlan.grid` (e.g. solver-ablation benchmarks) derive seeds
    the same way the grid builder does.
    """
    return _case_seed(base_seed, identity)


def grid_seed_for(nodes: int, base_seed: int = 0) -> int:
    """The generator seed :meth:`SweepPlan.grid` assigns to a grid size.

    Exposed so callers (e.g. the benchmark harnesses) can rebuild the exact
    grid a sweep case ran on.
    """
    return _case_seed(base_seed, ("grid", nodes)) % 10_000


@dataclass(frozen=True)
class SweepPlan:
    """An ordered set of :class:`SweepCase` sharing one transient config."""

    cases: Tuple[SweepCase, ...]
    transient: TransientConfig = DEFAULT_SWEEP_TRANSIENT
    base_seed: int = 0

    def __post_init__(self):
        if not self.cases:
            raise AnalysisError("a sweep plan needs at least one case")
        names = [case.name for case in self.cases]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise AnalysisError(f"duplicate case(s) in sweep plan: {', '.join(sorted(duplicates))}")

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self) -> Iterator[SweepCase]:
        return iter(self.cases)

    @classmethod
    def grid(
        cls,
        node_counts: Sequence[int],
        engines: Sequence[str] = ("opera", "montecarlo"),
        orders: Sequence[int] = (2,),
        corners: Sequence[str] = ("paper",),
        samples: int = 200,
        antithetic: bool = True,
        mc_workers: int = 1,
        mc_chunk_size: int = DEFAULT_CHUNK_SIZE,
        partitions: Optional[int] = None,
        scheme: Optional[str] = None,
        mor_order: Optional[int] = None,
        transient: Optional[TransientConfig] = None,
        base_seed: int = 0,
    ) -> "SweepPlan":
        """The cartesian product ``node_counts x engines x orders x corners``.

        Chaos engines (``opera``, ``decoupled``) get one case per expansion
        order; sampling and deterministic engines get a single case per grid
        and corner.  Every case receives a deterministic seed derived from
        ``base_seed`` and its identity, and every grid a generator seed
        derived from its node count, so plans are reproducible end to end.

        ``mc_workers`` chunks each Monte Carlo case over that many processes
        (the dominant wall-time lever: a sweep's critical path is usually
        its largest MC case, which case-level parallelism alone cannot
        split); ``mc_chunk_size`` sets the chunk granularity (statistics
        depend on it, but never on ``mc_workers``).  With ``antithetic``,
        ``samples`` is rounded up to even so (xi, -xi) pairs fill whole
        chunks.

        ``partitions`` sets the schedule group count of every
        ``hierarchical`` case (their statistics are bit-identical for any
        value; the setting is recorded in the case identity for partition
        ablations).  Non-partitioned engines ignore it.

        ``scheme`` overrides the stepping scheme of every case (``None``
        keeps the plan transient's method); set it on individual hand-built
        cases for scheme ablations instead.

        ``mor_order`` sets the macromodel reduction order of every ``mor``
        case (``None`` keeps the engine default); other engines ignore it.
        """
        if not node_counts:
            raise AnalysisError("grid plans need at least one node count")
        if not engines:
            raise AnalysisError("grid plans need at least one engine")
        if antithetic and samples % 2:
            samples += 1
        cases = []
        for corner in corners:
            for nodes in node_counts:
                grid_seed = grid_seed_for(nodes, base_seed)
                for engine in engines:
                    engine_orders = orders if engine in _CHAOS_ENGINES else (None,)
                    for order in engine_orders:
                        engine_samples = samples if engine in _SAMPLED_ENGINES else None
                        case_partitions = (
                            int(partitions)
                            if engine == "hierarchical" and partitions is not None
                            else None
                        )
                        case_mor_order = (
                            int(mor_order)
                            if engine == "mor" and mor_order is not None
                            else None
                        )
                        case = SweepCase(
                            engine=engine,
                            nodes=int(nodes),
                            grid_seed=grid_seed,
                            corner=str(corner),
                            order=None if order is None else int(order),
                            samples=engine_samples,
                            antithetic=bool(antithetic) if engine == "montecarlo" else False,
                            workers=int(mc_workers) if engine in _SAMPLED_ENGINES else 1,
                            chunk_size=int(mc_chunk_size),
                            partitions=case_partitions,
                            scheme=None if scheme is None else str(scheme),
                            mor_order=case_mor_order,
                        )
                        cases.append(case.with_derived_seed(base_seed))
        return cls(
            cases=tuple(cases),
            transient=transient if transient is not None else DEFAULT_SWEEP_TRANSIENT,
            base_seed=int(base_seed),
        )
