"""Shared-memory transfer of sweep-case statistics arrays.

Pooled sweep workers used to pickle every case's ``times``/``mean``/``std``
arrays through the result queue.  For statistics-heavy campaigns on large
grids that serialisation is pure overhead: the arrays are written once and
read once.  This module moves them through ``multiprocessing.shared_memory``
instead -- the worker packs the arrays into one segment per case and ships a
small :class:`ShmPayload` descriptor; the driver attaches, copies the arrays
out, closes and unlinks.

Ownership protocol (no leaked ``/dev/shm`` segments):

* the worker creates the segment, copies the arrays in, *unregisters* it
  from its resource tracker (ownership moves to the driver) and closes its
  mapping; if packing fails mid-copy the segment is unlinked in the
  ``except`` path before the error propagates;
* the driver re-registers the segment on attach (so a crashed driver still
  cleans up at interpreter exit) and unlinks it after copying out -- either
  in the happy path or in the pool-teardown drain
  (:func:`release_unconsumed`) that covers results completed after an
  interrupt.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "ShmPayload",
    "ShmCaseResult",
    "shm_supported",
    "pack_result",
    "unpack_result",
    "discard_result",
]

#: The statistics arrays a :class:`~repro.sweep.runner.SweepCaseResult`
#: carries; everything else in the result pickles cheaply.
_ARRAY_FIELDS = ("times", "mean", "std")


def shm_supported() -> bool:
    """True when POSIX shared memory is available (``/dev/shm`` transfer)."""
    return getattr(shared_memory, "_USE_POSIX", False)


@dataclass(frozen=True)
class ShmPayload:
    """Descriptor of one packed segment: name, layout, total bytes."""

    name: str
    #: ``(field, shape, offset)`` per packed array, all float64.
    fields: Tuple[Tuple[str, Tuple[int, ...], int], ...]
    total_bytes: int


@dataclass(frozen=True)
class ShmCaseResult:
    """A case result whose statistics arrays travel in shared memory.

    ``result`` is the :class:`~repro.sweep.runner.SweepCaseResult` with the
    packed array fields set to ``None``; :func:`unpack_result` restores
    them on the driver side.
    """

    result: object
    payload: ShmPayload


def pack_result(result):
    """Move ``result``'s statistics arrays into one shared-memory segment.

    Returns the input unchanged when there is nothing to pack (no
    statistics kept, empty arrays) or shared memory is unsupported.  When
    the result carries a telemetry summary, its ``shm_bytes`` counter is
    bumped in place so the transfer shows up in ``trace-report``.
    """
    if not shm_supported():
        return result
    arrays = []
    for name in _ARRAY_FIELDS:
        value = getattr(result, name, None)
        if value is not None:
            arrays.append((name, np.ascontiguousarray(value, dtype=np.float64)))
    total = sum(array.nbytes for _, array in arrays)
    if not total:
        return result
    segment = shared_memory.SharedMemory(create=True, size=total)
    try:
        offset = 0
        fields = []
        for name, array in arrays:
            view = np.ndarray(array.shape, dtype=np.float64, buffer=segment.buf, offset=offset)
            view[...] = array
            del view
            fields.append((name, tuple(array.shape), offset))
            offset += array.nbytes
        payload = ShmPayload(name=segment.name, fields=tuple(fields), total_bytes=total)
    except BaseException:
        # Mid-pack failure: this process still owns the segment; unlink it
        # here so a crashing worker never leaks /dev/shm entries.
        segment.close()
        segment.unlink()
        raise
    # Hand ownership to the driver: drop this process's resource-tracker
    # registration (the driver re-registers on attach) and its mapping.
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variants
        pass
    segment.close()
    summary = getattr(result, "telemetry", None)
    if summary is not None:
        counters = summary.setdefault("counters", {})
        counters["shm_bytes"] = counters.get("shm_bytes", 0) + total
    stripped = dataclasses.replace(result, **{name: None for name, _ in arrays})
    return ShmCaseResult(result=stripped, payload=payload)


def _open_segment(payload: ShmPayload) -> Optional[shared_memory.SharedMemory]:
    try:
        segment = shared_memory.SharedMemory(name=payload.name)
    except FileNotFoundError:
        return None
    # Adopt ownership: registering here means a driver that dies before the
    # unlink below still has its resource tracker clean the segment up.
    try:
        resource_tracker.register(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variants
        pass
    return segment


def unpack_result(obj):
    """Driver side: copy the arrays out of the segment and unlink it."""
    if not isinstance(obj, ShmCaseResult):
        return obj
    segment = _open_segment(obj.payload)
    if segment is None:  # already torn down (e.g. drained after interrupt)
        return obj.result
    try:
        restored = {
            name: np.array(
                np.ndarray(shape, dtype=np.float64, buffer=segment.buf, offset=offset)
            )
            for name, shape, offset in obj.payload.fields
        }
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - racing teardown
            pass
    return dataclasses.replace(obj.result, **restored)


def discard_result(obj) -> None:
    """Unlink a packed result's segment without reading it (teardown path)."""
    if not isinstance(obj, ShmCaseResult):
        return
    segment = _open_segment(obj.payload)
    if segment is None:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - racing teardown
        pass


def release_unconsumed(futures, consumed) -> None:
    """Unlink segments of completed-but-unconsumed futures (interrupt path).

    After a pool shutdown (normal or aborted), any future that finished
    successfully but whose result the driver never consumed still owns a
    shared-memory segment; walk them and unlink.  Cancelled or failed
    futures never shipped a segment (the worker's own ``except`` path
    already unlinked on mid-pack failure).
    """
    for future in futures:
        if future in consumed or not future.done() or future.cancelled():
            continue
        if future.exception() is not None:
            continue
        outcome = future.result()
        if isinstance(outcome, list):
            for item in outcome:
                discard_result(item[1] if isinstance(item, tuple) else item)
        else:
            discard_result(outcome)
