"""Parallel execution of sweep plans over a streaming results backend.

:class:`SweepRunner` fans the cases of a :class:`~repro.sweep.plan.SweepPlan`
out over a :class:`concurrent.futures.ProcessPoolExecutor`.  Cases -- not
Monte Carlo samples -- are the unit of parallelism here; each case runs one
engine end to end through the :class:`repro.api.Analysis` facade.  Every
worker process keeps a session cache keyed by ``(nodes, grid_seed, corner,
transient)``, so the cases that share a grid reuse the session's chaos
bases, factorisations and Galerkin assemblies exactly as a serial run would.

Completed cases stream into a :class:`~repro.sweep.store.ResultsBackend` as
workers return them (no driver-side result list), and the returned
:class:`SweepOutcome` is a lazy read-view over that backend in plan order.
Cases whose store key is already present are served from the backend
instead of a solver, which is both the result cache and the resume path:
:meth:`SweepRunner.resume` re-runs a plan against the store of a killed
campaign and executes only the missing cases.

Because every case carries its own deterministic seed (see
:mod:`repro.sweep.plan`), the *numbers* a sweep produces are identical for
any ``workers`` count -- and for any interrupt/resume split of the
campaign; only the wall times change.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import AnalysisError, StoreError
from ..montecarlo.statistics import RunningMoments
from ..sim.transient import TransientConfig
from ..telemetry import merge_summaries, profile
from .plan import SweepCase, SweepPlan, corner_spec
from .shm import pack_result, release_unconsumed, shm_supported, unpack_result
from .store import MemoryBackend, ResultsBackend

__all__ = ["SweepRunner", "SweepCaseResult", "SweepOutcome", "speedups_for"]


@dataclass(frozen=True)
class SweepCaseResult:
    """Summary of one executed case (plus optional full statistics).

    ``times`` / ``mean`` / ``std`` are populated only when the runner was
    built with ``keep_statistics=True``; they allow accuracy comparisons
    (e.g. Table-1 error metrics) between cases without re-running anything.
    ``telemetry`` carries the case's :meth:`repro.telemetry.Telemetry.summary`
    (phase timings, solver counters, per-step stats) when the runner was
    built with ``telemetry=True``; it is JSON-safe and travels through every
    results backend.
    """

    engine: str
    nodes: int
    corner: str
    order: Optional[int]
    samples: Optional[int]
    seed: int
    name: str
    num_nodes: int
    wall_time: float
    worst_drop: float
    max_std: float
    vdd: float = 1.0
    partitions: Optional[int] = None
    solver: Optional[str] = None
    scheme: Optional[str] = None
    mor_order: Optional[int] = None
    reused_factorization: Optional[bool] = None
    telemetry: Optional[Dict] = field(default=None, repr=False)
    times: Optional[np.ndarray] = field(default=None, repr=False)
    mean: Optional[np.ndarray] = field(default=None, repr=False)
    std: Optional[np.ndarray] = field(default=None, repr=False)
    raw: Optional[object] = field(default=None, repr=False)

    def key(self) -> Tuple:
        """Identity used to match results across sweeps (excludes seeds).

        Mirrors :meth:`repro.sweep.plan.SweepCase.key`: ``solver`` and
        ``scheme`` join the identity only when set, so pre-existing
        identities are unchanged.
        """
        identity = (
            self.engine,
            self.nodes,
            self.order,
            self.samples,
            self.corner,
            self.partitions,
        )
        if self.solver is not None:
            identity = identity + (self.solver,)
        if self.scheme is not None:
            identity = identity + (self.scheme,)
        if self.mor_order is not None:
            identity = identity + (self.mor_order,)
        return identity

    @property
    def has_statistics(self) -> bool:
        return self.mean is not None

    @property
    def mean_drop(self) -> np.ndarray:
        """Mean voltage drop (requires ``keep_statistics``)."""
        return self.vdd - self._require_statistics("mean_drop")[0]

    @property
    def std_drop(self) -> np.ndarray:
        """Standard deviation of the drop (requires ``keep_statistics``)."""
        return self._require_statistics("std_drop")[1]

    def _require_statistics(self, what: str) -> Tuple[np.ndarray, np.ndarray]:
        if self.mean is None or self.std is None:
            raise AnalysisError(
                f"{what} needs full statistics; run the sweep with "
                "SweepRunner(keep_statistics=True)"
            )
        return self.mean, self.std

    def to_record(self) -> Dict:
        """The case's :mod:`repro.sweep.record` artifact entry."""
        record = {
            "name": self.name,
            "engine": self.engine,
            "nodes": int(self.nodes),
            "num_nodes": int(self.num_nodes),
            "corner": self.corner,
            "order": None if self.order is None else int(self.order),
            "samples": None if self.samples is None else int(self.samples),
            "partitions": None if self.partitions is None else int(self.partitions),
            "solver": None if self.solver is None else str(self.solver),
            "scheme": None if self.scheme is None else str(self.scheme),
            "mor_order": None if self.mor_order is None else int(self.mor_order),
            "seed": int(self.seed),
            "wall_time_s": float(self.wall_time),
            "worst_drop_v": float(self.worst_drop),
            "max_std_v": float(self.max_std),
        }
        if self.reused_factorization is not None:
            record["reused_factorization"] = bool(self.reused_factorization)
        if self.telemetry is not None:
            record["telemetry"] = dict(self.telemetry)
        return record


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------
class _SessionCache:
    """Bounded per-process cache of Analysis sessions.

    An LRU over *grid identities* ``(nodes, grid_seed)``: a multi-grid
    campaign touches each grid's cases in bursts, so only the most recent
    grids are worth holding, and evicting a whole grid drops every corner
    session (bases, factorisations, Galerkin assemblies) it accumulated.
    Corner sessions within one grid share the generated netlist and the
    stamped MNA system -- both are deterministic functions of the grid
    identity, so the sharing is value-free.
    """

    def __init__(self, max_grids: int = 4):
        self.max_grids = int(max_grids)
        self._grids: "OrderedDict[Tuple, Dict]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._grids)

    def grid_keys(self) -> Tuple:
        return tuple(self._grids)

    def clear(self) -> None:
        self._grids.clear()

    def session_for(self, case: SweepCase, transient: TransientConfig):
        from ..api import Analysis  # deferred: workers import lazily

        grid_key = (case.nodes, case.grid_seed)
        grid = self._grids.get(grid_key)
        if grid is None:
            grid = {}
            self._grids[grid_key] = grid
            while len(self._grids) > self.max_grids:
                self._grids.popitem(last=False)
        else:
            self._grids.move_to_end(grid_key)
        key = (case.corner, transient)
        session = grid.get(key)
        if session is None:
            sibling = next(iter(grid.values()), None)
            if sibling is None:
                session = Analysis.from_spec(
                    case.nodes,
                    seed=case.grid_seed,
                    variation=corner_spec(case.corner),
                    transient=transient,
                )
            else:
                # Same grid, new corner: reuse the sibling's netlist and
                # stamped system instead of regenerating them (bit-identical
                # -- grid generation and stamping are deterministic).
                session = Analysis(
                    sibling.netlist,
                    stamped=sibling.stamped,
                    variation=corner_spec(case.corner),
                    transient=transient,
                )
                # Corner siblings share one macromodel cache (the same dict
                # object): the mor engine's reduction bases depend only on
                # the nominal block matrices and port structure, which are
                # corner-invariant, so one topology reduces each block once
                # per sweep -- the macromodel counterpart of the
                # factorization reuse across corners.
                session._caches["macromodel"] = sibling._caches["macromodel"]
            # Every corner session and every run on this grid asks for the
            # same fixed time grid; memoise the drain-current sums (the
            # cached values are identical to uncached evaluation).
            session.stamped.enable_drain_cache()
            grid[key] = session
        return session


#: Per-process cache of Analysis sessions.  Worker processes are long-lived
#: within one sweep, so cases sharing a grid reuse the session's chaos bases,
#: LU factorisations and Galerkin assemblies; the LRU bound keeps multi-grid
#: campaigns from accumulating one session set per grid ever visited.
_WORKER_SESSIONS = _SessionCache()


def _session_for(case: SweepCase, transient: TransientConfig):
    return _WORKER_SESSIONS.session_for(case, transient)


def _run_case(
    case: SweepCase,
    session,
    keep_statistics: bool,
    keep_raw: bool,
    profile_case: bool,
) -> SweepCaseResult:
    """Run one case on an already-built session."""
    started = time.perf_counter()
    tele_summary = None
    if profile_case:
        # A fresh per-case telemetry context, activated *inside* the worker
        # process: the summary is plain JSON-safe data, so it pickles back
        # to the driver with the result no matter the workers count.
        with profile() as tele:
            view = session.run(case.engine, mode="transient", **case.run_options())
        tele_summary = tele.summary()
    else:
        view = session.run(case.engine, mode="transient", **case.run_options())
    elapsed = time.perf_counter() - started
    # ``reused_factorization`` stays unset here: the per-case path flags
    # nothing, only the batched scheduler marks its replicas, where the
    # flag is a deterministic property of the schedule.  (A counter-delta
    # heuristic would depend on process history and make exported records
    # differ between an interrupted-and-resumed campaign and a straight
    # run.)
    return result_from_view(
        case,
        view,
        vdd=float(session.vdd),
        elapsed=elapsed,
        keep_statistics=keep_statistics,
        keep_raw=keep_raw,
        telemetry=tele_summary,
    )


def result_from_view(
    case: SweepCase,
    view,
    *,
    vdd: float,
    elapsed: float,
    keep_statistics: bool,
    keep_raw: bool,
    telemetry: Optional[Dict] = None,
    reused_factorization: Optional[bool] = None,
) -> SweepCaseResult:
    """Fold an engine result view into a :class:`SweepCaseResult`."""
    mean = view.mean()
    std = view.std()
    wall = view.wall_time if view.wall_time is not None else elapsed
    return SweepCaseResult(
        engine=case.engine,
        nodes=case.nodes,
        corner=case.corner,
        order=case.order,
        samples=case.samples,
        partitions=case.partitions,
        solver=case.solver,
        scheme=case.scheme,
        mor_order=case.mor_order,
        reused_factorization=reused_factorization,
        telemetry=telemetry,
        seed=case.seed,
        name=case.name,
        num_nodes=int(mean.shape[-1]),
        wall_time=float(wall),
        worst_drop=float(view.worst_drop()),
        max_std=float(np.max(std)) if std.size else 0.0,
        vdd=vdd,
        times=np.asarray(view.raw.times, dtype=float)
        if keep_statistics and hasattr(view.raw, "times")
        else None,
        mean=np.asarray(mean, dtype=float) if keep_statistics else None,
        std=np.asarray(std, dtype=float) if keep_statistics else None,
        raw=view.raw if keep_raw else None,
    )


def _execute_case(args) -> SweepCaseResult:
    """Run one case (module-level so process pools can pickle it)."""
    case, transient, keep_statistics, keep_raw, profile_case, use_shm = args
    session = _session_for(case, transient)
    result = _run_case(case, session, keep_statistics, keep_raw, profile_case)
    if use_shm:
        result = pack_result(result)
    return result


def _execute_group(args) -> List[Tuple[SweepCase, object]]:
    """Run one topology group of cases through the batched runner."""
    from .batch import BatchedCaseRunner  # deferred: avoids an import cycle

    cases, transient, keep_statistics, keep_raw, profile_case, use_shm = args
    runner = BatchedCaseRunner(
        transient,
        keep_statistics=keep_statistics,
        keep_raw=keep_raw,
        profile_case=profile_case,
    )
    executed = runner.run_group(cases)
    if use_shm:
        executed = [(case, pack_result(result)) for case, result in executed]
    return executed


# --------------------------------------------------------------------------
# Driver side
# --------------------------------------------------------------------------
def speedups_for(results: Iterable[SweepCaseResult]) -> Dict[str, float]:
    """Wall-time speedup of every non-Monte-Carlo case vs its MC baseline.

    The baseline of a case is the ``montecarlo`` case on the same grid and
    corner; grids without an MC case contribute nothing.  One pass for the
    baselines, one for the ratios -- callers may hand in any result
    iterable (a materialised list or a backend scan).
    """
    results = list(results)
    baselines = {
        (result.nodes, result.corner): result.wall_time
        for result in results
        if result.engine == "montecarlo"
    }
    speedups: Dict[str, float] = {}
    for result in results:
        if result.engine == "montecarlo":
            continue
        baseline = baselines.get((result.nodes, result.corner))
        if baseline is None or result.wall_time <= 0:
            continue
        speedups[result.name] = baseline / result.wall_time
    return speedups


@dataclass(frozen=True)
class SweepOutcome:
    """Lazy read-view over the results backend of one executed plan.

    Iteration and :meth:`case` walk ``plan.cases`` in plan order and fetch
    each result from the backend on demand -- nothing is materialised until
    asked for.  ``executed``/``reused`` split the plan into cases this run
    actually solved and cases served from the store.
    """

    store: ResultsBackend
    plan: SweepPlan
    workers: int
    wall_time: float
    executed: int = 0
    reused: int = 0
    batched: bool = False

    def __len__(self) -> int:
        return len(self.plan.cases)

    def __iter__(self) -> Iterator[SweepCaseResult]:
        for case in self.plan.cases:
            yield self.store.get(case)

    @property
    def results(self) -> Tuple[SweepCaseResult, ...]:
        """All results, materialised in plan order (backward-compatible)."""
        return tuple(self)

    def case(self, **criteria) -> SweepCaseResult:
        """The unique result matching the given attribute values.

        Criteria are :class:`SweepCaseResult` field names; unknown names
        fail fast with the valid list, and a no-match error names the
        nearest stored cases so typos are obvious.
        """
        if not criteria:
            raise AnalysisError(
                "case() needs at least one criterion, e.g. case(engine='opera', nodes=600)"
            )
        valid = {f.name for f in dataclasses.fields(SweepCaseResult)}
        unknown = sorted(set(criteria) - valid)
        if unknown:
            raise AnalysisError(
                f"unknown case criterion(s): {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        results = list(self)
        matches = [
            result
            for result in results
            if all(getattr(result, key) == value for key, value in criteria.items())
        ]
        if not matches:
            scored = sorted(
                results,
                key=lambda result: sum(
                    getattr(result, key) == value for key, value in criteria.items()
                ),
                reverse=True,
            )
            nearest = ", ".join(result.name for result in scored[:5])
            raise AnalysisError(
                f"no sweep case matches {criteria!r}; nearest of the "
                f"{len(results)} case(s): {nearest}"
            )
        if len(matches) > 1:
            names = ", ".join(result.name for result in matches)
            raise AnalysisError(f"criteria {criteria!r} are ambiguous: {names}")
        return matches[0]

    def speedups(self) -> Dict[str, float]:
        """Wall-time speedups vs the per-grid Monte Carlo baselines."""
        return speedups_for(self)

    def moments(self) -> Dict[str, RunningMoments]:
        """Per-engine running moments over ``(wall_time, worst_drop, max_std)``.

        One incremental plan-order pass over the backend -- constant memory
        beyond the accumulators, no per-case lists -- so the values are
        deterministic for any worker count and any interrupt/resume split.
        """
        per_engine: Dict[str, RunningMoments] = {}
        for result in self:
            accumulator = per_engine.setdefault(result.engine, RunningMoments())
            accumulator.update(np.array([result.wall_time, result.worst_drop, result.max_std]))
        return per_engine

    def aggregates(self) -> Dict[str, Dict[str, float]]:
        """Summary statistics per engine plus an ``overall`` entry.

        The per-engine accumulators of :meth:`moments` are folded into the
        overall one with :meth:`RunningMoments.merge` in sorted engine
        order, so the combine is deterministic.  When the batched scheduler
        flagged cases (``reused_factorization``), each summary also counts
        them under ``cases_reusing_factorization``.
        """
        per_engine = self.moments()
        reused: Dict[str, int] = {}
        flagged = False
        for result in self:
            if result.reused_factorization is not None:
                flagged = True
                if result.reused_factorization:
                    reused[result.engine] = reused.get(result.engine, 0) + 1
        overall = RunningMoments()
        summaries: Dict[str, Dict[str, float]] = {}
        for engine in sorted(per_engine):
            summaries[engine] = _moments_summary(per_engine[engine])
            if flagged:
                summaries[engine]["cases_reusing_factorization"] = reused.get(engine, 0)
            overall.merge(per_engine[engine])
        summaries["overall"] = _moments_summary(overall)
        if flagged:
            summaries["overall"]["cases_reusing_factorization"] = sum(reused.values())
        return summaries

    def telemetry_summary(self) -> Optional[Dict]:
        """The campaign's merged per-case telemetry summary.

        One plan-order pass over the backend, folding every case's
        telemetry block with :func:`repro.telemetry.merge_summaries`; the
        merge order is the plan order, so the result is deterministic for
        any worker count and any interrupt/resume split.  ``None`` when the
        sweep ran without ``SweepRunner(telemetry=True)``.
        """
        return merge_summaries(
            result.telemetry for result in self if result.telemetry is not None
        )


def _moments_summary(moments: RunningMoments) -> Dict[str, float]:
    mean = moments.mean
    std = moments.std()
    total = float(mean[0] * moments.count)
    return {
        "cases": int(moments.count),
        "wall_time_total_s": total,
        "wall_time_mean_s": float(mean[0]),
        "wall_time_std_s": float(std[0]),
        "worst_drop_mean_v": float(mean[1]),
        "worst_drop_std_v": float(std[1]),
        "max_std_mean_v": float(mean[2]),
        "cases_per_second": float(moments.count) / total if total > 0 else None,
    }


class SweepRunner:
    """Executes :class:`SweepPlan` objects, optionally over a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` runs in-process (and still reuses
        sessions across cases through the same cache).
    keep_statistics:
        Ship the full mean/std arrays (and the time axis) back with every
        case.  Costs bandwidth on big grids; needed for accuracy metrics.
    keep_raw:
        Ship the engine-native raw result back with every case (chaos
        coefficients, recorded Monte Carlo waveforms, ...); the heaviest
        option, used by the Figure-1/2 distribution benches.  Only backends
        with ``supports_raw`` (the default :class:`MemoryBackend`) accept
        it.
    retain_sessions:
        Keep driver-side sessions cached across :meth:`run` calls.  By
        default the cache is cleared after every run so long-lived driver
        processes do not accumulate factorisations; staged sweeps that run
        several plans on the same grids (e.g. the Figure-1/2 bench) opt in
        to reuse the grid setup.
    telemetry:
        Profile every executed case: each case runs inside its own
        :func:`repro.telemetry.profile` context (in the worker process that
        executes it) and ships the JSON-safe summary back on
        :attr:`SweepCaseResult.telemetry`.  The summaries persist through
        every results backend and merge deterministically via
        :meth:`SweepOutcome.telemetry_summary`.
    """

    def __init__(
        self,
        workers: int = 1,
        keep_statistics: bool = False,
        keep_raw: bool = False,
        retain_sessions: bool = False,
        telemetry: bool = False,
        batch: bool = False,
        shared_memory: Optional[bool] = None,
    ):
        if workers < 1:
            raise AnalysisError(f"workers must be at least 1, got {workers}")
        self.workers = int(workers)
        self.keep_statistics = bool(keep_statistics)
        self.keep_raw = bool(keep_raw)
        self.retain_sessions = bool(retain_sessions)
        self.telemetry = bool(telemetry)
        #: Batched mode: pooled cases are scheduled as topology groups
        #: (see :mod:`repro.sweep.batch`) instead of one case per task.
        #: Per-case statistics are bit-identical either way.
        self.batch = bool(batch)
        #: Ship statistics arrays through shared memory instead of pickling
        #: them back from pool workers; ``None`` auto-enables where POSIX
        #: shared memory exists.  Only used on the pooled path with
        #: ``keep_statistics=True``.
        self.shared_memory = shm_supported() if shared_memory is None else bool(shared_memory)

    def run(self, plan: SweepPlan, store: Optional[ResultsBackend] = None) -> SweepOutcome:
        """Execute the cases of ``plan`` that ``store`` does not already hold.

        With the default ``store=None`` a fresh in-memory
        :class:`~repro.sweep.store.MemoryBackend` is used and every case
        executes -- the historical behaviour, signature-compatible with all
        pre-store call sites.  With an explicit backend, cases whose store
        key is present are served from the backend (zero solver calls);
        everything else executes and streams into the backend as it
        completes.

        Scheduling: sampled cases (Monte Carlo, regression PCE) that chunk
        over their own worker pool (``case.workers > 1``) execute in the
        driver process, one at a time, while every other case fans out over
        the case pool.  Process counts therefore *add* (``workers + chunk
        workers``) instead of multiplying --
        nesting a chunk pool per pool worker would oversubscribe the
        machine -- and the sweep's critical path (usually its largest MC
        case) still gets split across processes.
        """
        backend = store if store is not None else MemoryBackend()
        backend.open(plan)
        if self.keep_raw and not backend.supports_raw:
            raise StoreError(
                f"{type(backend).__name__} cannot hold raw engine payloads; "
                "run with keep_raw=False or the in-memory backend"
            )
        pending = [case for case in plan.cases if not backend.contains(case)]
        reused = len(plan.cases) - len(pending)
        started = time.perf_counter()
        driver_cases = [
            case
            for case in pending
            if case.engine in ("montecarlo", "pce-regression") and case.workers > 1
        ]
        driver_set = set(driver_cases)
        pooled_cases = [case for case in pending if case not in driver_set]

        pooled = self.workers > 1 and len(pooled_cases) > 1
        use_shm = pooled and self.shared_memory and self.keep_statistics and not self.keep_raw

        def job(payload) -> Tuple:
            return (
                payload,
                plan.transient,
                self.keep_statistics,
                self.keep_raw,
                self.telemetry,
                use_shm,
            )

        try:
            if self.batch:
                self._run_batched(backend, plan, pooled_cases, driver_cases, job, pooled)
            elif pooled:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(pooled_cases))
                ) as pool:
                    futures = {pool.submit(_execute_case, job(case)): case for case in pooled_cases}
                    consumed = set()
                    try:
                        # Driver-side MC cases overlap with the pool's work.
                        for case in driver_cases:
                            backend.append(case, _execute_case(job(case)[:-1] + (False,)))
                        # Stream pooled results into the backend as they
                        # finish, not in submission order: the backend owns
                        # ordering (the outcome view reads in plan order) and
                        # an interrupt loses only the unflushed tail, not
                        # everything after the first straggler.
                        for future in as_completed(futures):
                            result = unpack_result(future.result())
                            consumed.add(future)
                            backend.append(futures[future], result)
                    except BaseException:
                        # Abort: stop feeding the pool, let in-flight cases
                        # finish, then unlink any shared-memory segments of
                        # results the driver will never consume.
                        pool.shutdown(wait=True, cancel_futures=True)
                        raise
                    finally:
                        release_unconsumed(futures, consumed)
            else:
                for case in pending:
                    backend.append(case, _execute_case(job(case)[:-1] + (False,)))
        finally:
            # Cases executed in this process cached their sessions in the
            # module-global; drop them so long-lived drivers do not leak
            # factorisations and Galerkin assemblies across sweeps.  Flush
            # the backend even on failure: every already-streamed case is
            # progress a resume can build on.
            if not self.retain_sessions:
                _WORKER_SESSIONS.clear()
            backend.finalize()
        elapsed = time.perf_counter() - started
        return SweepOutcome(
            store=backend,
            plan=plan,
            workers=self.workers,
            wall_time=elapsed,
            executed=len(pending),
            reused=reused,
            batched=self.batch,
        )

    def _run_batched(self, backend, plan, pooled_cases, driver_cases, job, pooled) -> None:
        """Batched scheduling: pooled cases fan out as topology groups."""
        from .batch import BatchedCaseRunner, group_cases

        groups = group_cases(pooled_cases)
        if pooled and len(groups) > 1:
            with ProcessPoolExecutor(max_workers=min(self.workers, len(groups))) as pool:
                futures = {
                    pool.submit(_execute_group, job(tuple(group))): group for group in groups
                }
                consumed = set()
                try:
                    for case in driver_cases:
                        backend.append(case, _execute_case(job(case)[:-1] + (False,)))
                    for future in as_completed(futures):
                        executed = future.result()
                        consumed.add(future)
                        for case, result in executed:
                            backend.append(case, unpack_result(result))
                except BaseException:
                    pool.shutdown(wait=True, cancel_futures=True)
                    raise
                finally:
                    release_unconsumed(futures, consumed)
        else:
            runner = BatchedCaseRunner(
                plan.transient,
                keep_statistics=self.keep_statistics,
                keep_raw=self.keep_raw,
                profile_case=self.telemetry,
            )
            for group in groups:
                for case, result in runner.run_group(group):
                    backend.append(case, result)
            for case in driver_cases:
                backend.append(case, _execute_case(job(case)[:-1] + (False,)))

    def resume(self, plan: SweepPlan, store: ResultsBackend) -> SweepOutcome:
        """Continue an interrupted campaign from ``store``.

        Cases already in the store are skipped (their persisted results are
        served as-is); only the missing ones execute.  Because every case
        is independently seeded, the combined statistics -- and the
        exported :class:`~repro.sweep.record.BenchRecord` cases -- are
        bit-identical to an uninterrupted run for any worker count.  A
        fully-populated store resumes with zero solver calls.
        """
        if store is None:
            raise StoreError(
                "resume needs the results store of the interrupted campaign, "
                "e.g. ShardedNpzBackend('campaign-store/')"
            )
        return self.run(plan, store=store)
