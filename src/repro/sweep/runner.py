"""Parallel execution of sweep plans.

:class:`SweepRunner` fans the cases of a :class:`~repro.sweep.plan.SweepPlan`
out over a :class:`concurrent.futures.ProcessPoolExecutor`.  Cases -- not
Monte Carlo samples -- are the unit of parallelism here; each case runs one
engine end to end through the :class:`repro.api.Analysis` facade.  Every
worker process keeps a session cache keyed by ``(nodes, grid_seed, corner,
transient)``, so the cases that share a grid reuse the session's chaos
bases, factorisations and Galerkin assemblies exactly as a serial run would.

Because every case carries its own deterministic seed (see
:mod:`repro.sweep.plan`), the *numbers* a sweep produces are identical for
any ``workers`` count; only the wall times change.  Results come back in
plan order regardless of completion order.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import AnalysisError
from ..sim.transient import TransientConfig
from .plan import SweepCase, SweepPlan, corner_spec

__all__ = ["SweepRunner", "SweepCaseResult", "SweepOutcome"]


@dataclass(frozen=True)
class SweepCaseResult:
    """Summary of one executed case (plus optional full statistics).

    ``times`` / ``mean`` / ``std`` are populated only when the runner was
    built with ``keep_statistics=True``; they allow accuracy comparisons
    (e.g. Table-1 error metrics) between cases without re-running anything.
    """

    engine: str
    nodes: int
    corner: str
    order: Optional[int]
    samples: Optional[int]
    seed: int
    name: str
    num_nodes: int
    wall_time: float
    worst_drop: float
    max_std: float
    vdd: float = 1.0
    partitions: Optional[int] = None
    solver: Optional[str] = None
    scheme: Optional[str] = None
    times: Optional[np.ndarray] = field(default=None, repr=False)
    mean: Optional[np.ndarray] = field(default=None, repr=False)
    std: Optional[np.ndarray] = field(default=None, repr=False)
    raw: Optional[object] = field(default=None, repr=False)

    def key(self) -> Tuple:
        """Identity used to match results across sweeps (excludes seeds).

        Mirrors :meth:`repro.sweep.plan.SweepCase.key`: ``solver`` and
        ``scheme`` join the identity only when set, so pre-existing
        identities are unchanged.
        """
        identity = (
            self.engine,
            self.nodes,
            self.order,
            self.samples,
            self.corner,
            self.partitions,
        )
        if self.solver is not None:
            identity = identity + (self.solver,)
        if self.scheme is not None:
            identity = identity + (self.scheme,)
        return identity

    @property
    def has_statistics(self) -> bool:
        return self.mean is not None

    @property
    def mean_drop(self) -> np.ndarray:
        """Mean voltage drop (requires ``keep_statistics``)."""
        return self.vdd - self._require_statistics("mean_drop")[0]

    @property
    def std_drop(self) -> np.ndarray:
        """Standard deviation of the drop (requires ``keep_statistics``)."""
        return self._require_statistics("std_drop")[1]

    def _require_statistics(self, what: str) -> Tuple[np.ndarray, np.ndarray]:
        if self.mean is None or self.std is None:
            raise AnalysisError(
                f"{what} needs full statistics; run the sweep with "
                "SweepRunner(keep_statistics=True)"
            )
        return self.mean, self.std

    def to_record(self) -> Dict:
        """The case's :mod:`repro.sweep.record` artifact entry."""
        return {
            "name": self.name,
            "engine": self.engine,
            "nodes": int(self.nodes),
            "num_nodes": int(self.num_nodes),
            "corner": self.corner,
            "order": None if self.order is None else int(self.order),
            "samples": None if self.samples is None else int(self.samples),
            "partitions": None if self.partitions is None else int(self.partitions),
            "solver": None if self.solver is None else str(self.solver),
            "scheme": None if self.scheme is None else str(self.scheme),
            "seed": int(self.seed),
            "wall_time_s": float(self.wall_time),
            "worst_drop_v": float(self.worst_drop),
            "max_std_v": float(self.max_std),
        }


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------
#: Per-process cache of Analysis sessions, keyed by grid identity.  Worker
#: processes are long-lived within one sweep, so cases sharing a grid reuse
#: chaos bases, LU factorisations and Galerkin assemblies.
_WORKER_SESSIONS: Dict[Tuple, object] = {}


def _session_for(case: SweepCase, transient: TransientConfig):
    from ..api import Analysis  # deferred: workers import lazily

    key = (case.nodes, case.grid_seed, case.corner, transient)
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        session = Analysis.from_spec(
            case.nodes,
            seed=case.grid_seed,
            variation=corner_spec(case.corner),
            transient=transient,
        )
        _WORKER_SESSIONS[key] = session
    return session


def _execute_case(args) -> SweepCaseResult:
    """Run one case (module-level so process pools can pickle it)."""
    case, transient, keep_statistics, keep_raw = args
    session = _session_for(case, transient)
    started = time.perf_counter()
    view = session.run(case.engine, mode="transient", **case.run_options())
    elapsed = time.perf_counter() - started
    mean = view.mean()
    std = view.std()
    wall = view.wall_time if view.wall_time is not None else elapsed
    return SweepCaseResult(
        engine=case.engine,
        nodes=case.nodes,
        corner=case.corner,
        order=case.order,
        samples=case.samples,
        partitions=case.partitions,
        solver=case.solver,
        scheme=case.scheme,
        seed=case.seed,
        name=case.name,
        num_nodes=int(mean.shape[-1]),
        wall_time=float(wall),
        worst_drop=float(view.worst_drop()),
        max_std=float(np.max(std)) if std.size else 0.0,
        vdd=float(session.vdd),
        times=np.asarray(view.raw.times, dtype=float)
        if keep_statistics and hasattr(view.raw, "times")
        else None,
        mean=np.asarray(mean, dtype=float) if keep_statistics else None,
        std=np.asarray(std, dtype=float) if keep_statistics else None,
        raw=view.raw if keep_raw else None,
    )


# --------------------------------------------------------------------------
# Driver side
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepOutcome:
    """All case results of one executed plan, in plan order."""

    results: Tuple[SweepCaseResult, ...]
    plan: SweepPlan
    workers: int
    wall_time: float

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[SweepCaseResult]:
        return iter(self.results)

    def case(self, **criteria) -> SweepCaseResult:
        """The unique result matching the given attribute values."""
        matches = [
            result
            for result in self.results
            if all(getattr(result, key) == value for key, value in criteria.items())
        ]
        if not matches:
            raise AnalysisError(f"no sweep case matches {criteria!r}")
        if len(matches) > 1:
            names = ", ".join(result.name for result in matches)
            raise AnalysisError(f"criteria {criteria!r} are ambiguous: {names}")
        return matches[0]

    def speedups(self) -> Dict[str, float]:
        """Wall-time speedup of every non-Monte-Carlo case vs its MC baseline.

        The baseline of a case is the ``montecarlo`` case on the same grid
        and corner; grids without an MC case contribute nothing.
        """
        baselines = {
            (result.nodes, result.corner): result.wall_time
            for result in self.results
            if result.engine == "montecarlo"
        }
        speedups: Dict[str, float] = {}
        for result in self.results:
            if result.engine == "montecarlo":
                continue
            baseline = baselines.get((result.nodes, result.corner))
            if baseline is None or result.wall_time <= 0:
                continue
            speedups[result.name] = baseline / result.wall_time
        return speedups


class SweepRunner:
    """Executes :class:`SweepPlan` objects, optionally over a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` runs in-process (and still reuses
        sessions across cases through the same cache).
    keep_statistics:
        Ship the full mean/std arrays (and the time axis) back with every
        case.  Costs bandwidth on big grids; needed for accuracy metrics.
    keep_raw:
        Ship the engine-native raw result back with every case (chaos
        coefficients, recorded Monte Carlo waveforms, ...); the heaviest
        option, used by the Figure-1/2 distribution benches.
    retain_sessions:
        Keep driver-side sessions cached across :meth:`run` calls.  By
        default the cache is cleared after every run so long-lived driver
        processes do not accumulate factorisations; staged sweeps that run
        several plans on the same grids (e.g. the Figure-1/2 bench) opt in
        to reuse the grid setup.
    """

    def __init__(
        self,
        workers: int = 1,
        keep_statistics: bool = False,
        keep_raw: bool = False,
        retain_sessions: bool = False,
    ):
        if workers < 1:
            raise AnalysisError(f"workers must be at least 1, got {workers}")
        self.workers = int(workers)
        self.keep_statistics = bool(keep_statistics)
        self.keep_raw = bool(keep_raw)
        self.retain_sessions = bool(retain_sessions)

    def run(self, plan: SweepPlan) -> SweepOutcome:
        """Execute every case of ``plan``; results come back in plan order.

        Scheduling: sampled cases (Monte Carlo, regression PCE) that chunk
        over their own worker pool (``case.workers > 1``) execute in the
        driver process, one at a time, while every other case fans out over
        the case pool.  Process counts therefore *add* (``workers + chunk
        workers``) instead of multiplying --
        nesting a chunk pool per pool worker would oversubscribe the
        machine -- and the sweep's critical path (usually its largest MC
        case) still gets split across processes.
        """
        jobs = [(case, plan.transient, self.keep_statistics, self.keep_raw) for case in plan.cases]
        started = time.perf_counter()
        driver_indices = [
            index
            for index, case in enumerate(plan.cases)
            if case.engine in ("montecarlo", "pce-regression") and case.workers > 1
        ]
        pooled_indices = [index for index in range(len(jobs)) if index not in set(driver_indices)]
        results: List[Optional[SweepCaseResult]] = [None] * len(jobs)
        try:
            if self.workers > 1 and len(pooled_indices) > 1:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(pooled_indices))
                ) as pool:
                    futures = {
                        index: pool.submit(_execute_case, jobs[index])
                        for index in pooled_indices
                    }
                    # Driver-side MC cases overlap with the pool's work.
                    for index in driver_indices:
                        results[index] = _execute_case(jobs[index])
                    for index, future in futures.items():
                        results[index] = future.result()
            else:
                for index in range(len(jobs)):
                    results[index] = _execute_case(jobs[index])
        finally:
            # Cases executed in this process cached their sessions in the
            # module-global; drop them so long-lived drivers do not leak
            # factorisations and Galerkin assemblies across sweeps.
            if not self.retain_sessions:
                _WORKER_SESSIONS.clear()
        elapsed = time.perf_counter() - started
        return SweepOutcome(
            results=tuple(results),
            plan=plan,
            workers=self.workers,
            wall_time=elapsed,
        )
