"""Concrete :class:`~repro.stepping.loop.SystemAdapter` implementations.

Four adapters cover every transient engine of the library:

:class:`MnaSystemAdapter`
    The deterministic MNA system ``C dx/dt + G x = u(t)`` with explicit
    sparse matrices *or* lazy operators and a pluggable solver backend --
    the adapter behind :func:`repro.sim.transient.run_transient` (and
    therefore every Monte Carlo sample).
:class:`GalerkinSystemAdapter`
    The augmented (Galerkin-projected) system of the OPERA method,
    operator-aware: ``assemble="lazy"`` keeps the whole run matrix-free on
    :class:`~repro.linalg.KronSumOperator` representations, and
    block-structured backends (``mean-block-cg``, ``degree-block-cg``)
    receive the block size / chaos degrees they need automatically.
:class:`DecoupledSystemAdapter`
    The Section-5.1 special case (deterministic matrices, stochastic
    excitation): the state stacks the active chaos coefficients, the step
    matrix is ``I_J (x) (a G + b C/h)``, so one ``n x n`` factorisation
    serves every coefficient and each step is a single multi-RHS solve.
:class:`SchurSystemAdapter`
    The partitioned augmented system of the ``hierarchical`` engine: LHS
    solves through the exact Schur-complement port reduction (optionally
    fanned over a worker pool), per-step RHS products through the
    matrix-free operators.

All solver construction is funnelled through a caller-supplied
``solver_factory`` (defaulting to :func:`repro.sim.linear.make_solver`), so
the :class:`repro.api.Analysis` session's fingerprint-keyed solver cache
keeps working across every engine.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import SolverError
from .loop import PreparedSystem, SystemAdapter
from .schemes import StepForms, SteppingScheme, step_forms

__all__ = [
    "MnaSystemAdapter",
    "GalerkinSystemAdapter",
    "DecoupledSystemAdapter",
    "SchurSystemAdapter",
    "StackedRhsSeries",
    "BlockDiagonalSolver",
]


def _is_operator(obj) -> bool:
    """Lazy-operator test -- the single definition in ``repro.sim.linear``.

    Imported per call (like :func:`_default_factory`) because ``repro.sim``
    imports this package at module load.
    """
    from ..sim.linear import _is_lazy_operator

    return _is_lazy_operator(obj)


def _default_factory():
    # Deferred: repro.sim imports this package at module load.
    from ..sim.linear import make_solver

    return make_solver


# ---------------------------------------------------------------------------
# Deterministic MNA
# ---------------------------------------------------------------------------
class MnaSystemAdapter(SystemAdapter):
    """The plain MNA system: ``G``/``C`` matrices (or operators), one solver.

    Parameters
    ----------
    conductance, capacitance:
        ``G`` and ``C`` -- both explicit sparse matrices or both lazy
        operators (mixing representations is rejected, as before).
    rhs_function, rhs_series:
        The excitation: a callable of time, or a precomputed table with
        ``fill(step, out)`` covering the loop's time axis (at least one is
        required by the loop).
    solver:
        Registered linear-solver backend name.
    solver_factory:
        Optional solver provider with the signature of
        :func:`repro.sim.linear.make_solver` (the session facade injects
        its caching provider here).
    solver_options:
        Extra keyword arguments for the solver factory.
    """

    def __init__(
        self,
        conductance,
        capacitance,
        *,
        rhs_function: Optional[Callable[[float], np.ndarray]] = None,
        rhs_series=None,
        solver: str = "direct",
        solver_factory: Optional[Callable] = None,
        solver_options: Optional[Mapping] = None,
    ):
        matrix_free = _is_operator(conductance)
        if matrix_free != _is_operator(capacitance):
            raise SolverError(
                "G and C must both be explicit sparse matrices or both lazy "
                "operators; mixing the representations is not supported "
                "(materialise one side with to_csr() or build both as operators)"
            )
        if not matrix_free:
            conductance = sp.csr_matrix(conductance)
            capacitance = sp.csr_matrix(capacitance)
        if conductance.shape != capacitance.shape:
            raise SolverError("G and C must have identical shapes")
        self._conductance = conductance
        self._capacitance = capacitance
        self._matrix_free = matrix_free
        self._rhs_function = rhs_function
        self._rhs_series = rhs_series
        self.solver = str(solver)
        self._factory = solver_factory
        self._options = dict(solver_options or {})

    @property
    def size(self) -> int:
        return self._conductance.shape[0]

    # Overridden by GalerkinSystemAdapter to build the series per time axis.
    def _series_for(self, times: np.ndarray):
        return self._rhs_series

    def _make_solver(self, matrix):
        factory = self._factory if self._factory is not None else _default_factory()
        return factory(matrix, method=self.solver, **self._options)

    def prepare(self, scheme: SteppingScheme, times: np.ndarray, h: float) -> PreparedSystem:
        forms = step_forms(
            scheme, self._conductance, self._capacitance, h, matrix_free=self._matrix_free
        )
        return PreparedSystem(
            forms=forms,
            step_solver=self._make_solver(forms.lhs),
            dc_solver_factory=lambda: self._make_solver(self._conductance),
            rhs_series=self._series_for(times),
            rhs_function=self._rhs_function,
        )


# ---------------------------------------------------------------------------
# Augmented Galerkin (operator-aware)
# ---------------------------------------------------------------------------
class GalerkinSystemAdapter(MnaSystemAdapter):
    """The coupled augmented system ``(G~ + s C~) a = U~`` of OPERA.

    ``assemble`` picks the representation (``"explicit"`` CSR or ``"lazy"``
    matrix-free operators -- resolve ``"auto"`` before constructing, e.g.
    via :attr:`repro.opera.config.OperaConfig.effective_assemble`).  The
    excitation is always the Galerkin system's precomputed
    :meth:`~repro.chaos.galerkin.GalerkinSystem.rhs_series` for the loop's
    exact time axis.  Block-structured solver backends get their structure
    arguments threaded automatically: ``mean-block-cg`` the block size on
    explicit input, ``degree-block-cg`` the basis's chaos degrees (plus
    the block size on explicit input).
    """

    def __init__(
        self,
        galerkin,
        *,
        assemble: str = "explicit",
        solver: str = "direct",
        solver_factory: Optional[Callable] = None,
        solver_options: Optional[Mapping] = None,
    ):
        if assemble not in ("explicit", "lazy"):
            raise SolverError(
                "assemble must be 'explicit' or 'lazy' (resolve 'auto' "
                f"before building the adapter); got {assemble!r}"
            )
        options = dict(solver_options or {})
        if assemble == "lazy":
            conductance = galerkin.conductance_operator
            capacitance = galerkin.capacitance_operator
        else:
            conductance = galerkin.conductance
            capacitance = galerkin.capacitance
            if solver in ("mean-block-cg", "degree-block-cg"):
                # The explicit matrix carries no block structure; hand the
                # backend the block size so it can slice out its blocks.
                options.setdefault("num_nodes", galerkin.num_nodes)
        if solver == "degree-block-cg":
            # A plain tuple (not an ndarray): solver options join the
            # session's hashable solver-cache key.
            options.setdefault("degrees", tuple(int(d) for d in galerkin.basis.degrees))
        super().__init__(
            conductance,
            capacitance,
            rhs_function=galerkin.rhs,
            solver=solver,
            solver_factory=solver_factory,
            solver_options=options,
        )
        self._galerkin = galerkin

    def _series_for(self, times: np.ndarray):
        # Precomputed per-basis-index excitation waveforms: the per-step
        # augmented RHS becomes a buffer fill (identical values either way).
        return self._galerkin.rhs_series(times)


# ---------------------------------------------------------------------------
# Decoupled special case (RHS-only variation)
# ---------------------------------------------------------------------------
class StackedRhsSeries:
    """Excitation table for a fixed tuple of chaos tracks.

    ``fill(step, out)`` writes the stacked ``(tracks * n)`` excitation of
    one time point into the caller's buffer -- the decoupled counterpart of
    :class:`repro.chaos.galerkin.AugmentedRhsSeries`, restricted to the
    active coefficient tracks.
    """

    def __init__(self, times: np.ndarray, waveforms: np.ndarray):
        self.times = np.asarray(times, dtype=float)
        waveforms = np.asarray(waveforms, dtype=float)
        if waveforms.ndim != 3 or waveforms.shape[0] != self.times.size:
            raise SolverError(
                f"waveforms must have shape (num_times, tracks, nodes); got {waveforms.shape}"
            )
        self._waveforms = waveforms

    @classmethod
    def from_coefficients(
        cls,
        coefficients_at: Callable[[float], Mapping[int, np.ndarray]],
        times: np.ndarray,
        indices: Sequence[int],
        num_nodes: int,
    ) -> "StackedRhsSeries":
        """Evaluate a coefficient function over a time axis for given tracks."""
        times = np.asarray(times, dtype=float)
        indices = tuple(int(index) for index in indices)
        table = np.zeros((times.size, len(indices), num_nodes))
        zeros = np.zeros(num_nodes)
        for step, t in enumerate(times):
            current = coefficients_at(float(t))
            for position, index in enumerate(indices):
                table[step, position] = np.asarray(current.get(index, zeros), dtype=float)
        return cls(times, table)

    def fill(self, step: int, out: np.ndarray) -> np.ndarray:
        expected = self._waveforms.shape[1] * self._waveforms.shape[2]
        if out.shape != (expected,):
            raise SolverError(f"out buffer has shape {out.shape}, expected ({expected},)")
        out.reshape(self._waveforms.shape[1], self._waveforms.shape[2])[:] = self._waveforms[
            step
        ]
        return out


class _TrackStackProduct:
    """``I_J (x) A`` applied to a stacked ``(J * n)`` vector.

    The per-track products are the columns of one sparse-dense product, so
    applying the block-diagonal operator costs exactly ``J`` grid matvecs.
    """

    __slots__ = ("_matrix", "_tracks")

    def __init__(self, matrix: sp.spmatrix, tracks: int):
        self._matrix = matrix
        self._tracks = int(tracks)

    def matvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        n = self._matrix.shape[0]
        blocks = x.reshape(self._tracks, n)
        result = (self._matrix @ blocks.T).T
        if out is None:
            return result.reshape(-1)
        out.reshape(self._tracks, n)[:] = result
        return out


class BlockDiagonalSolver:
    """``I_J (x) A`` solves through one inner ``n x n`` solver.

    ``solve`` reshapes the stacked right-hand side into per-track columns
    and delegates to the inner solver's ``solve_many`` -- for the direct
    backend that is a single multi-RHS back-substitution over all tracks.

    ``spans`` optionally partitions the tracks into consecutive groups that
    are solved with *separate* ``solve_many`` calls.  SuperLU's multi-RHS
    back-substitution is not bitwise invariant to the number of columns
    (its internal blocking depends on ``nrhs``), so a march that stacks
    several cases' tracks into one state vector passes their per-case track
    counts here: each group's solve call then has exactly the shape and
    layout of that case's own unbatched solve, making the stacked results
    bit-identical by construction.
    """

    def __init__(self, inner, tracks: int, num_nodes: int, spans: Optional[Sequence[int]] = None):
        self.inner = inner
        self.tracks = int(tracks)
        self.num_nodes = int(num_nodes)
        size = self.tracks * self.num_nodes
        self.shape = (size, size)
        self.spans = None if spans is None else tuple(int(count) for count in spans)
        if self.spans is not None and sum(self.spans) != self.tracks:
            raise SolverError(
                f"track spans {self.spans} do not cover {self.tracks} track(s)"
            )

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (self.shape[0],):
            raise SolverError(
                f"right-hand side has shape {rhs.shape}, expected ({self.shape[0]},)"
            )
        blocks = rhs.reshape(self.tracks, self.num_nodes)
        if self.spans is None:
            solution = self.inner.solve_many(blocks.T)
            return np.ascontiguousarray(solution.T).reshape(-1)
        out = np.empty_like(blocks)
        offset = 0
        for count in self.spans:
            solution = self.inner.solve_many(blocks[offset : offset + count].T)
            out[offset : offset + count] = solution.T
            offset += count
        return out.reshape(-1)


class DecoupledSystemAdapter(SystemAdapter):
    """``J`` independent copies of the nominal system (Section 5.1).

    With deterministic ``G`` and ``C`` the Galerkin system block-
    diagonalises: every active chaos coefficient satisfies an independent
    deterministic equation with the *same* matrices.  The adapter stacks
    the active tracks into one state vector so the shared loop steps them
    all at once: the hoisted products are ``I_J (x) A`` applications and
    each solve is one multi-RHS back-substitution of the single ``n x n``
    factorisation.
    """

    def __init__(
        self,
        conductance: sp.spmatrix,
        capacitance: sp.spmatrix,
        tracks: int,
        rhs_series: StackedRhsSeries,
        *,
        solver: str = "direct",
        solver_factory: Optional[Callable] = None,
        solver_options: Optional[Mapping] = None,
        track_spans: Optional[Sequence[int]] = None,
    ):
        self._conductance = sp.csr_matrix(conductance)
        self._capacitance = sp.csr_matrix(capacitance)
        if self._conductance.shape != self._capacitance.shape:
            raise SolverError("G and C must have identical shapes")
        self._tracks = int(tracks)
        if self._tracks < 1:
            raise SolverError(f"need at least one active track, got {tracks}")
        self._series = rhs_series
        self.solver = str(solver)
        self._factory = solver_factory
        self._options = dict(solver_options or {})
        #: Per-case track counts of a stacked multi-case march; solves are
        #: split along these groups (see :class:`BlockDiagonalSolver`).
        self._track_spans = track_spans

    @property
    def num_nodes(self) -> int:
        return self._conductance.shape[0]

    @property
    def size(self) -> int:
        return self._tracks * self.num_nodes

    def _block_solver(self, matrix) -> BlockDiagonalSolver:
        factory = self._factory if self._factory is not None else _default_factory()
        inner = factory(matrix, method=self.solver, **self._options)
        return BlockDiagonalSolver(inner, self._tracks, self.num_nodes, spans=self._track_spans)

    def prepare(self, scheme: SteppingScheme, times: np.ndarray, h: float) -> PreparedSystem:
        inner = step_forms(
            scheme, self._conductance, self._capacitance, h, matrix_free=False
        )
        forms = StepForms(
            scheme=inner.scheme,
            lhs=inner.lhs,
            rhs_capacitance=(
                _TrackStackProduct(inner.rhs_capacitance, self._tracks)
                if inner.rhs_capacitance is not None
                else None
            ),
            rhs_conductance=(
                _TrackStackProduct(inner.rhs_conductance, self._tracks)
                if inner.rhs_conductance is not None
                else None
            ),
            rhs_u_new=inner.rhs_u_new,
            rhs_u_old=inner.rhs_u_old,
            matrix_free=True,
        )
        return PreparedSystem(
            forms=forms,
            step_solver=self._block_solver(inner.lhs),
            dc_solver_factory=lambda: self._block_solver(self._conductance),
            rhs_series=self._series,
        )


# ---------------------------------------------------------------------------
# Partitioned Schur (the hierarchical engine)
# ---------------------------------------------------------------------------
class SchurSystemAdapter(SystemAdapter):
    """The augmented system behind the exact Schur-complement reduction.

    LHS solves go through :class:`~repro.partition.schur.SchurComplement`
    objects built on the *explicit* augmented matrices (optionally with a
    process-pool block backend), while the per-step RHS products reuse the
    matrix-free Kronecker-sum operators -- applying them costs the grid
    fill, not the kron fill.  ``solver`` selects the step backend:
    ``"schur"`` (default, exact direct reduction) or any other registered
    backend, which receives the matrix-free stepping operator (plus the
    augmented partition, for backends declaring ``accepts_partition`` such
    as ``"schwarz-cg"``); iterative backends are warm-started by the
    shared loop.
    """

    def __init__(
        self,
        galerkin,
        partition,
        *,
        groups: Sequence[Sequence[int]],
        workers: int = 1,
        solver: str = "schur",
        solver_options: Optional[Mapping] = None,
    ):
        self._galerkin = galerkin
        self._partition = partition
        self._groups = [list(group) for group in groups]
        self._workers = int(workers)
        self.solver = str(solver)
        self._options = dict(solver_options or {})
        self._pool = None
        #: Populated by :meth:`prepare`; the engine reads these for stats.
        self.schur_dc = None
        self.schur_step = None
        self.step_solver = None

    @property
    def size(self) -> int:
        return self._galerkin.size

    def interface_stats(self) -> Tuple[int, float]:
        """``(interface size, factor seconds)`` of the dominant reduction."""
        schur = self.schur_step if self.schur_step is not None else self.schur_dc
        if schur is None:
            return 0, 0.0
        return int(schur.partition.boundary.size), float(schur.factor_time)

    def prepare(self, scheme: SteppingScheme, times: np.ndarray, h: float) -> PreparedSystem:
        from ..partition.schur import SchurComplement
        from ..partition.workers import HierarchicalWorkerPool

        # A re-run rebuilds everything; release the previous run's pool
        # first so repeated StepLoop.run calls never orphan workers.
        self.close()
        galerkin = self._galerkin
        conductance = galerkin.conductance.tocsr()
        # The Schur reduction needs explicit matrices; the per-step RHS
        # products stay matrix-free (operator forms, hoisted scalings).
        operator_forms = step_forms(
            scheme,
            galerkin.conductance_operator,
            galerkin.capacitance_operator,
            h,
            matrix_free=True,
        )
        use_schur_step = self.solver == "schur"
        if use_schur_step:
            stepping = step_forms(
                scheme, conductance, galerkin.capacitance.tocsr(), h, matrix_free=False
            ).lhs
        else:
            stepping = operator_forms.lhs

        matrices = {"dc": conductance}
        if use_schur_step:
            matrices["step"] = stepping
        if self._workers > 1 and len(self._groups) > 1:
            self._pool = HierarchicalWorkerPool(
                self._workers,
                matrices=matrices,
                partition=self._partition,
                groups=self._groups,
            )
        try:
            dc_backend = self._pool.backend("dc") if self._pool is not None else None
            self.schur_dc = SchurComplement(conductance, self._partition, backend=dc_backend)
            if use_schur_step:
                step_backend = self._pool.backend("step") if self._pool is not None else None
                self.step_solver = SchurComplement(
                    stepping, self._partition, backend=step_backend
                )
                self.schur_step = self.step_solver
            else:
                from ..sim.linear import solver_factory

                # Partition-aware backends (schur, schwarz-cg) opt in via
                # `accepts_partition` on their factory and receive the augmented
                # partition for their block structure; every other backend
                # (cg, mean-block-cg, ...) just solves the stepping operator.
                options = dict(self._options)
                if getattr(solver_factory(self.solver), "accepts_partition", False):
                    options.setdefault("partition", self._partition)
                self.step_solver = _default_factory()(stepping, method=self.solver, **options)

            forms = StepForms(
                scheme=operator_forms.scheme,
                lhs=stepping,
                rhs_capacitance=operator_forms.rhs_capacitance,
                rhs_conductance=operator_forms.rhs_conductance,
                rhs_u_new=operator_forms.rhs_u_new,
                rhs_u_old=operator_forms.rhs_u_old,
                matrix_free=True,
            )
            schur_dc = self.schur_dc
            return PreparedSystem(
                forms=forms,
                step_solver=self.step_solver,
                dc_solver_factory=lambda: schur_dc,
                rhs_series=galerkin.rhs_series(times),
            )
        except BaseException:
            # A failing preparation (singular block, bad backend options)
            # must not orphan the worker pool it just spawned.
            self.close()
            raise

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
