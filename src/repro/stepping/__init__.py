"""The unified time-integration core.

Every transient engine of the library -- the deterministic simulator, the
coupled and decoupled OPERA paths, the partitioned ``hierarchical`` engine
and each Monte Carlo sample -- integrates ``C dx/dt + G x = u(t)`` with the
same fixed-step machinery from this package:

* :mod:`repro.stepping.schemes` -- the :class:`SteppingScheme` registry
  (``trapezoidal``, ``backward-euler``, the generalised ``theta`` method,
  plus anything added with :func:`register_scheme`), each reducing one step
  to scalar coefficients and hoisted LHS / RHS forms in either explicit-CSR
  or matrix-free operator representation;
* :mod:`repro.stepping.loop` -- the single :class:`StepLoop` driver owning
  the preallocated buffers, the ``rhs_series`` double-buffering,
  warm-started iterative solves and step callbacks;
* :mod:`repro.stepping.adapters` -- the :class:`SystemAdapter`
  implementations wiring the engines' systems (deterministic MNA,
  augmented Galerkin, decoupled tracks, partitioned Schur) onto the loop.

Pick a scheme anywhere a time axis is configured::

    TransientConfig(t_stop=8e-9, dt=0.2e-9, method="trapezoidal")
    session.run("opera", order=2, scheme="backward-euler")
    opera-run analyze ... --scheme theta:0.75
"""

from .adapters import (
    BlockDiagonalSolver,
    DecoupledSystemAdapter,
    GalerkinSystemAdapter,
    MnaSystemAdapter,
    SchurSystemAdapter,
    StackedRhsSeries,
)
from .loop import (
    PreparedSystem,
    StepCallback,
    StepHistory,
    StepLoop,
    SystemAdapter,
    supports_warm_start,
)
from .schemes import (
    BackwardEulerScheme,
    SchemeCoefficients,
    StepForms,
    SteppingScheme,
    ThetaScheme,
    TrapezoidalScheme,
    get_scheme,
    register_scheme,
    resolve_scheme,
    scheme_names,
    step_forms,
    unregister_scheme,
)

__all__ = [
    "SteppingScheme",
    "SchemeCoefficients",
    "BackwardEulerScheme",
    "TrapezoidalScheme",
    "ThetaScheme",
    "StepForms",
    "step_forms",
    "register_scheme",
    "unregister_scheme",
    "scheme_names",
    "get_scheme",
    "resolve_scheme",
    "StepLoop",
    "StepHistory",
    "StepCallback",
    "SystemAdapter",
    "PreparedSystem",
    "supports_warm_start",
    "MnaSystemAdapter",
    "GalerkinSystemAdapter",
    "DecoupledSystemAdapter",
    "SchurSystemAdapter",
    "StackedRhsSeries",
    "BlockDiagonalSolver",
]
