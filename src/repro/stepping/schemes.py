"""One-step time-integration schemes and their registry.

Every transient engine of this library integrates the same linear DAE

``C dx/dt + G x = u(t)``

with a fixed step ``h``.  A *scheme* reduces one step of that integration
to a linear solve

``(a G + b C/h) x_{k+1} = p u_{k+1} + q u_k + (c C/h + d G) x_k``

so it is fully described by the six scalars ``(a, b, p, q, c, d)``
(:class:`SchemeCoefficients`).  :func:`step_forms` turns the scalars into
the hoisted per-step objects a stepping loop needs -- the constant LHS
matrix and the prescaled RHS product matrices -- in either representation
the caller supplies: explicit CSR matrices *or* matrix-free lazy operators
(anything supporting scalar scaling, ``+`` and ``matvec``, e.g.
:class:`repro.linalg.KronSumOperator`).

Built-in schemes (all A-stable for their valid parameter ranges):

``backward-euler``
    ``(G + C/h) x_{k+1} = u_{k+1} + (C/h) x_k`` -- first order.
``trapezoidal``
    ``(G + 2C/h) x_{k+1} = u_{k+1} + u_k + (2C/h - G) x_k`` -- second
    order; the form the paper uses (one factorisation, repeated solves).
``theta`` / ``theta:<value>``
    The generalised theta-method, normalised so the ``u_{k+1}``
    coefficient is 1: ``theta=1`` reproduces backward Euler exactly and
    ``theta=0.5`` the trapezoidal rule exactly (same floating-point
    coefficients).  A-stable for ``theta >= 0.5``; second order only at
    ``theta = 0.5``.

New schemes plug in with a decorator and become valid everywhere a scheme
name is accepted (``TransientConfig.method``, ``Analysis.run(scheme=...)``,
``SweepCase.scheme``, the ``--scheme`` CLI flags)::

    @register_scheme("bdf1-damped")
    def build_damped(parameter=None):
        return ThetaScheme(0.8)

A spec string may carry one parameter after a colon (``"theta:0.75"``);
the raw text after the colon reaches the factory as ``parameter``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Union

from ..errors import SchemeError
from ..registry import Registry

__all__ = [
    "SchemeCoefficients",
    "SteppingScheme",
    "BackwardEulerScheme",
    "TrapezoidalScheme",
    "ThetaScheme",
    "StepForms",
    "step_forms",
    "register_scheme",
    "unregister_scheme",
    "scheme_names",
    "get_scheme",
    "resolve_scheme",
]


@dataclass(frozen=True)
class SchemeCoefficients:
    """The six scalars of a one-step update (see the module docstring).

    ``C``-side coefficients multiply the hoisted ``C/h`` -- never ``C``
    itself -- so schemes stay step-size-agnostic and the loop hoists one
    scaled matrix for the whole run.
    """

    lhs_conductance: float  # a:  LHS = a G + b (C/h)
    lhs_capacitance: float  # b
    rhs_u_new: float  # p:  RHS = p u_{k+1} + q u_k + ...
    rhs_u_old: float  # q
    rhs_capacitance: float  # c:  ... + c (C/h) x_k + d G x_k
    rhs_conductance: float  # d   (d <= 0 for the built-ins)
    convergence_order: int  # formal order of accuracy in h


class SteppingScheme(abc.ABC):
    """A one-step integration method for ``C dx/dt + G x = u(t)``."""

    #: Registry name of the scheme family.
    name: str = "?"

    @property
    @abc.abstractmethod
    def coefficients(self) -> SchemeCoefficients:
        """The scheme's update scalars."""

    @property
    def convergence_order(self) -> int:
        """Formal order of accuracy (trapezoidal: 2, backward Euler: 1)."""
        return self.coefficients.convergence_order

    @property
    def uses_previous_rhs(self) -> bool:
        """Whether the update references ``u_k`` (needs a second RHS buffer)."""
        return self.coefficients.rhs_u_old != 0.0

    @property
    def spec(self) -> str:
        """Round-trippable spec string (``resolve_scheme(scheme.spec)``)."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec!r}>"

    def __eq__(self, other) -> bool:
        return isinstance(other, SteppingScheme) and self.coefficients == other.coefficients

    def __hash__(self) -> int:
        return hash(self.coefficients)


class BackwardEulerScheme(SteppingScheme):
    """First-order implicit Euler; heavily damped, the robust default."""

    name = "backward-euler"

    _COEFFICIENTS = SchemeCoefficients(
        lhs_conductance=1.0,
        lhs_capacitance=1.0,
        rhs_u_new=1.0,
        rhs_u_old=0.0,
        rhs_capacitance=1.0,
        rhs_conductance=0.0,
        convergence_order=1,
    )

    @property
    def coefficients(self) -> SchemeCoefficients:
        return self._COEFFICIENTS


class TrapezoidalScheme(SteppingScheme):
    """Second-order trapezoidal rule, in the paper's ``2C/h`` form."""

    name = "trapezoidal"

    _COEFFICIENTS = SchemeCoefficients(
        lhs_conductance=1.0,
        lhs_capacitance=2.0,
        rhs_u_new=1.0,
        rhs_u_old=1.0,
        rhs_capacitance=2.0,
        rhs_conductance=-1.0,
        convergence_order=2,
    )

    @property
    def coefficients(self) -> SchemeCoefficients:
        return self._COEFFICIENTS


class ThetaScheme(SteppingScheme):
    """The generalised theta-method, normalised to a unit ``u_{k+1}`` weight.

    The textbook update ``C (x_{k+1} - x_k)/h = theta (u - G x)_{k+1}
    + (1 - theta) (u - G x)_k`` is divided by ``theta`` so that
    ``theta=1`` and ``theta=0.5`` reproduce the backward-Euler and
    trapezoidal coefficient sets *exactly* (bit for bit), not merely up to
    an equivalent rescaling.  Requires ``0.5 <= theta <= 1`` (the A-stable
    range).
    """

    name = "theta"

    def __init__(self, theta: float = 0.55):
        theta = float(theta)
        if not 0.5 <= theta <= 1.0:
            raise SchemeError(
                f"theta must lie in [0.5, 1.0] (the A-stable range); got {theta}"
            )
        self.theta = theta
        ratio = (1.0 - theta) / theta
        self._coefficients = SchemeCoefficients(
            lhs_conductance=1.0,
            lhs_capacitance=1.0 / theta,
            rhs_u_new=1.0,
            rhs_u_old=ratio,
            rhs_capacitance=1.0 / theta,
            rhs_conductance=-ratio,
            convergence_order=2 if theta == 0.5 else 1,
        )

    @property
    def coefficients(self) -> SchemeCoefficients:
        return self._coefficients

    @property
    def spec(self) -> str:
        return f"{self.name}:{self.theta:g}"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_SCHEMES = Registry("scheme", SchemeError)


def register_scheme(name: str, factory=None, *, overwrite: bool = False):
    """Register a scheme factory ``factory(parameter=None) -> SteppingScheme``.

    Usable directly or as a decorator.  ``parameter`` receives the raw text
    after the colon of a ``"name:parameter"`` spec (``None`` otherwise);
    parameterless schemes should reject a non-``None`` value.
    """
    return _SCHEMES.register(name, factory, overwrite=overwrite)


def unregister_scheme(name: str) -> None:
    """Remove a registered scheme."""
    _SCHEMES.unregister(name)


def scheme_names() -> tuple:
    """Names of all registered schemes, sorted."""
    return _SCHEMES.names()


def get_scheme(name: str):
    """Resolve a scheme name to its factory (raises :class:`SchemeError`)."""
    return _SCHEMES.get(name)


def resolve_scheme(spec: Union[str, SteppingScheme]) -> SteppingScheme:
    """A :class:`SteppingScheme` from a spec string (or pass one through).

    Specs are ``"name"`` or ``"name:parameter"`` -- e.g. ``"trapezoidal"``,
    ``"theta:0.75"``.  Unknown names raise :class:`SchemeError` with the
    registry's listing (also a ``ValueError``, for configuration callers).
    """
    if isinstance(spec, SteppingScheme):
        return spec
    text = str(spec).strip()
    name, _, parameter = text.partition(":")
    factory = _SCHEMES.get(name)
    scheme = factory(parameter=parameter.strip() if parameter else None)
    if not isinstance(scheme, SteppingScheme):
        raise SchemeError(
            f"scheme factory {name!r} returned {type(scheme).__name__}, "
            "expected a SteppingScheme"
        )
    return scheme


def _reject_parameter(name: str, parameter) -> None:
    if parameter is not None:
        raise SchemeError(f"scheme {name!r} takes no parameter; got {parameter!r}")


@register_scheme("backward-euler")
def _build_backward_euler(parameter=None) -> BackwardEulerScheme:
    _reject_parameter("backward-euler", parameter)
    return BackwardEulerScheme()


@register_scheme("trapezoidal")
def _build_trapezoidal(parameter=None) -> TrapezoidalScheme:
    _reject_parameter("trapezoidal", parameter)
    return TrapezoidalScheme()


@register_scheme("theta")
def _build_theta(parameter=None) -> ThetaScheme:
    if parameter is None:
        raise SchemeError(
            "the theta scheme needs its parameter spelled out, e.g. "
            "'theta:0.75' (theta=1 is backward Euler, theta=0.5 trapezoidal)"
        )
    try:
        theta = float(parameter)
    except ValueError:
        raise SchemeError(f"theta parameter must be a number; got {parameter!r}") from None
    return ThetaScheme(theta)


# ---------------------------------------------------------------------------
# Hoisted per-step forms
# ---------------------------------------------------------------------------
@dataclass
class StepForms:
    """The loop-invariant objects of one scheme on one system.

    ``lhs`` is the constant step matrix ``a G + b (C/h)``;
    ``rhs_capacitance`` / ``rhs_conductance`` are the prescaled RHS product
    matrices ``c (C/h)`` and ``(-d) G`` (``None`` when the coefficient is
    zero; the conductance term is stored positively and *subtracted* by the
    loop, matching the sign convention of the built-in schemes).  All three
    share the representation of the inputs -- explicit CSR or lazy
    operator; ``matrix_free`` records which, and drives whether the loop
    uses ``matvec(x, out=...)`` buffers or plain ``@`` products.
    """

    scheme: SteppingScheme
    lhs: object
    rhs_capacitance: Optional[object]
    rhs_conductance: Optional[object]
    rhs_u_new: float
    rhs_u_old: float
    matrix_free: bool


def _scaled(matrix, factor: float):
    """``factor * matrix`` with the exact-identity short-circuit."""
    return matrix if factor == 1.0 else factor * matrix


def step_forms(
    scheme: Union[str, SteppingScheme],
    conductance,
    capacitance,
    h: float,
    matrix_free: Optional[bool] = None,
) -> StepForms:
    """Hoist a scheme's per-step LHS and RHS objects for ``(G, C, h)``.

    ``conductance`` / ``capacitance`` may be explicit sparse matrices or
    lazy operators; the forms come out in the same representation.  The
    scalings mirror the expressions the engines historically used
    (``C / h`` first, then small-integer factors), so the default schemes
    reproduce the pre-``repro.stepping`` arithmetic bit for bit.
    """
    scheme = resolve_scheme(scheme)
    if h <= 0:
        raise SchemeError(f"step size must be positive, got {h}")
    c = scheme.coefficients
    scaled_capacitance = capacitance / h
    lhs = _scaled(conductance, c.lhs_conductance) + _scaled(scaled_capacitance, c.lhs_capacitance)
    rhs_capacitance = (
        _scaled(scaled_capacitance, c.rhs_capacitance)
        if c.rhs_capacitance != 0.0
        else None
    )
    rhs_conductance = (
        _scaled(conductance, -c.rhs_conductance) if c.rhs_conductance != 0.0 else None
    )
    if matrix_free is None:
        matrix_free = callable(getattr(conductance, "matvec", None))
    return StepForms(
        scheme=scheme,
        lhs=lhs,
        rhs_capacitance=rhs_capacitance,
        rhs_conductance=rhs_conductance,
        rhs_u_new=c.rhs_u_new,
        rhs_u_old=c.rhs_u_old,
        matrix_free=bool(matrix_free),
    )
