"""The shared fixed-step integration loop.

One :class:`StepLoop` drives every transient engine of the library -- the
deterministic simulator, the coupled (augmented Galerkin) OPERA engine, the
decoupled special case, the partitioned (Schur) engine and each Monte Carlo
sample.  The loop owns everything the per-engine copies used to duplicate:

* the preallocated work buffers of the matrix-free path (nothing is
  allocated per step);
* the ``rhs_series`` double-buffering (per-step excitation becomes a buffer
  fill, with the two buffers swapped instead of copied);
* warm starting -- solvers whose ``solve`` accepts an ``x0`` initial guess
  (duck-typed once, here) receive the previous step's state;
* step callbacks (streaming observers) and optional waveform storage.

Engines differ only in their :class:`SystemAdapter`: one ``prepare`` call
yields the scheme's hoisted :class:`~repro.stepping.schemes.StepForms`, the
solvers, and the excitation source for a given time axis (see
:mod:`repro.stepping.adapters` for the concrete adapters).
"""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from ..errors import SolverError
from ..telemetry import StepStats, current_telemetry
from .schemes import StepForms, SteppingScheme, resolve_scheme

__all__ = [
    "StepCallback",
    "PreparedSystem",
    "SystemAdapter",
    "StepHistory",
    "StepLoop",
    "supports_warm_start",
]

#: Signature of a streaming observer: ``callback(step_index, time, state)``.
StepCallback = Callable[[int, float, np.ndarray], None]


def supports_warm_start(solver) -> bool:
    """True when ``solver.solve`` accepts an ``x0`` initial guess.

    The loop consults this once per run for whatever solver the adapter
    supplied -- iterative backends (``cg``, ``mean-block-cg``,
    ``degree-block-cg``, ``schwarz-cg``) opt in simply by having the
    parameter, direct backends by not having it.
    """
    try:
        return "x0" in inspect.signature(solver.solve).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


@dataclass
class PreparedSystem:
    """Everything :meth:`SystemAdapter.prepare` hands the loop for one run.

    Attributes
    ----------
    forms:
        The scheme's hoisted LHS / RHS objects.
    step_solver:
        Solver for the constant step matrix (``solve(b)`` or
        ``solve(b, x0=...)``).
    dc_solver_factory:
        Zero-argument factory for the initial-condition solver (the DC
        system ``G x = u(t_0)``); called only when no explicit ``x0`` is
        supplied, so adapters defer that factorisation.
    rhs_series:
        Optional precomputed excitation table with
        ``fill(step_index, out) -> out`` (e.g.
        :class:`repro.chaos.galerkin.AugmentedRhsSeries`).  When present
        the per-step RHS is a buffer fill.
    rhs_function:
        Fallback callable returning the excitation vector at a time;
        required when ``rhs_series`` is absent.
    """

    forms: StepForms
    step_solver: object
    dc_solver_factory: Callable[[], object]
    rhs_series: Optional[object] = None
    rhs_function: Optional[Callable[[float], np.ndarray]] = None


class SystemAdapter(abc.ABC):
    """What one engine must supply to run on the shared :class:`StepLoop`.

    Concrete adapters (:mod:`repro.stepping.adapters`) wrap the
    deterministic MNA system, the augmented Galerkin system (explicit or
    matrix-free) and the partitioned Schur reduction.
    """

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Dimension of the state vector."""

    @abc.abstractmethod
    def prepare(self, scheme: SteppingScheme, times: np.ndarray, h: float) -> PreparedSystem:
        """Hoist forms, build solvers and bind the excitation for one run."""

    def close(self) -> None:
        """Release per-run resources (worker pools); default: nothing."""

    def __enter__(self) -> "SystemAdapter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Context-manager form of the engines' ``try/finally adapter.close()``
        # pattern: a raising march cannot orphan worker pools.
        self.close()


@dataclass
class StepHistory:
    """Result of one :meth:`StepLoop.run`: the time axis, the stored states
    (``None`` in streaming mode), the final state, and -- when telemetry is
    enabled -- the :class:`~repro.telemetry.StepStats` aggregate of the
    run's per-step solves."""

    times: np.ndarray
    states: Optional[np.ndarray]
    final: np.ndarray
    stats: Optional[StepStats] = None


class StepLoop:
    """The fixed-step driver: one loop, every engine.

    Parameters
    ----------
    adapter:
        The engine's :class:`SystemAdapter`.
    scheme:
        A :class:`~repro.stepping.schemes.SteppingScheme` or spec string
        (``"trapezoidal"``, ``"backward-euler"``, ``"theta:0.75"``, any
        registered name).
    times:
        The full time axis including the initial point (uniformly spaced
        by ``h``; typically ``TransientConfig.times()``).
    h:
        The fixed step size.
    """

    def __init__(
        self,
        adapter: SystemAdapter,
        scheme: Union[str, SteppingScheme],
        times: np.ndarray,
        h: float,
    ):
        self.adapter = adapter
        self.scheme = resolve_scheme(scheme)
        self.times = np.asarray(times, dtype=float)
        if self.times.size < 2:
            raise SolverError("the time axis needs at least two points")
        self.h = float(h)
        if self.h <= 0:
            raise SolverError(f"step size must be positive, got {h}")

    def run(
        self,
        x0: Optional[np.ndarray] = None,
        callback: Optional[StepCallback] = None,
        store: bool = True,
    ) -> StepHistory:
        """Integrate over the time axis.

        ``x0`` overrides the initial condition (default: the DC solution at
        the first time point).  ``callback(step, t, state)`` observes every
        accepted step including step 0; ``store=False`` skips waveform
        storage (streaming mode).
        """
        adapter = self.adapter
        times = self.times
        n = adapter.size
        telemetry = current_telemetry()
        with telemetry.span(
            "stepping.prepare", phase="factor", adapter=type(adapter).__name__
        ):
            prepared = adapter.prepare(self.scheme, times, self.h)
        forms = prepared.forms
        series = prepared.rhs_series
        rhs_function = prepared.rhs_function
        if series is None and rhs_function is None:
            raise SolverError("either rhs_function or rhs_series is required")

        # ---------------------------------------------------------- excitation
        if series is not None:
            series_times = getattr(series, "times", None)
            if series_times is not None and (
                len(series_times) != times.size
                or not np.allclose(series_times, times, rtol=0.0, atol=1e-18)
            ):
                raise SolverError("rhs_series does not match the configured time axis")
            u_now = np.zeros(n)
            u_previous = np.zeros(n)
            series.fill(0, u_previous)
            rhs_initial = u_previous
        else:
            rhs_initial = np.asarray(rhs_function(float(times[0])), dtype=float)

        # --------------------------------------------------- initial condition
        if x0 is None:
            with telemetry.span("stepping.dc", phase="factor"):
                x = prepared.dc_solver_factory().solve(rhs_initial)
        else:
            x = np.asarray(x0, dtype=float).copy()
            if x.shape != (n,):
                raise SolverError(f"x0 must have shape ({n},)")

        solver = prepared.step_solver
        warm_start = supports_warm_start(solver)
        # Per-step stats are collected only while telemetry is enabled; the
        # instrumentation merely *reads* the solver's diagnostics after each
        # solve, so trajectories are bit-identical with telemetry on or off
        # and the disabled path costs nothing per step.
        record = telemetry.enabled
        step_stats = StepStats() if record else None
        solver_diag = getattr(solver, "stats", None) if record else None
        matrix_free = forms.matrix_free
        two_term = forms.rhs_u_old != 0.0
        rhs_capacitance = forms.rhs_capacitance
        rhs_conductance = forms.rhs_conductance
        if matrix_free:
            work = np.empty(n)
            b = np.empty(n)

        history = np.empty((times.size, n)) if store else None
        if store:
            history[0] = x
        if callback is not None:
            callback(0, float(times[0]), x)

        rhs_previous = rhs_initial

        with telemetry.span("stepping.march", phase="step", steps=times.size - 1):
            for k in range(1, times.size):
                t = float(times[k])
                if series is not None:
                    rhs_now = series.fill(k, u_now)
                else:
                    rhs_now = np.asarray(rhs_function(t), dtype=float)

                # --------------------------------------------- RHS assembly
                # The branch structure mirrors the historical per-engine
                # loops exactly (term order included) so the default schemes
                # keep their floating-point trajectories bit for bit.
                if matrix_free:
                    if two_term:
                        if forms.rhs_u_old == 1.0 and forms.rhs_u_new == 1.0:
                            np.add(rhs_now, rhs_previous, out=b)
                        else:
                            np.multiply(rhs_previous, forms.rhs_u_old, out=b)
                            if forms.rhs_u_new == 1.0:
                                b += rhs_now
                            else:
                                b += forms.rhs_u_new * rhs_now
                        if rhs_capacitance is not None:
                            rhs_capacitance.matvec(x, out=work)
                            b += work
                    else:
                        if rhs_capacitance is not None:
                            rhs_capacitance.matvec(x, out=work)
                            if forms.rhs_u_new == 1.0:
                                np.add(rhs_now, work, out=b)
                            else:
                                np.multiply(rhs_now, forms.rhs_u_new, out=b)
                                b += work
                        else:
                            np.multiply(rhs_now, forms.rhs_u_new, out=b)
                    if rhs_conductance is not None:
                        rhs_conductance.matvec(x, out=work)
                        b -= work
                else:
                    if forms.rhs_u_new == 1.0:
                        b = rhs_now if two_term else rhs_now.copy()
                    else:
                        b = forms.rhs_u_new * rhs_now
                    if two_term:
                        if forms.rhs_u_old == 1.0:
                            b = b + rhs_previous
                        else:
                            b = b + forms.rhs_u_old * rhs_previous
                    if rhs_capacitance is not None:
                        b = b + rhs_capacitance @ x
                    if rhs_conductance is not None:
                        b = b - rhs_conductance @ x

                x = solver.solve(b, x0=x) if warm_start else solver.solve(b)
                if record:
                    if solver_diag is None:
                        step_stats.record_solve(warm_start)
                    else:
                        step_stats.record_solve(
                            warm_start,
                            solver_diag.get("last_iterations"),
                            solver_diag.get("last_relative_residual"),
                        )
                if store:
                    history[k] = x
                if callback is not None:
                    callback(k, t, x)
                if series is not None:
                    # Swap buffers: the one holding U(t_k) becomes
                    # "previous", the stale one is overwritten next fill.
                    u_now, u_previous = u_previous, u_now
                    rhs_previous = u_previous
                else:
                    rhs_previous = rhs_now

        if record:
            step_stats.steps = times.size - 1
            # One hoisted LHS serves the whole run: every solve after the
            # first reuses the factorisation/operator built in prepare().
            step_stats.lhs_hoists = 1
            step_stats.lhs_reused_solves = max(0, step_stats.solves - 1)
            telemetry.record_step_stats(step_stats)

        return StepHistory(times=times, states=history, final=x, stats=step_stats)
